"""Figure 8: in-memory-speed IOPS requirement for varying k (SIFT)."""

from repro.experiments import fig04_08_requirements as req


def test_fig08(scale, bench_dataset, benchmark):
    ks = (1, 10, 100)
    curves = benchmark.pedantic(
        req.fig8, args=(scale, bench_dataset, ks), rounds=1, iterations=1
    )
    print("\n" + req.format_curves(curves, "Figure 8: in-memory-speed requirement, varying k"))

    # "No substantial change in the IOPS requirements is observed for
    # larger k": requirements stay within one order of magnitude of k=1,
    # because T_E2LSH and N_io grow together.
    base = curves[0].max_read_iops()
    for curve in curves[1:]:
        assert base / 10 < curve.max_read_iops() < base * 10, curve.label
