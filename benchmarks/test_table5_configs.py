"""Table 5: storage device configurations."""

from repro.experiments import table5_configs
from repro.storage.profiles import DEVICE_PROFILES


def test_table5(benchmark):
    rows = benchmark.pedantic(table5_configs.run, rounds=1, iterations=1)
    print("\n" + table5_configs.format_table(rows))

    for row in rows:
        profile = DEVICE_PROFILES[row.device]
        assert row.total_max_iops == profile.max_iops * row.count
        assert row.total_capacity_bytes == profile.capacity_bytes * row.count
    by_name = {r.name: r for r in rows}
    # The paper's ordering of aggregate random-read performance.
    assert (
        by_name["cssd_x1"].total_max_iops
        < by_name["cssd_x4"].total_max_iops
        < by_name["essd_x1"].total_max_iops
        < by_name["essd_x8"].total_max_iops
        < by_name["xlfdd_x12"].total_max_iops
    )
