"""Figure 7: IOPS requirement to reach in-memory E2LSH speeds."""

from repro.experiments import fig04_08_requirements as req


def test_fig07(scale, benchmark):
    curves = benchmark.pedantic(req.fig7, args=(scale,), rounds=1, iterations=1)
    print("\n" + req.format_curves(curves, "Figure 7: IOPS required for in-memory E2LSH speeds"))

    for curve in curves:
        worst_iops = curve.max_read_iops()
        # Observation 4: in-memory-class speed needs MIOPS-class storage
        # (well beyond one cSSD at 273 kIOPS, within eSSD/XLFDD reach).
        assert worst_iops > 273_000 * 0.5, curve.label
        assert worst_iops < 100e6, curve.label
        # Eq. 16: the CPU-overhead requirement is ~10x the IOPS one,
        # i.e. tens of ns per request — the XLFDD interface regime.
        finite = [p for p in curve.points if p.request_rate != float("inf")]
        for point in finite:
            assert point.request_rate >= point.read_iops
