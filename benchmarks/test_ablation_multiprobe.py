"""Ablation: multi-probe vs plain E2LSH (the Sec. 7 index-size idea).

The paper's discussion asks whether small-index ideas can shrink the
E2LSHoS index without losing sublinear time.  Multi-Probe LSH is the
canonical candidate: probe perturbed buckets so a *smaller L* (fewer
tables, smaller index) reaches the accuracy that plain E2LSH needs a
larger L for.  This ablation builds both at the same reduced L and
shows multi-probe recovering accuracy at the cost of more probes
(i.e. trading index size for I/Os — exactly the tradeoff the paper
hypothesizes).
"""

import numpy as np

from repro.core.e2lsh import E2LSHIndex
from repro.core.multiprobe import MultiProbeE2LSH
from repro.core.params import E2LSHParams
from repro.datasets.registry import load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio


def _evaluate(run_fn, queries, truth):
    answers = [run_fn(q) for q in queries]
    ratio = overall_ratio([a.distances for a in answers], truth, k=1)
    probes = float(np.mean([a.stats.buckets_probed for a in answers]))
    return ratio, probes


def test_ablation_multiprobe(scale, benchmark):
    n = min(scale.n, 8_000)
    dataset = load_dataset("sift", n=n, n_queries=min(scale.n_queries, 25), seed=scale.seed)
    truth = exact_knn(dataset.data, dataset.queries, k=1)
    # A deliberately shrunken index: about half the usual exponent.
    params = E2LSHParams(n=n, rho=0.18, gamma=0.6, s_factor=32)
    index = E2LSHIndex(dataset.data, params, seed=scale.seed)

    plain_ratio, plain_probes = _evaluate(
        lambda q: index.query(q, k=1), dataset.queries, truth
    )
    multi = MultiProbeE2LSH(index, n_probes=10)
    multi_ratio, multi_probes = benchmark.pedantic(
        lambda: _evaluate(lambda q: multi.query(q, k=1), dataset.queries, truth),
        rounds=1,
        iterations=1,
    )

    print(
        f"\nAblation (L={params.L}, rho=0.18): plain ratio={plain_ratio:.4f} "
        f"({plain_probes:.0f} probes/query) vs multi-probe ratio={multi_ratio:.4f} "
        f"({multi_probes:.0f} probes/query)"
    )

    # Multi-probe trades probes for accuracy on the shrunken index.
    assert multi_probes > plain_probes
    assert multi_ratio <= plain_ratio + 1e-9
