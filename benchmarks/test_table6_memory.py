"""Table 6: index size and runtime memory usage."""

from repro.experiments import table6_memory


def test_table6(scale, benchmark):
    rows = benchmark.pedantic(table6_memory.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + table6_memory.format_table(rows))

    for row in rows:
        # The on-storage index dwarfs what E2LSHoS keeps in DRAM.
        assert row.e2lshos_storage_bytes > 5 * row.e2lshos_index_mem_bytes, row.dataset
        # Runtime memory usage stays comparable.  The bound is 3x here
        # rather than the paper's near-parity because our exact
        # occupancy filter costs 4 B/object/table — negligible against
        # the paper's 130 GB database, visible against our scaled-down
        # ones (see DESIGN.md "Exact occupancy filter").
        assert row.e2lshos_mem_usage_bytes < 3.0 * row.srs_mem_usage_bytes, row.dataset
        assert row.srs_mem_usage_bytes < 3.0 * row.e2lshos_mem_usage_bytes, row.dataset
