"""Table 4: average number of hash bucket reads per query."""

from repro.experiments import table4_io_counts


def test_table4(scale, benchmark):
    rows = benchmark.pedantic(table4_io_counts.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + table4_io_counts.format_table(rows))

    for row in rows:
        # The searched radii average below the ladder length (the search
        # usually ends before exhausting all radii, Sec. 4.3).
        assert 1.0 <= row.avg_radii <= row.total_radii
        # N_io,inf is bounded by two I/Os per (radius, table) probe and
        # is positive (the query actually reads buckets).
        assert 0.0 < row.n_io_inf <= 2.0 * row.L * row.avg_radii + 1e-9
