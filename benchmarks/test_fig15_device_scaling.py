"""Figure 15: query speed and device statistics vs number of devices."""

from repro.experiments import fig15_device_scaling


def test_fig15(scale, bench_dataset, benchmark):
    rows = benchmark.pedantic(
        fig15_device_scaling.run, args=(scale, bench_dataset), rounds=1, iterations=1
    )
    print("\n" + fig15_device_scaling.format_table(rows))

    # Query speed is non-decreasing in the device count (up to noise)
    # and proportional to delivered IOPS while storage-bound.
    assert rows[-1].queries_per_second >= rows[0].queries_per_second * 0.95
    for row in rows:
        ratio = row.queries_per_second / row.observed_kiops
        base = rows[0].queries_per_second / rows[0].observed_kiops
        assert 0.5 < ratio / base < 2.0, "speed should track delivered IOPS"
    # Fewer devices run at higher per-device usage and higher latency.
    assert rows[0].device_usage > rows[-1].device_usage
    assert rows[0].mean_latency_us >= rows[-1].mean_latency_us * 0.9
