"""Table 3: storage interface CPU overheads."""

from repro.experiments import table3_interfaces


def test_table3(benchmark):
    rows = benchmark.pedantic(table3_interfaces.run, rounds=1, iterations=1)
    print("\n" + table3_interfaces.format_table(rows))

    by_name = {r.interface: r for r in rows}
    assert by_name["io_uring"].cpu_ns_per_io == 1_000
    assert by_name["spdk"].cpu_ns_per_io == 350
    assert by_name["xlfdd"].cpu_ns_per_io == 50
    # Max IOPS/core is the reciprocal of the overhead.
    for row in rows:
        assert abs(row.max_miops_per_core - 1e3 / row.cpu_ns_per_io) < 1e-6
