"""Ablation: SSD endurance cost of index maintenance (Sec. 7).

"As SSDs have a limit to the amount of data that can be written under
warranty, updating the hash index consumes the device life. While the
impact of object insertion and deletion is small, rebuilding the entire
index should be done sparingly."  This ablation quantifies both paths
on the same index: bytes written by incremental inserts/deletes versus
bytes written by a full rebuild.
"""

import numpy as np

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.updates import IndexUpdater
from repro.datasets.registry import load_dataset
from repro.storage.blockstore import MemoryBlockStore
from repro.utils.units import format_bytes


def test_ablation_endurance(scale, benchmark):
    n = min(scale.n, 6_000)
    dataset = load_dataset("sift", n=n, n_queries=5, seed=scale.seed)
    params = E2LSHParams(n=n, rho=0.3, gamma=0.7, s_factor=8)
    store = MemoryBlockStore()
    index = E2LSHoSIndex.build(dataset.data, params, store=store, seed=scale.seed)
    rebuild_bytes = store.bytes_written

    updater = IndexUpdater(index)
    rng = np.random.default_rng(scale.seed)
    batch = rng.normal(scale=20.0, size=(50, dataset.d)).astype(np.float32)

    def maintain():
        before = store.bytes_written
        ids = updater.insert_batch(batch[:25])
        for obj in ids[:10].tolist():
            updater.delete(int(obj))
        return store.bytes_written - before

    maintenance_bytes = benchmark.pedantic(maintain, rounds=1, iterations=1)
    per_insert = maintenance_bytes / 35  # 25 inserts + 10 deletes

    print(
        f"\nEndurance: full rebuild writes {format_bytes(rebuild_bytes)}; "
        f"35 maintenance ops wrote {format_bytes(maintenance_bytes)} "
        f"({format_bytes(per_insert)} per op, "
        f"{rebuild_bytes / max(per_insert, 1):.0f} ops = one rebuild)"
    )

    # The paper's claim: per-object maintenance is small relative to a
    # rebuild.  Per-op writes are O(L x r) blocks — independent of n —
    # while a rebuild scales with n, so the gap widens with scale.
    tables = params.L * index.ladder.rungs
    assert per_insert < 3 * tables * 512
    assert maintenance_bytes < rebuild_bytes / 5
