"""Figure 4: IOPS requirement to match SRS, per block size (SIFT)."""

from repro.experiments import fig04_08_requirements as req


def test_fig04(scale, bench_dataset, benchmark):
    curves = benchmark.pedantic(req.fig4, args=(scale, bench_dataset), rounds=1, iterations=1)
    print("\n" + req.format_curves(curves, "Figure 4: IOPS required to match SRS (per block size)"))

    # Observation 3: a few hundred kIOPS suffices across the sweep —
    # orders of magnitude beyond HDDs, within a single cSSD's reach.
    for curve in curves:
        assert curve.max_read_iops() < 1_000_000, curve.label
    # Smaller blocks never lower the requirement.
    by_label = {c.label: c for c in curves}
    b128 = next(c for label, c in by_label.items() if "B=128" in label)
    binf = next(c for label, c in by_label.items() if "B=inf" in label)
    for p128, pinf in zip(b128.points, binf.points):
        assert p128.read_iops >= pinf.read_iops - 1e-9
