"""Figure 6: IOPS requirement to match SRS for varying k (SIFT)."""

from repro.experiments import fig04_08_requirements as req


def test_fig06(scale, bench_dataset, benchmark):
    ks = (1, 10, 100)
    curves = benchmark.pedantic(
        req.fig6, args=(scale, bench_dataset, ks), rounds=1, iterations=1
    )
    print("\n" + req.format_curves(curves, "Figure 6: IOPS required to match SRS, varying k"))

    # Larger k may raise the requirement, but not beyond the same
    # order-of-magnitude envelope (the paper: "still not significantly
    # higher than the requirement in the low accuracy region at k=1").
    base = curves[0].max_read_iops()
    for curve in curves[1:]:
        assert curve.max_read_iops() < 50 * base, curve.label
