"""Figure 5: IOPS requirement to match SRS, all datasets at B = 512."""

from repro.experiments import fig04_08_requirements as req


def test_fig05(scale, benchmark):
    curves = benchmark.pedantic(req.fig5, args=(scale,), rounds=1, iterations=1)
    print("\n" + req.format_curves(curves, "Figure 5: IOPS required to match SRS (B = 512)"))

    for curve in curves:
        # Observation 3: a few hundred kIOPS covers every dataset and
        # accuracy level — a single consumer SSD with async I/O delivers
        # 273 kIOPS, HDDs deliver well under 1 kIOPS.
        assert curve.max_read_iops() < 1_500_000, curve.label
        assert curve.max_read_iops() > 100, curve.label  # far beyond one HDD
