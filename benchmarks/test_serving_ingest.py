"""Streaming ingest under query load: a bounded p99 penalty at fixed recall.

The acceptance claim: with a sustained insert/delete stream at 25% of
the offered query rate (floor: 20%) on the same 4-shard x 2-replica
fleet, query p99 degrades by at most ``PENALTY_BOUND`` versus the
no-ingest control at the same offered load — every update is admitted,
background merges actually rewrite delta contents into the block store,
and post-compaction answers are bit-identical to a from-scratch rebuild
over the grown dataset (ingest changes *when* queries complete, never
*what* the merged index answers).
"""

from dataclasses import asdict

from repro.experiments import serving_ingest


def test_serving_ingest(scale, bench_dataset, benchmark, bench_artifact):
    rows = benchmark.pedantic(
        serving_ingest.run,
        args=(scale, bench_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + serving_ingest.format_table(rows))
    bench_artifact["serving_ingest"] = [asdict(row) for row in rows]

    control = next(row for row in rows if row.ingest_qps == 0)
    ingest = next(row for row in rows if row.ingest_qps > 0)

    # The measured mix satisfies the acceptance floor: ingest offered at
    # >= 20% of the offered query rate, and every update was admitted
    # and applied (no rejections, no silent drops).
    assert ingest.ingest_qps >= 0.20 * ingest.offered_qps
    assert ingest.updates_rejected == 0
    assert ingest.updates_completed == serving_ingest.REQUESTS // 4
    assert ingest.inserts_applied + ingest.deletes_applied == ingest.updates_completed
    assert ingest.inserts_applied > 0
    assert ingest.deletes_applied > 0

    # Merges ran in the background and paid real write I/O on the same
    # devices the queries read from (endurance accounting is non-zero).
    assert ingest.merges_completed > 0
    assert ingest.merge_write_ios > 0
    assert ingest.merge_write_bytes > 0
    assert control.merges_completed == 0
    assert control.merge_write_bytes == 0

    # Headline: sustained ingest costs a bounded, documented p99 factor.
    assert control.p99_penalty == 1.0
    assert ingest.p99_penalty <= serving_ingest.PENALTY_BOUND

    # Ingest competes for the device, it does not collapse throughput:
    # the fleet still clears the offered query load.
    assert ingest.qps >= 0.9 * control.qps

    # Answers over merged data are exactly a from-scratch rebuild's.
    for row in rows:
        assert row.answers_match_rebuild
