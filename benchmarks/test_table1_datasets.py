"""Table 1: dataset analogs and their hardness statistics."""

from repro.experiments import table1_datasets


def test_table1(scale, benchmark):
    rows = benchmark.pedantic(table1_datasets.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + table1_datasets.format_table(rows))

    by_name = {r.name: r for r in rows}
    # Shape: the structureless synthetic sets are the hardest (RC near 1,
    # LID near d); clustered feature sets are easy (RC >> 1, low LID).
    if "rand" in by_name:
        assert by_name["rand"].rc < 1.6
    if "gauss" in by_name:
        assert by_name["gauss"].rc < 1.6
    for easy in ("msong", "sift", "mnist", "bigann"):
        if easy in by_name:
            assert by_name[easy].rc > 2.0, f"{easy} should be an easy dataset"
    if "gauss" in by_name and "sift" in by_name:
        assert by_name["gauss"].lid > by_name["sift"].lid
    if "rand" in by_name and "mnist" in by_name:
        assert by_name["rand"].lid > by_name["mnist"].lid
