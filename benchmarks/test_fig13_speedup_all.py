"""Figure 13: speedups over SRS for all datasets, k = 1 and k = 100."""

from repro.experiments import fig13_speedup_all


def test_fig13(scale, benchmark):
    rows = benchmark.pedantic(
        fig13_speedup_all.run, args=(scale, (1, 100)), rounds=1, iterations=1
    )
    print("\n" + fig13_speedup_all.format_table(rows))

    # The paper's E2LSHoS beats SRS on every dataset at n >= 1M.  At our
    # scaled-down n the *easiest* analogs give SRS so little work
    # (tens of microseconds) that the slowest storage path can tie it;
    # the shape check therefore demands a clear win on the fast
    # interface everywhere and near-parity or better on the slow ones
    # (see EXPERIMENTS.md for the scale discussion).
    floor = 0.75 if scale.name != "small" else 0.6
    for row in rows:
        assert row.io_uring_speedup > floor, f"{row.dataset} k={row.k} io_uring"
        assert row.spdk_speedup > floor, f"{row.dataset} k={row.k} spdk"
        assert row.xlfdd_speedup > 1.0, f"{row.dataset} k={row.k} xlfdd"
        # Faster interfaces are at least as fast as io_uring.
        assert row.xlfdd_speedup >= row.io_uring_speedup * 0.95
        # XLFDD approaches the in-memory speedup.
        assert row.xlfdd_speedup > row.inmemory_speedup * 0.7

    # The benefit grows with dataset size (sublinear vs linear time); at
    # our compressed scale the largest dataset must at least sit in the
    # upper part of the speedup range, not at its bottom.
    k1 = [r for r in rows if r.k == 1]
    if any(r.dataset == "bigann" for r in k1):
        bigann = next(r for r in k1 if r.dataset == "bigann")
        assert bigann.xlfdd_speedup >= max(r.xlfdd_speedup for r in k1) * 0.4
        assert bigann.xlfdd_speedup > min(r.xlfdd_speedup for r in k1)
