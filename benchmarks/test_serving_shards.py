"""Serving scale-out: 4 shards must beat 1 shard where physics allows.

The acceptance claim: a table-partitioned 4-shard deployment sustains at
least twice the saturation QPS of a single shard at equal-or-better
p99, because fleet-wide I/O per query matches the single node while the
device pool quadruples.  Object partitioning (``hash``) is also
measured; its ``min(bucket_size, N)`` I/O inflation is asserted as the
structural finding it is.
"""

from dataclasses import asdict

from repro.experiments import serving_shards


def test_serving_shards(scale, bench_dataset, benchmark, bench_artifact):
    rows = benchmark.pedantic(
        serving_shards.run,
        args=(scale, bench_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + serving_shards.format_table(rows))
    bench_artifact["serving_shards"] = [asdict(row) for row in rows]

    by_config = {(row.n_shards, row.scheme): row for row in rows}
    single = by_config[(1, "hash")]
    hash4 = by_config[(4, "hash")]
    table4 = by_config[(4, "table")]

    # Headline: table partitioning turns 4x devices into >= 2x saturation
    # QPS at equal (or better) p99.
    assert table4.qps >= 2.0 * single.qps
    assert table4.p99_ns <= single.p99_ns

    # Fleet-wide I/O per query stays near the single node's under table
    # partitioning but inflates under object partitioning.
    assert table4.ios_per_query < 2.0 * single.ios_per_query
    assert hash4.ios_per_query > table4.ios_per_query

    # Scale-out never hurts saturation throughput, even object-partitioned.
    assert hash4.qps > 0.9 * single.qps

    # Sharding must not cost answer quality.
    for row in rows:
        assert row.ratio < 1.5
