"""Figure 3: I/Os per query vs accuracy for varying block size."""

from repro.experiments import fig03_block_size


def test_fig03(scale, bench_dataset, benchmark):
    rows = benchmark.pedantic(
        fig03_block_size.run, args=(scale, bench_dataset), rounds=1, iterations=1
    )
    print("\n" + fig03_block_size.format_table(rows))

    # Smaller block sizes can only *increase* the I/O count at any
    # accuracy level; B = inf is the floor.
    by_ratio: dict[float, dict[object, float]] = {}
    for row in rows:
        by_ratio.setdefault(row.overall_ratio, {})[row.block_size] = row.n_io
    for ratio, counts in by_ratio.items():
        assert counts[128] >= counts[512] >= counts[4096] >= counts[None] - 1e-9

    # Observation 2: the I/O count tends to grow toward high accuracy.
    finest = sorted({r.overall_ratio for r in rows})
    if len(finest) >= 2:
        n_io_best = by_ratio[finest[0]][None]
        n_io_worst = by_ratio[finest[-1]][None]
        assert n_io_best >= n_io_worst * 0.8, (
            "I/O count should not collapse at high accuracy"
        )
