"""Figure 16: query speeds with multithreading."""

from repro.experiments import fig16_multithreading


def test_fig16(scale, bench_dataset, benchmark):
    worker_counts = (1, 2, 4, 8, 16, 32)
    rows = benchmark.pedantic(
        fig16_multithreading.run,
        args=(scale, bench_dataset, worker_counts),
        rounds=1,
        iterations=1,
    )
    print("\n" + fig16_multithreading.format_table(rows))

    first, last = rows[0], rows[-1]
    scaling = last.workers / first.workers
    # SRS (pure compute) scales linearly by construction.
    assert abs(last.srs_qps / first.srs_qps - scaling) < 1e-6
    # XLFDD x 12 has IOPS to spare: near-linear scaling.
    assert last.xlfdd_qps > first.xlfdd_qps * scaling * 0.5
    # cSSD x 4 plateaus once the drives saturate: it must fall short of
    # linear scaling and end up slower than XLFDD.
    assert last.cssd_qps < first.cssd_qps * scaling * 0.9
    assert last.cssd_qps < last.xlfdd_qps
    # Throughput never decreases with more workers.
    for earlier, later in zip(rows, rows[1:]):
        assert later.cssd_qps >= earlier.cssd_qps * 0.9
        assert later.xlfdd_qps >= earlier.xlfdd_qps * 0.9
