"""Append one serving-benchmark summary line to the perf trajectory.

``BENCH_trajectory.jsonl`` is the committed long-term record: one JSON
line per benchmark run, each condensing a ``repro-serving-bench/1``
artifact (the per-row ``wall_events_per_sec`` figures plus the
simulated-domain fingerprint) so throughput trends survive artifact
expiry.  The nightly job runs::

    python benchmarks/append_trajectory.py BENCH_fresh.json \
        --out BENCH_trajectory.jsonl --label nightly-$(date -u +%F)

and uploads the updated file; maintainers fold it back into the repo
when refreshing the baseline.  Lines are append-only and sorted by
entry time, so ``jq`` / pandas can chart the trajectory directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "repro-serving-bench/1"
TRAJECTORY_SCHEMA = "repro-bench-trajectory/1"


def summarize(artifact: dict, label: str, timestamp: str | None = None) -> dict:
    """Condense one bench artifact into a single trajectory entry."""
    if artifact.get("schema") != SCHEMA:
        raise SystemExit(
            f"error: artifact schema {artifact.get('schema')!r} is not {SCHEMA}"
        )
    rows = {}
    for bench, bench_rows in sorted(artifact.get("results", {}).items()):
        for row in bench_rows:
            if "n_shards" in row:
                key = f"{bench}[{row['n_shards']}, {row['scheme']}]"
            elif "label" in row:
                key = f"{bench}[{row['label']}, {row['policy']}]"
            else:  # pragma: no cover - future benchmarks
                key = bench
            summary = {
                "wall_events_per_sec": row.get("wall_events_per_sec"),
                "qps": row.get("qps"),
                "p99_ns": row.get("p99_ns"),
            }
            if "p99_penalty" in row:
                # The ingest rows carry the committed p99-penalty bound;
                # track it so the trajectory shows the cost of ingest
                # over time, not just raw tail latency.
                summary["p99_penalty"] = row["p99_penalty"]
            rows[key] = summary
    return {
        "schema": TRAJECTORY_SCHEMA,
        "label": label,
        "recorded_at": timestamp
        or datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="fresh repro-serving-bench/1 JSON artifact")
    parser.add_argument(
        "--out", default="BENCH_trajectory.jsonl", help="trajectory file to append to"
    )
    parser.add_argument("--label", default="manual", help="run label (e.g. nightly-2026-08-08)")
    parser.add_argument(
        "--timestamp", default=None, help="override the recorded_at timestamp (UTC ISO)"
    )
    args = parser.parse_args(argv)

    with open(args.artifact) as handle:
        artifact = json.load(handle)
    entry = summarize(artifact, args.label, args.timestamp)
    out = Path(args.out)
    with out.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {args.label}: {len(entry['rows'])} rows -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
