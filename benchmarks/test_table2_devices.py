"""Table 2: storage device random-read performance at QD 1 and 128."""

from repro.experiments import table2_devices


def test_table2(benchmark):
    rows = benchmark.pedantic(table2_devices.run, rounds=1, iterations=1)
    print("\n" + table2_devices.format_table(rows))

    for row in rows:
        # Calibration: the simulated device reproduces the paper's two
        # measured operating points within 10%.
        assert abs(row.qd1_kiops - row.paper_qd1_kiops) / row.paper_qd1_kiops < 0.10
        assert abs(row.qd128_kiops - row.paper_qd128_kiops) / row.paper_qd128_kiops < 0.10

    by_name = {r.device: r for r in rows}
    # Flash is orders of magnitude above the HDD reference point.
    assert by_name["cssd"].qd128_kiops > 100 * by_name["hdd"].qd128_kiops
    # Queue depth matters: asynchronous I/O unlocks the flash parallelism.
    for name in ("cssd", "essd", "xlfdd"):
        assert by_name[name].qd128_kiops > 10 * by_name[name].qd1_kiops
