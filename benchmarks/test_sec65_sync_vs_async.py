"""Sec. 6.5: synchronous (mmap + page cache) vs asynchronous E2LSHoS."""

from repro.experiments import sec65_sync_vs_async


def test_sec65(scale, bench_dataset, benchmark):
    result = benchmark.pedantic(
        sec65_sync_vs_async.run, args=(scale, bench_dataset), rounds=1, iterations=1
    )
    print("\n" + sec65_sync_vs_async.format_table(result))

    # The paper measures 19.7x; the shape check is "an order of
    # magnitude", driven by unhidden storage latency.
    assert result.slowdown > 5.0
    # The page cache is ineffective under E2LSH's random access
    # (93% misses in the paper).
    assert result.miss_rate > 0.5
