"""Figure 12: I/O cost vs computation per storage interface."""

from repro.experiments import fig12_interface_cost


def test_fig12(scale, bench_dataset, benchmark):
    rows = benchmark.pedantic(
        fig12_interface_cost.run, args=(scale, bench_dataset), rounds=1, iterations=1
    )
    print("\n" + fig12_interface_cost.format_table(rows))

    by_mode = {r.mode: r for r in rows}
    # The I/O CPU cost shrinks with lighter interfaces.
    assert by_mode["io_uring"].io_cost_ms > by_mode["spdk"].io_cost_ms > by_mode["xlfdd"].io_cost_ms
    # The computation component is interface-independent.
    assert abs(by_mode["io_uring"].compute_ms - by_mode["xlfdd"].compute_ms) < 1e-6
    # XLFDD's total approaches (or beats) the in-memory execution, whose
    # larger footprint inflates its compute (Sec. 6.1).
    assert by_mode["xlfdd"].total_ms < by_mode["in-memory"].total_ms * 1.1
