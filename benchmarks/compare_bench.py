"""Diff a fresh REPRO_BENCH_ARTIFACT run against the committed baseline.

The committed ``BENCH_serving.json`` is the perf trajectory: each
serving benchmark row carries ``wall_events_per_sec`` — how fast the
simulator's own event loop ran, the figure that decides how much
workload a CI run (or a laptop) can afford to simulate.  This script
compares a fresh artifact row-by-row against the baseline and fails if
any row's simulator throughput regressed by more than the tolerance
(default 20%, generous enough to ride out shared-runner noise).

Simulated-domain figures (saturation QPS, p99) are reported as
informational drift only: they are deterministic for a given seed, so
any change there is a behavior change, not a perf regression — the
benchmark asserts guard those.

Usage::

    REPRO_BENCH_ARTIFACT=BENCH_fresh.json python -m pytest \
        benchmarks/test_serving_shards.py benchmarks/test_serving_replicas.py -q
    python benchmarks/compare_bench.py BENCH_serving.json BENCH_fresh.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/compare_bench.py BENCH_serving.json BENCH_fresh.json \
        --write-baseline
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

SCHEMA = "repro-serving-bench/1"
#: Allowed wall-clock slowdown before the comparison fails.
DEFAULT_TOLERANCE = 0.20
#: Fields identifying a row within each benchmark's result list.
ROW_KEYS = {
    "serving_shards": ("n_shards", "scheme"),
    "serving_replicas": ("label", "policy"),
    "serving_ingest": ("label", "policy"),
}


def _load(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        raise SystemExit(
            f"error: {path} is not a {SCHEMA} artifact "
            f"(schema={payload.get('schema')!r})"
        )
    return payload


def _row_label(bench: str, row: dict) -> str:
    keys = ROW_KEYS.get(bench)
    if keys and all(k in row for k in keys):
        return f"{bench}[" + ", ".join(str(row[k]) for k in keys) + "]"
    return bench


def _match_rows(bench: str, baseline: list, fresh: list) -> list[tuple[str, dict, dict]]:
    keys = ROW_KEYS.get(bench)
    if keys is None:
        return [
            (_row_label(bench, b), b, f)
            for b, f in zip(baseline, fresh)
        ]
    fresh_by_key = {tuple(row.get(k) for k in keys): row for row in fresh}
    matched = []
    for row in baseline:
        other = fresh_by_key.get(tuple(row.get(k) for k in keys))
        if other is not None:
            matched.append((_row_label(bench, row), row, other))
    return matched


def compare(baseline: dict, fresh: dict, tolerance: float, out=sys.stdout) -> int:
    """Print the comparison; return the number of regressed rows."""
    if baseline.get("scale") != fresh.get("scale"):
        out.write(
            f"warning: scale mismatch (baseline {baseline.get('scale')!r}, "
            f"fresh {fresh.get('scale')!r}) -- wall-clock comparison skipped\n"
        )
        return 0
    regressions = 0
    compared = 0
    for bench, base_rows in sorted(baseline.get("results", {}).items()):
        fresh_rows = fresh.get("results", {}).get(bench)
        if fresh_rows is None:
            out.write(f"warning: {bench} missing from fresh artifact\n")
            continue
        for label, base, new in _match_rows(bench, base_rows, fresh_rows):
            base_rate = base.get("wall_events_per_sec", 0.0)
            new_rate = new.get("wall_events_per_sec", 0.0)
            if base_rate <= 0:
                continue  # baseline predates the self-profile fields
            compared += 1
            change = new_rate / base_rate - 1.0
            floor = base_rate * (1.0 - tolerance)
            verdict = "ok" if new_rate >= floor else "REGRESSED"
            if verdict != "ok":
                regressions += 1
            out.write(
                f"{verdict:>9s} {label}: {base_rate:,.0f} -> {new_rate:,.0f} "
                f"events/s ({change:+.1%}, floor {floor:,.0f})\n"
            )
            # The ingest p99 penalty is a simulated-domain figure, but
            # unlike qps drift it is a *gated* one: it is the committed
            # bound on what streaming ingest may cost the query tail,
            # so a >tolerance worsening fails the comparison outright.
            base_penalty = base.get("p99_penalty", 0.0)
            new_penalty = new.get("p99_penalty", 0.0)
            if base_penalty > 1.0 and new_penalty > 0.0:
                ceiling = base_penalty * (1.0 + tolerance)
                if new_penalty > ceiling:
                    regressions += 1
                    out.write(
                        f"{'REGRESSED':>9s} {label}: ingest p99 penalty "
                        f"{base_penalty:.2f}x -> {new_penalty:.2f}x "
                        f"(ceiling {ceiling:.2f}x)\n"
                    )
                elif abs(new_penalty - base_penalty) > 1e-9:
                    out.write(
                        f"{'note':>9s} {label}: ingest p99 penalty "
                        f"{base_penalty:.2f}x -> {new_penalty:.2f}x "
                        f"(within the {ceiling:.2f}x ceiling)\n"
                    )
            if "qps" in base and "qps" in new and base["qps"]:
                drift = new["qps"] / base["qps"] - 1.0
                if abs(drift) > 1e-9:
                    out.write(
                        f"{'note':>9s} {label}: simulated qps drifted "
                        f"{drift:+.1%} ({base['qps']:,.0f} -> {new['qps']:,.0f}) "
                        "-- deterministic figure, investigate the behavior change\n"
                    )
    if compared == 0:
        out.write("warning: no comparable rows (baseline has no wall figures)\n")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_serving.json")
    parser.add_argument("fresh", help="artifact from the current run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional wall-clock slowdown (default 0.20)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy the fresh artifact over the baseline after comparing",
    )
    args = parser.parse_args(argv)
    if not Path(args.baseline).exists():
        if args.write_baseline:
            shutil.copyfile(args.fresh, args.baseline)
            print(f"no baseline at {args.baseline}; seeded it from {args.fresh}")
            return 0
        raise SystemExit(f"error: no baseline at {args.baseline}")
    regressions = compare(_load(args.baseline), _load(args.fresh), args.tolerance)
    if args.write_baseline:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline {args.baseline} refreshed from {args.fresh}")
        return 0
    if regressions:
        print(f"FAIL: {regressions} row(s) regressed beyond the tolerance")
        return 1
    print("simulator throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
