"""Figure 2: in-memory E2LSH speedup over SRS and QALSH."""

from repro.experiments import fig02_inmem_speedup


def test_fig02(scale, benchmark):
    rows = benchmark.pedantic(
        fig02_inmem_speedup.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + fig02_inmem_speedup.format_table(rows))

    for row in rows:
        # Observation 1: E2LSH's computational cost is consistently lower.
        assert row.speedup_vs_srs > 1.0, f"{row.dataset}: E2LSH must beat SRS"
        assert row.speedup_vs_qalsh > 1.0, f"{row.dataset}: E2LSH must beat QALSH"
        # SRS is consistently faster than QALSH (why the paper keeps SRS
        # as the sole small-index baseline afterwards).
        assert row.qalsh_ms > row.srs_ms, f"{row.dataset}: SRS must beat QALSH"
    # At least one dataset shows an order-of-magnitude gap to QALSH.
    assert max(r.speedup_vs_qalsh for r in rows) > 10.0
