"""Figure 14: query time vs database size (sublinearity)."""

from repro.experiments import fig14_sublinearity


def test_fig14(scale, benchmark):
    dataset = "bigann" if "bigann" in scale.datasets else scale.datasets[0]
    rows = benchmark.pedantic(
        fig14_sublinearity.run, args=(scale, dataset), rounds=1, iterations=1
    )
    print("\n" + fig14_sublinearity.format_table(rows))

    sizes = [r.n for r in rows]
    srs_exp = fig14_sublinearity.fitted_exponent(sizes, [r.srs_ms for r in rows])
    os_exp = fig14_sublinearity.fitted_exponent(sizes, [r.e2lshos_ms for r in rows])

    # SRS is a linear-time method (its fitted exponent sits far above
    # E2LSHoS's; log-factors and fixed per-query costs pull it slightly
    # below 1.0 at small n); E2LSH(oS) is clearly sublinear.
    assert srs_exp > 0.5, f"SRS exponent {srs_exp:.2f} should be near 1"
    assert os_exp < srs_exp - 0.2, "E2LSHoS must scale distinctly better than SRS"
    assert os_exp < 0.85, f"E2LSHoS exponent {os_exp:.2f} should be sublinear"

    largest = rows[-1]
    smallest = rows[0]
    # At the largest size, E2LSHoS beats SRS outright.
    assert largest.e2lshos_ms < largest.srs_ms
    # E2LSHoS tracks the in-memory curve with the same parameters.
    assert largest.e2lshos_ms < 3.0 * largest.inmemory_ms

    # The paper's small-rho crossover (its Figure 14 right panel: the
    # rho=0.09 in-memory variant becomes far slower than E2LSHoS at
    # large n) needs databases big enough that an n^0.09-sized table
    # count is starved.  At our largest analog (n <= 60k, L = 3) the
    # clustered data still yields the target accuracy cheaply, so the
    # crossover is NOT reproducible at this scale — we report the
    # curve and its growth rather than asserting the paper's endpoint
    # (see EXPERIMENTS.md).
    small_rho_growth = largest.small_rho_ms / smallest.small_rho_ms
    e2lshos_growth = largest.e2lshos_ms / smallest.e2lshos_ms
    print(
        f"small-rho growth {small_rho_growth:.2f}x vs E2LSHoS growth "
        f"{e2lshos_growth:.2f}x over {smallest.n}->{largest.n} "
        f"(paper regime: small-rho grows much faster)"
    )
