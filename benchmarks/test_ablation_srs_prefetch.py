"""Ablation: asynchronous prefetch for external-memory SRS.

The paper's conclusion suggests small-index methods can also exploit
async I/O: "external-memory SRS and QALSH may issue requests for
adjacent tree nodes while processing the current node".  This ablation
puts the SRS R-tree on the simulated cSSD and compares one-node-at-a-
time reads against prefetching batches of frontier nodes.
"""


from repro.baselines.srs_storage import build_storage_srs
from repro.datasets.registry import load_dataset
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


def test_ablation_srs_prefetch(scale, benchmark):
    n = min(scale.n, 8_000)
    dataset = load_dataset("sift", n=n, n_queries=min(scale.n_queries, 20), seed=scale.seed)
    store = MemoryBlockStore()
    index = build_storage_srs(dataset.data, store, seed=scale.seed, prefetch=8)
    t_prime = max(1, n // 100)

    # A shallow task pool: with dozens of interleaved queries the engine
    # hides node latency even without prefetch (they all saturate the
    # drive); prefetch is the win for the *low-concurrency* regime the
    # paper's suggestion targets.
    queries = dataset.queries[:6]

    def run(serial: bool):
        engine = AsyncIOEngine(
            make_volume("cssd", 1), INTERFACE_PROFILES["io_uring"], store
        )
        maker = index.query_task_sync_order if serial else index.query_task
        tasks = [maker(q, 1, t_prime) for q in queries]
        return engine.run(tasks)

    serial = run(serial=True)
    prefetched = benchmark.pedantic(lambda: run(serial=False), rounds=1, iterations=1)

    speedup = serial.makespan_ns / prefetched.makespan_ns
    print(
        f"\nSRS on storage: serial {serial.makespan_ns / 1e6:.2f} ms vs "
        f"prefetched {prefetched.makespan_ns / 1e6:.2f} ms "
        f"({speedup:.1f}x from async node prefetch)"
    )
    # Prefetching frontier nodes must hide a meaningful share of latency.
    assert speedup > 1.2
    # Both modes read roughly the same number of node records.
    assert prefetched.io_count < serial.io_count * 2
