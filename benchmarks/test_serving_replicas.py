"""Replication under a fault: hedged routing must rescue the tail.

The acceptance claim: with 4 shards x 2 replicas and one replica
degraded 5x, hedged routing achieves strictly lower p99 than
round-robin at the same offered load — and every replicated deployment
returns answers bit-identical to the single-copy one (replication
changes *when* a query completes, never *what* it answers).
"""

from dataclasses import asdict

from repro.experiments import serving_replicas


def test_serving_replicas(scale, bench_dataset, benchmark, bench_artifact):
    rows = benchmark.pedantic(
        serving_replicas.run,
        args=(scale, bench_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + serving_replicas.format_table(rows))
    bench_artifact["serving_replicas"] = [asdict(row) for row in rows]

    by_policy = {row.policy: row for row in rows if row.faulty}
    single = next(row for row in rows if not row.faulty)
    round_robin = by_policy["round_robin"]
    hedged = by_policy["hedged"]

    # Headline: at the same offered load, hedging a 5x-degraded replica
    # cuts p99 strictly below oblivious round-robin.
    assert hedged.p99_ns < round_robin.p99_ns

    # The slow replica visibly drags round-robin's tail versus a healthy
    # single-copy fleet; hedging is what claws most of it back.
    assert round_robin.p99_ns > 2.0 * single.p99_ns

    # Hedges fired and some won the race (a no-fault fleet ties instead).
    assert hedged.hedges_issued > 0
    assert hedged.hedge_wins > 0

    # Hedging buys the tail with duplicate I/O: bounded, visible overhead.
    assert hedged.ios_per_query > round_robin.ios_per_query
    assert hedged.ios_per_query < 2.0 * round_robin.ios_per_query

    # Replicas are exact copies: answers identical to single-copy, and
    # hence identical accuracy.
    for row in rows:
        assert row.rejected == 0
        assert row.answers_match_single
        assert row.ratio == single.ratio
