"""Figure 11: speedup over SRS for different storage configurations."""

from repro.experiments import fig11_storage_configs


def test_fig11(scale, bench_dataset, benchmark):
    points = benchmark.pedantic(
        fig11_storage_configs.run, args=(scale, bench_dataset), rounds=1, iterations=1
    )
    print("\n" + fig11_storage_configs.format_table(points))
    groups = fig11_storage_configs.group_mean_speedups(points)
    print("group geometric-mean speedups:", {g: round(s, 2) for g, s in groups.items()})

    # The paper's ordering, bottom to top: the single cSSD is the slowest
    # storage configuration; SPDK on eSSDs beats every io_uring config;
    # XLFDD reaches (and may exceed) the in-memory speed.
    assert groups[1] < groups[4], "one cSSD must trail eSSD+SPDK"
    assert groups[2] < groups[4], "io_uring's CPU overhead must cap group 2"
    assert groups[4] <= groups[5] * 1.1, "eSSD+SPDK approaches but trails in-memory"
    assert groups[6] > groups[4], "XLFDD must beat eSSD+SPDK"
    assert groups[6] > groups[5] * 0.9, "XLFDD reaches in-memory-class speed"
    # E2LSHoS beats SRS even on a single consumer SSD (Observation 3).
    assert groups[1] > 1.0
