"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
``DEFAULT_SCALE`` (scaled-down analogs; see DESIGN.md), prints the
reproduction next to the paper's reference numbers, and asserts the
qualitative shape checks.  ``--benchmark-only`` works because each file
also times a representative kernel with pytest-benchmark.

Set REPRO_BENCH_SCALE=small to run the whole suite quickly (CI smoke).

Set REPRO_BENCH_ARTIFACT=<path> to write a JSON perf-trajectory
artifact at session end: serving benchmarks deposit their result rows
into the ``bench_artifact`` fixture, and the scheduled CI job uploads
the file so tail-latency and throughput trends are comparable across
runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.config import DEFAULT_SCALE, SMALL_SCALE, ExperimentScale

#: Session-wide registry behind the ``bench_artifact`` fixture.
_ARTIFACT_ROWS: dict[str, object] = {}


def _selected_scale() -> ExperimentScale:
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "small":
        return SMALL_SCALE
    return DEFAULT_SCALE


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale shared by every benchmark in the session."""
    return _selected_scale()


@pytest.fixture(scope="session")
def bench_dataset(scale: ExperimentScale) -> str:
    """The dataset used by single-dataset figures (SIFT, as in the paper)."""
    return "sift"


@pytest.fixture(scope="session")
def bench_artifact() -> dict[str, object]:
    """Mutable mapping merged into the ``REPRO_BENCH_ARTIFACT`` JSON."""
    return _ARTIFACT_ROWS


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    path = os.environ.get("REPRO_BENCH_ARTIFACT")
    if not path or not _ARTIFACT_ROWS:
        return
    payload = {
        "schema": "repro-serving-bench/1",
        "scale": _selected_scale().name,
        "exit_status": int(exitstatus),
        "results": _ARTIFACT_ROWS,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
