"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
``DEFAULT_SCALE`` (scaled-down analogs; see DESIGN.md), prints the
reproduction next to the paper's reference numbers, and asserts the
qualitative shape checks.  ``--benchmark-only`` works because each file
also times a representative kernel with pytest-benchmark.

Set REPRO_BENCH_SCALE=small to run the whole suite quickly (CI smoke).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import DEFAULT_SCALE, SMALL_SCALE, ExperimentScale


def _selected_scale() -> ExperimentScale:
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "small":
        return SMALL_SCALE
    return DEFAULT_SCALE


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale shared by every benchmark in the session."""
    return _selected_scale()


@pytest.fixture(scope="session")
def bench_dataset(scale: ExperimentScale) -> str:
    """The dataset used by single-dataset figures (SIFT, as in the paper)."""
    return "sift"
