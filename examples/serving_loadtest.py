#!/usr/bin/env python3
"""Load-testing a sharded E2LSHoS query service.

A single async E2LSHoS node saturates its device at a few thousand
queries per second (Eq. 7: the deep I/O queue makes it IOPS-bound).
This example puts the serving subsystem in front of the simulator and
answers the operational questions that follow:

1. Where does one shard saturate, and what does its p99 look like as an
   open-loop arrival rate approaches that point?
2. How much saturation headroom do 4 shards buy under the two
   partitioning families (object-partitioned ``hash`` vs
   table-partitioned ``table``)?
3. When one of 2 replicas per shard degrades 5x, how do the routing
   policies (round-robin, least-outstanding, hedged requests) cope?
4. What does the capacity planner prescribe for a target QPS and p99?

Run:  python examples/serving_loadtest.py
"""

import numpy as np

from repro.analysis.requirements import plan_capacity
from repro.core.params import E2LSHParams
from repro.datasets.registry import load_dataset
from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio
from repro.serving import (
    ClosedLoopWorkload,
    DispatchConfig,
    FaultSpec,
    OpenLoopWorkload,
    QueryService,
    RoutingConfig,
    ShardedIndex,
)
from repro.storage.profiles import DEVICE_PROFILES
from repro.utils.units import NS_PER_MS, format_time

N = 4_000
K = 10
DEVICE = "cssd"


def build_service(
    data: np.ndarray,
    n_shards: int,
    scheme: str,
    replicas: int = 1,
    faults: tuple[FaultSpec, ...] = (),
    routing: str = "round_robin",
) -> QueryService:
    params = E2LSHParams(n=data.shape[0], rho=0.32, gamma=0.5, s_factor=32.0)
    sharded = ShardedIndex.build(
        data,
        params,
        n_shards=n_shards,
        scheme=scheme,
        device=DEVICE,
        seed=1,
        replicas=replicas,
        faults=faults,
    )
    return QueryService(
        sharded,
        dispatch=DispatchConfig(max_batch=8, max_delay_ns=50_000),
        routing=RoutingConfig(policy=routing),
    )


def main() -> None:
    dataset = load_dataset("sift", n=N, n_queries=32, seed=1)
    truth = exact_knn(dataset.data, dataset.queries, k=K)

    # 1. Open-loop latency vs offered load on a single shard.
    single = build_service(dataset.data, n_shards=1, scheme="hash")
    print("single shard, open-loop Poisson arrivals:")
    print(f"{'offered q/s':>12s} {'achieved':>9s} {'p50':>9s} {'p99':>9s} {'rejected':>8s}")
    for qps in (1_000, 2_000, 4_000, 8_000):
        workload = OpenLoopWorkload(qps=qps, n_queries=256, arrivals="poisson", seed=1)
        report = single.run_open_loop(dataset.queries, workload, k=K)
        print(
            f"{qps:>12,} {report.throughput_qps:>9,.0f} "
            f"{format_time(report.p50_ns):>9s} {format_time(report.p99_ns):>9s} "
            f"{report.rejected:>8d}"
        )

    # 2. Closed-loop saturation: 1 shard vs 4 shards, both families.
    print("\nclosed-loop saturation (32 clients):")
    workload = ClosedLoopWorkload(concurrency=32, n_queries=256, seed=1)
    for n_shards, scheme in ((1, "hash"), (4, "hash"), (4, "table")):
        service = build_service(dataset.data, n_shards=n_shards, scheme=scheme)
        report = service.run_closed_loop(dataset.queries, workload, k=K)
        answers = [service.answers[q].distances for q in sorted(service.answers)]
        pool_order = np.array(
            [r.pool_index for r in sorted(service.stats.records, key=lambda r: r.query_id)]
        )
        asked_truth = GroundTruth(
            ids=truth.ids[pool_order], distances=truth.distances[pool_order]
        )
        ratio = overall_ratio(answers, asked_truth, k=K)
        print(
            f"  {n_shards} shard(s) [{scheme:5s}]: {report.throughput_qps:>7,.0f} q/s, "
            f"p99 {format_time(report.p99_ns)}, "
            f"{report.mean_ios_per_query:.1f} IO/query, ratio {ratio:.4f}"
        )

    # 3. One slow replica: routing policy decides how bad the tail gets.
    #    4 shards x 2 replicas, replica 1 of shard 0 degraded 5x, same
    #    open-loop load under every policy.
    print("\n4 shards x 2 replicas, one replica 5x slow, 4,000 q/s offered:")
    fault = FaultSpec(shard=0, replica=1, latency_multiplier=5.0)
    open_wl = OpenLoopWorkload(qps=4_000, n_queries=256, arrivals="poisson", seed=1)
    for routing in ("round_robin", "least_outstanding", "hedged"):
        service = build_service(
            dataset.data, 4, "table", replicas=2, faults=(fault,), routing=routing
        )
        report = service.run_open_loop(dataset.queries, open_wl, k=K)
        hedges = (
            f", hedges {report.hedges_issued} ({report.hedge_wins} wins)"
            if report.hedges_armed
            else ""
        )
        print(
            f"  {routing:17s}: p50 {format_time(report.p50_ns)}, "
            f"p99 {format_time(report.p99_ns)}{hedges}"
        )

    # 4. Capacity plan: 50k q/s at 2 ms p99 on this workload, replicated.
    report = build_service(dataset.data, 4, "table").run_closed_loop(
        dataset.queries, workload, k=K
    )
    plan = plan_capacity(
        n_io_per_query=report.mean_ios_per_query,
        target_qps=50_000,
        target_p99_ns=2.0 * NS_PER_MS,
        device_max_iops=DEVICE_PROFILES[DEVICE].max_iops,
        latency_floor_ns=report.p50_ns,
        replicas=2,
        hedge_fraction=0.05,
    )
    print(f"\ncapacity plan for 50k q/s @ 2 ms p99 with 2 replicas:\n  {plan.describe()}")


if __name__ == "__main__":
    main()
