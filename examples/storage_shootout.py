#!/usr/bin/env python3
"""Storage shootout: one workload, every device/interface combination.

Reproduces the Sec. 6.1 story on a GLOVE-like workload: the same tuned
E2LSHoS index is executed over each Table 5 storage configuration and
each Table 3 interface, next to in-memory E2LSH and the synchronous
memory-mapped baseline of Sec. 6.5.  Watch the ordering emerge:

    mmap-sync  <<  cSSD x1  <  io_uring-capped  <  SPDK  <=  in-memory  <=  XLFDD

Run:  python examples/storage_shootout.py
"""

import numpy as np

from repro.analysis.machine_model import DEFAULT_MACHINE
from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.datasets.registry import load_dataset
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.page_cache import PageCache
from repro.storage.profiles import INTERFACE_PROFILES, make_volume
from repro.utils.units import format_time

CONFIGS = [
    ("cSSD x1 / io_uring", "cssd", 1, "io_uring"),
    ("cSSD x4 / io_uring", "cssd", 4, "io_uring"),
    ("cSSD x4 / SPDK", "cssd", 4, "spdk"),
    ("eSSD x1 / SPDK", "essd", 1, "spdk"),
    ("eSSD x8 / SPDK", "essd", 8, "spdk"),
    ("XLFDD x12 / XLFDD if", "xlfdd", 12, "xlfdd"),
]


def main() -> None:
    dataset = load_dataset("glove", n=10_000, n_queries=20, seed=2)
    params = E2LSHParams(n=dataset.n, rho=0.4, gamma=0.6, s_factor=16)
    ladder = RadiusLadder.for_data(dataset.data, params.c)

    inmem = E2LSHIndex(dataset.data, params, ladder=ladder, seed=2)
    store = MemoryBlockStore()
    index = E2LSHoSIndex.build(
        dataset.data, params, store=store, ladder=ladder, seed=2, bank=inmem.bank
    )
    # Deep query stream so the device queues stay full (Sec. 5.4).
    queries = np.tile(dataset.queries, (8, 1))

    print(f"{dataset}, {params.describe()}\n")
    print(f"{'configuration':24s}  {'mean/query':>12s}  {'q/s':>10s}  {'obs. kIOPS':>10s}")

    # In-memory E2LSH reference (footprint stall included, Sec. 4.5).
    answers = inmem.query_batch(dataset.queries, k=1)
    inmem_ns = float(
        np.mean([DEFAULT_MACHINE.inmemory_e2lsh_ns(a.stats.ops) for a in answers])
    )
    print(f"{'in-memory E2LSH':24s}  {format_time(inmem_ns):>12s}")

    # Synchronous memory-mapped baseline (Sec. 6.5).
    cache = PageCache(
        volume=make_volume("cssd", 4),
        store=store,
        interface=INTERFACE_PROFILES["mmap_sync"],
        capacity_bytes=index.dram_bytes,
    )
    sync_ns = index.run(
        dataset.queries, k=1, mode="mmap_sync", cache=cache
    ).engine.makespan_ns
    per_query = sync_ns / dataset.n_queries
    print(
        f"{'mmap sync (page cache)':24s}  {format_time(per_query):>12s}"
        f"  {'':>10s}  miss rate {cache.stats.miss_rate:.0%}"
    )

    for label, device, count, interface in CONFIGS:
        engine = AsyncIOEngine(
            make_volume(device, count), INTERFACE_PROFILES[interface], store
        )
        result = index.run(queries, engine, k=1)
        print(
            f"{label:24s}  {format_time(result.mean_query_time_ns):>12s}"
            f"  {result.queries_per_second:>10,.0f}"
            f"  {result.engine.observed_iops / 1e3:>10.0f}"
        )


if __name__ == "__main__":
    main()
