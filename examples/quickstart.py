#!/usr/bin/env python3
"""Quickstart: build an E2LSH-on-Storage index and answer queries.

This walks the full pipeline of the paper on a synthetic SIFT-like
dataset:

1. synthesize data and queries,
2. derive the E2LSH parameters (Eq. 5),
3. build the on-storage index (hash tables + 512-byte bucket chains),
4. answer top-k queries through the asynchronous I/O engine over a
   simulated consumer NVMe SSD,
5. score the answers against exact ground truth.

Run:  python examples/quickstart.py
"""

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.datasets.registry import load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio, recall_at_k
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.profiles import make_engine
from repro.utils.units import format_bytes, format_time


def main() -> None:
    # 1. A SIFT-like dataset: 10k byte-valued 128-d descriptors.
    dataset = load_dataset("sift", n=10_000, n_queries=25, seed=1)
    print(f"dataset: {dataset}")

    # 2. E2LSH parameters: approximation ratio c=2, index exponent rho,
    #    accuracy knob gamma (smaller = more accurate and more work).
    params = E2LSHParams(n=dataset.n, rho=0.32, gamma=0.5, s_factor=32)
    print(f"params:  {params.describe()}")

    # 3. Build the byte-accurate on-storage index.
    store = MemoryBlockStore()
    index = E2LSHoSIndex.build(dataset.data, params, store=store, seed=1)
    print(
        f"index:   {format_bytes(index.storage_bytes)} on storage, "
        f"{format_bytes(index.dram_bytes)} resident "
        f"({index.built.ladder.rungs} radii x {params.L} tables)"
    )

    # 4. Query through a single consumer SSD with io_uring.
    engine = make_engine(store, device="cssd", count=1, interface="io_uring")
    result = index.run(dataset.queries, engine, k=10)
    print(
        f"queries: {len(result.answers)} answered, "
        f"mean {format_time(result.mean_query_time_ns)} per query "
        f"({result.queries_per_second:,.0f} q/s, "
        f"{result.engine.io_count / len(result.answers):.1f} I/Os per query, "
        f"device at {result.engine.observed_iops / 1e3:.0f} kIOPS)"
    )

    # 5. Score against exact ground truth.
    truth = exact_knn(dataset.data, dataset.queries, k=10)
    distances = [answer.distances for answer in result.answers]
    ids = [answer.ids for answer in result.answers]
    print(
        f"quality: overall ratio {overall_ratio(distances, truth, k=10):.4f} "
        f"(1.0 = exact), recall@10 {recall_at_k(ids, truth, k=10):.0%}"
    )

    first = result.answers[0]
    print(f"\nfirst query's neighbors: {first.ids.tolist()}")
    print(f"their distances:         {[round(float(d), 1) for d in first.distances]}")


if __name__ == "__main__":
    main()
