#!/usr/bin/env python3
"""The declarative scenario layer and the committed chaos catalog.

A serving run is fully described by one :class:`ScenarioSpec` — data,
deployment, workload shape, and fault timeline — serialized to JSON and
replayed byte-for-byte from a single seed.  This example walks the
loop:

1. Run a catalog entry (``flash-crowd``) and read its SLO verdict.
2. Serialize the spec, reload it, and show the replay is bit-identical.
3. Author a custom scenario from scratch: a diurnal workload with a
   drifting hot set over a hedged 2-replica fleet with a windowed
   stall storm, then size a fleet for its *peak* rate.

Run:  python examples/scenario_catalog.py
"""

import json
from dataclasses import asdict

from repro.analysis.requirements import plan_capacity_for_scenario
from repro.serving import (
    DataConfig,
    FaultTimeline,
    ScenarioSpec,
    ServingConfig,
    WorkloadSpec,
    build_scenario,
    run_scenario,
)
from repro.utils.units import NS_PER_MS


def report_bytes(result):
    return json.dumps(asdict(result.report), sort_keys=True)


def show(result):
    spec = result.spec
    print(f"--- {spec.name} ---")
    if spec.description:
        print(spec.description)
    print(result.report.describe())
    verdict = "met" if result.slo_met else "MISSED"
    print(
        f"SLO: p99 {result.report.p99_ns / NS_PER_MS:.3f} ms vs "
        f"target {spec.target_p99_ms:.3f} ms -> {verdict}\n"
    )


def main() -> None:
    # 1. A committed catalog entry at the quick (CI smoke) scale.
    flash = build_scenario("flash-crowd", quick=True)
    result = run_scenario(flash)
    show(result)

    # 2. Round-trip the spec through JSON and replay it.
    payload = json.dumps(flash.to_dict(), indent=1, sort_keys=True)
    reloaded = ScenarioSpec.from_dict(json.loads(payload))
    replay = run_scenario(reloaded)
    identical = report_bytes(result) == report_bytes(replay)
    print(f"replay from serialized spec bit-identical: {identical}\n")

    # 3. A custom scenario: diurnal load whose hot queries drift through
    #    the pool, over a hedged 2-replica fleet that suffers an
    #    intermittent stall storm in the middle half of the run.
    run_ns = 128 / 4_000.0 * 1e9
    custom = ScenarioSpec(
        name="diurnal-drift-storm",
        description="diurnal + drifting hot set + windowed stall storm",
        data=DataConfig(dataset="sift", n=4_000, pool_queries=16),
        serving=ServingConfig(
            n_shards=2, scheme="table", replicas=2, routing="hedged"
        ),
        workload=WorkloadSpec(
            requests=128,
            qps=4_000.0,
            shape="diurnal",
            period_us=run_ns / 2 / 1e3,
            amplitude=0.6,
            zipf_s=1.1,
            hot_drift_period_us=run_ns / 8 / 1e3,
            hot_drift_stride=3,
        ),
        faults=FaultTimeline.stall_storm(
            shard=0,
            replica=1,
            stall_period_ns=run_ns / 16,
            stall_duration_ns=run_ns / 32,
            start_ns=run_ns / 4,
            stop_ns=3 * run_ns / 4,
        ),
        seed=42,
        target_p99_ms=4.0,
    )
    result = run_scenario(custom)
    show(result)

    # The capacity planner sizes for the diurnal crest, not the mean.
    plan = plan_capacity_for_scenario(custom, result.report)
    print(f"peak rate {custom.workload.peak_qps:,.0f} q/s -> {plan.describe()}")


if __name__ == "__main__":
    main()
