#!/usr/bin/env python3
"""Sublinear scaling: why E2LSHoS wins bigger at bigger n (Figure 14).

Index growing subsets of a BIGANN-like corpus and watch the query-time
curves diverge: SRS (linear-time, tiny index) grows proportionally to
n, E2LSHoS grows like n^rho, so the speedup widens with scale — that is
the paper's case for putting a superlinear-size index on flash instead
of shrinking it to fit DRAM.

Run:  python examples/billion_scale_scaling.py
"""

import numpy as np

from repro.analysis.machine_model import DEFAULT_MACHINE
from repro.baselines.srs import SRSIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.datasets.registry import load_dataset
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume
from repro.utils.units import format_bytes


def main() -> None:
    full = load_dataset("bigann", n=60_000, n_queries=20, seed=5)
    ladder = RadiusLadder.for_data(full.data, 2.0)
    print(f"dataset: {full}\n")
    print(
        f"{'n':>8s}  {'SRS ms':>8s}  {'E2LSHoS ms':>10s}  {'speedup':>8s}  "
        f"{'index on storage':>16s}"
    )

    sizes = [7_500, 15_000, 30_000, 60_000]
    srs_times, os_times = [], []
    for n in sizes:
        data = full.data[:n]
        params = E2LSHParams(n=n, rho=0.34, gamma=0.5, s_factor=32)

        index = E2LSHoSIndex.build(
            data, params, store=MemoryBlockStore(), ladder=ladder, seed=5
        )
        engine = AsyncIOEngine(
            make_volume("xlfdd", 12), INTERFACE_PROFILES["xlfdd"], index.built.store
        )
        result = index.run(np.tile(full.queries, (4, 1)), engine, k=1)
        os_ms = result.mean_query_time_ns / 1e6

        srs = SRSIndex(data, seed=5)
        # SRS's budget scales with n (its guarantee requires T' ~ n).
        answers = srs.query_batch(full.queries, k=1, t_prime=max(1, n // 500))
        srs_ms = float(
            np.mean([DEFAULT_MACHINE.compute_ns(a.stats.ops) for a in answers])
        ) / 1e6

        srs_times.append(srs_ms)
        os_times.append(os_ms)
        print(
            f"{n:>8d}  {srs_ms:>8.3f}  {os_ms:>10.3f}  {srs_ms / os_ms:>7.1f}x  "
            f"{format_bytes(index.storage_bytes):>16s}"
        )

    srs_slope = np.polyfit(np.log(sizes), np.log(srs_times), 1)[0]
    os_slope = np.polyfit(np.log(sizes), np.log(os_times), 1)[0]
    print(
        f"\nfitted log-log exponents: SRS {srs_slope:.2f} (linear-ish), "
        f"E2LSHoS {os_slope:.2f} (sublinear) — the gap keeps widening with n."
    )


if __name__ == "__main__":
    main()
