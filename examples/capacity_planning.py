#!/usr/bin/env python3
"""Capacity planning with the Sec. 4 analysis framework.

Before buying hardware, answer "what storage do I need for E2LSHoS to
hit a target query time on my workload?" — without any storage at all.
The recipe is the paper's: run *in-memory* E2LSH on a sample, count the
I/Os an external-memory execution would have issued, and solve Eqs.
10-11 for the required IOPS and per-request CPU budget.  Then check
which devices/interfaces from Tables 2-3 qualify.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis.cost_model import required_iops, required_request_rate
from repro.analysis.machine_model import DEFAULT_MACHINE
from repro.analysis.requirements import average_n_io
from repro.core.e2lsh import E2LSHIndex
from repro.core.params import E2LSHParams
from repro.datasets.registry import load_dataset
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES
from repro.utils.units import format_iops, format_time


def main() -> None:
    # The workload sample: an MSONG-like audio-feature corpus.
    dataset = load_dataset("msong", n=10_000, n_queries=30, seed=4)
    params = E2LSHParams(n=dataset.n, rho=0.28, gamma=0.5, s_factor=32)
    index = E2LSHIndex(dataset.data, params, seed=4)
    answers = index.query_batch(dataset.queries, k=10)
    stats = [answer.stats for answer in answers]

    compute_ns = float(np.mean([DEFAULT_MACHINE.compute_ns(a.stats.ops) for a in answers]))
    print(f"workload: {dataset}, {params.describe()}")
    print(f"measured compute per query: {format_time(compute_ns)}")

    for block_size in (128, 512, 4096):
        n_io = average_n_io(stats, block_size)
        print(f"I/Os per query at B={block_size}: {n_io:.1f}")

    n_io = average_n_io(stats, 512)
    print()
    print(f"{'target/query':>14s}  {'required IOPS':>15s}  {'req. rate/core':>15s}  qualifying storage")
    for target_ms in (2.0, 0.5, 0.1, 0.05):
        target_ns = target_ms * 1e6
        iops = required_iops(n_io, target_ns)
        rate = required_request_rate(n_io, target_ns, compute_ns)
        devices = [
            name
            for name, profile in DEVICE_PROFILES.items()
            if profile.max_iops >= iops
        ]
        interfaces = [
            name
            for name, profile in INTERFACE_PROFILES.items()
            if not profile.synchronous and profile.max_iops_per_core >= rate
        ]
        rate_text = "impossible" if rate == float("inf") else format_iops(rate)
        qualifier = (
            f"devices: {','.join(devices) or 'none'}; "
            f"interfaces: {','.join(interfaces) or 'none'}"
        )
        print(f"{target_ms:>12.2f}ms  {format_iops(iops):>15s}  {rate_text:>15s}  {qualifier}")

    print(
        "\nreading the table: a few hundred kIOPS (one consumer SSD) buys"
        "\nmillisecond-class queries; MIOPS-class devices with a sub-100ns"
        "\ninterface approach in-memory speed — the paper's Observations 3-4."
    )


if __name__ == "__main__":
    main()
