#!/usr/bin/env python3
"""Index maintenance and persistence: the operational workflow.

The paper's Sec. 7 points out that an on-SSD index must be maintained
carefully — every write consumes device endurance, so incremental
insert/delete is cheap but full rebuilds should be rare.  This example
walks the lifecycle a deployment would use:

1. build an index over a real on-disk file (FileBlockStore),
2. persist the DRAM-side state next to it,
3. reload both in a "new process" and verify queries still work,
4. insert and delete objects incrementally, comparing the bytes written
   against the cost of a rebuild.

Run:  python examples/maintain_and_persist.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.updates import IndexUpdater
from repro.datasets.registry import load_dataset
from repro.io.persistence import load_index, save_index
from repro.storage.blockstore import FileBlockStore
from repro.storage.profiles import make_engine
from repro.utils.units import format_bytes


def main() -> None:
    dataset = load_dataset("mnist", n=6_000, n_queries=10, seed=6)
    params = E2LSHParams(n=dataset.n, rho=0.29, gamma=0.6, s_factor=16)

    with tempfile.TemporaryDirectory() as tmp:
        blocks_path = Path(tmp) / "index.blocks"
        meta_path = Path(tmp) / "index.npz"

        # 1. Build on a real file.
        with FileBlockStore(blocks_path) as store:
            index = E2LSHoSIndex.build(dataset.data, params, store=store, seed=6)
            build_bytes = store.bytes_written
            save_index(index, meta_path)
            print(
                f"built {format_bytes(index.storage_bytes)} index at {blocks_path.name}, "
                f"metadata {format_bytes(meta_path.stat().st_size)}"
            )

        # 2-3. Reload cold and query.
        with FileBlockStore(blocks_path) as store:
            index = load_index(meta_path, store, dataset.data)
            engine = make_engine(store, device="cssd", count=4, interface="io_uring")
            result = index.run(dataset.queries, engine, k=5)
            print(
                f"reloaded index answers {len(result.answers)} queries at "
                f"{result.queries_per_second:,.0f} q/s "
                f"(first answer: {result.answers[0].ids.tolist()})"
            )

            # 4. Incremental maintenance with endurance accounting.
            updater = IndexUpdater(index)
            rng = np.random.default_rng(6)
            before = store.bytes_written
            new_ids = updater.insert_batch(
                dataset.data[:20] + rng.normal(scale=1.0, size=(20, dataset.d)).astype(np.float32)
            )
            for victim in new_ids[:5].tolist():
                updater.delete(int(victim))
            maintenance_bytes = store.bytes_written - before
            print(
                f"25 maintenance ops wrote {format_bytes(maintenance_bytes)} "
                f"({format_bytes(maintenance_bytes / 25)} per op) vs "
                f"{format_bytes(build_bytes)} for a rebuild — "
                f"{build_bytes / (maintenance_bytes / 25):,.0f} ops equal one rebuild"
            )

            # Inserted objects are immediately findable.
            probe = dataset.data[7] + rng.normal(scale=0.5, size=dataset.d).astype(np.float32)
            engine = make_engine(store, device="cssd", count=4, interface="io_uring")
            answer = index.run(probe[None, :], engine, k=3).answers[0]
            live = updater.filter_answer_ids(answer.ids)
            print(f"post-maintenance query returns {live.tolist()}")


if __name__ == "__main__":
    main()
