"""Closed-queue timing model of a random-read storage device.

The paper characterizes each device by its random-read throughput at
queue depth 1 and at queue depth 128 (Table 2).  We reproduce exactly
those two observables with a two-parameter model:

- ``latency_ns``: the service time of one read when the device is idle.
  At queue depth 1 the measured throughput is ``1 / latency``.
- ``max_iops``: the saturated random-read throughput.  Internally the
  device behaves like ``ceil(max_iops * latency)`` parallel flash
  channels, each serving one request at a time, plus a completion
  regulator that spaces departures at least ``1 / max_iops`` apart so the
  saturation point matches the measured figure even when the channel
  count rounds up.

Requests are assigned to the earliest-free channel (FCFS), which yields
the qualitative behaviour the paper relies on: throughput grows with
queue depth until saturation, and latency inflates near saturation
(Sec. 6.5, Figure 15).

An optional bandwidth term adds ``length / bandwidth`` to the service
time and widens the regulator gap for large transfers, modeling why the
paper measures IOPS at 512 bytes "in order not to be bandwidth-limited".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.units import NS_PER_S
from repro.utils.validation import require_positive

__all__ = ["DeviceProfile", "DeviceStats", "StorageDevice"]


@dataclass(frozen=True)
class DeviceProfile:
    """Calibration parameters for one device model (one row of Table 2)."""

    name: str
    latency_ns: float
    max_iops: float
    bandwidth_bytes_per_s: float = 3.0e9
    capacity_bytes: int = 2 * 1024**4

    def __post_init__(self) -> None:
        require_positive(self.latency_ns, "latency_ns")
        require_positive(self.max_iops, "max_iops")
        require_positive(self.bandwidth_bytes_per_s, "bandwidth_bytes_per_s")

    @property
    def qd1_iops(self) -> float:
        """Throughput with a single outstanding request."""
        return NS_PER_S / self.latency_ns

    @property
    def channels(self) -> int:
        """Number of internal parallel service units implied by the profile."""
        return max(1, math.ceil(self.max_iops * self.latency_ns / NS_PER_S))

    def iops_at_queue_depth(self, queue_depth: int) -> float:
        """Analytic steady-state throughput at a fixed queue depth.

        This is the closed-queue approximation
        ``min(queue_depth / latency, max_iops)``; the event-driven
        simulation in :class:`StorageDevice` agrees with it closely and
        the Table 2 benchmark checks both.
        """
        require_positive(queue_depth, "queue_depth")
        return min(queue_depth * NS_PER_S / self.latency_ns, self.max_iops)


@dataclass
class DeviceStats:
    """Completion statistics accumulated by a :class:`StorageDevice`."""

    completed: int = 0
    total_latency_ns: float = 0.0
    first_submit_ns: float = field(default=math.inf)
    last_completion_ns: float = 0.0

    @property
    def mean_latency_ns(self) -> float:
        """Average request latency (submit to completion)."""
        return self.total_latency_ns / self.completed if self.completed else 0.0

    def observed_iops(self) -> float:
        """Throughput over the busy window (completions per second)."""
        window = self.last_completion_ns - self.first_submit_ns
        if self.completed == 0 or window <= 0:
            return 0.0
        return self.completed * NS_PER_S / window

    def utilization(self, profile: DeviceProfile) -> float:
        """Observed throughput as a fraction of the profile's maximum."""
        return self.observed_iops() / profile.max_iops


class StorageDevice:
    """Event-driven instance of a :class:`DeviceProfile`.

    The device is purely a *timing* component: :meth:`submit` takes a
    submission timestamp and returns the completion timestamp.  Byte
    content lives in the block store.
    """

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile
        self._channel_free_ns = [0.0] * profile.channels
        self._last_departure_ns = -math.inf
        self.stats = DeviceStats()

    def reset(self) -> None:
        """Forget all bookings and statistics."""
        self._channel_free_ns = [0.0] * self.profile.channels
        self._last_departure_ns = -math.inf
        self.stats = DeviceStats()

    def _service_time_ns(self, length: int) -> float:
        transfer = length * NS_PER_S / self.profile.bandwidth_bytes_per_s
        return self.profile.latency_ns + transfer

    def _regulator_gap_ns(self, length: int) -> float:
        iops_gap = NS_PER_S / self.profile.max_iops
        bandwidth_gap = length * NS_PER_S / self.profile.bandwidth_bytes_per_s
        return max(iops_gap, bandwidth_gap)

    def _latency_scale(self, start_ns: float) -> float:
        """Service-time multiplier in effect when a read starts at ``start_ns``.

        Fault-injection subclasses (windowed degradation in
        :mod:`repro.serving.replication`) override this; the base device
        is never degraded.
        """
        return 1.0

    def submit(self, submit_ns: float, length: int) -> float:
        """Book a random read of ``length`` bytes; return its completion time."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        # Earliest-free channel (FCFS over a pool of parallel service units).
        channel = min(range(len(self._channel_free_ns)), key=self._channel_free_ns.__getitem__)
        start = max(submit_ns, self._channel_free_ns[channel])
        completion = start + self._service_time_ns(length) * self._latency_scale(start)
        # Departure regulator: completions cannot come faster than max_iops.
        completion = max(completion, self._last_departure_ns + self._regulator_gap_ns(length))
        self._channel_free_ns[channel] = completion
        self._last_departure_ns = completion

        self.stats.completed += 1
        self.stats.total_latency_ns += completion - submit_ns
        self.stats.first_submit_ns = min(self.stats.first_submit_ns, submit_ns)
        self.stats.last_completion_ns = max(self.stats.last_completion_ns, completion)
        return completion

    def __repr__(self) -> str:
        return f"StorageDevice({self.profile.name!r})"
