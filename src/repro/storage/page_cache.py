"""LRU page cache for the synchronous memory-mapped baseline (Sec. 6.5).

The paper compares E2LSHoS against "in-memory E2LSH with memory-mapped
I/O": every DRAM access to the index becomes a 4-KiB page read through
the OS page cache, with the cache capped at a size comparable to the
E2LSHoS memory usage.  Because E2LSH's access pattern is close to
uniform random over a large index, the measured page-cache miss rate is
93% and the synchronous path runs ~20x slower.

:class:`PageCache` models that path: reads are page-granular, hits cost
a small DRAM service time, misses block for a full device read of the
page plus the (kernel-heavy) per-fault CPU overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.blockstore import BlockStore
from repro.storage.interface import StorageInterface
from repro.storage.raid import StripedVolume
from repro.utils.validation import require_positive

__all__ = ["PageCache", "PageCacheStats", "PAGE_SIZE", "HIT_COST_NS"]

PAGE_SIZE = 4096
#: Approximate cost of serving a resident page (DRAM copy + lookup).
HIT_COST_NS = 150.0


@dataclass
class PageCacheStats:
    """Hit/miss counters for one run."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total page accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of page accesses that went to storage."""
        return self.misses / self.accesses if self.accesses else 0.0


class PageCache:
    """Fixed-capacity LRU cache of 4-KiB pages over a device volume."""

    def __init__(
        self,
        volume: StripedVolume,
        store: BlockStore,
        interface: StorageInterface,
        capacity_bytes: int,
    ) -> None:
        require_positive(capacity_bytes, "capacity_bytes")
        if not interface.synchronous:
            raise ValueError("the page-cache path models a synchronous interface")
        self.volume = volume
        self.store = store
        self.interface = interface
        self.capacity_pages = max(1, capacity_bytes // PAGE_SIZE)
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.stats = PageCacheStats()

    def reset(self) -> None:
        """Drop all resident pages and statistics."""
        self._resident.clear()
        self.stats = PageCacheStats()
        self.volume.reset()

    def _touch(self, page: int) -> None:
        self._resident.move_to_end(page)

    def _admit(self, page: int) -> None:
        self._resident[page] = None
        if len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)

    def read(self, now_ns: float, address: int, length: int) -> tuple[bytes, float]:
        """Blocking read; returns ``(data, completion_time_ns)``.

        The caller's clock must be advanced to the returned completion
        time — this path never overlaps I/O with computation, which is
        exactly the deficiency Sec. 6.5 quantifies.
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        first_page = address // PAGE_SIZE
        last_page = (address + length - 1) // PAGE_SIZE
        clock = now_ns
        for page in range(first_page, last_page + 1):
            if page in self._resident:
                self.stats.hits += 1
                self._touch(page)
                clock += HIT_COST_NS
            else:
                self.stats.misses += 1
                # Page fault: kernel overhead, then a blocking 4-KiB read.
                clock += self.interface.cpu_overhead_ns
                clock = self.volume.submit(clock, page * PAGE_SIZE, PAGE_SIZE)
                self._admit(page)
        return self.store.read(address, length), clock
