"""Storage access interface model (the paper's Table 3).

An interface is characterized by the CPU time one core spends to issue
(and complete) a single I/O request.  The reciprocal bounds the IOPS a
single core can drive regardless of how fast the device is — this is the
effect behind Figure 11's "Group 2" where io_uring caps three different
multi-MIOPS device configurations at the same speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import NS_PER_S
from repro.utils.validation import require_positive

__all__ = ["StorageInterface"]


@dataclass(frozen=True)
class StorageInterface:
    """Per-request CPU cost of one storage access interface."""

    name: str
    cpu_overhead_ns: float
    #: True for interfaces that block the CPU until the read completes
    #: (the memory-mapped page-fault path of Sec. 6.5).
    synchronous: bool = False

    def __post_init__(self) -> None:
        require_positive(self.cpu_overhead_ns, "cpu_overhead_ns")

    @property
    def max_iops_per_core(self) -> float:
        """Maximum request rate one core can sustain (Table 3, right column)."""
        return NS_PER_S / self.cpu_overhead_ns
