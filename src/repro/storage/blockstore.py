"""Byte-level stores backing the on-storage index.

The index layout (hash tables, bucket blocks) is encoded to real bytes and
written through this interface.  Two backends are provided:

- :class:`MemoryBlockStore` keeps everything in a ``bytearray``; this is
  what tests and most benchmarks use because it is fast and needs no
  cleanup.
- :class:`FileBlockStore` writes to an actual file so that examples can
  demonstrate a persistent index; reads go through normal file I/O.

Timing is *not* modeled here — the block store answers "what are the
bytes", the device model answers "how long did the read take".
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

__all__ = ["BlockStore", "MemoryBlockStore", "FileBlockStore"]


class BlockStore(ABC):
    """Append-allocated byte store addressed by absolute byte offsets."""

    def __init__(self) -> None:
        self._size = 0
        self._bytes_written = 0
        self._write_count = 0

    @property
    def size_bytes(self) -> int:
        """Total bytes allocated so far."""
        return self._size

    @property
    def bytes_written(self) -> int:
        """Total bytes ever written (the SSD-endurance figure of Sec. 7)."""
        return self._bytes_written

    @property
    def write_count(self) -> int:
        """Number of write calls issued."""
        return self._write_count

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the address of the new region."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        address = self._size
        self._size += nbytes
        self._grow_to(self._size)
        return address

    def _check_span(self, address: int, nbytes: int) -> None:
        if address < 0 or nbytes < 0 or address + nbytes > self._size:
            raise ValueError(
                f"span [{address}, {address + nbytes}) outside allocated "
                f"region of {self._size} bytes"
            )

    def write(self, address: int, data: bytes) -> None:
        """Store ``data`` at ``address`` (must be within allocated space)."""
        self._check_span(address, len(data))
        self._bytes_written += len(data)
        self._write_count += 1
        self._write(address, data)

    def read(self, address: int, nbytes: int) -> bytes:
        """Return ``nbytes`` bytes starting at ``address``."""
        self._check_span(address, nbytes)
        return self._read(address, nbytes)

    @abstractmethod
    def _grow_to(self, size: int) -> None: ...

    @abstractmethod
    def _write(self, address: int, data: bytes) -> None: ...

    @abstractmethod
    def _read(self, address: int, nbytes: int) -> bytes: ...

    def close(self) -> None:
        """Release backing resources (no-op for memory stores)."""


class MemoryBlockStore(BlockStore):
    """Block store backed by an in-process ``bytearray``."""

    def __init__(self) -> None:
        super().__init__()
        self._buffer = bytearray()

    def _grow_to(self, size: int) -> None:
        if size > len(self._buffer):
            self._buffer.extend(b"\x00" * (size - len(self._buffer)))

    def _write(self, address: int, data: bytes) -> None:
        self._buffer[address : address + len(data)] = data

    def _read(self, address: int, nbytes: int) -> bytes:
        return bytes(self._buffer[address : address + nbytes])


class FileBlockStore(BlockStore):
    """Block store backed by a real file on disk.

    Reopening an existing file resumes with its current size, so an
    index persisted in one process can be queried from another (see
    :mod:`repro.io.persistence`).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        super().__init__()
        self._path = os.fspath(path)
        exists = os.path.exists(self._path)
        self._file = open(self._path, "r+b" if exists else "w+b")
        if exists:
            self._size = os.path.getsize(self._path)

    @property
    def path(self) -> str:
        """Path of the backing file."""
        return self._path

    def _grow_to(self, size: int) -> None:
        self._file.truncate(size)

    def _write(self, address: int, data: bytes) -> None:
        self._file.seek(address)
        self._file.write(data)

    def _read(self, address: int, nbytes: int) -> bytes:
        self._file.seek(address)
        data = self._file.read(nbytes)
        if len(data) != nbytes:
            raise IOError(f"short read at {address}: wanted {nbytes}, got {len(data)}")
        return data

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "FileBlockStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
