"""Simulated storage substrate.

The paper evaluates E2LSHoS on real NVMe SSDs and prototype low-latency
flash drives.  This package substitutes that hardware with a
discrete-event model while keeping the *bytes* real:

- :mod:`repro.storage.blockstore` holds the actual encoded index bytes
  (in memory or in a real file),
- :mod:`repro.storage.device` models a flash device's random-read timing
  (calibrated against the paper's Table 2),
- :mod:`repro.storage.interface` models the per-I/O CPU overhead of
  io_uring / SPDK / the XLFDD interface (Table 3),
- :mod:`repro.storage.raid` stripes timing across multiple devices
  (Table 5 configurations),
- :mod:`repro.storage.engine` is the asynchronous I/O engine that runs
  cooperative query tasks over simulated CPU workers and devices,
- :mod:`repro.storage.page_cache` provides the synchronous
  memory-mapped-I/O baseline of Sec. 6.5.
"""

from repro.storage.blockstore import BlockStore, FileBlockStore, MemoryBlockStore
from repro.storage.device import DeviceProfile, StorageDevice
from repro.storage.engine import AsyncIOEngine, Compute, EngineResult, Read, ReadBatch
from repro.storage.interface import StorageInterface
from repro.storage.page_cache import PageCache
from repro.storage.profiles import (
    DEVICE_PROFILES,
    INTERFACE_PROFILES,
    STORAGE_CONFIGS,
    StorageConfig,
    make_volume,
)
from repro.storage.raid import StripedVolume

__all__ = [
    "BlockStore",
    "MemoryBlockStore",
    "FileBlockStore",
    "DeviceProfile",
    "StorageDevice",
    "StorageInterface",
    "StripedVolume",
    "AsyncIOEngine",
    "EngineResult",
    "Read",
    "ReadBatch",
    "Compute",
    "PageCache",
    "DEVICE_PROFILES",
    "INTERFACE_PROFILES",
    "STORAGE_CONFIGS",
    "StorageConfig",
    "make_volume",
]
