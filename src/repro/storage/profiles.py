"""Calibrated device, interface, and configuration catalogs.

The numbers below are taken directly from the paper:

- Table 2 (random read performance at queue depths 1 and 128),
- Table 3 (CPU time per I/O of each access interface),
- Table 5 (device counts used in the evaluation).

``DEVICE_PROFILES`` encodes each Table 2 row as a queue-depth-1 latency
(the reciprocal of the QD-1 throughput) plus the saturated IOPS measured
at queue depth 128.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.blockstore import BlockStore
from repro.storage.device import DeviceProfile
from repro.storage.engine import AsyncIOEngine
from repro.storage.interface import StorageInterface
from repro.storage.raid import StripedVolume
from repro.utils.units import GIB, NS_PER_S, TIB

__all__ = [
    "DEVICE_PROFILES",
    "INTERFACE_PROFILES",
    "STORAGE_CONFIGS",
    "StorageConfig",
    "make_volume",
    "make_engine",
]

# --------------------------------------------------------------------------
# Table 2: storage devices and their random read performance.
# QD-1 kIOPS determines the latency; QD-128 kIOPS is the saturation point.
# --------------------------------------------------------------------------
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    "cssd": DeviceProfile(
        name="cssd",  # KIOXIA XG5 (consumer NVMe): 7.2 kIOPS @QD1, 273 @QD128
        latency_ns=NS_PER_S / 7_200,
        max_iops=273_000,
        capacity_bytes=2 * TIB,
    ),
    "essd": DeviceProfile(
        name="essd",  # KIOXIA FL6 (enterprise, XL-FLASH): 27.6 kIOPS @QD1, 1400 @QD128
        latency_ns=NS_PER_S / 27_600,
        max_iops=1_400_000,
        capacity_bytes=800 * GIB,
    ),
    "xlfdd": DeviceProfile(
        name="xlfdd",  # XL-FLASH demo drive: 132.3 kIOPS @QD1, 3860 @QD128
        latency_ns=NS_PER_S / 132_300,
        max_iops=3_860_000,
        capacity_bytes=520 * GIB,
    ),
    "hdd": DeviceProfile(
        name="hdd",  # Seagate IronWolf 7200rpm (reference only): 0.21 / 0.54 kIOPS
        latency_ns=NS_PER_S / 210,
        max_iops=540,
        bandwidth_bytes_per_s=250e6,
        capacity_bytes=10 * TIB,
    ),
}

# --------------------------------------------------------------------------
# Table 3: storage interfaces and their per-I/O CPU overhead.
# "mmap_sync" models the memory-mapped synchronous path of Sec. 6.5: each
# page fault costs kernel time and blocks the CPU until the page arrives.
# --------------------------------------------------------------------------
INTERFACE_PROFILES: dict[str, StorageInterface] = {
    "io_uring": StorageInterface(name="io_uring", cpu_overhead_ns=1_000.0),
    "spdk": StorageInterface(name="spdk", cpu_overhead_ns=350.0),
    "xlfdd": StorageInterface(name="xlfdd", cpu_overhead_ns=50.0),
    "mmap_sync": StorageInterface(name="mmap_sync", cpu_overhead_ns=2_500.0, synchronous=True),
}


@dataclass(frozen=True)
class StorageConfig:
    """One storage configuration row of Table 5."""

    name: str
    device: str
    count: int

    @property
    def profile(self) -> DeviceProfile:
        """Profile of the member device."""
        return DEVICE_PROFILES[self.device]

    @property
    def total_capacity_bytes(self) -> int:
        """Aggregate capacity of the configuration."""
        return self.profile.capacity_bytes * self.count

    @property
    def total_max_iops(self) -> float:
        """Aggregate saturated random-read throughput."""
        return self.profile.max_iops * self.count


# Table 5: storage device configurations used in the evaluation.
STORAGE_CONFIGS: dict[str, StorageConfig] = {
    "cssd_x1": StorageConfig(name="cssd_x1", device="cssd", count=1),
    "cssd_x4": StorageConfig(name="cssd_x4", device="cssd", count=4),
    "essd_x1": StorageConfig(name="essd_x1", device="essd", count=1),
    "essd_x8": StorageConfig(name="essd_x8", device="essd", count=8),
    "xlfdd_x12": StorageConfig(name="xlfdd_x12", device="xlfdd", count=12),
}


def make_volume(device: str, count: int = 1, stripe_unit: int = 512) -> StripedVolume:
    """Build a striped volume of ``count`` devices of the named profile."""
    if device not in DEVICE_PROFILES:
        raise KeyError(f"unknown device {device!r}; known: {sorted(DEVICE_PROFILES)}")
    return StripedVolume.of(DEVICE_PROFILES[device], count, stripe_unit)


def make_engine(
    store: BlockStore,
    device: str = "cssd",
    count: int = 1,
    interface: str = "io_uring",
) -> AsyncIOEngine:
    """Convenience constructor for an engine over a fresh volume."""
    if interface not in INTERFACE_PROFILES:
        raise KeyError(f"unknown interface {interface!r}; known: {sorted(INTERFACE_PROFILES)}")
    return AsyncIOEngine(make_volume(device, count), INTERFACE_PROFILES[interface], store)
