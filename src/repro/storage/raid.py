"""Striping across multiple devices (the paper's Table 5 configurations).

The paper scales random-read IOPS by attaching several identical drives
(cSSD x 4, eSSD x 8, XLFDD x 12) and spreading the index across them.
:class:`StripedVolume` routes each request's *timing* to a device chosen
by the block index of its address; the byte content itself lives in a
single :class:`~repro.storage.blockstore.BlockStore` because the bytes do
not depend on which drive holds them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.storage.device import DeviceProfile, DeviceStats, StorageDevice
from repro.utils.validation import require_positive

__all__ = ["StripedVolume"]


class StripedVolume:
    """A set of devices striped at a fixed unit (default: one 512-B block)."""

    def __init__(self, devices: Sequence[StorageDevice], stripe_unit: int = 512) -> None:
        if not devices:
            raise ValueError("a volume needs at least one device")
        require_positive(stripe_unit, "stripe_unit")
        self.devices = list(devices)
        self.stripe_unit = stripe_unit

    @classmethod
    def of(cls, profile: DeviceProfile, count: int, stripe_unit: int = 512) -> "StripedVolume":
        """Build a volume of ``count`` identical devices."""
        require_positive(count, "count")
        return cls([StorageDevice(profile) for _ in range(count)], stripe_unit)

    @property
    def device_count(self) -> int:
        """Number of member devices."""
        return len(self.devices)

    @property
    def max_iops(self) -> float:
        """Aggregate saturated random-read throughput (Table 5, right column)."""
        return sum(device.profile.max_iops for device in self.devices)

    @property
    def capacity_bytes(self) -> int:
        """Aggregate capacity."""
        return sum(device.profile.capacity_bytes for device in self.devices)

    def reset(self) -> None:
        """Reset all member devices' bookings and statistics."""
        for device in self.devices:
            device.reset()

    def device_for(self, address: int) -> StorageDevice:
        """Device holding the stripe that ``address`` falls in."""
        return self.devices[(address // self.stripe_unit) % len(self.devices)]

    def submit(self, submit_ns: float, address: int, length: int) -> float:
        """Book a read and return its completion time.

        Reads are expected to stay within one stripe unit (the index layout
        only issues single-block reads); longer reads are charged to the
        device owning the first stripe, which slightly favors the volume
        but never changes who wins an experiment.
        """
        return self.device_for(address).submit(submit_ns, length)

    def combined_stats(self) -> DeviceStats:
        """Merge member device statistics into one record."""
        merged = DeviceStats()
        for device in self.devices:
            stats = device.stats
            merged.completed += stats.completed
            merged.total_latency_ns += stats.total_latency_ns
            merged.first_submit_ns = min(merged.first_submit_ns, stats.first_submit_ns)
            merged.last_completion_ns = max(merged.last_completion_ns, stats.last_completion_ns)
        return merged

    def __repr__(self) -> str:
        names = {device.profile.name for device in self.devices}
        return f"StripedVolume({len(self.devices)} x {'/'.join(sorted(names))})"
