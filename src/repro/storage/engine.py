"""Discrete-event asynchronous I/O engine.

This module turns the paper's Figure 1 into an executable model.  Query
processing is written as cooperative *tasks* — Python generators that
yield actions:

- ``Compute(duration_ns)``: spend CPU time (hash values, distances),
- ``Read(address, length)``: asynchronously read bytes; the task is
  resumed with the data once the device completes,
- ``ReadBatch([...])``: issue several reads back-to-back (the paper
  issues requests for all L buckets of a query before switching to
  another query, Sec. 5.4); the task resumes with the list of results
  when the *last* read completes,
- ``Write(address, length)`` / ``WriteBatch([...])``: book device time
  for maintenance writes (delta-table merges rewriting bucket chains).
  Writes go through the same device volume as reads — compaction
  competes with queries for the same IOPS — but are counted separately
  (``write_count`` / ``write_bytes``), giving the query-vs-ingest I/O
  split and the SSD-endurance write volume of the paper's Sec. 7.

The engine multiplexes many tasks over one or more simulated CPU
workers.  While one task waits for the device, the worker runs another
ready task, so computation and I/O overlap exactly as in Figure 1(B) and
the asynchronous cost model of Eq. 7 — ``max(T_compute + N_io *
T_request, N_io * T_read)`` — *emerges* from the simulation instead of
being assumed.  Running with a synchronous interface reproduces
Figure 1(A) / Eq. 6: the worker blocks on every read.

Simulated time is nanoseconds.  Bytes are served from the block store;
timing is served by the (possibly striped) device volume.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Generator, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.storage.blockstore import BlockStore
from repro.storage.device import DeviceStats
from repro.storage.interface import StorageInterface
from repro.storage.raid import StripedVolume
from repro.utils.units import NS_PER_S

__all__ = [
    "Read",
    "ReadBatch",
    "Write",
    "WriteBatch",
    "Compute",
    "Completion",
    "EngineResult",
    "EngineSession",
    "AsyncIOEngine",
    "Task",
    "TaskProfile",
]

#: A query task: a generator yielding actions and finally returning a result.
Task = Generator["Read | ReadBatch | Write | WriteBatch | Compute", Any, Any]


@dataclass(frozen=True, slots=True)
class Read:
    """Asynchronous read of ``length`` bytes at byte ``address``."""

    address: int
    length: int


@dataclass(frozen=True, slots=True)
class ReadBatch:
    """Several reads issued back-to-back; resumes when all complete."""

    requests: tuple[tuple[int, int], ...]

    def __init__(self, requests: Iterable[tuple[int, int]]) -> None:
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True, slots=True)
class Write:
    """Book device time for a ``length``-byte write at byte ``address``.

    Only timing and accounting: the block-store mutation itself is the
    caller's business (merge jobs mutate the store eagerly and use
    Write actions to charge the device for it).  The task resumes with
    ``None``.
    """

    address: int
    length: int


@dataclass(frozen=True, slots=True)
class WriteBatch:
    """Several writes issued back-to-back; resumes when all complete."""

    requests: tuple[tuple[int, int], ...]

    def __init__(self, requests: Iterable[tuple[int, int]]) -> None:
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True, slots=True)
class Compute:
    """Spend ``duration_ns`` of CPU time."""

    duration_ns: float


@dataclass
class EngineResult:
    """Aggregate outcome of one :meth:`AsyncIOEngine.run` call."""

    #: Simulated time when the last task finished.
    makespan_ns: float
    #: Return value of each task, in submission order.
    results: list[Any]
    #: Simulated finish time of each task, in submission order.
    finish_times_ns: list[float]
    #: Number of I/O requests issued.
    io_count: int
    #: CPU time spent in Compute actions (the paper's "Computation").
    compute_ns: float
    #: CPU time spent issuing I/O requests (the paper's "I/O Cost").
    io_cpu_ns: float
    #: CPU time spent blocked waiting for reads (synchronous mode only).
    stall_ns: float
    #: Merged per-device completion statistics.
    device_stats: DeviceStats = field(default_factory=DeviceStats)
    #: Number of CPU workers used.
    workers: int = 1
    #: Maintenance write requests issued (``io_count`` counts reads).
    write_count: int = 0
    #: Maintenance bytes written through Write/WriteBatch actions.
    write_bytes: int = 0

    @property
    def mean_task_time_ns(self) -> float:
        """Throughput-based average time per task (makespan / #tasks)."""
        return self.makespan_ns / len(self.results) if self.results else 0.0

    @property
    def tasks_per_second(self) -> float:
        """Task completion rate (the paper's "queries per second")."""
        if self.makespan_ns <= 0:
            return 0.0
        return len(self.results) * NS_PER_S / self.makespan_ns

    @property
    def observed_iops(self) -> float:
        """Device-side observed random-read throughput."""
        return self.device_stats.observed_iops()


@dataclass
class TaskProfile:
    """Per-task time attribution (only filled when the session profiles).

    ``io_wait_ns`` is the time the task itself spent off-CPU waiting for
    reads — the park-to-resume gap in asynchronous mode (which includes
    any wait for its worker to come free again) and the blocking stall
    in synchronous mode.  ``compute_ns`` is the task's own Compute time
    (hashing, distances); ``io_cpu_ns`` the CPU cost of issuing its
    requests.  ``start_ns`` is the first time the task ran, so
    ``finish - start == compute + io_cpu + io_wait`` exactly.
    """

    start_ns: float = math.nan
    compute_ns: float = 0.0
    io_cpu_ns: float = 0.0
    io_wait_ns: float = 0.0
    io_count: int = 0
    #: Internal: simulated time of the current park (None while running).
    parked_ns: float | None = None


@dataclass(frozen=True, slots=True)
class Completion:
    """One finished task, as reported by :meth:`EngineSession.step`."""

    #: Submission index within the session.
    index: int
    #: Caller-supplied routing key (e.g. a query id for scatter-gather).
    tag: Any
    #: The task's return value.
    result: Any
    #: Simulated time the task finished.
    finish_ns: float
    #: Per-task attribution when the session was opened with
    #: ``profile_tasks=True``; ``None`` otherwise.
    profile: TaskProfile | None = None


@dataclass(slots=True)
class _TaskState:
    index: int
    generator: Task
    worker: int
    tag: Any = None
    send_value: Any = None


@dataclass(slots=True)
class _Wave:
    """A micro-batch of tasks sharing one ready time and one heap entry.

    :meth:`EngineSession.submit_batch` keys the ready heap once per wave
    instead of once per task; :meth:`EngineSession.step` consumes the
    members in submission order before popping the entry.  Because every
    member shares the wave's (ready time, sequence number), the pop
    order is exactly what per-task submission would have produced — the
    wave changes bookkeeping cost, never schedule order.
    """

    states: list[_TaskState]
    cursor: int = 0


class EngineSession:
    """Incremental task execution over one engine.

    A session holds the ready queue, worker availability, and counters of
    one engine run, but lets the caller *submit tasks while the run is in
    progress*: a query service feeds arrivals into the engine at their
    simulated arrival times instead of all at time zero, and steps the
    simulation one task resumption at a time so completions can trigger
    new arrivals (closed-loop load).  :meth:`AsyncIOEngine.run` is the
    batch special case — submit everything at t=0, then :meth:`drain`.
    """

    def __init__(
        self, engine: "AsyncIOEngine", workers: int = 1, profile_tasks: bool = False
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.workers = workers
        engine.volume.reset()
        self._ready: list[tuple[float, int, _TaskState | _Wave]] = []
        self._seq = 0
        self._worker_free = [0.0] * workers
        self._results: list[Any] = []
        self._finish_times: list[float] = []
        self.io_count = 0
        self.write_count = 0
        self.write_bytes = 0
        self.compute_ns = 0.0
        self.io_cpu_ns = 0.0
        self.stall_ns = 0.0
        #: Per-task attribution, keyed by submission index.  ``None``
        #: (the default) keeps the hot path free of bookkeeping; the
        #: tracer-enabled service turns it on.
        self._profiles: dict[int, TaskProfile] | None = {} if profile_tasks else None

    # -- submission -----------------------------------------------------------

    def submit(self, task: Task, ready_ns: float = 0.0, tag: Any = None) -> int:
        """Enqueue ``task`` to start no earlier than ``ready_ns``.

        Returns the task's submission index (its slot in the session's
        result order).  Workers are assigned round-robin by submission
        index, matching the batch :meth:`AsyncIOEngine.run` semantics.
        """
        if ready_ns < 0:
            raise ValueError(f"ready_ns must be non-negative, got {ready_ns}")
        index = len(self._results)
        state = _TaskState(index=index, generator=task, worker=index % self.workers, tag=tag)
        self._results.append(None)
        self._finish_times.append(0.0)
        if self._profiles is not None:
            self._profiles[index] = TaskProfile()
        heapq.heappush(self._ready, (ready_ns, self._seq, state))
        self._seq += 1
        return index

    def submit_batch(
        self,
        tasks: Sequence[Task],
        ready_ns: float = 0.0,
        tags: Sequence[Any] | None = None,
    ) -> list[int]:
        """Enqueue a wave of tasks sharing one ready time.

        Equivalent to calling :meth:`submit` once per task in order, but
        the whole wave costs one heap entry and the per-task result
        slots are extended in bulk — the fast path the dispatcher's
        micro-batch flush uses.  Returns the submission indices.
        """
        if ready_ns < 0:
            raise ValueError(f"ready_ns must be non-negative, got {ready_ns}")
        tasks = list(tasks)
        if tags is None:
            tags = [None] * len(tasks)
        elif len(tags) != len(tasks):
            raise ValueError(f"{len(tasks)} tasks need {len(tasks)} tags, got {len(tags)}")
        if not tasks:
            return []
        base = len(self._results)
        workers = self.workers
        states = [
            _TaskState(
                index=base + offset,
                generator=task,
                worker=(base + offset) % workers,
                tag=tag,
            )
            for offset, (task, tag) in enumerate(zip(tasks, tags))
        ]
        self._results.extend([None] * len(tasks))
        self._finish_times.extend([0.0] * len(tasks))
        if self._profiles is not None:
            for state in states:
                self._profiles[state.index] = TaskProfile()
        heapq.heappush(self._ready, (ready_ns, self._seq, _Wave(states)))
        self._seq += 1
        return [state.index for state in states]

    # -- stepping -------------------------------------------------------------

    @property
    def has_work(self) -> bool:
        """True while any submitted task has not run to completion."""
        return bool(self._ready)

    @property
    def next_ready_ns(self) -> float:
        """Earliest time a queued task may resume (``inf`` when idle)."""
        return self._ready[0][0] if self._ready else math.inf

    def step(self) -> Completion | None:
        """Resume the earliest-ready task until it blocks or finishes.

        Returns a :class:`Completion` when the task ran to completion,
        ``None`` when it parked on an asynchronous read.
        """
        if not self._ready:
            return None
        engine = self.engine
        ready_ns, _, item = self._ready[0]
        if type(item) is _Wave:
            # Take the next member in submission order; the wave entry
            # keeps its original (ready, seq) key while partially
            # consumed, so it sorts exactly where the remaining members'
            # individual entries would have.
            state = item.states[item.cursor]
            item.cursor += 1
            if item.cursor == len(item.states):
                heapq.heappop(self._ready)
        else:
            heapq.heappop(self._ready)
            state = item
        now = max(ready_ns, self._worker_free[state.worker])
        profile = None if self._profiles is None else self._profiles[state.index]
        if profile is not None:
            if math.isnan(profile.start_ns):
                profile.start_ns = now
            elif profile.parked_ns is not None:
                profile.io_wait_ns += now - profile.parked_ns
                profile.parked_ns = None
        while True:
            try:
                action = state.generator.send(state.send_value)
            except StopIteration as stop:
                self._results[state.index] = stop.value
                self._finish_times[state.index] = now
                self._worker_free[state.worker] = now
                if profile is not None:
                    del self._profiles[state.index]
                return Completion(
                    index=state.index,
                    tag=state.tag,
                    result=stop.value,
                    finish_ns=now,
                    profile=profile,
                )
            state.send_value = None

            if isinstance(action, Compute):
                self.compute_ns += action.duration_ns
                now += action.duration_ns
                if profile is not None:
                    profile.compute_ns += action.duration_ns
                continue

            is_write = False
            if isinstance(action, Read):
                requests: tuple[tuple[int, int], ...] = ((action.address, action.length),)
            elif isinstance(action, ReadBatch):
                requests = action.requests
                if not requests:
                    state.send_value = []
                    continue
            elif isinstance(action, Write):
                is_write = True
                requests = ((action.address, action.length),)
            elif isinstance(action, WriteBatch):
                is_write = True
                requests = action.requests
                if not requests:
                    state.send_value = None
                    continue
            else:
                raise TypeError(f"task yielded unsupported action {action!r}")

            # Issue each request: CPU overhead, then device booking.
            # Writes book the same device time as reads (compaction and
            # queries compete for one IOPS budget) but are tallied on
            # their own counters and carry no store payload back.
            completions = []
            for address, length in requests:
                now += engine.interface.cpu_overhead_ns
                self.io_cpu_ns += engine.interface.cpu_overhead_ns
                completions.append(engine.volume.submit(now, address, length))
                if is_write:
                    self.write_count += 1
                    self.write_bytes += length
                else:
                    self.io_count += 1
            if is_write:
                payload: Any = None
            else:
                data = [engine.store.read(address, length) for address, length in requests]
                payload = data[0] if isinstance(action, Read) else data
            done_ns = max(completions)
            if profile is not None:
                overhead = engine.interface.cpu_overhead_ns * len(requests)
                profile.io_cpu_ns += overhead
                profile.io_count += len(requests)

            if engine.interface.synchronous:
                # Figure 1(A): the CPU blocks until the data arrives.
                self.stall_ns += max(0.0, done_ns - now)
                if profile is not None:
                    profile.io_wait_ns += max(0.0, done_ns - now)
                now = max(now, done_ns)
                state.send_value = payload
                continue

            # Figure 1(B): park this task, free the worker for others.
            self._worker_free[state.worker] = now
            state.send_value = payload
            if profile is not None:
                profile.parked_ns = now
            heapq.heappush(self._ready, (done_ns, self._seq, state))
            self._seq += 1
            return None

    def run_until(self, until_ns: float) -> list[Completion]:
        """Step every task that may resume at or before ``until_ns``."""
        done: list[Completion] = []
        while self._ready and self._ready[0][0] <= until_ns:
            completion = self.step()
            if completion is not None:
                done.append(completion)
        return done

    def drain(self) -> list[Completion]:
        """Run every remaining task to completion."""
        return self.run_until(math.inf)

    # -- results --------------------------------------------------------------

    def result(self) -> EngineResult:
        """Aggregate statistics over everything the session has run."""
        makespan = max(self._finish_times) if self._finish_times else 0.0
        return EngineResult(
            makespan_ns=makespan,
            results=list(self._results),
            finish_times_ns=list(self._finish_times),
            io_count=self.io_count,
            compute_ns=self.compute_ns,
            io_cpu_ns=self.io_cpu_ns,
            stall_ns=self.stall_ns,
            device_stats=self.engine.volume.combined_stats(),
            workers=self.workers,
            write_count=self.write_count,
            write_bytes=self.write_bytes,
        )


class AsyncIOEngine:
    """Runs cooperative tasks over simulated CPU workers and a device volume."""

    def __init__(
        self,
        volume: StripedVolume,
        interface: StorageInterface,
        store: BlockStore,
    ) -> None:
        self.volume = volume
        self.interface = interface
        self.store = store

    def session(self, workers: int = 1, profile_tasks: bool = False) -> EngineSession:
        """Open an incremental execution session (resets the volume)."""
        return EngineSession(self, workers=workers, profile_tasks=profile_tasks)

    def run(self, tasks: Sequence[Task], workers: int = 1) -> EngineResult:
        """Execute ``tasks`` to completion and return aggregate statistics.

        Tasks are assigned to workers round-robin (queries are
        independent, as in the paper's multithreaded evaluation,
        Sec. 6.5 / Figure 16).  Device bookings are shared across
        workers, so storage saturation limits all of them collectively.
        """
        session = self.session(workers=workers)
        for task in tasks:
            session.submit(task)
        session.drain()
        return session.result()
