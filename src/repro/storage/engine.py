"""Discrete-event asynchronous I/O engine.

This module turns the paper's Figure 1 into an executable model.  Query
processing is written as cooperative *tasks* — Python generators that
yield actions:

- ``Compute(duration_ns)``: spend CPU time (hash values, distances),
- ``Read(address, length)``: asynchronously read bytes; the task is
  resumed with the data once the device completes,
- ``ReadBatch([...])``: issue several reads back-to-back (the paper
  issues requests for all L buckets of a query before switching to
  another query, Sec. 5.4); the task resumes with the list of results
  when the *last* read completes.

The engine multiplexes many tasks over one or more simulated CPU
workers.  While one task waits for the device, the worker runs another
ready task, so computation and I/O overlap exactly as in Figure 1(B) and
the asynchronous cost model of Eq. 7 — ``max(T_compute + N_io *
T_request, N_io * T_read)`` — *emerges* from the simulation instead of
being assumed.  Running with a synchronous interface reproduces
Figure 1(A) / Eq. 6: the worker blocks on every read.

Simulated time is nanoseconds.  Bytes are served from the block store;
timing is served by the (possibly striped) device volume.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.storage.blockstore import BlockStore
from repro.storage.device import DeviceStats
from repro.storage.interface import StorageInterface
from repro.storage.raid import StripedVolume
from repro.utils.units import NS_PER_S

__all__ = ["Read", "ReadBatch", "Compute", "EngineResult", "AsyncIOEngine", "Task"]

#: A query task: a generator yielding actions and finally returning a result.
Task = Generator["Read | ReadBatch | Compute", Any, Any]


@dataclass(frozen=True)
class Read:
    """Asynchronous read of ``length`` bytes at byte ``address``."""

    address: int
    length: int


@dataclass(frozen=True)
class ReadBatch:
    """Several reads issued back-to-back; resumes when all complete."""

    requests: tuple[tuple[int, int], ...]

    def __init__(self, requests: Iterable[tuple[int, int]]) -> None:
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class Compute:
    """Spend ``duration_ns`` of CPU time."""

    duration_ns: float


@dataclass
class EngineResult:
    """Aggregate outcome of one :meth:`AsyncIOEngine.run` call."""

    #: Simulated time when the last task finished.
    makespan_ns: float
    #: Return value of each task, in submission order.
    results: list[Any]
    #: Simulated finish time of each task, in submission order.
    finish_times_ns: list[float]
    #: Number of I/O requests issued.
    io_count: int
    #: CPU time spent in Compute actions (the paper's "Computation").
    compute_ns: float
    #: CPU time spent issuing I/O requests (the paper's "I/O Cost").
    io_cpu_ns: float
    #: CPU time spent blocked waiting for reads (synchronous mode only).
    stall_ns: float
    #: Merged per-device completion statistics.
    device_stats: DeviceStats = field(default_factory=DeviceStats)
    #: Number of CPU workers used.
    workers: int = 1

    @property
    def mean_task_time_ns(self) -> float:
        """Throughput-based average time per task (makespan / #tasks)."""
        return self.makespan_ns / len(self.results) if self.results else 0.0

    @property
    def tasks_per_second(self) -> float:
        """Task completion rate (the paper's "queries per second")."""
        if self.makespan_ns <= 0:
            return 0.0
        return len(self.results) * NS_PER_S / self.makespan_ns

    @property
    def observed_iops(self) -> float:
        """Device-side observed random-read throughput."""
        return self.device_stats.observed_iops()


@dataclass
class _TaskState:
    index: int
    generator: Task
    worker: int
    send_value: Any = None


class AsyncIOEngine:
    """Runs cooperative tasks over simulated CPU workers and a device volume."""

    def __init__(
        self,
        volume: StripedVolume,
        interface: StorageInterface,
        store: BlockStore,
    ) -> None:
        self.volume = volume
        self.interface = interface
        self.store = store

    def run(self, tasks: Sequence[Task], workers: int = 1) -> EngineResult:
        """Execute ``tasks`` to completion and return aggregate statistics.

        Tasks are assigned to workers round-robin (queries are
        independent, as in the paper's multithreaded evaluation,
        Sec. 6.5 / Figure 16).  Device bookings are shared across
        workers, so storage saturation limits all of them collectively.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.volume.reset()

        states = [
            _TaskState(index=i, generator=task, worker=i % workers)
            for i, task in enumerate(tasks)
        ]
        results: list[Any] = [None] * len(states)
        finish_times: list[float] = [0.0] * len(states)
        worker_free = [0.0] * workers
        io_count = 0
        compute_ns = 0.0
        io_cpu_ns = 0.0
        stall_ns = 0.0

        # Ready queue ordered by the time a task may resume; the sequence
        # number breaks ties deterministically (FCFS).
        ready: list[tuple[float, int, _TaskState]] = []
        seq = 0
        for state in states:
            heapq.heappush(ready, (0.0, seq, state))
            seq += 1

        while ready:
            ready_ns, _, state = heapq.heappop(ready)
            now = max(ready_ns, worker_free[state.worker])
            blocked = False
            while not blocked:
                try:
                    action = state.generator.send(state.send_value)
                except StopIteration as stop:
                    results[state.index] = stop.value
                    finish_times[state.index] = now
                    break
                state.send_value = None

                if isinstance(action, Compute):
                    compute_ns += action.duration_ns
                    now += action.duration_ns
                    continue

                if isinstance(action, Read):
                    requests: tuple[tuple[int, int], ...] = ((action.address, action.length),)
                elif isinstance(action, ReadBatch):
                    requests = action.requests
                    if not requests:
                        state.send_value = []
                        continue
                else:
                    raise TypeError(f"task yielded unsupported action {action!r}")

                # Issue each request: CPU overhead, then device booking.
                completions = []
                for address, length in requests:
                    now += self.interface.cpu_overhead_ns
                    io_cpu_ns += self.interface.cpu_overhead_ns
                    completions.append(self.volume.submit(now, address, length))
                    io_count += 1
                data = [self.store.read(address, length) for address, length in requests]
                payload: Any = data[0] if isinstance(action, Read) else data
                done_ns = max(completions)

                if self.interface.synchronous:
                    # Figure 1(A): the CPU blocks until the data arrives.
                    stall_ns += max(0.0, done_ns - now)
                    now = max(now, done_ns)
                    state.send_value = payload
                    continue

                # Figure 1(B): park this task, free the worker for others.
                worker_free[state.worker] = now
                state.send_value = payload
                heapq.heappush(ready, (done_ns, seq, state))
                seq += 1
                blocked = True

            if not blocked:
                worker_free[state.worker] = now

        makespan = max(finish_times) if finish_times else 0.0
        return EngineResult(
            makespan_ns=makespan,
            results=results,
            finish_times_ns=finish_times,
            io_count=io_count,
            compute_ns=compute_ns,
            io_cpu_ns=io_cpu_ns,
            stall_ns=stall_ns,
            device_stats=self.volume.combined_stats(),
            workers=workers,
        )
