"""Table 4: average number of hash bucket reads per query.

Per dataset: the number of compound hashes L, the ladder length r, the
average searched radii r-bar, and the conservative I/O count N_io,inf
(one hash-table read + one bucket read per non-empty bucket probed),
all measured by running the tuned in-memory E2LSH — exactly the paper's
methodology (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import DATASET_SPECS
from repro.experiments.common import dataset_for, mean_stats, params_for, tuned_e2lsh
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["Table4Row", "run", "format_table"]


@dataclass(frozen=True)
class Table4Row:
    """Table 4 columns for one dataset (with the paper's reference)."""

    dataset: str
    L: int
    total_radii: int
    avg_radii: float
    n_io_inf: float
    paper_l: int
    paper_total_radii: int
    paper_avg_radii: float
    paper_n_io_inf: float


def run(scale: ExperimentScale = DEFAULT_SCALE) -> list[Table4Row]:
    """Measure the Table 4 columns for every dataset."""
    rows = []
    for name in scale.datasets:
        spec = DATASET_SPECS[name]
        dataset = dataset_for(name, scale)
        sweep = tuned_e2lsh(name, scale, k=1)
        selected = sweep.tuned.selected
        avg = mean_stats(selected.stats)
        rows.append(
            Table4Row(
                dataset=name,
                L=params_for(name, dataset.n).L,
                total_radii=sweep.ladder.rungs,
                avg_radii=avg.rungs_searched,
                n_io_inf=avg.n_io_infinite_block,
                paper_l=spec.paper_l,
                paper_total_radii=spec.paper_total_radii,
                paper_avg_radii=spec.paper_avg_radii,
                paper_n_io_inf=spec.paper_n_io_inf,
            )
        )
    return rows


def format_table(rows: list[Table4Row]) -> str:
    """Render the reproduction next to the paper's Table 4."""
    return render_table(
        ["dataset", "L (paper)", "r (paper)", "r-bar (paper)", "N_io,inf (paper)"],
        [
            (
                r.dataset,
                f"{r.L} ({r.paper_l})",
                f"{r.total_radii} ({r.paper_total_radii})",
                f"{r.avg_radii:.2f} ({r.paper_avg_radii})",
                f"{r.n_io_inf:.1f} ({r.paper_n_io_inf})",
            )
            for r in rows
        ],
        title="Table 4: bucket reads per query (paper reference in parentheses)",
    )
