"""Figure 3: I/Os per query vs accuracy for varying read block size.

Computed from the in-memory E2LSH gamma sweep exactly as in Sec. 4.3:
every swept accuracy level contributes its average I/O count under block
sizes B in {128, 512, 4096, inf}.  Expected shape: more I/Os at higher
accuracy (smaller ratio) and at smaller block sizes; B = 512 close to
B = inf.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.requirements import average_n_io
from repro.experiments.common import tuned_e2lsh
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["Fig3Row", "BLOCK_SIZES", "run", "format_table"]

#: Block sizes swept by the paper (None = unbounded, "B = inf").
BLOCK_SIZES: tuple[int | None, ...] = (128, 512, 4096, None)


@dataclass(frozen=True)
class Fig3Row:
    """Average I/O count at one (accuracy, block size) point."""

    overall_ratio: float
    block_size: int | None
    n_io: float


def run(scale: ExperimentScale = DEFAULT_SCALE, dataset: str = "sift") -> list[Fig3Row]:
    """Sweep accuracy (via gamma) and block size for one dataset."""
    sweep = tuned_e2lsh(dataset, scale, k=1)
    rows = []
    for method_run in sweep.tuned.runs:
        for block_size in BLOCK_SIZES:
            rows.append(
                Fig3Row(
                    overall_ratio=method_run.overall_ratio,
                    block_size=block_size,
                    n_io=average_n_io(method_run.stats, block_size),
                )
            )
    return rows


def format_table(rows: list[Fig3Row]) -> str:
    """Render the I/O count grid."""
    return render_table(
        ["overall ratio", "block size", "avg I/Os per query"],
        [
            (f"{r.overall_ratio:.4f}", "inf" if r.block_size is None else r.block_size, f"{r.n_io:.1f}")
            for r in rows
        ],
        title="Figure 3: I/Os per query vs accuracy and block size",
    )
