"""Streaming ingest under query load: what sustained updates cost the tail.

Not a paper figure — this drives the ingest layer of the serving
subsystem (ROADMAP: serve inserts/deletes as a second traffic class,
PLSH-style).  The question it answers: with delta tables absorbing a
sustained insert/delete stream and background merges rewriting them
into the block store, what does ingest at a fixed fraction of the query
rate cost in query p99 — and are the answers over merged data still
exactly what a from-scratch rebuild would return?

The measurement mirrors ``experiments/serving_replicas``: a closed-loop
probe sizes the open-loop offered rate at half the fleet's saturation
throughput, then the *same* deployment serves the same query stream
twice — once with no ingest (the control) and once with an
insert/delete stream at ``INGEST_FRACTION`` of the offered query rate.
The headline figure is ``p99_penalty``: ingest-run p99 over control
p99.  ``PENALTY_BOUND`` is the documented, CI-pinned ceiling on that
factor; ``benchmarks/test_serving_ingest.py`` asserts it and
``benchmarks/compare_bench.py`` fails the nightly diff if the measured
penalty ever worsens past its tolerance.

Correctness rides along as a separate, smaller check: an insert-only
ingest run is compacted offline (``IngestCoordinator.compact_now``) and
its post-merge answers are compared bit-for-bit against an index built
from scratch over the grown dataset.  The rebuild pins the serving
fleet's radius ladder and derived m/L/S so both sides ask the same
questions; the check runs with a generous scan budget (``s_factor``)
because the per-rung budget truncates candidates in block-chain order,
which an incrementally-grown chain legitimately permutes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio
from repro.experiments.config import ExperimentScale
from repro.serving import (
    DataConfig,
    ScenarioIndex,
    ScenarioResult,
    ScenarioSpec,
    ServingConfig,
    ShardedIndex,
    WorkloadSpec,
    run_scenario,
    workload_updates,
)
from repro.utils.units import format_time

__all__ = [
    "IngestRow",
    "probe_spec",
    "measure_spec",
    "identity_spec",
    "rebuild_matches",
    "run",
    "format_table",
    "K",
    "N_SHARDS",
    "REPLICAS",
    "SCHEME",
    "PROBE_CONCURRENCY",
    "PROBE_REQUESTS",
    "REQUESTS",
    "LOAD_FRACTION",
    "INGEST_FRACTION",
    "DELETE_FRACTION",
    "PENALTY_BOUND",
    "IDENTITY_N",
    "IDENTITY_POOL",
    "IDENTITY_QUERIES",
    "IDENTITY_INSERTS",
    "IDENTITY_S_FACTOR",
]

K = 10
N_SHARDS = 4
REPLICAS = 2
SCHEME = "table"
#: Closed-loop probe sizing the open-loop offered rate.
PROBE_CONCURRENCY = 32
PROBE_REQUESTS = 128
#: Open-loop measurement run.
REQUESTS = 256
#: Offered query rate as a fraction of measured saturation throughput.
LOAD_FRACTION = 0.5
#: Ingest rate as a fraction of the offered query rate (the acceptance
#: floor is 20%; we measure at 25%).
INGEST_FRACTION = 0.25
#: Fraction of ingest updates that are deletes.
DELETE_FRACTION = 0.25
#: The pinned bound: sustained ingest at INGEST_FRACTION of the query
#: rate may cost at most this factor in query p99 versus the no-ingest
#: control at the same offered load.
PENALTY_BOUND = 3.0

#: Rebuild-identity check sizing (a boolean property, so it runs at a
#: small fixed size regardless of the benchmark scale).
IDENTITY_N = 600
IDENTITY_POOL = 8
IDENTITY_QUERIES = 16
IDENTITY_INSERTS = 48
#: Generous scan budget so the per-rung candidate truncation never
#: binds (chain order differs between grown and fresh indexes).
IDENTITY_S_FACTOR = 512.0


@dataclass(frozen=True)
class IngestRow:
    """Open-loop measurements of one traffic mix on the shared fleet."""

    label: str
    policy: str
    offered_qps: float
    ingest_qps: float
    qps: float
    p50_ns: float
    p99_ns: float
    #: Query p99 of this run over the no-ingest control's (1.0 for the
    #: control row itself) — the figure ``PENALTY_BOUND`` caps.
    p99_penalty: float
    ratio: float
    updates_completed: int
    updates_rejected: int
    inserts_applied: int
    deletes_applied: int
    merges_completed: int
    merge_write_ios: int
    merge_write_bytes: int
    #: Post-compaction answers bit-identical to a from-scratch rebuild
    #: over the grown dataset (trivially true for the no-ingest row).
    answers_match_rebuild: bool
    #: Simulator self-profile: loop events processed and their wall-clock
    #: rate — the perf trajectory ``benchmarks/compare_bench.py`` tracks.
    loop_events: int = 0
    wall_events_per_sec: float = 0.0


def _data(scale: ExperimentScale, dataset_name: str) -> DataConfig:
    return DataConfig(dataset=dataset_name, n=scale.n, pool_queries=scale.n_queries)


def _serving() -> ServingConfig:
    """The one deployment every run shares: the fleet plus delta knobs.

    The merge threshold is sized so the measurement run completes
    several full merge cycles per shard — the p99 penalty must include
    merge I/O competing with queries, not just DRAM delta scans.
    """
    return ServingConfig(
        n_shards=N_SHARDS,
        scheme=SCHEME,
        replicas=REPLICAS,
        routing="least_outstanding",
        delta_capacity=32,
        merge_threshold=8,
        ingest_queue_capacity=128,
        merge_io_batch=16,
    )


def probe_spec(scale: ExperimentScale, dataset_name: str) -> ScenarioSpec:
    """Closed-loop saturation probe of the measurement deployment."""
    return ScenarioSpec(
        name="probe",
        data=_data(scale, dataset_name),
        serving=_serving(),
        workload=WorkloadSpec(
            mode="closed", requests=PROBE_REQUESTS, concurrency=PROBE_CONCURRENCY
        ),
        seed=scale.seed,
        k=K,
    )


def measure_spec(
    scale: ExperimentScale,
    dataset_name: str,
    offered_qps: float,
    ingest_qps: float = 0.0,
) -> ScenarioSpec:
    """The open-loop measurement scenario for one traffic mix.

    ``ingest_qps == 0`` is the no-ingest control.  The ingest run keeps
    the update stream alive for the whole query run: at
    ``INGEST_FRACTION`` of the offered rate, ``REQUESTS / 4`` updates
    span the same simulated window as ``REQUESTS`` queries.
    """
    ingest = ingest_qps > 0
    return ScenarioSpec(
        name="steady-ingest" if ingest else "no-ingest",
        data=_data(scale, dataset_name),
        serving=_serving(),
        workload=WorkloadSpec(
            requests=REQUESTS,
            qps=offered_qps,
            ingest_requests=round(REQUESTS * INGEST_FRACTION) if ingest else 0,
            ingest_qps=ingest_qps if ingest else 0.0,
            delete_fraction=DELETE_FRACTION if ingest else 0.0,
        ),
        seed=scale.seed,
        k=K,
    )


def identity_spec() -> ScenarioSpec:
    """An insert-only ingest run for the rebuild-identity check."""
    return ScenarioSpec(
        name="ingest-rebuild-identity",
        data=DataConfig(
            n=IDENTITY_N, pool_queries=IDENTITY_POOL, s_factor=IDENTITY_S_FACTOR
        ),
        serving=_serving(),
        workload=WorkloadSpec(
            requests=IDENTITY_QUERIES,
            qps=4_000.0,
            ingest_requests=IDENTITY_INSERTS,
            ingest_qps=2_000.0,
            delete_fraction=0.0,
        ),
        seed=7,
        k=K,
    )


def rebuild_matches(spec: ScenarioSpec | None = None) -> bool:
    """Are post-merge answers identical to a from-scratch rebuild's?

    Runs an insert-only ingest scenario, compacts every residual delta
    offline, and queries the mutated fleet batch-style; then builds a
    fresh index over the grown dataset — pinning the serving fleet's
    radius ladder and derived m/L/S so both deployments hash and scan
    identically — and compares ids and distances bit-for-bit.
    """
    if spec is None:
        spec = identity_spec()
    result = run_scenario(spec)
    coordinator = result.service.ingest
    assert coordinator is not None
    coordinator.compact_now()
    sharded = result.index.sharded
    pool = result.index.dataset.queries
    served = sharded.run(pool, k=spec.k).answers

    data = result.index.dataset.data
    updates = workload_updates(spec.workload, data, spec.seed)
    inserted = [u.vector for u in updates if u.vector is not None]
    grown = np.vstack([data, np.stack(inserted)]) if inserted else data
    params = result.index.params
    rebuilt = ShardedIndex.build(
        grown,
        replace(
            params,
            n=grown.shape[0],
            m_explicit=params.m,
            L_explicit=params.L,
            S_explicit=params.S,
        ),
        n_shards=spec.serving.n_shards,
        scheme=spec.serving.scheme,
        device=spec.serving.device,
        devices_per_shard=spec.serving.devices_per_shard,
        interface=spec.serving.interface,
        seed=spec.seed,
        ladder=sharded.shards[0].index.built.ladder,
    )
    fresh = rebuilt.run(pool, k=spec.k).answers
    return all(
        np.array_equal(s.ids, f.ids) and np.array_equal(s.distances, f.distances)
        for s, f in zip(served, fresh)
    )


def _measure(
    spec: ScenarioSpec,
    index: ScenarioIndex,
    truth: GroundTruth,
    label: str,
) -> tuple[IngestRow, ScenarioResult]:
    result = run_scenario(spec, index=index)
    report = result.report
    records = sorted(result.records, key=lambda r: r.query_id)
    answers = [result.answers[r.query_id].distances for r in records]
    asked = np.array([r.pool_index for r in records])
    ratio = overall_ratio(
        answers,
        GroundTruth(ids=truth.ids[asked], distances=truth.distances[asked]),
        k=spec.k,
    )
    row = IngestRow(
        label=label,
        policy=spec.serving.routing,
        offered_qps=spec.workload.qps,
        ingest_qps=spec.workload.ingest_qps,
        qps=report.throughput_qps,
        p50_ns=report.p50_ns,
        p99_ns=report.p99_ns,
        p99_penalty=1.0,  # filled in by the caller
        ratio=ratio,
        updates_completed=report.updates_completed,
        updates_rejected=report.updates_rejected,
        inserts_applied=report.inserts_applied,
        deletes_applied=report.deletes_applied,
        merges_completed=report.merges_completed,
        merge_write_ios=report.merge_write_ios,
        merge_write_bytes=report.merge_write_bytes,
        answers_match_rebuild=False,  # filled in by the caller
        loop_events=result.loop_profile.events_total,
        wall_events_per_sec=result.loop_profile.events_per_sec,
    )
    return row, result


def run(scale: ExperimentScale, dataset_name: str) -> list[IngestRow]:
    """Measure what sustained ingest costs the query tail at fixed load.

    The control runs first on the probe's built index; the ingest run
    then reuses the same index (its merges mutate the stores, which is
    fine — nothing reads the fleet after the ingest measurement, and
    the rebuild-identity check runs on its own small deployment).
    """
    probe = run_scenario(probe_spec(scale, dataset_name))
    offered_qps = LOAD_FRACTION * probe.report.throughput_qps
    ingest_qps = INGEST_FRACTION * offered_qps
    truth = exact_knn(probe.index.dataset.data, probe.index.dataset.queries, k=K)

    baseline_row, _ = _measure(
        measure_spec(scale, dataset_name, offered_qps),
        probe.index,
        truth,
        "no-ingest",
    )
    ingest_row, _ = _measure(
        measure_spec(scale, dataset_name, offered_qps, ingest_qps=ingest_qps),
        probe.index,
        truth,
        "steady-ingest",
    )
    identical = rebuild_matches()
    penalty = (
        ingest_row.p99_ns / baseline_row.p99_ns if baseline_row.p99_ns > 0 else 1.0
    )
    return [
        replace(baseline_row, answers_match_rebuild=True),
        replace(ingest_row, p99_penalty=penalty, answers_match_rebuild=identical),
    ]


def format_table(rows: list[IngestRow]) -> str:
    """Render the comparison the way the paper's tables read."""
    lines = [
        f"{'traffic mix':>16s} {'offered':>8s} {'ingest':>7s} {'q/s':>8s} "
        f"{'p50':>10s} {'p99':>10s} {'pen':>5s} {'upd':>9s} {'merges':>6s} "
        f"{'wMiB':>6s} {'ratio':>6s} {'ident':>5s}"
    ]
    for row in rows:
        updates = (
            f"{row.updates_completed}/{row.updates_rejected}r"
            if row.ingest_qps > 0
            else "-"
        )
        lines.append(
            f"{row.label:>16s} {row.offered_qps:>8,.0f} {row.ingest_qps:>7,.0f} "
            f"{row.qps:>8,.0f} {format_time(row.p50_ns):>10s} "
            f"{format_time(row.p99_ns):>10s} {row.p99_penalty:>5.2f} "
            f"{updates:>9s} {row.merges_completed:>6d} "
            f"{row.merge_write_bytes / 2**20:>6.2f} {row.ratio:>6.3f} "
            f"{'yes' if row.answers_match_rebuild else 'NO':>5s}"
        )
    return "\n".join(lines)
