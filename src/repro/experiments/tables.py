"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned monospace table (what the benchmarks print)."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
