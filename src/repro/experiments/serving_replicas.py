"""Replicated serving under a fault: routing policy vs tail latency.

Not a paper figure — this drives the replication layer of the serving
subsystem (ROADMAP: trade IOPS for tail latency, survive a slow
replica).  The scenario is the classic tail-at-scale one: 4 shards x 2
replicas with one replica degraded 5x, offered the *same* open-loop
load under each routing policy:

- ``round_robin`` keeps feeding the slow replica its full share, so
  half of that shard's sub-queries — and hence a large fraction of
  scatter-gather queries — wait on it: the tail collapses.
- ``least_outstanding`` organically avoids the backed-up replica.
- ``hedged`` routes round-robin but re-issues any sub-query still
  unanswered after a delay anchored at the observed sub-query p50; the
  duplicate lands on the healthy replica and usually wins the race.

The offered rate is calibrated to half the measured single-copy
saturation throughput, so the healthy fleet is comfortably provisioned
and the damage is attributable to routing, not raw capacity.  Because
replicas are exact copies, every policy must return answers
bit-identical to the single-copy deployment — replication and hedging
may change *when* a query completes, never *what* it answers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.params import E2LSHParams
from repro.datasets.registry import DATASET_SPECS, load_dataset
from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio
from repro.experiments.config import ExperimentScale
from repro.serving import (
    ClosedLoopWorkload,
    FaultSpec,
    OpenLoopWorkload,
    QueryService,
    RoutingConfig,
    ShardedIndex,
)
from repro.utils.units import format_time

__all__ = ["ReplicaRow", "run", "format_table", "POLICIES"]

K = 10
N_SHARDS = 4
REPLICAS = 2
SCHEME = "table"
FAULT_MULTIPLIER = 5.0
#: Closed-loop probe sizing the open-loop offered rate.
PROBE_CONCURRENCY = 32
PROBE_REQUESTS = 128
#: Open-loop measurement run.
REQUESTS = 256
#: Offered rate as a fraction of single-copy saturation throughput.
LOAD_FRACTION = 0.5
POLICIES: tuple[str, ...] = ("round_robin", "least_outstanding", "hedged")


@dataclass(frozen=True)
class ReplicaRow:
    """Open-loop tail-latency measurements of one routing policy."""

    label: str
    policy: str
    replicas: int
    faulty: bool
    offered_qps: float
    qps: float
    p50_ns: float
    p99_ns: float
    ios_per_query: float
    rejected: int
    hedges_issued: int
    hedge_wins: int
    hedge_losses: int
    ratio: float
    #: Answers bit-identical to the single-copy deployment's.
    answers_match_single: bool
    #: Simulator self-profile: loop events processed and their wall-clock
    #: rate — the perf trajectory ``benchmarks/compare_bench.py`` tracks.
    loop_events: int = 0
    wall_events_per_sec: float = 0.0


def _collect_answers(service: QueryService) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    return {
        query_id: (answer.ids, answer.distances)
        for query_id, answer in service.answers.items()
    }


def _answers_equal(
    a: dict[int, tuple[np.ndarray, np.ndarray]],
    b: dict[int, tuple[np.ndarray, np.ndarray]],
) -> bool:
    if a.keys() != b.keys():
        return False
    return all(
        np.array_equal(a[q][0], b[q][0]) and np.array_equal(a[q][1], b[q][1])
        for q in a
    )


def run(scale: ExperimentScale, dataset_name: str) -> list[ReplicaRow]:
    """Measure each routing policy's tail under a 1-slow-replica fault."""
    dataset = load_dataset(
        dataset_name, n=scale.n, n_queries=scale.n_queries, seed=scale.seed
    )
    spec = DATASET_SPECS[dataset_name]
    params = E2LSHParams(n=dataset.n, rho=spec.rho, gamma=0.5, s_factor=32.0)
    truth = exact_knn(dataset.data, dataset.queries, k=K)

    single = ShardedIndex.build(
        dataset.data, params, n_shards=N_SHARDS, scheme=SCHEME, seed=scale.seed
    )
    probe = QueryService(single).run_closed_loop(
        dataset.queries,
        ClosedLoopWorkload(
            concurrency=PROBE_CONCURRENCY, n_queries=PROBE_REQUESTS, seed=scale.seed
        ),
        k=K,
    )
    offered_qps = LOAD_FRACTION * probe.throughput_qps
    workload = OpenLoopWorkload(qps=offered_qps, n_queries=REQUESTS, seed=scale.seed)

    fault = FaultSpec(shard=0, replica=1, latency_multiplier=FAULT_MULTIPLIER)
    replicated = ShardedIndex.build(
        dataset.data,
        params,
        n_shards=N_SHARDS,
        scheme=SCHEME,
        seed=scale.seed,
        replicas=REPLICAS,
        faults=(fault,),
    )

    def measure(
        sharded: ShardedIndex, label: str, policy: str, faulty: bool
    ) -> tuple[ReplicaRow, dict[int, tuple[np.ndarray, np.ndarray]]]:
        service = QueryService(sharded, routing=RoutingConfig(policy=policy))
        report = service.run_open_loop(dataset.queries, workload, k=K)
        records = sorted(service.stats.records, key=lambda r: r.query_id)
        answers = [service.answers[r.query_id].distances for r in records]
        asked = np.array([r.pool_index for r in records])
        ratio = overall_ratio(
            answers,
            GroundTruth(ids=truth.ids[asked], distances=truth.distances[asked]),
            k=K,
        )
        row = ReplicaRow(
            label=label,
            policy=policy,
            replicas=sharded.n_replicas,
            faulty=faulty,
            offered_qps=offered_qps,
            qps=report.throughput_qps,
            p50_ns=report.p50_ns,
            p99_ns=report.p99_ns,
            ios_per_query=report.mean_ios_per_query,
            rejected=report.rejected,
            hedges_issued=report.hedges_issued,
            hedge_wins=report.hedge_wins,
            hedge_losses=report.hedge_losses,
            ratio=ratio,
            answers_match_single=False,  # filled in below
            loop_events=service.loop_profile.events_total,
            wall_events_per_sec=service.loop_profile.events_per_sec,
        )
        return row, _collect_answers(service)

    rows: list[ReplicaRow] = []
    baseline_row, baseline_answers = measure(single, "1-copy", "round_robin", False)
    rows.append(replace(baseline_row, answers_match_single=True))
    for policy in POLICIES:
        row, answers = measure(replicated, f"2-copy {policy}", policy, True)
        rows.append(
            replace(
                row, answers_match_single=_answers_equal(answers, baseline_answers)
            )
        )
    return rows


def format_table(rows: list[ReplicaRow]) -> str:
    """Render the comparison the way the paper's tables read."""
    lines = [
        f"{'deployment':>24s} {'offered':>8s} {'q/s':>8s} {'p50':>10s} {'p99':>10s} "
        f"{'IO/q':>7s} {'hedges':>12s} {'ratio':>6s} {'ident':>5s}"
    ]
    for row in rows:
        hedges = (
            f"{row.hedges_issued}/{row.hedge_wins}w"
            if row.policy == "hedged" and row.replicas > 1
            else "-"
        )
        lines.append(
            f"{row.label:>24s} {row.offered_qps:>8,.0f} {row.qps:>8,.0f} "
            f"{format_time(row.p50_ns):>10s} {format_time(row.p99_ns):>10s} "
            f"{row.ios_per_query:>7.1f} {hedges:>12s} {row.ratio:>6.3f} "
            f"{'yes' if row.answers_match_single else 'NO':>5s}"
        )
    return "\n".join(lines)
