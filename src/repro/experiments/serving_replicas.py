"""Replicated serving under a fault: routing policy vs tail latency.

Not a paper figure — this drives the replication layer of the serving
subsystem (ROADMAP: trade IOPS for tail latency, survive a slow
replica).  The scenario is the classic tail-at-scale one: 4 shards x 2
replicas with one replica degraded 5x, offered the *same* open-loop
load under each routing policy:

- ``round_robin`` keeps feeding the slow replica its full share, so
  half of that shard's sub-queries — and hence a large fraction of
  scatter-gather queries — wait on it: the tail collapses.
- ``least_outstanding`` organically avoids the backed-up replica.
- ``hedged`` routes round-robin but re-issues any sub-query still
  unanswered after a delay anchored at the observed sub-query p50; the
  duplicate lands on the healthy replica and usually wins the race.

The offered rate is calibrated to half the measured single-copy
saturation throughput, so the healthy fleet is comfortably provisioned
and the damage is attributable to routing, not raw capacity.  Because
replicas are exact copies, every policy must return answers
bit-identical to the single-copy deployment — replication and hedging
may change *when* a query completes, never *what* it answers.

Every measured deployment is a :class:`ScenarioSpec`; the built index is
shared across the policy sweep via ``run_scenario(spec, index=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio
from repro.experiments.config import ExperimentScale
from repro.serving import (
    DataConfig,
    FaultSpec,
    FaultTimeline,
    ScenarioIndex,
    ScenarioResult,
    ScenarioSpec,
    ServingConfig,
    WorkloadSpec,
    build_scenario_index,
    run_scenario,
)
from repro.utils.units import format_time

__all__ = [
    "ReplicaRow",
    "probe_spec",
    "policy_spec",
    "run",
    "format_table",
    "POLICIES",
    "K",
    "N_SHARDS",
    "REPLICAS",
    "SCHEME",
    "FAULT_MULTIPLIER",
    "PROBE_CONCURRENCY",
    "PROBE_REQUESTS",
    "REQUESTS",
    "LOAD_FRACTION",
]

K = 10
N_SHARDS = 4
REPLICAS = 2
SCHEME = "table"
FAULT_MULTIPLIER = 5.0
#: Closed-loop probe sizing the open-loop offered rate.
PROBE_CONCURRENCY = 32
PROBE_REQUESTS = 128
#: Open-loop measurement run.
REQUESTS = 256
#: Offered rate as a fraction of single-copy saturation throughput.
LOAD_FRACTION = 0.5
POLICIES: tuple[str, ...] = ("round_robin", "least_outstanding", "hedged")


@dataclass(frozen=True)
class ReplicaRow:
    """Open-loop tail-latency measurements of one routing policy."""

    label: str
    policy: str
    replicas: int
    faulty: bool
    offered_qps: float
    qps: float
    p50_ns: float
    p99_ns: float
    ios_per_query: float
    rejected: int
    hedges_issued: int
    hedge_wins: int
    hedge_losses: int
    ratio: float
    #: Answers bit-identical to the single-copy deployment's.
    answers_match_single: bool
    #: Simulator self-profile: loop events processed and their wall-clock
    #: rate — the perf trajectory ``benchmarks/compare_bench.py`` tracks.
    loop_events: int = 0
    wall_events_per_sec: float = 0.0


def _data(scale: ExperimentScale, dataset_name: str) -> DataConfig:
    return DataConfig(dataset=dataset_name, n=scale.n, pool_queries=scale.n_queries)


def probe_spec(scale: ExperimentScale, dataset_name: str) -> ScenarioSpec:
    """Closed-loop saturation probe of the healthy single-copy fleet."""
    return ScenarioSpec(
        name="probe",
        data=_data(scale, dataset_name),
        serving=ServingConfig(n_shards=N_SHARDS, scheme=SCHEME),
        workload=WorkloadSpec(
            mode="closed", requests=PROBE_REQUESTS, concurrency=PROBE_CONCURRENCY
        ),
        seed=scale.seed,
        k=K,
    )


def policy_spec(
    scale: ExperimentScale,
    dataset_name: str,
    policy: str,
    offered_qps: float,
    faulty: bool = True,
) -> ScenarioSpec:
    """The open-loop measurement scenario for one routing policy."""
    faults = (
        FaultTimeline(
            events=(
                FaultSpec(shard=0, replica=1, latency_multiplier=FAULT_MULTIPLIER),
            )
        )
        if faulty
        else FaultTimeline()
    )
    return ScenarioSpec(
        name=f"{'2-copy' if faulty else '1-copy'} {policy}",
        data=_data(scale, dataset_name),
        serving=ServingConfig(
            n_shards=N_SHARDS,
            scheme=SCHEME,
            replicas=REPLICAS if faulty else 1,
            routing=policy,
        ),
        workload=WorkloadSpec(requests=REQUESTS, qps=offered_qps),
        faults=faults,
        seed=scale.seed,
        k=K,
    )


def _collect_answers(result: ScenarioResult) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    return {
        query_id: (answer.ids, answer.distances)
        for query_id, answer in result.answers.items()
    }


def _answers_equal(
    a: dict[int, tuple[np.ndarray, np.ndarray]],
    b: dict[int, tuple[np.ndarray, np.ndarray]],
) -> bool:
    if a.keys() != b.keys():
        return False
    return all(
        np.array_equal(a[q][0], b[q][0]) and np.array_equal(a[q][1], b[q][1])
        for q in a
    )


def _measure(
    spec: ScenarioSpec, index: ScenarioIndex, truth: GroundTruth, label: str
) -> tuple[ReplicaRow, dict[int, tuple[np.ndarray, np.ndarray]]]:
    result = run_scenario(spec, index=index)
    report = result.report
    records = sorted(result.records, key=lambda r: r.query_id)
    answers = [result.answers[r.query_id].distances for r in records]
    asked = np.array([r.pool_index for r in records])
    ratio = overall_ratio(
        answers,
        GroundTruth(ids=truth.ids[asked], distances=truth.distances[asked]),
        k=spec.k,
    )
    row = ReplicaRow(
        label=label,
        policy=spec.serving.routing,
        replicas=index.sharded.n_replicas,
        faulty=bool(spec.faults),
        offered_qps=spec.workload.qps,
        qps=report.throughput_qps,
        p50_ns=report.p50_ns,
        p99_ns=report.p99_ns,
        ios_per_query=report.mean_ios_per_query,
        rejected=report.rejected,
        hedges_issued=report.hedges_issued,
        hedge_wins=report.hedge_wins,
        hedge_losses=report.hedge_losses,
        ratio=ratio,
        answers_match_single=False,  # filled in by the caller
        loop_events=result.loop_profile.events_total,
        wall_events_per_sec=result.loop_profile.events_per_sec,
    )
    return row, _collect_answers(result)


def run(scale: ExperimentScale, dataset_name: str) -> list[ReplicaRow]:
    """Measure each routing policy's tail under a 1-slow-replica fault."""
    probe = run_scenario(probe_spec(scale, dataset_name))
    offered_qps = LOAD_FRACTION * probe.report.throughput_qps
    truth = exact_knn(
        probe.index.dataset.data, probe.index.dataset.queries, k=K
    )

    # The probe's deployment IS the single-copy measurement deployment,
    # so its built index is reused; the replicated index is built once
    # and shared across the policy sweep.
    single_spec = policy_spec(
        scale, dataset_name, "round_robin", offered_qps, faulty=False
    )
    replicated_index: ScenarioIndex | None = None

    rows: list[ReplicaRow] = []
    baseline_row, baseline_answers = _measure(
        single_spec, probe.index, truth, "1-copy"
    )
    rows.append(replace(baseline_row, answers_match_single=True))
    for policy in POLICIES:
        spec = policy_spec(scale, dataset_name, policy, offered_qps)
        if replicated_index is None:
            replicated_index = build_scenario_index(spec)
        row, answers = _measure(spec, replicated_index, truth, f"2-copy {policy}")
        rows.append(
            replace(
                row, answers_match_single=_answers_equal(answers, baseline_answers)
            )
        )
    return rows


def format_table(rows: list[ReplicaRow]) -> str:
    """Render the comparison the way the paper's tables read."""
    lines = [
        f"{'deployment':>24s} {'offered':>8s} {'q/s':>8s} {'p50':>10s} {'p99':>10s} "
        f"{'IO/q':>7s} {'hedges':>12s} {'ratio':>6s} {'ident':>5s}"
    ]
    for row in rows:
        hedges = (
            f"{row.hedges_issued}/{row.hedge_wins}w"
            if row.policy == "hedged" and row.replicas > 1
            else "-"
        )
        lines.append(
            f"{row.label:>24s} {row.offered_qps:>8,.0f} {row.qps:>8,.0f} "
            f"{format_time(row.p50_ns):>10s} {format_time(row.p99_ns):>10s} "
            f"{row.ios_per_query:>7.1f} {hedges:>12s} {row.ratio:>6.3f} "
            f"{'yes' if row.answers_match_single else 'NO':>5s}"
        )
    return "\n".join(lines)
