"""Figures 4-8: storage performance requirements.

All five figures share one recipe (Sec. 4.4-4.5): take the E2LSH gamma
sweep, and for each swept accuracy level combine

- ``N_io`` — the average I/O count of an external-memory execution at
  that accuracy (block-size dependent, from the in-memory run's bucket
  occupancies), with
- ``T_target`` — the query time to match at the *same* accuracy
  (interpolated from the SRS sweep for Figures 4-6, from the in-memory
  E2LSH sweep itself for Figures 7-8), and
- ``T_compute`` — E2LSHoS's own compute time (0.9 x the in-memory E2LSH
  time, per the paper's footprint-stall measurement).

into the Eq. 10/11 requirements.

- Figure 4: SIFT, requirement vs accuracy for each block size.
- Figure 5: all datasets at B = 512.
- Figure 6: SIFT for k in {1, 5, 10, 50, 100}.
- Figure 7: like 5 but targeting in-memory E2LSH speed.
- Figure 8: like 6 but targeting in-memory E2LSH speed.
"""

from __future__ import annotations

from repro.analysis.requirements import (
    INMEMORY_COMPUTE_FRACTION,
    RequirementCurve,
    average_n_io,
    requirement_curve,
)
from repro.experiments.common import time_at_ratio, tuned_e2lsh, tuned_srs
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = [
    "srs_requirement_curve",
    "inmemory_requirement_curve",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "format_curves",
]


def _curve(
    label: str,
    e2lsh_runs,
    block_size: int | None,
    target_of_ratio,
) -> RequirementCurve:
    ratios, n_ios, targets, computes = [], [], [], []
    for run in e2lsh_runs:
        ratios.append(run.overall_ratio)
        n_ios.append(average_n_io(run.stats, block_size))
        targets.append(target_of_ratio(run.overall_ratio))
        # T_compute = 0.9 * T_E2LSH (Sec. 4.5); run.mean_time_ns already
        # includes the footprint stall, so this is the stall-free time.
        computes.append(run.mean_time_ns * INMEMORY_COMPUTE_FRACTION)
    return requirement_curve(label, ratios, n_ios, targets, computes)


def srs_requirement_curve(
    name: str,
    scale: ExperimentScale,
    k: int = 1,
    block_size: int | None = 512,
) -> RequirementCurve:
    """Requirements for E2LSHoS to match in-memory SRS (Eqs. 12-13)."""
    e2lsh = tuned_e2lsh(name, scale, k=k).tuned
    srs = tuned_srs(name, scale, k=k)
    return _curve(
        f"{name}/B={block_size or 'inf'}/k={k}",
        e2lsh.runs,
        block_size,
        lambda ratio: time_at_ratio(srs, ratio),
    )


def inmemory_requirement_curve(
    name: str,
    scale: ExperimentScale,
    k: int = 1,
    block_size: int | None = 512,
) -> RequirementCurve:
    """Requirements to match in-memory E2LSH (Eqs. 14-16)."""
    e2lsh = tuned_e2lsh(name, scale, k=k).tuned
    return _curve(
        f"{name}/inmem/B={block_size or 'inf'}/k={k}",
        e2lsh.runs,
        block_size,
        lambda ratio: time_at_ratio(e2lsh, ratio),
    )


def fig4(scale: ExperimentScale = DEFAULT_SCALE, dataset: str = "sift") -> list[RequirementCurve]:
    """One curve per block size for one dataset (SRS target)."""
    return [
        srs_requirement_curve(dataset, scale, block_size=block_size)
        for block_size in (128, 512, 4096, None)
    ]


def fig5(scale: ExperimentScale = DEFAULT_SCALE) -> list[RequirementCurve]:
    """One curve per dataset at B = 512 (SRS target)."""
    return [srs_requirement_curve(name, scale) for name in scale.datasets]


def fig6(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    ks: tuple[int, ...] = (1, 5, 10, 50, 100),
) -> list[RequirementCurve]:
    """One curve per k for one dataset (SRS target)."""
    return [srs_requirement_curve(dataset, scale, k=k) for k in ks]


def fig7(scale: ExperimentScale = DEFAULT_SCALE) -> list[RequirementCurve]:
    """One curve per dataset at B = 512 (in-memory E2LSH target)."""
    return [inmemory_requirement_curve(name, scale) for name in scale.datasets]


def fig8(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    ks: tuple[int, ...] = (1, 5, 10, 50, 100),
) -> list[RequirementCurve]:
    """One curve per k for one dataset (in-memory E2LSH target)."""
    return [inmemory_requirement_curve(dataset, scale, k=k) for k in ks]


def format_curves(curves: list[RequirementCurve], title: str) -> str:
    """Render requirement curves as (ratio, kIOPS, request rate) rows."""
    rows = []
    for curve in curves:
        for point in curve.points:
            rows.append(
                (
                    curve.label,
                    f"{point.overall_ratio:.4f}",
                    f"{point.n_io:.1f}",
                    f"{point.read_iops / 1e3:.1f}",
                    "inf" if point.request_rate == float("inf") else f"{point.request_rate / 1e3:.1f}",
                )
            )
    return render_table(
        ["curve", "ratio", "N_io", "required kIOPS", "required kreq/s"],
        rows,
        title=title,
    )
