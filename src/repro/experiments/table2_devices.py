"""Table 2: storage devices and their random read performance.

For each device profile we *simulate* a closed-loop random-read
benchmark at queue depths 1 and 128 (a fixed number of outstanding
requests; each completion immediately triggers the next submission) and
compare the observed throughput with the paper's measurements the
profile was calibrated from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.storage.device import StorageDevice
from repro.storage.profiles import DEVICE_PROFILES
from repro.experiments.tables import render_table
from repro.utils.units import NS_PER_S

__all__ = ["Table2Row", "measure_device_iops", "run", "format_table", "PAPER_KIOPS"]

#: Paper Table 2 reference (kIOPS at queue depths 1 and 128).
PAPER_KIOPS = {
    "cssd": (7.2, 273.0),
    "essd": (27.6, 1400.0),
    "xlfdd": (132.3, 3860.0),
    "hdd": (0.21, 0.54),
}


@dataclass(frozen=True)
class Table2Row:
    """Simulated vs paper throughput for one device."""

    device: str
    qd1_kiops: float
    qd128_kiops: float
    paper_qd1_kiops: float
    paper_qd128_kiops: float


def measure_device_iops(
    device_name: str,
    queue_depth: int,
    n_requests: int = 4_000,
    read_size: int = 512,
) -> float:
    """Closed-loop random-read throughput of the simulated device."""
    device = StorageDevice(DEVICE_PROFILES[device_name])
    # Min-heap of completion times of outstanding requests.
    outstanding: list[float] = []
    submitted = 0
    now = 0.0
    first_submit = 0.0
    last_completion = 0.0
    while submitted < n_requests or outstanding:
        while submitted < n_requests and len(outstanding) < queue_depth:
            heapq.heappush(outstanding, device.submit(now, read_size))
            submitted += 1
        completion = heapq.heappop(outstanding)
        last_completion = max(last_completion, completion)
        now = completion
    window = last_completion - first_submit
    return n_requests * NS_PER_S / window if window > 0 else 0.0


def run(devices: tuple[str, ...] = ("cssd", "essd", "xlfdd", "hdd")) -> list[Table2Row]:
    """Measure all devices at queue depths 1 and 128."""
    rows = []
    for name in devices:
        paper_qd1, paper_qd128 = PAPER_KIOPS[name]
        n_requests = 4_000 if name != "hdd" else 400
        rows.append(
            Table2Row(
                device=name,
                qd1_kiops=measure_device_iops(name, 1, n_requests) / 1e3,
                qd128_kiops=measure_device_iops(name, 128, n_requests) / 1e3,
                paper_qd1_kiops=paper_qd1,
                paper_qd128_kiops=paper_qd128,
            )
        )
    return rows


def format_table(rows: list[Table2Row]) -> str:
    """Render simulated vs paper kIOPS."""
    return render_table(
        ["device", "QD1 kIOPS (paper)", "QD128 kIOPS (paper)"],
        [
            (
                r.device,
                f"{r.qd1_kiops:.3g} ({r.paper_qd1_kiops})",
                f"{r.qd128_kiops:.4g} ({r.paper_qd128_kiops})",
            )
            for r in rows
        ],
        title="Table 2: simulated random-read performance (paper in parentheses)",
    )
