"""Sharded-serving scale-out: saturation QPS and tail latency vs shards.

Not a paper figure — this drives the serving subsystem that grows the
reproduction toward the ROADMAP's "heavy traffic" north star.  A
closed-loop client fleet saturates each deployment, giving its peak
sustainable throughput and the latency distribution at that load:

- 1 shard on one device: the paper's single-node async E2LSHoS
  (IOPS-bound, Eq. 7) wrapped in the service stack;
- 4 object-partitioned shards (``hash``): DRAM and storage scale out,
  but a probed bucket's entries spread over shards, so fleet-wide I/O
  per query inflates by up to ``min(bucket_size, N)``;
- 4 table-partitioned shards (``table``): fleet-wide I/O matches the
  single node (the same buckets, distributed), so saturation QPS tracks
  the aggregate device IOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import E2LSHParams
from repro.datasets.registry import DATASET_SPECS, load_dataset
from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio
from repro.experiments.config import ExperimentScale
from repro.serving import ClosedLoopWorkload, QueryService, ShardedIndex
from repro.utils.units import format_time

__all__ = ["ServingRow", "run", "format_table", "CONFIGS"]

K = 10
CONCURRENCY = 32
REQUESTS = 256
#: (shard count, partition scheme) deployments compared.
CONFIGS: tuple[tuple[int, str], ...] = ((1, "hash"), (4, "hash"), (4, "table"))


@dataclass(frozen=True)
class ServingRow:
    """Closed-loop saturation measurements of one deployment."""

    n_shards: int
    scheme: str
    qps: float
    p50_ns: float
    p99_ns: float
    ios_per_query: float
    ratio: float
    #: Simulator self-profile: loop events processed and their wall-clock
    #: rate — the perf trajectory ``benchmarks/compare_bench.py`` tracks.
    loop_events: int = 0
    wall_events_per_sec: float = 0.0


def run(
    scale: ExperimentScale,
    dataset_name: str,
    configs: tuple[tuple[int, str], ...] = CONFIGS,
) -> list[ServingRow]:
    """Measure saturation throughput and p99 for each deployment."""
    dataset = load_dataset(
        dataset_name, n=scale.n, n_queries=scale.n_queries, seed=scale.seed
    )
    spec = DATASET_SPECS[dataset_name]
    params = E2LSHParams(n=dataset.n, rho=spec.rho, gamma=0.5, s_factor=32.0)
    truth = exact_knn(dataset.data, dataset.queries, k=K)
    workload = ClosedLoopWorkload(
        concurrency=CONCURRENCY, n_queries=REQUESTS, seed=scale.seed
    )
    rows: list[ServingRow] = []
    for n_shards, scheme in configs:
        sharded = ShardedIndex.build(
            dataset.data, params, n_shards=n_shards, scheme=scheme, seed=scale.seed
        )
        service = QueryService(sharded)
        report = service.run_closed_loop(dataset.queries, workload, k=K)
        records = sorted(service.stats.records, key=lambda r: r.query_id)
        answers = [service.answers[r.query_id].distances for r in records]
        asked = np.array([r.pool_index for r in records])
        ratio = overall_ratio(
            answers,
            GroundTruth(ids=truth.ids[asked], distances=truth.distances[asked]),
            k=K,
        )
        rows.append(
            ServingRow(
                n_shards=n_shards,
                scheme=scheme,
                qps=report.throughput_qps,
                p50_ns=report.p50_ns,
                p99_ns=report.p99_ns,
                ios_per_query=report.mean_ios_per_query,
                ratio=ratio,
                loop_events=service.loop_profile.events_total,
                wall_events_per_sec=service.loop_profile.events_per_sec,
            )
        )
    return rows


def format_table(rows: list[ServingRow]) -> str:
    """Render the comparison the way the paper's tables read."""
    lines = [
        f"{'deployment':>16s} {'sat. q/s':>10s} {'p50':>10s} {'p99':>10s} "
        f"{'IO/query':>9s} {'ratio':>6s}"
    ]
    for row in rows:
        label = f"{row.n_shards} x {row.scheme}"
        lines.append(
            f"{label:>16s} {row.qps:>10,.0f} {format_time(row.p50_ns):>10s} "
            f"{format_time(row.p99_ns):>10s} {row.ios_per_query:>9.1f} "
            f"{row.ratio:>6.3f}"
        )
    return "\n".join(lines)
