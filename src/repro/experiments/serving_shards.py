"""Sharded-serving scale-out: saturation QPS and tail latency vs shards.

Not a paper figure — this drives the serving subsystem that grows the
reproduction toward the ROADMAP's "heavy traffic" north star.  A
closed-loop client fleet saturates each deployment, giving its peak
sustainable throughput and the latency distribution at that load:

- 1 shard on one device: the paper's single-node async E2LSHoS
  (IOPS-bound, Eq. 7) wrapped in the service stack;
- 4 object-partitioned shards (``hash``): DRAM and storage scale out,
  but a probed bucket's entries spread over shards, so fleet-wide I/O
  per query inflates by up to ``min(bucket_size, N)``;
- 4 table-partitioned shards (``table``): fleet-wide I/O matches the
  single node (the same buckets, distributed), so saturation QPS tracks
  the aggregate device IOPS.

Each deployment is expressed as a :class:`ScenarioSpec` (the same config
objects the CLI consumes); :func:`run_specs` measures any list of specs,
and :func:`run` builds the canonical comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio
from repro.experiments.config import ExperimentScale
from repro.serving import (
    DataConfig,
    ScenarioResult,
    ScenarioSpec,
    ServingConfig,
    WorkloadSpec,
    run_scenario,
)
from repro.utils.units import format_time

__all__ = [
    "ServingRow",
    "deployment_spec",
    "run",
    "run_specs",
    "format_table",
    "CONFIGS",
    "K",
    "CONCURRENCY",
    "REQUESTS",
]

K = 10
CONCURRENCY = 32
REQUESTS = 256
#: (shard count, partition scheme) deployments compared.
CONFIGS: tuple[tuple[int, str], ...] = ((1, "hash"), (4, "hash"), (4, "table"))


@dataclass(frozen=True)
class ServingRow:
    """Closed-loop saturation measurements of one deployment."""

    n_shards: int
    scheme: str
    qps: float
    p50_ns: float
    p99_ns: float
    ios_per_query: float
    ratio: float
    #: Simulator self-profile: loop events processed and their wall-clock
    #: rate — the perf trajectory ``benchmarks/compare_bench.py`` tracks.
    loop_events: int = 0
    wall_events_per_sec: float = 0.0


def deployment_spec(
    scale: ExperimentScale, dataset_name: str, n_shards: int, scheme: str
) -> ScenarioSpec:
    """The closed-loop saturation scenario for one deployment."""
    return ScenarioSpec(
        name=f"{n_shards}x{scheme}",
        data=DataConfig(dataset=dataset_name, n=scale.n, pool_queries=scale.n_queries),
        serving=ServingConfig(n_shards=n_shards, scheme=scheme),
        workload=WorkloadSpec(mode="closed", requests=REQUESTS, concurrency=CONCURRENCY),
        seed=scale.seed,
        k=K,
    )


def _accuracy_ratio(result: ScenarioResult, truth: GroundTruth) -> float:
    records = sorted(result.records, key=lambda r: r.query_id)
    answers = [result.answers[r.query_id].distances for r in records]
    asked = np.array([r.pool_index for r in records])
    return overall_ratio(
        answers, GroundTruth(ids=truth.ids[asked], distances=truth.distances[asked]), k=K
    )


def run_specs(specs: list[ScenarioSpec]) -> list[ServingRow]:
    """Measure saturation throughput and p99 for each scenario."""
    rows: list[ServingRow] = []
    for spec in specs:
        result = run_scenario(spec)
        dataset = result.index.dataset
        truth = exact_knn(dataset.data, dataset.queries, k=spec.k)
        report = result.report
        rows.append(
            ServingRow(
                n_shards=spec.serving.n_shards,
                scheme=spec.serving.scheme,
                qps=report.throughput_qps,
                p50_ns=report.p50_ns,
                p99_ns=report.p99_ns,
                ios_per_query=report.mean_ios_per_query,
                ratio=_accuracy_ratio(result, truth),
                loop_events=result.loop_profile.events_total,
                wall_events_per_sec=result.loop_profile.events_per_sec,
            )
        )
    return rows


def run(
    scale: ExperimentScale,
    dataset_name: str,
    configs: tuple[tuple[int, str], ...] = CONFIGS,
) -> list[ServingRow]:
    """Measure saturation throughput and p99 for each deployment."""
    return run_specs(
        [deployment_spec(scale, dataset_name, n_shards, scheme) for n_shards, scheme in configs]
    )


def format_table(rows: list[ServingRow]) -> str:
    """Render the comparison the way the paper's tables read."""
    lines = [
        f"{'deployment':>16s} {'sat. q/s':>10s} {'p50':>10s} {'p99':>10s} "
        f"{'IO/query':>9s} {'ratio':>6s}"
    ]
    for row in rows:
        label = f"{row.n_shards} x {row.scheme}"
        lines.append(
            f"{label:>16s} {row.qps:>10,.0f} {format_time(row.p50_ns):>10s} "
            f"{format_time(row.p99_ns):>10s} {row.ios_per_query:>9.1f} "
            f"{row.ratio:>6.3f}"
        )
    return "\n".join(lines)
