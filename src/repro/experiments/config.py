"""Experiment scale presets.

The paper runs datasets of 1M-1B objects; the pure-Python reproduction
runs scaled-down analogs.  ``DEFAULT_SCALE`` is what ``pytest
benchmarks/`` uses; ``SMALL_SCALE`` keeps unit/integration tests fast.
All drivers accept the scale explicitly so users can push sizes up.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "SMALL_SCALE", "DEFAULT_SCALE"]


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes and knob grids for one experiment run."""

    name: str
    #: Database size for the seven standard datasets.
    n: int
    #: Database size for the BIGANN analog (the "large" dataset).
    n_bigann: int
    #: Queries per dataset.
    n_queries: int
    #: Accuracy target (the paper's default overall ratio).
    target_ratio: float = 1.05
    #: E2LSH gamma sweep, cheap/inaccurate -> expensive/accurate (each
    #: gamma implies an S budget; see ``params_for``).
    gammas: tuple[float, ...] = (1.3, 1.0, 0.8, 0.65, 0.5, 0.4)
    #: SRS T' sweep expressed as fractions of n (SRS scales T' with n).
    srs_fractions: tuple[float, ...] = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.06, 0.15)
    #: QALSH approximation-ratio sweep, cheap -> accurate.
    qalsh_cs: tuple[float, ...] = (3.0, 2.0, 1.5, 1.2)
    #: Subset sizes (fractions of n_bigann) for the Figure 14 sweep.
    sublinearity_fractions: tuple[float, ...] = (0.125, 0.25, 0.5, 1.0)
    #: Datasets included at this scale.
    datasets: tuple[str, ...] = (
        "msong", "sift", "gist", "rand", "glove", "gauss", "mnist", "bigann",
    )
    seed: int = 7


SMALL_SCALE = ExperimentScale(
    name="small",
    n=2_500,
    n_bigann=6_000,
    n_queries=12,
    gammas=(1.2, 0.8, 0.5),
    srs_fractions=(0.004, 0.02, 0.08),
    qalsh_cs=(2.5, 1.7),
    datasets=("sift", "rand"),
)

DEFAULT_SCALE = ExperimentScale(
    name="default",
    n=20_000,
    n_bigann=60_000,
    n_queries=40,
)
