"""Table 1: datasets and their hardness statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.metrics import local_intrinsic_dimensionality, relative_contrast
from repro.datasets.registry import DATASET_SPECS
from repro.experiments.common import dataset_for
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["Table1Row", "run", "format_table"]


@dataclass(frozen=True)
class Table1Row:
    """One dataset row: our analog vs the paper's reference values."""

    name: str
    n: int
    d: int
    value_type: str
    rc: float
    lid: float
    paper_rc: float
    paper_lid: float
    paper_d: int


def run(scale: ExperimentScale = DEFAULT_SCALE) -> list[Table1Row]:
    """Measure RC / LID for every dataset analog at this scale."""
    rows = []
    for name in scale.datasets:
        spec = DATASET_SPECS[name]
        dataset = dataset_for(name, scale)
        rows.append(
            Table1Row(
                name=name,
                n=dataset.n,
                d=dataset.d,
                value_type=dataset.value_type,
                rc=relative_contrast(dataset.data, dataset.queries),
                lid=local_intrinsic_dimensionality(dataset.data, dataset.queries),
                paper_rc=spec.paper_rc,
                paper_lid=spec.paper_lid,
                paper_d=spec.paper_d,
            )
        )
    return rows


def format_table(rows: list[Table1Row]) -> str:
    """Render the reproduction next to the paper's Table 1."""
    return render_table(
        ["dataset", "n", "d (paper)", "type", "RC (paper)", "LID (paper)"],
        [
            (
                r.name,
                r.n,
                f"{r.d} ({r.paper_d})",
                r.value_type,
                f"{r.rc:.2f} ({r.paper_rc})",
                f"{r.lid:.1f} ({r.paper_lid})",
            )
            for r in rows
        ],
        title="Table 1: dataset analogs (paper reference in parentheses)",
    )
