"""Figure 2: in-memory E2LSH speedup over SRS and QALSH.

All three methods run in memory, tuned to the same overall-ratio target;
the speedup is the query-time ratio.  The paper's Observation 1: E2LSH's
computational cost is much lower, often by 1-2 orders of magnitude, and
SRS is consistently faster than QALSH.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import tuned_e2lsh, tuned_qalsh, tuned_srs
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["Fig2Row", "run", "format_table"]


@dataclass(frozen=True)
class Fig2Row:
    """Speedups for one dataset at the accuracy target."""

    dataset: str
    e2lsh_ms: float
    srs_ms: float
    qalsh_ms: float
    speedup_vs_srs: float
    speedup_vs_qalsh: float


def run(scale: ExperimentScale = DEFAULT_SCALE, k: int = 1) -> list[Fig2Row]:
    """Tune all three methods per dataset and compute speedups."""
    rows = []
    for name in scale.datasets:
        e2lsh = tuned_e2lsh(name, scale, k=k).tuned.selected
        srs = tuned_srs(name, scale, k=k).selected
        qalsh = tuned_qalsh(name, scale, k=k).selected
        rows.append(
            Fig2Row(
                dataset=name,
                e2lsh_ms=e2lsh.mean_time_ns / 1e6,
                srs_ms=srs.mean_time_ns / 1e6,
                qalsh_ms=qalsh.mean_time_ns / 1e6,
                speedup_vs_srs=srs.mean_time_ns / e2lsh.mean_time_ns,
                speedup_vs_qalsh=qalsh.mean_time_ns / e2lsh.mean_time_ns,
            )
        )
    return rows


def format_table(rows: list[Fig2Row]) -> str:
    """Render per-dataset speedups."""
    return render_table(
        ["dataset", "E2LSH ms", "SRS ms", "QALSH ms", "speedup/SRS", "speedup/QALSH"],
        [
            (
                r.dataset,
                f"{r.e2lsh_ms:.3f}",
                f"{r.srs_ms:.3f}",
                f"{r.qalsh_ms:.3f}",
                f"{r.speedup_vs_srs:.1f}x",
                f"{r.speedup_vs_qalsh:.1f}x",
            )
            for r in rows
        ],
        title="Figure 2: in-memory E2LSH speedups at the accuracy target",
    )
