"""Figure 13: speedups over SRS for all datasets, k = 1 and k = 100.

Four executions per dataset, all tuned to the same accuracy target:
in-memory E2LSH, and E2LSHoS under io_uring (cSSD x 4), SPDK (cSSD x 4)
and the XLFDD interface (XLFDD x 12).  The expected shape: E2LSHoS beats
SRS everywhere, the gap is largest on the biggest dataset, and faster
interfaces approach (or pass) the in-memory speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import run_e2lshos, tuned_e2lsh, tuned_srs
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["Fig13Row", "run", "format_table", "MODES"]

#: (label, device, count, interface) for the three E2LSHoS executions.
MODES: tuple[tuple[str, str, int, str], ...] = (
    ("io_uring", "cssd", 4, "io_uring"),
    ("spdk", "cssd", 4, "spdk"),
    ("xlfdd", "xlfdd", 12, "xlfdd"),
)


@dataclass(frozen=True)
class Fig13Row:
    """Speedups over SRS for one (dataset, k)."""

    dataset: str
    k: int
    srs_ms: float
    inmemory_speedup: float
    io_uring_speedup: float
    spdk_speedup: float
    xlfdd_speedup: float


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    ks: tuple[int, ...] = (1, 100),
) -> list[Fig13Row]:
    """Measure every dataset at every k."""
    rows = []
    for name in scale.datasets:
        for k in ks:
            sweep = tuned_e2lsh(name, scale, k=k)
            selected = sweep.tuned.selected
            srs_ns = tuned_srs(name, scale, k=k).selected.mean_time_ns
            speedups = {}
            for label, device, count, interface in MODES:
                # repeat=8: the paper streams queries, so throughput (not
                # one query's latency-bound critical path) is measured.
                result = run_e2lshos(
                    name, scale, selected.knob, device, count, interface, k=k, repeat=8
                )
                speedups[label] = srs_ns / result.mean_query_time_ns
            rows.append(
                Fig13Row(
                    dataset=name,
                    k=k,
                    srs_ms=srs_ns / 1e6,
                    inmemory_speedup=srs_ns / selected.mean_time_ns,
                    io_uring_speedup=speedups["io_uring"],
                    spdk_speedup=speedups["spdk"],
                    xlfdd_speedup=speedups["xlfdd"],
                )
            )
    return rows


def format_table(rows: list[Fig13Row]) -> str:
    """Render speedups over SRS."""
    return render_table(
        ["dataset", "k", "SRS ms", "in-mem", "io_uring", "SPDK", "XLFDD"],
        [
            (
                r.dataset,
                r.k,
                f"{r.srs_ms:.3f}",
                f"{r.inmemory_speedup:.1f}x",
                f"{r.io_uring_speedup:.1f}x",
                f"{r.spdk_speedup:.1f}x",
                f"{r.xlfdd_speedup:.1f}x",
            )
            for r in rows
        ],
        title="Figure 13: speedups over SRS (all datasets)",
    )
