"""Figure 16: query speeds with multithreading.

Worker CPUs scale query throughput linearly until the shared storage
volume's IOPS bound kicks in: E2LSHoS on cSSD x 4 plateaus, E2LSHoS on
XLFDD x 12 keeps scaling, and SRS (pure compute) scales linearly
throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import built_e2lshos, dataset_for, tuned_e2lsh, tuned_srs
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume
from repro.utils.units import NS_PER_S

__all__ = ["Fig16Row", "run", "format_table"]


@dataclass(frozen=True)
class Fig16Row:
    """Throughput at one worker count."""

    workers: int
    srs_qps: float
    cssd_qps: float
    xlfdd_qps: float


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    k: int = 1,
    tasks_per_worker: int = 8,
) -> list[Fig16Row]:
    """Sweep worker counts for both storage setups plus SRS."""
    sweep = tuned_e2lsh(dataset, scale, k=k)
    gamma = sweep.tuned.selected.knob
    index = built_e2lshos(dataset, scale, gamma, k=k)
    data = dataset_for(dataset, scale)
    srs_ns = tuned_srs(dataset, scale, k=k).selected.mean_time_ns

    rows = []
    for workers in worker_counts:
        # Enough interleaved queries to keep every worker's pipeline deep.
        repeats = max(1, int(np.ceil(workers * tasks_per_worker / data.n_queries)))
        queries = np.tile(data.queries, (repeats, 1))
        qps = {}
        for label, device, count, interface in (
            ("cssd", "cssd", 4, "io_uring"),
            ("xlfdd", "xlfdd", 12, "xlfdd"),
        ):
            engine = AsyncIOEngine(
                make_volume(device, count), INTERFACE_PROFILES[interface], index.built.store
            )
            result = index.run(queries, engine, k=k, workers=workers)
            qps[label] = result.queries_per_second
        rows.append(
            Fig16Row(
                workers=workers,
                srs_qps=workers * NS_PER_S / srs_ns,
                cssd_qps=qps["cssd"],
                xlfdd_qps=qps["xlfdd"],
            )
        )
    return rows


def format_table(rows: list[Fig16Row]) -> str:
    """Render the multithreading sweep."""
    return render_table(
        ["workers", "SRS q/s", "E2LSHoS cSSDx4 q/s", "E2LSHoS XLFDDx12 q/s"],
        [
            (r.workers, f"{r.srs_qps:.0f}", f"{r.cssd_qps:.0f}", f"{r.xlfdd_qps:.0f}")
            for r in rows
        ],
        title="Figure 16: query throughput vs worker count",
    )
