"""Shared measurement machinery for the experiment drivers.

This module owns the expensive steps — dataset synthesis, exact ground
truth, index construction, accuracy-knob sweeps — and caches them per
(dataset, scale, k) so every benchmark in a pytest session reuses them.

Timing conventions (all simulated nanoseconds):

- in-memory E2LSH time = machine.inmemory_e2lsh_ns(ops)  (includes the
  Sec. 4.5 footprint stall),
- SRS / QALSH time = machine.compute_ns(ops)  (small indices, no extra
  stall),
- E2LSHoS time = engine makespan / #queries  (compute uses
  machine.compute_ns inside the query tasks; I/O comes from the device
  model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.machine_model import DEFAULT_MACHINE, MachineModel
from repro.baselines.qalsh import QALSHIndex
from repro.baselines.srs import SRSIndex
from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import BatchResult, E2LSHoSIndex
from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.query_stats import QueryStats
from repro.core.radii import RadiusLadder
from repro.datasets.base import Dataset
from repro.datasets.registry import DATASET_SPECS
from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.harness import MethodRun, TunedMethod, tune_to_ratio
from repro.eval.ratio import overall_ratio
from repro.experiments.config import ExperimentScale
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume

__all__ = [
    "dataset_for",
    "ground_truth_for",
    "params_for",
    "tuned_e2lsh",
    "tuned_srs",
    "tuned_qalsh",
    "built_e2lshos",
    "run_e2lshos",
    "time_at_ratio",
    "mean_stats",
    "MACHINE",
    "E2LSHSweep",
    "AvgStats",
]

MACHINE: MachineModel = DEFAULT_MACHINE


# --------------------------------------------------------------------------
# Datasets and ground truth
# --------------------------------------------------------------------------


@lru_cache(maxsize=None)
def dataset_for(name: str, scale: ExperimentScale) -> Dataset:
    """The analog dataset at this scale (cached)."""
    spec = DATASET_SPECS[name]
    n = scale.n_bigann if name == "bigann" else scale.n
    return spec.load(n=n, n_queries=scale.n_queries, seed=scale.seed)


@lru_cache(maxsize=None)
def ground_truth_for(name: str, scale: ExperimentScale, k: int = 100) -> GroundTruth:
    """Exact top-k ground truth (cached; k=100 covers every experiment)."""
    dataset = dataset_for(name, scale)
    return exact_knn(dataset.data, dataset.queries, k=min(k, dataset.n))


def params_for(name: str, n: int, gamma: float = 1.0) -> E2LSHParams:
    """E2LSH parameters for one dataset at size ``n`` (per-dataset rho).

    Sec. 3.3: gamma rescales m, and "the scaling also modifies the
    success probability, but that can be compensated for by the choice
    of S".  We apply that compensation automatically — small gamma makes
    buckets catch far more objects, so the candidate budget grows as
    roughly gamma^-4 (capped) to let the extra candidates through.
    """
    s_factor = float(min(64.0, max(2.0, 2.0 * gamma**-4)))
    return E2LSHParams(n=n, rho=DATASET_SPECS[name].rho, gamma=gamma, s_factor=s_factor)


# --------------------------------------------------------------------------
# E2LSH (in-memory) with bank reuse across the gamma sweep
# --------------------------------------------------------------------------


@dataclass
class E2LSHSweep:
    """A tuned E2LSH plus the index of the selected run."""

    tuned: TunedMethod
    #: gamma -> built index (kept so E2LSHoS can reuse hash functions).
    indices: dict[float, E2LSHIndex]
    bank_full: CompoundHashBank
    ladder: RadiusLadder

    def index_at(self, gamma: float) -> E2LSHIndex:
        """The in-memory index built for one gamma of the sweep."""
        return self.indices[gamma]

    @property
    def selected_index(self) -> E2LSHIndex:
        """Index of the selected (accuracy-target) run."""
        return self.indices[self.tuned.selected.knob]


def _run_e2lsh_index(
    index: E2LSHIndex, queries: np.ndarray, truth: GroundTruth, k: int, knob: float
) -> MethodRun:
    answers = index.query_batch(queries, k=k)
    ratio = overall_ratio([a.distances for a in answers], truth, k=k)
    times = [MACHINE.inmemory_e2lsh_ns(a.stats.ops) for a in answers]
    return MethodRun(
        knob=knob,
        overall_ratio=ratio,
        mean_time_ns=float(np.mean(times)),
        stats=[a.stats for a in answers],
        answers=answers,
    )


@lru_cache(maxsize=None)
def _e2lsh_indices(
    name: str, scale: ExperimentScale
) -> tuple[dict[float, E2LSHIndex], CompoundHashBank, RadiusLadder]:
    """Build the in-memory index for every gamma of the sweep (cached).

    One full-width hash bank is sampled once; every gamma reuses its
    prefix (``bank.with_m``), so only the bucket regrouping is repeated.
    The indices are shared across every k the experiments use.
    """
    dataset = dataset_for(name, scale)
    base = params_for(name, dataset.n, gamma=max(scale.gammas))
    ladder = RadiusLadder.for_data(dataset.data, base.c)
    bank_full = CompoundHashBank.create(
        d=dataset.d, m=base.m, L=base.L, w=base.w, seed=scale.seed
    )
    projections_full = bank_full.project(dataset.data)
    indices: dict[float, E2LSHIndex] = {}
    for gamma in scale.gammas:
        params = params_for(name, dataset.n, gamma=gamma)
        bank = bank_full.with_m(params.m)
        projections = bank_full.select_projection_columns(projections_full, params.m)
        indices[gamma] = E2LSHIndex(
            dataset.data, params, ladder=ladder, bank=bank, projections=projections
        )
    return indices, bank_full, ladder


@lru_cache(maxsize=None)
def tuned_e2lsh(name: str, scale: ExperimentScale, k: int = 1) -> E2LSHSweep:
    """Sweep gamma and tune in-memory E2LSH to the accuracy target."""
    dataset = dataset_for(name, scale)
    truth = ground_truth_for(name, scale)
    indices, bank_full, ladder = _e2lsh_indices(name, scale)

    def run_fn(gamma: float) -> MethodRun:
        return _run_e2lsh_index(indices[gamma], dataset.queries, truth, k, gamma)

    tuned = tune_to_ratio("e2lsh", run_fn, scale.gammas, scale.target_ratio)
    return E2LSHSweep(tuned=tuned, indices=indices, bank_full=bank_full, ladder=ladder)


# --------------------------------------------------------------------------
# SRS / QALSH
# --------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _srs_index(name: str, scale: ExperimentScale) -> SRSIndex:
    dataset = dataset_for(name, scale)
    return SRSIndex(dataset.data, seed=scale.seed)


@lru_cache(maxsize=None)
def tuned_srs(name: str, scale: ExperimentScale, k: int = 1) -> TunedMethod:
    """Sweep T' (as fractions of n) and tune SRS to the accuracy target."""
    dataset = dataset_for(name, scale)
    truth = ground_truth_for(name, scale)
    index = _srs_index(name, scale)

    def run_fn(fraction: float) -> MethodRun:
        t_prime = max(k, math.ceil(fraction * dataset.n))
        answers = index.query_batch(dataset.queries, k=k, t_prime=t_prime)
        ratio = overall_ratio([a.distances for a in answers], truth, k=k)
        times = [MACHINE.compute_ns(a.stats.ops) for a in answers]
        return MethodRun(
            knob=fraction,
            overall_ratio=ratio,
            mean_time_ns=float(np.mean(times)),
            stats=[a.stats for a in answers],
            answers=answers,
        )

    return tune_to_ratio("srs", run_fn, scale.srs_fractions, scale.target_ratio)


@lru_cache(maxsize=None)
def tuned_qalsh(name: str, scale: ExperimentScale, k: int = 1) -> TunedMethod:
    """Sweep the approximation ratio c and tune QALSH."""
    dataset = dataset_for(name, scale)
    truth = ground_truth_for(name, scale)
    index = QALSHIndex(dataset.data, seed=scale.seed)

    def run_fn(c: float) -> MethodRun:
        answers = index.query_batch(dataset.queries, k=k, c=c)
        ratio = overall_ratio([a.distances for a in answers], truth, k=k)
        times = [MACHINE.compute_ns(a.stats.ops) for a in answers]
        return MethodRun(
            knob=c,
            overall_ratio=ratio,
            mean_time_ns=float(np.mean(times)),
            stats=[a.stats for a in answers],
            answers=answers,
        )

    return tune_to_ratio("qalsh", run_fn, scale.qalsh_cs, scale.target_ratio)


# --------------------------------------------------------------------------
# E2LSHoS
# --------------------------------------------------------------------------


@lru_cache(maxsize=2)
def built_e2lshos(
    name: str, scale: ExperimentScale, gamma: float, block_size: int = 512, k: int = 1
) -> E2LSHoSIndex:
    """Build (once) the on-storage index for one (dataset, gamma).

    Hash functions are shared with the in-memory sweep so answers (and
    accuracy) match the tuned in-memory run.
    """
    dataset = dataset_for(name, scale)
    sweep = tuned_e2lsh(name, scale, k=k)
    params = params_for(name, dataset.n, gamma=gamma)
    bank = sweep.bank_full.with_m(params.m)
    return E2LSHoSIndex.build(
        dataset.data,
        params,
        store=MemoryBlockStore(),
        ladder=sweep.ladder,
        block_size=block_size,
        seed=scale.seed,
        machine=MACHINE,
        bank=bank,
    )


def run_e2lshos(
    name: str,
    scale: ExperimentScale,
    gamma: float,
    device: str,
    count: int,
    interface: str,
    k: int = 1,
    workers: int = 1,
    block_size: int = 512,
    repeat: int = 1,
) -> BatchResult:
    """Execute the tuned query set on one storage configuration.

    ``repeat`` tiles the query set to deepen the asynchronous pipeline —
    the paper streams many queries concurrently (Sec. 5.4), so
    throughput-bound experiments pass repeat > 1 to keep the device
    queues full.
    """
    index = built_e2lshos(name, scale, gamma, block_size=block_size, k=k)
    dataset = dataset_for(name, scale)
    queries = dataset.queries if repeat == 1 else np.tile(dataset.queries, (repeat, 1))
    engine = AsyncIOEngine(
        make_volume(device, count), INTERFACE_PROFILES[interface], index.built.store
    )
    return index.run(queries, engine, k=k, workers=workers)


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def time_at_ratio(tuned: TunedMethod, ratio: float) -> float:
    """Interpolated query time of a tuned method at a given accuracy.

    Used to compare methods at equal accuracy levels (the x-axis of
    Figures 4-8 and 11); clamps outside the swept range.
    """
    points = sorted((run.overall_ratio, run.mean_time_ns) for run in tuned.runs)
    ratios = np.array([p[0] for p in points])
    times = np.array([p[1] for p in points])
    # Query time falls as the ratio (inaccuracy) grows.
    return float(np.interp(ratio, ratios, times))


@dataclass(frozen=True)
class AvgStats:
    """Per-query averages over a query set (Table 4's columns)."""

    rungs_searched: float
    buckets_probed: float
    nonempty_buckets: float
    candidates_checked: float
    ios_issued: float

    @property
    def n_io_infinite_block(self) -> float:
        """The paper's N_io,inf column: 2 x non-empty buckets probed."""
        return 2.0 * self.nonempty_buckets


def mean_stats(stats: list[QueryStats]) -> AvgStats:
    """Average per-query statistics (drives Table 4 and Figures 3-8)."""
    if not stats:
        raise ValueError("no stats to average")
    count = len(stats)
    return AvgStats(
        rungs_searched=sum(s.rungs_searched for s in stats) / count,
        buckets_probed=sum(s.buckets_probed for s in stats) / count,
        nonempty_buckets=sum(s.nonempty_buckets for s in stats) / count,
        candidates_checked=sum(s.candidates_checked for s in stats) / count,
        ios_issued=sum(s.ios_issued for s in stats) / count,
    )
