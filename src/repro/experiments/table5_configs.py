"""Table 5: storage device configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.profiles import STORAGE_CONFIGS
from repro.experiments.tables import render_table
from repro.utils.units import format_bytes, format_iops

__all__ = ["Table5Row", "run", "format_table"]


@dataclass(frozen=True)
class Table5Row:
    """One storage configuration."""

    name: str
    device: str
    count: int
    total_capacity_bytes: int
    total_max_iops: float


def run() -> list[Table5Row]:
    """Enumerate the Table 5 configurations."""
    return [
        Table5Row(
            name=config.name,
            device=config.device,
            count=config.count,
            total_capacity_bytes=config.total_capacity_bytes,
            total_max_iops=config.total_max_iops,
        )
        for config in STORAGE_CONFIGS.values()
    ]


def format_table(rows: list[Table5Row]) -> str:
    """Render the configuration table."""
    return render_table(
        ["config", "device", "count", "total capacity", "total random read"],
        [
            (r.name, r.device, r.count, format_bytes(r.total_capacity_bytes), format_iops(r.total_max_iops))
            for r in rows
        ],
        title="Table 5: storage device configurations",
    )
