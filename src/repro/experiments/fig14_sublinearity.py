"""Figure 14: query time vs database size (sublinearity validation).

Increasing subsets of the BIGANN analog are indexed and queried by:

- SRS (tuned T' fraction, so T' grows linearly with n),
- E2LSHoS on XLFDD x 12,
- in-memory E2LSH with the same parameters, and
- in-memory E2LSH with an extremely small rho (the paper uses 0.09),
  which shrinks the index enough to stay in DRAM at any size but must
  compensate with a huge candidate budget, blowing up the query time.

Expected shape: SRS grows linearly; E2LSH(oS) grows sublinearly (fitted
log-log slope < 1) and E2LSHoS tracks in-memory E2LSH; small-rho E2LSH
is far slower at large n.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.datasets.registry import DATASET_SPECS
from repro.eval.ground_truth import exact_knn
from repro.eval.harness import MethodRun, tune_to_ratio
from repro.eval.ratio import overall_ratio
from repro.experiments.common import MACHINE, dataset_for, tuned_e2lsh, tuned_srs
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table
from repro.baselines.srs import SRSIndex
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume

__all__ = ["Fig14Row", "run", "format_table", "fitted_exponent", "SMALL_RHO"]

#: The paper's deliberately-too-small index exponent.
SMALL_RHO = 0.09


@dataclass(frozen=True)
class Fig14Row:
    """Query times at one database size."""

    n: int
    srs_ms: float
    e2lshos_ms: float
    inmemory_ms: float
    small_rho_ms: float
    e2lshos_ratio: float


def _small_rho_time(
    data: np.ndarray, queries: np.ndarray, truth, name: str, gamma: float, seed: int,
    target_ratio: float,
) -> float:
    """In-memory E2LSH at rho = 0.09, tuning the candidate budget S.

    With L = n^0.09 buckets barely anything collides reliably; the
    accuracy target is only reachable by checking many more candidates
    per rung (larger S), which is where the time blows up.
    """
    ladder = RadiusLadder.for_data(data, 2.0)

    def run_fn(s_factor: float) -> MethodRun:
        params = E2LSHParams(
            n=data.shape[0], rho=SMALL_RHO, gamma=min(gamma, 0.6), s_factor=s_factor
        )
        index = E2LSHIndex(data, params, ladder=ladder, seed=seed)
        answers = index.query_batch(queries, k=1)
        ratio = overall_ratio([a.distances for a in answers], truth, k=1)
        times = [MACHINE.inmemory_e2lsh_ns(a.stats.ops) for a in answers]
        return MethodRun(knob=s_factor, overall_ratio=ratio, mean_time_ns=float(np.mean(times)))

    tuned = tune_to_ratio("e2lsh-small-rho", run_fn, (20.0, 100.0, 400.0, 1500.0), target_ratio)
    return tuned.selected.mean_time_ns


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "bigann",
    include_small_rho: bool = True,
) -> list[Fig14Row]:
    """Sweep database subsets and time every method."""
    full = dataset_for(dataset, scale)
    spec = DATASET_SPECS[dataset]
    sweep = tuned_e2lsh(dataset, scale, k=1)
    gamma = sweep.tuned.selected.knob
    srs_fraction = tuned_srs(dataset, scale, k=1).selected.knob
    ladder = sweep.ladder

    rows = []
    for fraction in scale.sublinearity_fractions:
        n = max(1_000, int(full.n * fraction))
        data = full.data[:n]
        truth = exact_knn(data, full.queries, k=1)

        params = E2LSHParams(n=n, rho=spec.rho, gamma=gamma)
        inmem = E2LSHIndex(data, params, ladder=ladder, seed=scale.seed)
        answers = inmem.query_batch(full.queries, k=1)
        inmem_ns = float(np.mean([MACHINE.inmemory_e2lsh_ns(a.stats.ops) for a in answers]))

        storage = E2LSHoSIndex.build(
            data, params, store=MemoryBlockStore(), ladder=ladder,
            seed=scale.seed, machine=MACHINE, bank=inmem.bank,
        )
        engine = AsyncIOEngine(
            make_volume("xlfdd", 12), INTERFACE_PROFILES["xlfdd"], storage.built.store
        )
        # Tile the query stream so throughput, not a single query's
        # latency-bound critical path, is measured (Sec. 5.4).
        result = storage.run(np.tile(full.queries, (4, 1)), engine, k=1)
        e2lshos_ratio = overall_ratio(
            [a.distances for a in result.answers[: full.queries.shape[0]]], truth, k=1
        )

        srs = SRSIndex(data, seed=scale.seed)
        t_prime = max(1, int(np.ceil(srs_fraction * n)))
        srs_answers = srs.query_batch(full.queries, k=1, t_prime=t_prime)
        srs_ns = float(np.mean([MACHINE.compute_ns(a.stats.ops) for a in srs_answers]))

        small_rho_ns = (
            _small_rho_time(
                data, full.queries, truth, dataset, gamma, scale.seed, scale.target_ratio
            )
            if include_small_rho
            else float("nan")
        )

        rows.append(
            Fig14Row(
                n=n,
                srs_ms=srs_ns / 1e6,
                e2lshos_ms=result.mean_query_time_ns / 1e6,
                inmemory_ms=inmem_ns / 1e6,
                small_rho_ms=small_rho_ns / 1e6,
                e2lshos_ratio=e2lshos_ratio,
            )
        )
    return rows


def fitted_exponent(sizes: list[int], times_ms: list[float]) -> float:
    """Least-squares slope of log(time) vs log(n) — 1.0 means linear."""
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit an exponent")
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(times_ms, dtype=float))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def format_table(rows: list[Fig14Row]) -> str:
    """Render query times per database size, with fitted exponents."""
    body = render_table(
        ["n", "SRS ms", "E2LSHoS(XLFDD) ms", "in-memory ms", "small-rho ms", "E2LSHoS ratio"],
        [
            (
                r.n,
                f"{r.srs_ms:.3f}",
                f"{r.e2lshos_ms:.3f}",
                f"{r.inmemory_ms:.3f}",
                f"{r.small_rho_ms:.3f}",
                f"{r.e2lshos_ratio:.4f}",
            )
            for r in rows
        ],
        title="Figure 14: query time vs database size",
    )
    sizes = [r.n for r in rows]
    footer = (
        f"\nfitted exponents: SRS={fitted_exponent(sizes, [r.srs_ms for r in rows]):.2f}, "
        f"E2LSHoS={fitted_exponent(sizes, [r.e2lshos_ms for r in rows]):.2f}"
    )
    return body + footer
