"""Figure 11: speedup over SRS for different storage configurations.

Six groups, bottom to top (the paper's Sec. 6.1):

1. cSSD x 1 (either interface) — capped by the single drive's IOPS,
2. {cSSD x 4, eSSD x 1, eSSD x 8} with io_uring — capped by io_uring's
   per-request CPU cost,
3. cSSD x 4 with SPDK,
4. eSSD x {1, 8} with SPDK,
5. in-memory E2LSH,
6. XLFDD x 12 with the XLFDD interface — reaches (and can exceed)
   in-memory speed.

Each configuration runs the tuned E2LSHoS query set through the engine
at every swept accuracy level; speedups are computed against the SRS
time at the same accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import run_e2lshos, time_at_ratio, tuned_e2lsh, tuned_srs
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["ConfigPoint", "CONFIG_GROUPS", "run", "format_table", "group_mean_speedups"]

#: (group number, label, device, count, interface); group 5 is in-memory.
CONFIG_GROUPS: tuple[tuple[int, str, str, int, str], ...] = (
    (1, "cssd_x1/io_uring", "cssd", 1, "io_uring"),
    (1, "cssd_x1/spdk", "cssd", 1, "spdk"),
    (2, "cssd_x4/io_uring", "cssd", 4, "io_uring"),
    (2, "essd_x1/io_uring", "essd", 1, "io_uring"),
    (2, "essd_x8/io_uring", "essd", 8, "io_uring"),
    (3, "cssd_x4/spdk", "cssd", 4, "spdk"),
    (4, "essd_x1/spdk", "essd", 1, "spdk"),
    (4, "essd_x8/spdk", "essd", 8, "spdk"),
    (6, "xlfdd_x12/xlfdd", "xlfdd", 12, "xlfdd"),
)


@dataclass(frozen=True)
class ConfigPoint:
    """Speedup of one configuration at one accuracy level."""

    group: int
    label: str
    overall_ratio: float
    query_time_ms: float
    speedup_over_srs: float


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    k: int = 1,
) -> list[ConfigPoint]:
    """Evaluate every configuration at every swept accuracy level."""
    sweep = tuned_e2lsh(dataset, scale, k=k)
    srs = tuned_srs(dataset, scale, k=k)
    points = []
    for method_run in sweep.tuned.runs:
        ratio = method_run.overall_ratio
        srs_ns = time_at_ratio(srs, ratio)
        # Group 5: in-memory E2LSH at this accuracy.
        points.append(
            ConfigPoint(
                group=5,
                label="in-memory",
                overall_ratio=ratio,
                query_time_ms=method_run.mean_time_ns / 1e6,
                speedup_over_srs=srs_ns / method_run.mean_time_ns,
            )
        )
        for group, label, device, count, interface in CONFIG_GROUPS:
            result = run_e2lshos(
                dataset, scale, method_run.knob, device, count, interface, k=k, repeat=4
            )
            points.append(
                ConfigPoint(
                    group=group,
                    label=label,
                    overall_ratio=ratio,
                    query_time_ms=result.mean_query_time_ns / 1e6,
                    speedup_over_srs=srs_ns / result.mean_query_time_ns,
                )
            )
    return points


def group_mean_speedups(points: list[ConfigPoint]) -> dict[int, float]:
    """Geometric-mean speedup per group (the paper plots one line each)."""
    import math

    by_group: dict[int, list[float]] = {}
    for point in points:
        by_group.setdefault(point.group, []).append(point.speedup_over_srs)
    return {
        group: math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        for group, speedups in sorted(by_group.items())
    }


def format_table(points: list[ConfigPoint]) -> str:
    """Render all configuration points."""
    return render_table(
        ["group", "config", "ratio", "query ms", "speedup/SRS"],
        [
            (p.group, p.label, f"{p.overall_ratio:.4f}", f"{p.query_time_ms:.3f}", f"{p.speedup_over_srs:.1f}x")
            for p in sorted(points, key=lambda p: (p.group, p.label, p.overall_ratio))
        ],
        title="Figure 11: speedup over SRS by storage configuration",
    )
