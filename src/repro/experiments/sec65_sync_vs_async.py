"""Sec. 6.5 "Comparison with synchronous I/Os".

The paper runs in-memory E2LSH with memory-mapped I/O (index reads
become page faults through a size-capped OS page cache) and measures it
19.7x slower than asynchronous E2LSHoS on the same cSSD x 4 volume,
with a 93% page-cache miss rate — E2LSH's random access pattern defeats
caching, and the synchronous path cannot hide storage latency.

We replay the same query tasks through a
:class:`~repro.storage.page_cache.PageCache` capped at the E2LSHoS
runtime memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import built_e2lshos, dataset_for, tuned_e2lsh
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.storage.engine import AsyncIOEngine
from repro.storage.page_cache import PageCache
from repro.storage.profiles import INTERFACE_PROFILES, make_volume

__all__ = ["SyncVsAsync", "run", "format_table"]


@dataclass(frozen=True)
class SyncVsAsync:
    """Async vs mmap-sync outcome."""

    dataset: str
    async_ms: float
    sync_ms: float
    miss_rate: float

    @property
    def slowdown(self) -> float:
        """How many times slower the synchronous path is."""
        return self.sync_ms / self.async_ms


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    k: int = 1,
) -> SyncVsAsync:
    """Run the tuned query set asynchronously and through the page cache."""
    gamma = tuned_e2lsh(dataset, scale, k=k).tuned.selected.knob
    index = built_e2lshos(dataset, scale, gamma, k=k)
    data = dataset_for(dataset, scale)

    engine = AsyncIOEngine(
        make_volume("cssd", 4), INTERFACE_PROFILES["io_uring"], index.built.store
    )
    async_result = index.run(data.queries, engine, k=k)

    cache = PageCache(
        volume=make_volume("cssd", 4),
        store=index.built.store,
        interface=INTERFACE_PROFILES["mmap_sync"],
        capacity_bytes=max(index.dram_bytes, 1),
    )
    sync_batch = index.run(data.queries, k=k, mode="mmap_sync", cache=cache)
    sync_total_ns = sync_batch.engine.makespan_ns
    sync_ms = sync_total_ns / len(data.queries) / 1e6

    return SyncVsAsync(
        dataset=dataset,
        async_ms=async_result.mean_query_time_ns / 1e6,
        sync_ms=sync_ms,
        miss_rate=cache.stats.miss_rate,
    )


def format_table(result: SyncVsAsync) -> str:
    """Render the comparison."""
    return (
        f"Sec 6.5 sync vs async ({result.dataset}): "
        f"async={result.async_ms:.3f} ms, mmap-sync={result.sync_ms:.3f} ms, "
        f"slowdown={result.slowdown:.1f}x (paper: 19.7x), "
        f"page-cache miss rate={result.miss_rate:.0%} (paper: 93%)"
    )
