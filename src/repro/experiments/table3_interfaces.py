"""Table 3: storage interfaces and their CPU overhead."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.profiles import INTERFACE_PROFILES
from repro.experiments.tables import render_table

__all__ = ["Table3Row", "run", "format_table", "PAPER_INTERFACES"]

#: Paper Table 3 reference: (CPU ns per I/O, max MIOPS per core).
PAPER_INTERFACES = {
    "io_uring": (1_000.0, 1.0),
    "spdk": (350.0, 2.9),
    "xlfdd": (50.0, 20.0),
}


@dataclass(frozen=True)
class Table3Row:
    """CPU cost of one interface."""

    interface: str
    cpu_ns_per_io: float
    max_miops_per_core: float
    paper_cpu_ns: float
    paper_max_miops: float


def run() -> list[Table3Row]:
    """Report each asynchronous interface's per-I/O CPU cost."""
    rows = []
    for name, (paper_ns, paper_miops) in PAPER_INTERFACES.items():
        profile = INTERFACE_PROFILES[name]
        rows.append(
            Table3Row(
                interface=name,
                cpu_ns_per_io=profile.cpu_overhead_ns,
                max_miops_per_core=profile.max_iops_per_core / 1e6,
                paper_cpu_ns=paper_ns,
                paper_max_miops=paper_miops,
            )
        )
    return rows


def format_table(rows: list[Table3Row]) -> str:
    """Render the interface overhead table."""
    return render_table(
        ["interface", "CPU ns/IO (paper)", "max MIOPS/core (paper)"],
        [
            (
                r.interface,
                f"{r.cpu_ns_per_io:.0f} ({r.paper_cpu_ns:.0f})",
                f"{r.max_miops_per_core:.1f} ({r.paper_max_miops})",
            )
            for r in rows
        ],
        title="Table 3: storage interface CPU overhead",
    )
