"""Experiment drivers: one module per paper table/figure.

Each driver exposes a ``run(scale)`` function returning structured rows
plus a ``format_table`` helper; the ``benchmarks/`` suite calls these,
prints the reproduction next to the paper's reference values, and
asserts the qualitative shape checks listed in DESIGN.md.

Heavy intermediates (ground truth, tuned methods, built indices) are
cached per (dataset, scale) in :mod:`repro.experiments.common` so one
pytest session never builds the same index twice.
"""

from repro.experiments.config import ExperimentScale, SMALL_SCALE, DEFAULT_SCALE

__all__ = ["ExperimentScale", "SMALL_SCALE", "DEFAULT_SCALE"]
