"""Figure 12: I/O cost vs computation per storage interface.

The paper decomposes the SIFT query time into "I/O Cost" (CPU time in
I/O-related functions) and "Computation" on eSSD x 8 (so IOPS never
limits) under io_uring, SPDK, and the XLFDD interface, next to the
in-memory execution.  The I/O CPU component shrinks by the interface
overhead ratio; compute stays put.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import run_e2lshos, tuned_e2lsh
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table

__all__ = ["Fig12Row", "run", "format_table"]


@dataclass(frozen=True)
class Fig12Row:
    """Per-query cost decomposition for one execution mode."""

    mode: str
    io_cost_ms: float
    compute_ms: float

    @property
    def total_ms(self) -> float:
        """Total CPU-side query cost."""
        return self.io_cost_ms + self.compute_ms


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    k: int = 1,
) -> list[Fig12Row]:
    """Decompose the tuned query's cost per interface."""
    sweep = tuned_e2lsh(dataset, scale, k=k)
    selected = sweep.tuned.selected
    rows = [
        Fig12Row(
            mode="in-memory",
            io_cost_ms=0.0,
            compute_ms=selected.mean_time_ns / 1e6,
        )
    ]
    for interface in ("io_uring", "spdk", "xlfdd"):
        device = "xlfdd" if interface == "xlfdd" else "essd"
        count = 12 if interface == "xlfdd" else 8
        result = run_e2lshos(dataset, scale, selected.knob, device, count, interface, k=k)
        n_queries = len(result.answers)
        rows.append(
            Fig12Row(
                mode=interface,
                io_cost_ms=result.engine.io_cpu_ns / n_queries / 1e6,
                compute_ms=result.engine.compute_ns / n_queries / 1e6,
            )
        )
    return rows


def format_table(rows: list[Fig12Row]) -> str:
    """Render the decomposition."""
    return render_table(
        ["mode", "I/O cost ms", "computation ms", "total ms"],
        [(r.mode, f"{r.io_cost_ms:.4f}", f"{r.compute_ms:.4f}", f"{r.total_ms:.4f}") for r in rows],
        title="Figure 12: per-query CPU cost decomposition by interface",
    )
