"""Table 6: index size and runtime memory usage.

E2LSHoS keeps a large index on storage but little in DRAM (hash-table
base addresses plus the occupancy filters and hash bank); SRS keeps its
whole, tiny index in DRAM.  Both also keep the database itself in DRAM,
so runtime memory usage ends up comparable — that is the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import built_e2lshos, dataset_for, tuned_e2lsh, _srs_index
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table
from repro.utils.units import format_bytes

__all__ = ["Table6Row", "run", "format_table"]


@dataclass(frozen=True)
class Table6Row:
    """Memory accounting for one dataset."""

    dataset: str
    database_bytes: int
    e2lshos_storage_bytes: int
    e2lshos_index_mem_bytes: int
    srs_index_mem_bytes: int

    @property
    def e2lshos_mem_usage_bytes(self) -> int:
        """E2LSHoS runtime DRAM: database + resident index data."""
        return self.database_bytes + self.e2lshos_index_mem_bytes

    @property
    def srs_mem_usage_bytes(self) -> int:
        """SRS runtime DRAM: database + in-memory index."""
        return self.database_bytes + self.srs_index_mem_bytes


def run(scale: ExperimentScale = DEFAULT_SCALE) -> list[Table6Row]:
    """Account index and memory sizes for every dataset."""
    rows = []
    for name in scale.datasets:
        dataset = dataset_for(name, scale)
        gamma = tuned_e2lsh(name, scale, k=1).tuned.selected.knob
        storage_index = built_e2lshos(name, scale, gamma)
        srs = _srs_index(name, scale)
        rows.append(
            Table6Row(
                dataset=name,
                database_bytes=dataset.data.nbytes,
                e2lshos_storage_bytes=storage_index.storage_bytes,
                e2lshos_index_mem_bytes=storage_index.built.dram_bytes,
                srs_index_mem_bytes=srs.index_memory_bytes,
            )
        )
    return rows


def format_table(rows: list[Table6Row]) -> str:
    """Render the memory comparison."""
    return render_table(
        [
            "dataset",
            "E2LSHoS index (storage)",
            "E2LSHoS mem usage",
            "(index mem)",
            "SRS mem usage",
            "(index mem)",
        ],
        [
            (
                r.dataset,
                format_bytes(r.e2lshos_storage_bytes),
                format_bytes(r.e2lshos_mem_usage_bytes),
                format_bytes(r.e2lshos_index_mem_bytes),
                format_bytes(r.srs_mem_usage_bytes),
                format_bytes(r.srs_index_mem_bytes),
            )
            for r in rows
        ],
        title="Table 6: index size and runtime memory usage",
    )
