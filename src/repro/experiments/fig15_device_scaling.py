"""Figure 15: query speed and device statistics vs number of devices.

Varying the number of cSSDs shows that query speed is proportional to
the delivered IOPS until the devices can sustain more than the workload
demands; near saturation the per-request latency inflates but, as the
paper stresses, latency by itself does not determine throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import dataset_for, run_e2lshos, tuned_e2lsh
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.tables import render_table
from repro.storage.profiles import DEVICE_PROFILES

__all__ = ["Fig15Row", "run", "format_table"]


@dataclass(frozen=True)
class Fig15Row:
    """Statistics at one device count."""

    devices: int
    queries_per_second: float
    observed_kiops: float
    mean_latency_us: float
    device_usage: float


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    dataset: str = "sift",
    device_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    k: int = 1,
) -> list[Fig15Row]:
    """Sweep the cSSD count for the tuned workload."""
    gamma = tuned_e2lsh(dataset, scale, k=k).tuned.selected.knob
    dataset_for(dataset, scale)  # warm the cache alongside the index
    max_iops = DEVICE_PROFILES["cssd"].max_iops
    rows = []
    for count in device_counts:
        result = run_e2lshos(dataset, scale, gamma, "cssd", count, "io_uring", k=k, repeat=6)
        stats = result.engine.device_stats
        rows.append(
            Fig15Row(
                devices=count,
                queries_per_second=result.queries_per_second,
                observed_kiops=stats.observed_iops() / 1e3,
                mean_latency_us=stats.mean_latency_ns / 1e3,
                device_usage=stats.observed_iops() / (count * max_iops),
            )
        )
    return rows


def format_table(rows: list[Fig15Row]) -> str:
    """Render the device-scaling sweep."""
    return render_table(
        ["devices", "queries/s", "observed kIOPS", "mean latency us", "device usage"],
        [
            (
                r.devices,
                f"{r.queries_per_second:.0f}",
                f"{r.observed_kiops:.0f}",
                f"{r.mean_latency_us:.0f}",
                f"{r.device_usage:.0%}",
            )
            for r in rows
        ],
        title="Figure 15: query speed and device statistics vs device count",
    )
