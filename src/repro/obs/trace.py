"""Per-query span tracing for the serving event loop.

The service and dispatcher call the hooks on a :class:`Tracer`; the
base class no-ops every hook (and is shared as :data:`NULL_TRACER`), so
an untraced run pays nothing but the virtual calls.  A
:class:`SpanTracer` records a span tree per admitted query:

- the **query span**: admission to last-shard completion;
- one **sub-query span** per shard, holding hedge-timer milestones
  (armed / fired / disarmed / suppressed);
- one **attempt span** per replica the sub-query was sent to (the
  primary, plus a hedge duplicate when the timer fired), each carrying
  its lane-queue timestamps (enqueue, flush) and — via the engine's
  :class:`~repro.storage.engine.TaskProfile` — its on-engine breakdown
  (first run, hash compute, I/O issue cost, device wait).

Every timestamp is *simulated* nanoseconds, so a fixed seed yields a
byte-identical exported trace (regression-tested); wall-clock
self-profiling lives in :mod:`repro.obs.selfprof` and never leaks into
the trace file.

The latency attribution (:class:`Attribution`) answers "where did the
p99 spend its time" the way PLSH/QALSH argue their scaling claims —
per-query time budgets, not end-of-run averages.  For a query it takes
the sub-query that *finished last* (the one that determined service
latency; the scatter-gather merge is charged zero time) and splits its
winning attempt's latency exactly into:

- ``hedge_ns``   — time spent waiting on the primary before the winning
  duplicate was issued (zero when the primary won);
- ``batch_ns``   — lane-queue time before the micro-batch flushed;
- ``queue_ns``   — flushed-to-first-run wait for a free CPU worker;
- ``hash_ns``    — the task's own Compute time (hashing, distances);
- ``io_ns``      — request-issue CPU plus device wait;
- ``other_ns``   — residual (clamped at zero; non-zero only for queries
  whose tail sub-query is not what completed them, which cannot happen
  under the current merge).

Export formats: a structured ``spans`` payload (consumed by ``repro
report``) embedded alongside standard Chrome ``trace_event`` JSON, so
one file both feeds the CLI and opens in Perfetto /
``chrome://tracing``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.utils.units import NS_PER_US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.engine import Completion

__all__ = [
    "Tracer",
    "SpanTracer",
    "NULL_TRACER",
    "AttemptSpan",
    "SubQuerySpan",
    "QuerySpan",
    "Attribution",
    "attribute",
    "TRACE_SCHEMA",
]

TRACE_SCHEMA = "repro-trace/1"


class Tracer:
    """No-op tracer: the hooks the serving stack calls, all stubs.

    ``enabled`` gates the *expensive* instrumentation (per-task engine
    profiling); the hook calls themselves are cheap enough to stay
    unconditional in the dispatcher and service.
    """

    enabled: bool = False

    def query_admitted(self, query_id: int, now_ns: float) -> None:
        """An admitted query entered the service."""

    def query_rejected(self, query_id: int, now_ns: float) -> None:
        """A query was shed by admission control."""

    def query_completed(self, query_id: int, finish_ns: float) -> None:
        """The query's last shard answered; the merge is charged zero."""

    def attempt_enqueued(
        self, query_id: int, shard: int, replica: int, hedge: bool, now_ns: float
    ) -> None:
        """A sub-query copy entered a replica lane."""

    def attempt_flushed(
        self, query_id: int, shard: int, replica: int, now_ns: float
    ) -> None:
        """The copy's micro-batch was released to the replica engine."""

    def attempt_cancelled(
        self, query_id: int, shard: int, replica: int, now_ns: float
    ) -> None:
        """A still-queued hedge loser was dropped from its lane."""

    def attempt_finished(
        self,
        query_id: int,
        shard: int,
        replica: int,
        completion: "Completion",
        winner: bool,
    ) -> None:
        """A copy ran to completion on its replica (winner or loser)."""

    def hedge_armed(self, query_id: int, shard: int, deadline_ns: float) -> None:
        """A hedge timer was armed at admission."""

    def hedge_fired(
        self, query_id: int, shard: int, replica: int, now_ns: float
    ) -> None:
        """The timer fired; a duplicate was issued to ``replica``."""

    def hedge_disarmed(self, query_id: int, shard: int, now_ns: float) -> None:
        """The primary answered before the deadline; timer cancelled."""

    def hedge_suppressed(self, query_id: int, shard: int, now_ns: float) -> None:
        """The timer fired but no replica could take the duplicate."""


#: Shared no-op tracer (stateless, safe to reuse across services).
NULL_TRACER = Tracer()


@dataclass
class AttemptSpan:
    """One copy of a sub-query on one replica."""

    replica: int
    #: True for a hedge duplicate, False for the primary.
    hedge: bool
    enqueue_ns: float
    flush_ns: float = math.nan
    start_ns: float = math.nan
    finish_ns: float = math.nan
    cancel_ns: float = math.nan
    compute_ns: float = 0.0
    io_cpu_ns: float = 0.0
    io_wait_ns: float = 0.0
    io_count: int = 0
    #: "win" | "loss" | "cancelled" | "pending"
    outcome: str = "pending"


@dataclass
class SubQuerySpan:
    """One shard's share of a query: the attempts plus hedge milestones."""

    shard: int
    admit_ns: float = math.nan
    done_ns: float = math.nan
    #: Index into ``attempts`` of the copy whose answer was used.
    winner: int | None = None
    hedge_deadline_ns: float = math.nan
    hedge_fire_ns: float = math.nan
    hedge_disarm_ns: float = math.nan
    hedge_suppressed: bool = False
    attempts: list[AttemptSpan] = field(default_factory=list)

    def attempt_for(self, replica: int) -> AttemptSpan:
        """The attempt routed to ``replica`` (unique per sub-query)."""
        for attempt in self.attempts:
            if attempt.replica == replica:
                return attempt
        raise KeyError(f"shard {self.shard} has no attempt on replica {replica}")


@dataclass
class QuerySpan:
    """Span tree of one admitted query."""

    query_id: int
    admit_ns: float = math.nan
    finish_ns: float = math.nan
    subqueries: dict[int, SubQuerySpan] = field(default_factory=dict)

    @property
    def latency_ns(self) -> float:
        """Admission-to-completion service latency."""
        return self.finish_ns - self.admit_ns


@dataclass(frozen=True)
class Attribution:
    """Where one query's service latency went (sums to ``latency_ns``)."""

    query_id: int
    latency_ns: float
    #: Shard whose sub-query finished last (set the latency).
    tail_shard: int
    #: True when a hedge duplicate produced the tail answer.
    hedge_won: bool
    batch_ns: float
    queue_ns: float
    hash_ns: float
    io_ns: float
    hedge_ns: float
    other_ns: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (embedded in the trace export)."""
        return {
            "tail_shard": self.tail_shard,
            "hedge_won": self.hedge_won,
            "batch_ns": self.batch_ns,
            "queue_ns": self.queue_ns,
            "hash_ns": self.hash_ns,
            "io_ns": self.io_ns,
            "hedge_ns": self.hedge_ns,
            "other_ns": self.other_ns,
        }


def attribute(span: QuerySpan) -> Attribution:
    """Break one completed query's latency into its components."""
    tail: SubQuerySpan | None = None
    for sub in span.subqueries.values():
        if sub.winner is None:
            continue
        if tail is None or sub.done_ns > tail.done_ns:
            tail = sub
    if tail is None or tail.winner is None:
        raise ValueError(f"query {span.query_id} has no completed sub-query")
    attempt = tail.attempts[tail.winner]
    hedge_ns = attempt.enqueue_ns - span.admit_ns if attempt.hedge else 0.0
    batch_ns = attempt.flush_ns - attempt.enqueue_ns
    queue_ns = attempt.start_ns - attempt.flush_ns
    hash_ns = attempt.compute_ns
    io_ns = attempt.io_cpu_ns + attempt.io_wait_ns
    accounted = hedge_ns + batch_ns + queue_ns + hash_ns + io_ns
    other_ns = max(0.0, span.latency_ns - accounted)
    return Attribution(
        query_id=span.query_id,
        latency_ns=span.latency_ns,
        tail_shard=tail.shard,
        hedge_won=attempt.hedge,
        batch_ns=batch_ns,
        queue_ns=queue_ns,
        hash_ns=hash_ns,
        io_ns=io_ns,
        hedge_ns=hedge_ns,
        other_ns=other_ns,
    )


def _clean(value: float) -> float | None:
    """NaN -> None so the export is strict JSON (Perfetto rejects NaN)."""
    return None if isinstance(value, float) and math.isnan(value) else value


class SpanTracer(Tracer):
    """Recording tracer: builds the span tree of every admitted query."""

    enabled = True

    def __init__(self) -> None:
        self.spans: dict[int, QuerySpan] = {}
        self.rejected: list[tuple[int, float]] = []

    # -- hooks ----------------------------------------------------------------

    def _query(self, query_id: int) -> QuerySpan:
        span = self.spans.get(query_id)
        if span is None:
            span = self.spans[query_id] = QuerySpan(query_id=query_id)
        return span

    def _sub(self, query_id: int, shard: int) -> SubQuerySpan:
        span = self._query(query_id)
        sub = span.subqueries.get(shard)
        if sub is None:
            sub = span.subqueries[shard] = SubQuerySpan(shard=shard)
        return sub

    def query_admitted(self, query_id: int, now_ns: float) -> None:
        self._query(query_id).admit_ns = now_ns

    def query_rejected(self, query_id: int, now_ns: float) -> None:
        self.rejected.append((query_id, now_ns))

    def query_completed(self, query_id: int, finish_ns: float) -> None:
        self._query(query_id).finish_ns = finish_ns

    def attempt_enqueued(
        self, query_id: int, shard: int, replica: int, hedge: bool, now_ns: float
    ) -> None:
        sub = self._sub(query_id, shard)
        if not hedge and math.isnan(sub.admit_ns):
            sub.admit_ns = now_ns
        sub.attempts.append(AttemptSpan(replica=replica, hedge=hedge, enqueue_ns=now_ns))

    def attempt_flushed(
        self, query_id: int, shard: int, replica: int, now_ns: float
    ) -> None:
        self._sub(query_id, shard).attempt_for(replica).flush_ns = now_ns

    def attempt_cancelled(
        self, query_id: int, shard: int, replica: int, now_ns: float
    ) -> None:
        attempt = self._sub(query_id, shard).attempt_for(replica)
        attempt.cancel_ns = now_ns
        attempt.outcome = "cancelled"

    def attempt_finished(
        self,
        query_id: int,
        shard: int,
        replica: int,
        completion: "Completion",
        winner: bool,
    ) -> None:
        sub = self._sub(query_id, shard)
        attempt = sub.attempt_for(replica)
        attempt.finish_ns = completion.finish_ns
        attempt.outcome = "win" if winner else "loss"
        profile = completion.profile
        if profile is not None:
            attempt.start_ns = profile.start_ns
            attempt.compute_ns = profile.compute_ns
            attempt.io_cpu_ns = profile.io_cpu_ns
            attempt.io_wait_ns = profile.io_wait_ns
            attempt.io_count = profile.io_count
        if winner:
            sub.done_ns = completion.finish_ns
            sub.winner = sub.attempts.index(attempt)

    def hedge_armed(self, query_id: int, shard: int, deadline_ns: float) -> None:
        self._sub(query_id, shard).hedge_deadline_ns = deadline_ns

    def hedge_fired(
        self, query_id: int, shard: int, replica: int, now_ns: float
    ) -> None:
        self._sub(query_id, shard).hedge_fire_ns = now_ns

    def hedge_disarmed(self, query_id: int, shard: int, now_ns: float) -> None:
        self._sub(query_id, shard).hedge_disarm_ns = now_ns

    def hedge_suppressed(self, query_id: int, shard: int, now_ns: float) -> None:
        self._sub(query_id, shard).hedge_suppressed = True

    # -- analysis -------------------------------------------------------------

    def completed_spans(self) -> list[QuerySpan]:
        """Spans of completed queries, by query id."""
        return [
            span
            for _, span in sorted(self.spans.items())
            if not math.isnan(span.finish_ns)
        ]

    def attributions(self) -> list[Attribution]:
        """Latency attribution of every completed query, by query id."""
        return [attribute(span) for span in self.completed_spans()]

    # -- export ---------------------------------------------------------------

    def spans_payload(self) -> dict[str, Any]:
        """Structured span payload (what ``repro report`` consumes)."""
        queries = []
        for span in self.completed_spans():
            attribution = attribute(span)
            queries.append(
                {
                    "query_id": span.query_id,
                    "admit_ns": span.admit_ns,
                    "finish_ns": span.finish_ns,
                    "latency_ns": span.latency_ns,
                    "attribution": attribution.as_dict(),
                    "subqueries": [
                        {
                            "shard": sub.shard,
                            "admit_ns": _clean(sub.admit_ns),
                            "done_ns": _clean(sub.done_ns),
                            "winner": sub.winner,
                            "hedge_deadline_ns": _clean(sub.hedge_deadline_ns),
                            "hedge_fire_ns": _clean(sub.hedge_fire_ns),
                            "hedge_disarm_ns": _clean(sub.hedge_disarm_ns),
                            "hedge_suppressed": sub.hedge_suppressed,
                            "attempts": [
                                {
                                    "replica": attempt.replica,
                                    "hedge": attempt.hedge,
                                    "enqueue_ns": _clean(attempt.enqueue_ns),
                                    "flush_ns": _clean(attempt.flush_ns),
                                    "start_ns": _clean(attempt.start_ns),
                                    "finish_ns": _clean(attempt.finish_ns),
                                    "cancel_ns": _clean(attempt.cancel_ns),
                                    "compute_ns": attempt.compute_ns,
                                    "io_cpu_ns": attempt.io_cpu_ns,
                                    "io_wait_ns": attempt.io_wait_ns,
                                    "io_count": attempt.io_count,
                                    "outcome": attempt.outcome,
                                }
                                for attempt in sub.attempts
                            ],
                        }
                        for _, sub in sorted(span.subqueries.items())
                    ],
                }
            )
        return {
            "schema": TRACE_SCHEMA,
            "rejected": len(self.rejected),
            "queries": queries,
        }

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome ``trace_event`` object (JSON Object Format).

        Loads directly in Perfetto / ``chrome://tracing``: query spans
        are async ``b``/``e`` events on a "service" process; each
        attempt is a complete ``X`` slice on the ``shard``/``replica``
        process/thread it ran on (args carry the breakdown); hedge
        fires and loser cancellations are instant events.  The
        structured span payload rides along under ``"spans"`` — viewers
        ignore unknown top-level keys.
        """
        us = 1.0 / NS_PER_US
        events: list[dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "service"},
            }
        ]
        named: set[tuple[int, int]] = set()
        for span in self.completed_spans():
            qid = span.query_id
            events.append(
                {
                    "ph": "b",
                    "cat": "query",
                    "id": qid,
                    "pid": 0,
                    "tid": 0,
                    "name": "query",
                    "ts": span.admit_ns * us,
                    "args": {"query_id": qid},
                }
            )
            for shard, sub in sorted(span.subqueries.items()):
                pid = shard + 1
                if (pid, -1) not in named:
                    named.add((pid, -1))
                    events.append(
                        {
                            "ph": "M",
                            "pid": pid,
                            "tid": 0,
                            "name": "process_name",
                            "args": {"name": f"shard {shard}"},
                        }
                    )
                for attempt in sub.attempts:
                    tid = attempt.replica
                    if (pid, tid) not in named:
                        named.add((pid, tid))
                        events.append(
                            {
                                "ph": "M",
                                "pid": pid,
                                "tid": tid,
                                "name": "thread_name",
                                "args": {"name": f"replica {tid}"},
                            }
                        )
                    if attempt.outcome == "cancelled":
                        events.append(
                            {
                                "ph": "i",
                                "s": "t",
                                "cat": "hedge",
                                "pid": pid,
                                "tid": tid,
                                "name": f"cancel q{qid}",
                                "ts": attempt.cancel_ns * us,
                            }
                        )
                        continue
                    if math.isnan(attempt.start_ns) or math.isnan(attempt.finish_ns):
                        continue  # pragma: no cover - incomplete attempt
                    name = f"q{qid}" + ("+hedge" if attempt.hedge else "")
                    events.append(
                        {
                            "ph": "X",
                            "cat": "attempt",
                            "pid": pid,
                            "tid": tid,
                            "name": name,
                            "ts": attempt.start_ns * us,
                            "dur": (attempt.finish_ns - attempt.start_ns) * us,
                            "args": {
                                "outcome": attempt.outcome,
                                "batch_wait_us": (attempt.flush_ns - attempt.enqueue_ns)
                                * us,
                                "queue_wait_us": (attempt.start_ns - attempt.flush_ns)
                                * us,
                                "hash_compute_us": attempt.compute_ns * us,
                                "io_us": (attempt.io_cpu_ns + attempt.io_wait_ns) * us,
                                "io_count": attempt.io_count,
                            },
                        }
                    )
                if not math.isnan(sub.hedge_fire_ns):
                    events.append(
                        {
                            "ph": "i",
                            "s": "p",
                            "cat": "hedge",
                            "pid": pid,
                            "tid": 0,
                            "name": f"hedge-fire q{qid}",
                            "ts": sub.hedge_fire_ns * us,
                        }
                    )
            events.append(
                {
                    "ph": "e",
                    "cat": "query",
                    "id": qid,
                    "pid": 0,
                    "tid": 0,
                    "name": "query",
                    "ts": span.finish_ns * us,
                }
            )
        return {
            "displayTimeUnit": "ms",
            "traceEvents": events,
            "spans": self.spans_payload(),
        }

    def write(self, path: str) -> None:
        """Write the Chrome trace (with embedded spans) to ``path``.

        Serialization is deterministic (sorted keys, fixed separators):
        the byte-identical-trace regression test depends on it.
        """
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1, sort_keys=True)
            handle.write("\n")
