"""Self-profiling of the simulator's own event loop.

The serving stack simulates millions of users; at that scale the
*simulator* — pure-Python per-event code — is the resource that runs
out first, so its wall-clock throughput (loop events per real second)
is the perf figure the ROADMAP tracks as a committed trajectory
(``BENCH_serving.json``, diffed by ``benchmarks/compare_bench.py``).

:class:`LoopProfile` counts each event the service loop processes by
type (completion / flush / hedge / arrival / update) — plain integer
increments,
cheap enough to leave always-on — and brackets the run with
``time.perf_counter`` for the wall-clock rate.  The per-type counts are
deterministic for a given seed; the wall-clock figures obviously are
not, which is why they live in the metrics export, never in the trace.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["LoopProfile"]


class LoopProfile:
    """Event counts and wall-clock throughput of one service run."""

    __slots__ = (
        "engine_steps",
        "flushes",
        "hedges",
        "arrivals",
        "rejections",
        "updates",
        "_wall_start",
        "wall_seconds",
    )

    def __init__(self) -> None:
        #: Engine-session resumptions (a task running until it parks or
        #: finishes) — the dominant event type at load.
        self.engine_steps = 0
        self.flushes = 0
        self.hedges = 0
        self.arrivals = 0
        #: Arrivals shed by admission control (subset of ``arrivals``).
        self.rejections = 0
        #: Ingest updates offered to admission (second traffic class).
        self.updates = 0
        self._wall_start: float | None = None
        self.wall_seconds = 0.0

    def start(self) -> None:
        """Mark the wall-clock start of the loop."""
        self._wall_start = time.perf_counter()

    def stop(self) -> None:
        """Mark the wall-clock end of the loop."""
        if self._wall_start is None:
            raise RuntimeError("LoopProfile.stop() before start()")
        self.wall_seconds = time.perf_counter() - self._wall_start
        self._wall_start = None

    @property
    def events_total(self) -> int:
        """Loop iterations that processed an event."""
        return (
            self.engine_steps + self.flushes + self.hedges + self.arrivals + self.updates
        )

    def checkpoint(self) -> dict[str, float]:
        """Wall figures as of *now*, usable mid-run.

        Unlike :meth:`as_dict` this does not require :meth:`stop`; the
        service's ``--profile-interval-us`` sampler calls it per metrics
        tick so vectorization wins show up per-phase, not just as one
        end-of-run average.
        """
        if self._wall_start is not None:
            wall = time.perf_counter() - self._wall_start
        else:
            wall = self.wall_seconds
        events = self.events_total
        return {
            "events_total": float(events),
            "wall_seconds": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
        }

    @property
    def events_per_sec(self) -> float:
        """Wall-clock event throughput of the simulator itself."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_total / self.wall_seconds

    def event_counts(self) -> dict[str, int]:
        """Deterministic per-event-type counts."""
        return {
            "engine_steps": self.engine_steps,
            "flushes": self.flushes,
            "hedges": self.hedges,
            "arrivals": self.arrivals,
            "rejections": self.rejections,
            "updates": self.updates,
        }

    def as_dict(self) -> dict[str, Any]:
        """Full profile including the (non-deterministic) wall figures."""
        payload: dict[str, Any] = dict(self.event_counts())
        payload["events_total"] = self.events_total
        payload["wall_seconds"] = self.wall_seconds
        payload["events_per_sec"] = self.events_per_sec
        return payload

    def publish(self, registry) -> None:
        """Mirror the profile into a :class:`MetricsRegistry`."""
        for name, value in self.event_counts().items():
            registry.counter(f"loop_{name}").inc(value)
        registry.gauge("loop_wall_seconds").set(self.wall_seconds)
        registry.gauge("loop_events_per_sec").set(self.events_per_sec)
