"""Observability for the serving stack: tracing, metrics, self-profiling.

A load-test run used to end in one aggregate :class:`ServiceReport`;
this package makes the run inspectable *per query* and *over time*:

- :mod:`repro.obs.trace` — a per-query span tracer threaded through the
  service event loop.  Each admitted query grows a span tree (admit ->
  per-shard sub-query -> per-replica attempt -> hedge duplicate ->
  completion) with simulated-clock timestamps and an attributed latency
  breakdown (batch wait, queue wait, hash compute, device I/O, hedge
  wait).  Exports Chrome ``trace_event`` JSON that opens directly in
  Perfetto / ``chrome://tracing``.
- :mod:`repro.obs.metrics` — a small metrics registry (counters,
  gauges, fixed-bucket histograms) plus a simulated-time timeline
  sampler, so mid-run degradation (fault storms, flash crowds) is
  visible instead of averaged away.
- :mod:`repro.obs.selfprof` — wall-clock self-profiling of the event
  loop itself (events/sec, per-event-type counts): at production QPS
  the *simulator* is the bottleneck, and its perf trajectory is a
  committed artifact (``BENCH_serving.json``).
- :mod:`repro.obs.report` — renders a trace as an ASCII span waterfall
  and a tail-attribution table (the ``repro report`` subcommand).

Tracing is zero-cost when off: the default :data:`NULL_TRACER` no-ops
every hook and keeps per-task engine profiling disabled.  Everything a
tracer records is driven by the *simulated* clock, so a given seed
produces a byte-identical exported trace (regression-tested).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timeline
from repro.obs.report import render_report, tail_attribution, waterfall
from repro.obs.selfprof import LoopProfile
from repro.obs.trace import NULL_TRACER, Attribution, SpanTracer, Tracer

__all__ = [
    "Attribution",
    "Counter",
    "Gauge",
    "Histogram",
    "LoopProfile",
    "MetricsRegistry",
    "NULL_TRACER",
    "SpanTracer",
    "Timeline",
    "Tracer",
    "render_report",
    "tail_attribution",
    "waterfall",
]
