"""Counters, gauges, fixed-bucket histograms, and a timeline sampler.

A deliberately small registry in the Prometheus mold: named metrics,
created on first use, snapshottable as plain dicts.  Histograms use
*fixed* bucket bounds chosen up front — sampling into fixed buckets is
O(log buckets) per observation and the export is shape-stable across
runs, which is what a diffable perf artifact needs (contrast the exact
nearest-rank percentiles in :mod:`repro.serving.stats`, which keep
every sample).

:class:`Timeline` samples a run *in simulated time*: the service loop
calls :meth:`Timeline.advance` with the next event's timestamp and the
sampler emits one row per elapsed interval (in-flight queries, lane
depths, per-replica outstanding I/O, hedge rates, ...).  Sampling on
the simulated clock keeps the timeline deterministic for a given seed
and makes mid-run degradation — a fault storm, a flash crowd — visible
where an end-of-run aggregate would average it away.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable, Sequence
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timeline",
    "LATENCY_BUCKETS_NS",
]

#: Default latency histogram bounds: 50 us .. 100 ms, roughly 1-2-5.
LATENCY_BUCKETS_NS: tuple[float, ...] = (
    50e3,
    100e3,
    200e3,
    500e3,
    1e6,
    2e6,
    5e6,
    10e6,
    20e6,
    50e6,
    100e6,
)


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow.

    ``bounds`` are inclusive upper bounds in ascending order; a sample
    lands in the first bucket whose bound is >= the sample, or in the
    implicit +inf overflow bucket.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {ordered}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile.

        A bucketed approximation (reports +inf for overflow samples) —
        use :func:`repro.serving.stats.percentile` for exact SLOs.
        """
        if not 0 < q <= 1:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.total == 0:
            raise ValueError("no samples to take a quantile of")
        rank = q * self.total
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return float("inf")

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshottable."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory: Callable[[], Any]) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_NS
    ) -> Histogram:
        """Get or create the histogram ``name`` (bounds fixed at creation)."""
        return self._get(name, Histogram, lambda: Histogram(bounds))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as plain dicts, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}


class Timeline:
    """Periodic sampling of run state on the simulated clock.

    The driver calls :meth:`advance` with the timestamp of the event it
    is *about to* process; the timeline emits one sample per elapsed
    ``interval_ns``, each stamped with the exact (deterministic) due
    time and filled by ``sample_fn(t_ns)`` — so every sample reflects
    the state as of the last event *before* its due time.
    """

    def __init__(self, interval_ns: float) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.interval_ns = interval_ns
        self.samples: list[dict[str, Any]] = []
        self._next_due_ns = interval_ns

    def advance(
        self, now_ns: float, sample_fn: Callable[[float], dict[str, Any]]
    ) -> None:
        """Emit every sample due at or before ``now_ns``."""
        while self._next_due_ns <= now_ns:
            row = {"t_ns": self._next_due_ns}
            row.update(sample_fn(self._next_due_ns))
            self.samples.append(row)
            self._next_due_ns += self.interval_ns

    def as_dict(self) -> dict[str, Any]:
        return {"interval_ns": self.interval_ns, "samples": self.samples}
