"""Render an exported trace: span waterfall + tail attribution.

This is the analysis half of the tracer: ``repro loadtest --trace
t.json`` writes the trace, ``repro report t.json`` answers "where did
the p99 spend its time" — the per-query time-budget argument PLSH and
QALSH make for their scaling claims, applied to our own serving stack.

Works on the structured ``spans`` payload the tracer embeds in its
Chrome-trace export (a bare spans payload is accepted too), so the same
file drives both Perfetto and this module.
"""

from __future__ import annotations

import json
from typing import Any

from repro.serving.stats import percentile
from repro.utils.units import format_time

__all__ = ["load_trace", "tail_attribution", "waterfall", "render_report", "COMPONENTS"]

#: Attribution components, in waterfall order.
COMPONENTS = ("batch_ns", "queue_ns", "hash_ns", "io_ns", "hedge_ns", "other_ns")
_LABELS = {
    "batch_ns": "batch",
    "queue_ns": "queue",
    "hash_ns": "hash",
    "io_ns": "io",
    "hedge_ns": "hedge",
    "other_ns": "other",
}


def load_trace(path: str) -> dict[str, Any]:
    """Read a trace file and return its structured spans payload."""
    with open(path) as handle:
        payload = json.load(handle)
    spans = payload.get("spans", payload)
    if "queries" not in spans:
        raise ValueError(
            f"{path} is not a repro trace (no 'spans.queries'); "
            "export one with 'repro loadtest --trace'"
        )
    return spans


def _tail_queries(spans: dict[str, Any], pct: float, top: int) -> list[dict[str, Any]]:
    queries = spans["queries"]
    if not queries:
        return []
    threshold = percentile([q["latency_ns"] for q in queries], pct)
    tail = [q for q in queries if q["latency_ns"] >= threshold]
    tail.sort(key=lambda q: (-q["latency_ns"], q["query_id"]))
    return tail[:top]


def tail_attribution(spans: dict[str, Any], pct: float = 99.0, top: int = 5) -> str:
    """Table: latency breakdown of the slowest (>= p``pct``) queries."""
    tail = _tail_queries(spans, pct, top)
    if not tail:
        return "no completed queries in trace"
    header = (
        f"{'query':>7s} {'latency':>10s} "
        + " ".join(f"{_LABELS[c]:>10s}" for c in COMPONENTS)
        + f" {'tail shard':>10s}"
    )
    lines = [f"tail attribution (queries at or above p{pct:g}, slowest first):", header]
    for query in tail:
        attribution = query["attribution"]
        shard = attribution["tail_shard"]
        shard_label = f"#{shard}" + ("+h" if attribution["hedge_won"] else "")
        lines.append(
            f"{query['query_id']:>7d} {format_time(query['latency_ns']):>10s} "
            + " ".join(f"{format_time(attribution[c]):>10s}" for c in COMPONENTS)
            + f" {shard_label:>10s}"
        )
    total = sum(q["latency_ns"] for q in tail)
    if total > 0:
        shares = " ".join(
            f"{_LABELS[c]:s} {sum(q['attribution'][c] for q in tail) / total:.0%}"
            for c in COMPONENTS
        )
        lines.append(f"tail time share: {shares}")
    return "\n".join(lines)


def waterfall(query: dict[str, Any], width: int = 64) -> str:
    """ASCII waterfall of one query's span tree.

    Each attempt renders as a bar over the query's lifetime:
    ``.`` lane-queue (batch wait), ``-`` waiting for a CPU worker,
    ``#`` running on the engine (hash compute + I/O), ``x`` the point a
    queued hedge loser was cancelled.
    """
    admit = query["admit_ns"]
    span_ns = max(query["latency_ns"], 1.0)

    def column(t_ns: float) -> int:
        return min(width - 1, max(0, int((t_ns - admit) / span_ns * width)))

    lines = [
        f"query {query['query_id']}: {format_time(query['latency_ns'])} "
        f"(admit +0, finish +{format_time(query['latency_ns'])})"
    ]
    for sub in query["subqueries"]:
        for position, attempt in enumerate(sub["attempts"]):
            bar = [" "] * width
            start_col = column(attempt["enqueue_ns"])
            if attempt["outcome"] == "cancelled":
                end_col = column(attempt["cancel_ns"])
                for i in range(start_col, end_col):
                    bar[i] = "."
                bar[end_col] = "x"
            else:
                flush_col = column(attempt["flush_ns"])
                run_col = column(attempt["start_ns"])
                end_col = column(attempt["finish_ns"])
                for i in range(start_col, flush_col):
                    bar[i] = "."
                for i in range(flush_col, run_col):
                    bar[i] = "-"
                for i in range(run_col, end_col + 1):
                    bar[i] = "#"
            kind = "hedge" if attempt["hedge"] else "prim "
            marker = "*" if sub["winner"] == position else " "
            label = f"  s{sub['shard']} r{attempt['replica']} {kind}{marker}"
            outcome = attempt["outcome"]
            lines.append(f"{label:<16s}|{''.join(bar)}| {outcome}")
    lines.append(f"{'':<16s} legend: . batch wait  - queue wait  # on engine")
    return "\n".join(lines)


def render_report(
    spans: dict[str, Any], pct: float = 99.0, top: int = 5, width: int = 64
) -> str:
    """Full text report: run summary, slowest-query waterfall, tail table."""
    queries = spans["queries"]
    if not queries:
        return "trace holds no completed queries"
    latencies = [q["latency_ns"] for q in queries]
    hedge_wins = sum(1 for q in queries if q["attribution"]["hedge_won"])
    lines = [
        f"{len(queries)} traced queries, {spans.get('rejected', 0)} rejected; "
        f"p50 {format_time(percentile(latencies, 50))}, "
        f"p99 {format_time(percentile(latencies, 99))}, "
        f"{hedge_wins} completed via a hedge duplicate",
        "",
    ]
    slowest = max(queries, key=lambda q: (q["latency_ns"], q["query_id"]))
    lines.append(waterfall(slowest, width=width))
    lines.append("")
    lines.append(tail_attribution(spans, pct=pct, top=top))
    return "\n".join(lines)
