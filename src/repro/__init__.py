"""Reproduction of "Implementing and Evaluating E2LSH on Storage" (EDBT 2023).

The package rebuilds the paper's full system: the E2LSH algorithm and
its external-memory adaptation (E2LSHoS), the byte-accurate on-storage
index layout, a discrete-event model of the paper's storage devices and
I/O interfaces, the small-index competitors (SRS, QALSH) with their
index substrates, and the Sec. 4 cost-analysis framework.

Start with :mod:`repro.core` (the algorithms), :mod:`repro.storage`
(the simulated substrate), and ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
