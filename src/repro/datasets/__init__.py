"""Synthetic analogs of the paper's Table 1 datasets.

The paper evaluates on eight public datasets (MSONG, SIFT, GIST, RAND,
GLOVE, GAUSS, MNIST, BIGANN).  We cannot ship those corpora, and the
evaluation depends on their *hardness profile* — Relative Contrast (RC)
and Local Intrinsic Dimensionality (LID) — rather than on the specific
images or audio.  Each generator here reproduces a dataset's
dimensionality, value type, and approximate hardness at a reduced scale;
:mod:`repro.datasets.metrics` implements RC and LID so the Table 1
benchmark can verify the hardness ordering is preserved.
"""

from repro.datasets.base import Dataset
from repro.datasets.metrics import local_intrinsic_dimensionality, relative_contrast
from repro.datasets.registry import DATASET_NAMES, DATASET_SPECS, load_dataset

__all__ = [
    "Dataset",
    "relative_contrast",
    "local_intrinsic_dimensionality",
    "DATASET_NAMES",
    "DATASET_SPECS",
    "load_dataset",
]
