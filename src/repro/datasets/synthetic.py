"""Generators for the eight dataset analogs (paper Table 1).

Design rules:

- dimensionality and value type follow the paper (large d values are
  scaled down by a constant factor so the pure-Python reproduction stays
  fast; the scaling is recorded in DESIGN.md),
- hardness is controlled by the cluster structure: tight, well-separated
  clusters give high Relative Contrast and low LID (MSONG, SIFT, MNIST,
  BIGANN), while structureless data gives RC near 1 and LID near d
  (RAND, GAUSS),
- queries are drawn from the same process as the database (the paper
  uses the query sets accompanying each dataset, which are held-out
  samples of the same distribution).

Coordinate scales are chosen so the radius ladder (Sec. 2.3) has a
single-digit-to-low-teens rung count, matching Table 4's regime.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import rng_for

__all__ = [
    "make_msong",
    "make_sift",
    "make_gist",
    "make_rand",
    "make_glove",
    "make_gauss",
    "make_mnist",
    "make_bigann",
]


def _clustered(
    rng: np.random.Generator,
    n: int,
    d: int,
    n_clusters: int,
    center_scale: float,
    noise_scale: float,
    latent_dim: int | None = None,
) -> np.ndarray:
    """Gaussian-mixture points, optionally on a low-dimensional manifold.

    ``latent_dim`` embeds cluster noise in a ``latent_dim``-dimensional
    subspace, lowering the local intrinsic dimensionality the way real
    feature corpora (audio/image descriptors) do.
    """
    centers = rng.normal(scale=center_scale, size=(n_clusters, d))
    assignment = rng.integers(0, n_clusters, size=n)
    if latent_dim is None:
        noise = rng.normal(scale=noise_scale, size=(n, d))
    else:
        basis = rng.normal(size=(latent_dim, d)) / np.sqrt(latent_dim)
        noise = rng.normal(scale=noise_scale, size=(n, latent_dim)) @ basis
    return centers[assignment] + noise


def _split(points: np.ndarray, n_queries: int) -> tuple[np.ndarray, np.ndarray]:
    data = np.ascontiguousarray(points[:-n_queries], dtype=np.float32)
    queries = np.ascontiguousarray(points[-n_queries:], dtype=np.float32)
    return data, queries


def _quantize_bytes(points: np.ndarray) -> np.ndarray:
    """Clip and round to the byte range used by SIFT/MNIST-style data."""
    return np.clip(np.round(points), 0, 255).astype(np.float32)


def make_msong(n: int = 20_000, n_queries: int = 50, d: int = 140, seed: int = 0) -> Dataset:
    """Audio-feature analog (MSONG): easy, strongly clustered floats."""
    rng = rng_for(seed, f"msong-{n}-{d}")
    points = _clustered(
        rng, n + n_queries, d, n_clusters=80, center_scale=6.0, noise_scale=1.2, latent_dim=24
    )
    data, queries = _split(points, n_queries)
    return Dataset(name="msong", data=data, queries=queries, value_type="float", kind="audio")


def make_sift(n: int = 20_000, n_queries: int = 50, d: int = 128, seed: int = 0) -> Dataset:
    """SIFT descriptor analog: byte-valued, clustered, moderately easy."""
    rng = rng_for(seed, f"sift-{n}-{d}")
    points = _clustered(
        rng, n + n_queries, d, n_clusters=120, center_scale=28.0, noise_scale=9.0, latent_dim=32
    )
    points = _quantize_bytes(points + 120.0)
    data, queries = _split(points, n_queries)
    return Dataset(name="sift", data=data, queries=queries, value_type="byte", kind="image")


def make_gist(n: int = 20_000, n_queries: int = 50, d: int = 320, seed: int = 0) -> Dataset:
    """GIST analog (paper d=960, scaled 3x): hard, high-LID floats."""
    rng = rng_for(seed, f"gist-{n}-{d}")
    points = _clustered(
        rng, n + n_queries, d, n_clusters=40, center_scale=1.1, noise_scale=1.0, latent_dim=160
    )
    data, queries = _split(points, n_queries)
    return Dataset(name="gist", data=data, queries=queries, value_type="float", kind="image")


def make_rand(n: int = 20_000, n_queries: int = 50, d: int = 100, seed: int = 0) -> Dataset:
    """Uniform random floats in [0, scale]^d — nearly contrast-free."""
    rng = rng_for(seed, f"rand-{n}-{d}")
    points = rng.random((n + n_queries, d)) * 12.0
    data, queries = _split(points, n_queries)
    return Dataset(name="rand", data=data, queries=queries, value_type="float", kind="synthetic")


def make_glove(n: int = 20_000, n_queries: int = 50, d: int = 100, seed: int = 0) -> Dataset:
    """Word-embedding analog (GLOVE): overlapping clusters, varied norms."""
    rng = rng_for(seed, f"glove-{n}-{d}")
    points = _clustered(
        rng, n + n_queries, d, n_clusters=300, center_scale=1.4, noise_scale=1.0, latent_dim=70
    )
    norms = rng.lognormal(mean=0.0, sigma=0.25, size=(n + n_queries, 1))
    points = points * norms
    data, queries = _split(points, n_queries)
    return Dataset(name="glove", data=data, queries=queries, value_type="float", kind="text")


def make_gauss(n: int = 20_000, n_queries: int = 50, d: int = 160, seed: int = 0) -> Dataset:
    """GAUSS analog (paper d=512, scaled): iid normal — the hardest set."""
    rng = rng_for(seed, f"gauss-{n}-{d}")
    points = rng.normal(scale=3.0, size=(n + n_queries, d))
    data, queries = _split(points, n_queries)
    return Dataset(name="gauss", data=data, queries=queries, value_type="float", kind="synthetic")


def make_mnist(n: int = 20_000, n_queries: int = 50, d: int = 196, seed: int = 0) -> Dataset:
    """MNIST analog (28x28 scaled to 14x14): sparse byte images, easy."""
    rng = rng_for(seed, f"mnist-{n}-{d}")
    points = _clustered(
        rng, n + n_queries, d, n_clusters=60, center_scale=55.0, noise_scale=22.0, latent_dim=20
    )
    # Digit images are mostly background: zero out low-intensity pixels.
    points = points + 40.0
    points[points < 70.0] = 0.0
    points = _quantize_bytes(points)
    data, queries = _split(points, n_queries)
    return Dataset(name="mnist", data=data, queries=queries, value_type="byte", kind="image")


def make_bigann(n: int = 100_000, n_queries: int = 50, d: int = 128, seed: int = 0) -> Dataset:
    """BIGANN analog: SIFT-like bytes at the largest scale we sweep."""
    rng = rng_for(seed, f"bigann-{n}-{d}")
    points = _clustered(
        rng, n + n_queries, d, n_clusters=256, center_scale=28.0, noise_scale=9.0, latent_dim=32
    )
    points = _quantize_bytes(points + 120.0)
    data, queries = _split(points, n_queries)
    return Dataset(name="bigann", data=data, queries=queries, value_type="byte", kind="image")
