"""Dataset registry: Table 1 rows mapped to generators and E2LSH settings.

Each spec records the paper's reference figures (n in thousands, d, RC,
LID) alongside the analog generator and the per-dataset E2LSH exponent
``rho`` used by the experiments (the paper chooses L per dataset,
Table 4; the effective rho follows from L = n^rho).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.datasets import synthetic

__all__ = ["DatasetSpec", "DATASET_SPECS", "DATASET_NAMES", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset analog and its paper-reference figures."""

    name: str
    generator: Callable[..., Dataset]
    #: Paper Table 1 reference values (for EXPERIMENTS.md comparisons).
    paper_n_thousands: float
    paper_d: int
    paper_rc: float
    paper_lid: float
    paper_type: str
    #: Paper Table 4 reference values.
    paper_l: int
    paper_total_radii: int
    paper_avg_radii: float
    paper_n_io_inf: float
    #: Index-size exponent used by our experiments (L = n^rho).
    rho: float = 0.30

    def load(self, n: int | None = None, n_queries: int = 50, seed: int = 0) -> Dataset:
        """Instantiate the analog (``n=None`` uses the generator default)."""
        kwargs: dict[str, int] = {"n_queries": n_queries, "seed": seed}
        if n is not None:
            kwargs["n"] = n
        return self.generator(**kwargs)


DATASET_SPECS: dict[str, DatasetSpec] = {
    "msong": DatasetSpec(
        name="msong", generator=synthetic.make_msong,
        paper_n_thousands=983, paper_d=420, paper_rc=4.04, paper_lid=23.8,
        paper_type="Audio", paper_l=16, paper_total_radii=11,
        paper_avg_radii=5.76, paper_n_io_inf=133.6, rho=0.28,
    ),
    "sift": DatasetSpec(
        name="sift", generator=synthetic.make_sift,
        paper_n_thousands=1_000, paper_d=128, paper_rc=3.20, paper_lid=21.7,
        paper_type="Image", paper_l=25, paper_total_radii=11,
        paper_avg_radii=9.08, paper_n_io_inf=347.5, rho=0.32,
    ),
    "gist": DatasetSpec(
        name="gist", generator=synthetic.make_gist,
        paper_n_thousands=1_000, paper_d=960, paper_rc=2.14, paper_lid=47.3,
        paper_type="Image", paper_l=32, paper_total_radii=4,
        paper_avg_radii=1.70, paper_n_io_inf=48.7, rho=0.35,
    ),
    "rand": DatasetSpec(
        name="rand", generator=synthetic.make_rand,
        paper_n_thousands=1_000, paper_d=100, paper_rc=1.42, paper_lid=49.6,
        paper_type="Synthetic", paper_l=48, paper_total_radii=4,
        paper_avg_radii=3.00, paper_n_io_inf=196.5, rho=0.39,
    ),
    "glove": DatasetSpec(
        name="glove", generator=synthetic.make_glove,
        paper_n_thousands=1_183, paper_d=100, paper_rc=2.20, paper_lid=22.1,
        paper_type="Text", paper_l=51, paper_total_radii=5,
        paper_avg_radii=3.82, paper_n_io_inf=317.2, rho=0.40,
    ),
    "gauss": DatasetSpec(
        name="gauss", generator=synthetic.make_gauss,
        paper_n_thousands=2_000, paper_d=512, paper_rc=1.14, paper_lid=147.1,
        paper_type="Synthetic", paper_l=19, paper_total_radii=8,
        paper_avg_radii=6.00, paper_n_io_inf=190.8, rho=0.30,
    ),
    "mnist": DatasetSpec(
        name="mnist", generator=synthetic.make_mnist,
        paper_n_thousands=8_000, paper_d=784, paper_rc=3.00, paper_lid=20.4,
        paper_type="Image", paper_l=18, paper_total_radii=13,
        paper_avg_radii=11.60, paper_n_io_inf=393.7, rho=0.29,
    ),
    "bigann": DatasetSpec(
        name="bigann", generator=synthetic.make_bigann,
        paper_n_thousands=1_000_000, paper_d=128, paper_rc=3.55, paper_lid=25.4,
        paper_type="Image", paper_l=48, paper_total_radii=11,
        paper_avg_radii=9.03, paper_n_io_inf=791.0, rho=0.34,
    ),
}

DATASET_NAMES: tuple[str, ...] = tuple(DATASET_SPECS)


def load_dataset(
    name: str, n: int | None = None, n_queries: int = 50, seed: int = 0
) -> Dataset:
    """Load one analog by name."""
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_SPECS)}")
    return DATASET_SPECS[name].load(n=n, n_queries=n_queries, seed=seed)
