"""Dataset container shared by all generators and experiments."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["Dataset"]


@dataclass(frozen=True, eq=False)
class Dataset:
    """A database plus its query set.

    ``data`` is always float32 for the math; ``value_type`` records
    whether the source values were bytes (SIFT, MNIST, BIGANN) or floats,
    which matters for the paper's Table 1 and for distance-kernel cost
    accounting.
    """

    name: str
    data: np.ndarray
    queries: np.ndarray
    value_type: str = "float"
    kind: str = "synthetic"

    def __post_init__(self) -> None:
        if self.data.ndim != 2 or self.queries.ndim != 2:
            raise ValueError("data and queries must be 2-D arrays")
        if self.data.shape[1] != self.queries.shape[1]:
            raise ValueError(
                f"dimension mismatch: data d={self.data.shape[1]}, "
                f"queries d={self.queries.shape[1]}"
            )
        if self.value_type not in ("float", "byte"):
            raise ValueError(f"value_type must be 'float' or 'byte', got {self.value_type!r}")

    @property
    def n(self) -> int:
        """Database size."""
        return self.data.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.data.shape[1]

    @property
    def n_queries(self) -> int:
        """Number of queries."""
        return self.queries.shape[0]

    def subset(self, n: int) -> "Dataset":
        """First ``n`` database objects with the same query set.

        Used by the sublinearity experiment (Figure 14), which takes
        increasing subsets of the BIGANN analog.
        """
        if not 1 <= n <= self.n:
            raise ValueError(f"subset size {n} outside [1, {self.n}]")
        return replace(self, data=self.data[:n])

    def with_queries(self, queries: np.ndarray) -> "Dataset":
        """Same database with a different query set."""
        return replace(self, queries=np.asarray(queries, dtype=np.float32))

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, n={self.n}, d={self.d}, "
            f"queries={self.n_queries}, {self.value_type})"
        )
