"""Dataset hardness metrics: Relative Contrast and LID (paper Table 1).

- Relative Contrast (He et al. 2012): the ratio of the mean distance
  from a query to the database over the distance to the query's nearest
  neighbor, averaged over queries.  RC near 1 means neighbors are barely
  distinguishable from random points (hard); large RC means easy.
- Local Intrinsic Dimensionality (Amsaleg et al. 2015): the
  maximum-likelihood estimator ``LID(q) = -(mean_i log(r_i / r_k))^-1``
  over the k nearest distances ``r_1 <= ... <= r_k``, averaged over
  queries.  Larger LID means harder.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relative_contrast", "local_intrinsic_dimensionality", "pairwise_distances"]


def pairwise_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of shape (n_queries, n_data)."""
    queries = np.asarray(queries, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    sq = (queries**2).sum(axis=1)[:, None] + (data**2).sum(axis=1)[None, :]
    sq -= 2.0 * (queries @ data.T)
    return np.sqrt(np.maximum(sq, 0.0))


def relative_contrast(
    data: np.ndarray,
    queries: np.ndarray,
    sample_size: int = 5_000,
    seed: int = 0,
) -> float:
    """Mean over queries of (mean distance / nearest-neighbor distance).

    The mean distance is estimated on a database sample of
    ``sample_size``; the nearest distance is exact.
    """
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    rng = np.random.default_rng(seed)
    if data.shape[0] > sample_size:
        sample = data[rng.choice(data.shape[0], sample_size, replace=False)]
    else:
        sample = data
    mean_dist = pairwise_distances(queries, sample).mean(axis=1)
    nn_dist = pairwise_distances(queries, data).min(axis=1)
    nn_dist = np.maximum(nn_dist, 1e-12)
    return float((mean_dist / nn_dist).mean())


def local_intrinsic_dimensionality(
    data: np.ndarray,
    queries: np.ndarray,
    k: int = 20,
) -> float:
    """MLE estimate of LID averaged over the query set."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    distances = pairwise_distances(queries, data)
    distances.sort(axis=1)
    estimates = []
    for row in distances:
        neighbors = row[row > 1e-12][:k]
        if neighbors.size < 2:
            continue
        r_k = neighbors[-1]
        logs = np.log(neighbors / r_k)
        mean_log = logs[:-1].mean() if neighbors.size > 1 else 0.0
        if mean_log < 0:
            estimates.append(-1.0 / mean_log)
    if not estimates:
        raise ValueError("could not estimate LID: queries coincide with data")
    return float(np.mean(estimates))
