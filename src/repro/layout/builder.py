"""On-storage index construction (paper Sec. 5.3).

For every (radius rung, compound hash) pair the builder hashes all
objects, groups them into buckets, writes the buckets as chains of
fixed-size blocks, and finally writes the hash table pointing at the
chain heads.  All per-object work is vectorized: one argsort groups the
objects of a table, and block images (headers plus 5-byte object infos)
are assembled with NumPy scatter writes and committed with a single
``store.write`` per table.

What stays in DRAM afterwards mirrors the paper's E2LSHoS runtime: the
hash-table base addresses, the projection bank, and a small per-table
*occupancy bitmap* used to skip I/O for empty buckets (Sec. 4.3 notes
"empty buckets are not counted as it is easy to avoid issuing I/Os for
them").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.layout.bucket import (
    BLOCK_HEADER_SIZE,
    DEFAULT_BLOCK_SIZE,
    NULL_ADDRESS,
    entries_per_block,
)
from repro.layout.hash_table import OnStorageHashTable
from repro.layout.object_info import OBJECT_INFO_SIZE, ObjectInfoCodec, default_table_bits
from repro.storage.blockstore import BlockStore

__all__ = ["IndexBuilder", "BuiltIndex", "TableHandle", "BuildStats"]


@dataclass(frozen=True)
class TableHandle:
    """DRAM-resident handle of one on-storage hash table."""

    table: OnStorageHashTable
    #: Sorted 32-bit hash values present in this table.  This is the
    #: in-DRAM *occupancy filter*: Sec. 4.3 does not charge I/O for
    #: probes of empty buckets ("it is easy to avoid issuing I/Os for
    #: them"), and an exact membership filter makes the implementation's
    #: I/O count match the paper's N_io accounting bit for bit.  It
    #: costs 4 bytes per object per table, which the DRAM accounting of
    #: Table 6 includes.
    present_values: np.ndarray
    #: Number of non-empty buckets written.
    n_buckets: int
    #: Number of bucket blocks written.
    n_blocks: int
    #: Bytes occupied by this table's bucket blocks (compact allocation).
    bucket_bytes: int = 0

    def contains(self, hash_value: int) -> bool:
        """Exact membership test for a 32-bit compound hash value."""
        position = int(np.searchsorted(self.present_values, hash_value))
        return (
            position < self.present_values.size
            and int(self.present_values[position]) == hash_value
        )


@dataclass
class BuildStats:
    """Aggregate construction statistics (feeds Table 6)."""

    n_tables: int = 0
    n_buckets: int = 0
    n_blocks: int = 0
    table_bytes: int = 0
    bucket_bytes: int = 0

    @property
    def index_storage_bytes(self) -> int:
        """Total on-storage index size (hash tables + buckets)."""
        return self.table_bytes + self.bucket_bytes


@dataclass
class BuiltIndex:
    """Everything E2LSHoS needs at query time."""

    store: BlockStore
    codec: ObjectInfoCodec
    bank: CompoundHashBank
    params: E2LSHParams
    ladder: RadiusLadder
    block_size: int
    #: tables[rung][li]
    tables: list[list[TableHandle]] = field(default_factory=list)
    stats: BuildStats = field(default_factory=BuildStats)

    @property
    def dram_bytes(self) -> int:
        """DRAM kept by the index at runtime (Table 6 "Index mem"):
        table base addresses, occupancy filters, and the hash bank."""
        handles = sum(len(rung) for rung in self.tables)
        filters = sum(h.present_values.nbytes for rung in self.tables for h in rung)
        return handles * 8 + filters + self.bank.memory_bytes


class IndexBuilder:
    """Builds a :class:`BuiltIndex` for one dataset."""

    def __init__(
        self,
        store: BlockStore,
        params: E2LSHParams,
        ladder: RadiusLadder,
        block_size: int = DEFAULT_BLOCK_SIZE,
        table_bits: int | None = None,
        seed: int = 0,
    ) -> None:
        if block_size <= BLOCK_HEADER_SIZE + OBJECT_INFO_SIZE:
            raise ValueError(f"block_size {block_size} too small for any entry")
        self.store = store
        self.params = params
        self.ladder = ladder
        self.block_size = block_size
        self.table_bits = table_bits if table_bits is not None else default_table_bits(params.n)
        self.codec = ObjectInfoCodec(n_objects=params.n, table_bits=self.table_bits)
        self.seed = seed

    def build(self, data: np.ndarray, bank: CompoundHashBank | None = None) -> BuiltIndex:
        """Hash ``data`` and write the full index; returns the handle set.

        Passing ``bank`` reuses hash functions tuned elsewhere (e.g. the
        in-memory index used for accuracy calibration), so the on-storage
        index answers queries identically.
        """
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] != self.params.n:
            raise ValueError(
                f"data must have shape ({self.params.n}, d), got {data.shape}"
            )
        if bank is None:
            bank = CompoundHashBank.create(
                d=data.shape[1], m=self.params.m, L=self.params.L, w=self.params.w, seed=self.seed
            )
        if bank.m != self.params.m or bank.L != self.params.L:
            raise ValueError(
                f"bank has (m={bank.m}, L={bank.L}), params need "
                f"(m={self.params.m}, L={self.params.L})"
            )
        index = BuiltIndex(
            store=self.store,
            codec=self.codec,
            bank=bank,
            params=self.params,
            ladder=self.ladder,
            block_size=self.block_size,
        )
        projections = bank.project(data)
        object_ids = np.arange(self.params.n, dtype=np.uint64)
        for radius in self.ladder:
            hash_values = bank.mix32(bank.codes_for_radius(projections, radius))
            rung_tables = [
                self._build_table(hash_values[:, li], object_ids) for li in range(self.params.L)
            ]
            index.tables.append(rung_tables)
        index.stats.n_tables = len(index.tables) * self.params.L
        for rung in index.tables:
            for handle in rung:
                index.stats.n_buckets += handle.n_buckets
                index.stats.n_blocks += handle.n_blocks
                index.stats.table_bytes += handle.table.size_bytes
                index.stats.bucket_bytes += handle.bucket_bytes
        return index

    def _build_table(self, hash_values: np.ndarray, object_ids: np.ndarray) -> TableHandle:
        """Write buckets + hash table for one (rung, li) and return its handle."""
        codec = self.codec
        slots, fingerprints = codec.split_hash(hash_values)
        packed = (fingerprints << np.uint64(codec.id_bits)) | object_ids

        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order].astype(np.int64)
        sorted_packed = packed[order]
        n = sorted_slots.size

        table = OnStorageHashTable(self.store, codec.table_bits)
        if n == 0:
            return TableHandle(
                table=table,
                present_values=np.empty(0, dtype=np.uint32),
                n_buckets=0,
                n_blocks=0,
                bucket_bytes=0,
            )

        # Per-bucket extents in the sorted order.
        boundaries = np.flatnonzero(np.diff(sorted_slots)) + 1
        starts = np.concatenate(([0], boundaries))
        sizes = np.diff(np.concatenate((starts, [n])))
        bucket_slots = sorted_slots[starts]

        capacity = entries_per_block(self.block_size)
        blocks_per_bucket = -(-sizes // capacity)
        block_offset = np.concatenate(([0], np.cumsum(blocks_per_bucket)))
        total_blocks = int(block_offset[-1])

        # Per-entry placement: which block, which position.
        n_buckets = sizes.size
        bucket_of_entry = np.repeat(np.arange(n_buckets), sizes)
        index_in_bucket = np.arange(n) - starts[bucket_of_entry]
        block_of_entry = block_offset[bucket_of_entry] + index_in_bucket // capacity
        position_in_block = index_in_bucket % capacity

        # Per-block header fields.
        bucket_of_block = np.repeat(np.arange(n_buckets), blocks_per_bucket)
        index_of_block = np.arange(total_blocks) - block_offset[bucket_of_block]
        is_last = index_of_block == blocks_per_bucket[bucket_of_block] - 1
        counts = np.where(
            is_last,
            sizes[bucket_of_block] - (blocks_per_bucket[bucket_of_block] - 1) * capacity,
            capacity,
        ).astype(np.uint64)

        # Compact allocation: each block occupies exactly header + 5 x
        # count bytes.  The paper pads every block to the 512-B device
        # read unit; at our scaled-down densities most buckets hold a
        # single entry, and that padding would inflate the analog's
        # index ~20x past the paper's reported fragmentation.  Timing
        # semantics are unchanged — the query path still issues one
        # block_size-byte read per block — so a trailing guard region
        # keeps those fixed-size reads inside the allocation.
        block_bytes = (BLOCK_HEADER_SIZE + counts * OBJECT_INFO_SIZE).astype(np.int64)
        byte_offset = np.concatenate(([0], np.cumsum(block_bytes)))
        total_bytes = int(byte_offset[-1])
        base = self.store.allocate(total_bytes + self.block_size)
        block_starts = byte_offset[:-1]
        next_addresses = np.full(total_blocks, NULL_ADDRESS, dtype=np.uint64)
        not_last = ~is_last
        next_addresses[not_last] = (base + byte_offset[1:][not_last]).astype(np.uint64)

        # Assemble all block images in one buffer, then write once.
        buffer = np.zeros(total_bytes, dtype=np.uint8)
        for byte in range(8):
            buffer[block_starts + byte] = ((next_addresses >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.uint8)
        for byte in range(2):
            buffer[block_starts + 8 + byte] = ((counts >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.uint8)
        entry_offsets = (
            block_starts[block_of_entry]
            + BLOCK_HEADER_SIZE
            + position_in_block * OBJECT_INFO_SIZE
        )
        for byte in range(OBJECT_INFO_SIZE):
            buffer[entry_offsets + byte] = ((sorted_packed >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.uint8)
        self.store.write(base, buffer.tobytes())

        # Hash table: slot -> chain head address.  Distinct hash values
        # sharing a slot share one chain (the fingerprint separates them
        # at read time), so assign the chain head per unique slot.
        table_image = np.full(table.n_slots, NULL_ADDRESS, dtype=np.uint64)
        head_addresses = (base + block_starts[block_offset[:-1]]).astype(np.uint64)
        table_image[bucket_slots] = head_addresses
        table.write_table(table_image)

        return TableHandle(
            table=table,
            present_values=np.unique(hash_values.astype(np.uint32)),
            n_buckets=int(n_buckets),
            n_blocks=total_blocks,
            bucket_bytes=total_bytes + self.block_size,
        )
