"""Object info packing: object ID + fingerprint in 5 bytes (Sec. 5.2).

Hash values are ``v = 32`` bits.  The hash table consumes the low ``u``
bits; the remaining ``v - u`` bits ride along with the object ID inside
the bucket as a *fingerprint* so false collisions introduced by the
shortened table key can be rejected at full 32-bit precision when the
bucket is read.  The paper allocates 5 bytes per entry because
``ceil(log2 n) + (v - u)`` can exceed 32 bits.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["OBJECT_INFO_SIZE", "HASH_VALUE_BITS", "ObjectInfoCodec", "default_table_bits"]

OBJECT_INFO_SIZE = 5
HASH_VALUE_BITS = 32

_BYTE_WEIGHTS = np.array([1 << (8 * i) for i in range(OBJECT_INFO_SIZE)], dtype=np.uint64)


def default_table_bits(n: int) -> int:
    """Table key width ``u`` for a database of ``n`` objects.

    The paper uses ``u`` close to log2 n (Sec. 5.2); ``ceil(log2 n)``
    keeps the slot load factor below 1 so that sharing of buckets
    between distinct hash values (false collisions, rejected later by
    the fingerprint) stays rare.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return int(min(28, max(8, math.ceil(math.log2(max(n, 2))))))


class ObjectInfoCodec:
    """Packs/unpacks (object ID, fingerprint) pairs into 5-byte entries."""

    def __init__(self, n_objects: int, table_bits: int) -> None:
        if n_objects < 1:
            raise ValueError(f"n_objects must be >= 1, got {n_objects}")
        if not 1 <= table_bits <= HASH_VALUE_BITS:
            raise ValueError(f"table_bits must be in [1, 32], got {table_bits}")
        self.n_objects = n_objects
        self.table_bits = table_bits
        self.id_bits = max(1, math.ceil(math.log2(max(n_objects, 2))))
        self.fingerprint_bits = HASH_VALUE_BITS - table_bits
        if self.id_bits + self.fingerprint_bits > 8 * OBJECT_INFO_SIZE:
            raise ValueError(
                f"{self.id_bits} ID bits + {self.fingerprint_bits} fingerprint bits "
                f"exceed the {8 * OBJECT_INFO_SIZE}-bit object info"
            )

    @property
    def fingerprint_mask(self) -> int:
        """Mask selecting the fingerprint bits of a 32-bit hash value."""
        return (1 << self.fingerprint_bits) - 1

    def split_hash(self, hash_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split 32-bit hash values into (table slot, fingerprint)."""
        values = hash_values.astype(np.uint64, copy=False)
        slots = values & np.uint64((1 << self.table_bits) - 1)
        fingerprints = values >> np.uint64(self.table_bits)
        return slots, fingerprints

    def pack(self, object_ids: np.ndarray, fingerprints: np.ndarray) -> bytes:
        """Encode parallel ID/fingerprint arrays into contiguous 5-byte entries."""
        ids = np.asarray(object_ids, dtype=np.uint64)
        fps = np.asarray(fingerprints, dtype=np.uint64)
        if ids.shape != fps.shape:
            raise ValueError("object_ids and fingerprints must have equal shape")
        # IDs must fit the id_bits field; the layout deliberately leaves
        # headroom above n_objects so incremental inserts (Sec. 7
        # maintenance) can append without re-encoding the index.
        if ids.size and (int(ids.max()) >> self.id_bits):
            raise ValueError("object ID out of range")
        if fps.size and int(fps.max()) >> self.fingerprint_bits:
            raise ValueError("fingerprint wider than fingerprint_bits")
        packed = (fps << np.uint64(self.id_bits)) | ids
        # Little-endian 5-byte entries: take the low 5 bytes of each uint64.
        as_bytes = packed.astype("<u8").view(np.uint8).reshape(-1, 8)
        return as_bytes[:, :OBJECT_INFO_SIZE].tobytes()

    def unpack(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Decode contiguous 5-byte entries into (object IDs, fingerprints)."""
        if len(payload) % OBJECT_INFO_SIZE:
            raise ValueError(
                f"payload of {len(payload)} bytes is not a multiple of {OBJECT_INFO_SIZE}"
            )
        raw = np.frombuffer(payload, dtype=np.uint8).reshape(-1, OBJECT_INFO_SIZE)
        values = raw.astype(np.uint64) @ _BYTE_WEIGHTS
        ids = values & np.uint64((1 << self.id_bits) - 1)
        fingerprints = values >> np.uint64(self.id_bits)
        return ids.astype(np.int64), fingerprints
