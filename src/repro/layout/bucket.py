"""Bucket block codec (paper Sec. 5.1, Figure 9).

A bucket is a linked list of fixed-size blocks.  Each block is::

    +----------------+---------------+-----------+------------------------+
    | next address   | entry count   | reserved  | object infos           |
    | 8 bytes        | 2 bytes       | 6 bytes   | 5 bytes each           |
    +----------------+---------------+-----------+------------------------+

With the default 512-byte block this leaves room for
``(512 - 16) / 5 = 99`` object infos.  The paper deliberately keeps the
block small (512 B is the minimum NVMe read unit) because the analysis
in Sec. 4.3 shows small blocks do not raise the IOPS requirement while
saving bandwidth on partially-read buckets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.layout.object_info import OBJECT_INFO_SIZE, ObjectInfoCodec
from repro.storage.blockstore import BlockStore

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BLOCK_HEADER_SIZE",
    "NULL_ADDRESS",
    "BucketBlock",
    "entries_per_block",
    "encode_bucket",
    "decode_block",
    "read_bucket",
]

DEFAULT_BLOCK_SIZE = 512
BLOCK_HEADER_SIZE = 16
#: Address marking "no next block" / "empty bucket" (0 is a valid address).
NULL_ADDRESS = 0xFFFF_FFFF_FFFF_FFFF

_HEADER = struct.Struct("<QH6x")


def entries_per_block(block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Object infos that fit in one block of ``block_size`` bytes."""
    capacity = (block_size - BLOCK_HEADER_SIZE) // OBJECT_INFO_SIZE
    if capacity < 1:
        raise ValueError(f"block_size {block_size} cannot hold any object info")
    return capacity


@dataclass(frozen=True)
class BucketBlock:
    """One decoded bucket block."""

    next_address: int
    object_ids: np.ndarray
    fingerprints: np.ndarray

    @property
    def count(self) -> int:
        """Number of object infos stored in this block."""
        return int(self.object_ids.size)

    @property
    def has_next(self) -> bool:
        """Whether another block follows in the chain."""
        return self.next_address != NULL_ADDRESS


def encode_bucket(
    store: BlockStore,
    codec: ObjectInfoCodec,
    object_ids: np.ndarray,
    fingerprints: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Write a bucket as a block chain; return the first block's address.

    Blocks are allocated front-to-back so the chain is read in insertion
    order; the last block's next pointer is :data:`NULL_ADDRESS`.
    Returns :data:`NULL_ADDRESS` for an empty bucket.
    """
    total = int(np.asarray(object_ids).size)
    if total == 0:
        return NULL_ADDRESS
    capacity = entries_per_block(block_size)
    n_blocks = -(-total // capacity)
    addresses = [store.allocate(block_size) for _ in range(n_blocks)]
    for i, address in enumerate(addresses):
        lo = i * capacity
        hi = min(lo + capacity, total)
        next_address = addresses[i + 1] if i + 1 < n_blocks else NULL_ADDRESS
        payload = codec.pack(object_ids[lo:hi], fingerprints[lo:hi])
        block = _HEADER.pack(next_address, hi - lo) + payload
        block += b"\x00" * (block_size - len(block))
        store.write(address, block)
    return addresses[0]


#: Decoded-block memo keyed by ``(id(codec), raw)``; the value pins the
#: codec so its ``id`` cannot be recycled while the entry lives.  Skewed
#: query streams re-read the same hot buckets, and decoding is a pure
#: function of the bytes, so sharing the (read-only) decoded arrays is
#: safe.  Cleared wholesale at the cap (~16 MiB of 512 B blocks).
_DECODE_CACHE: dict[tuple[int, bytes], tuple[ObjectInfoCodec, "BucketBlock"]] = {}
_DECODE_CACHE_CAP = 32768


def decode_block(codec: ObjectInfoCodec, raw: bytes) -> BucketBlock:
    """Parse one raw block into a :class:`BucketBlock`."""
    key = (id(codec), raw)
    hit = _DECODE_CACHE.get(key)
    if hit is not None:
        return hit[1]
    if len(raw) < BLOCK_HEADER_SIZE:
        raise ValueError(f"block of {len(raw)} bytes is shorter than the header")
    next_address, count = _HEADER.unpack_from(raw)
    start = BLOCK_HEADER_SIZE
    end = start + count * OBJECT_INFO_SIZE
    if end > len(raw):
        raise ValueError(f"block claims {count} entries but is only {len(raw)} bytes")
    object_ids, fingerprints = codec.unpack(raw[start:end])
    block = BucketBlock(
        next_address=next_address, object_ids=object_ids, fingerprints=fingerprints
    )
    if len(_DECODE_CACHE) >= _DECODE_CACHE_CAP:
        _DECODE_CACHE.clear()
    _DECODE_CACHE[key] = (codec, block)
    return block


def read_bucket(
    store: BlockStore,
    codec: ObjectInfoCodec,
    first_address: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    max_blocks: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Read a whole bucket chain synchronously (testing / tooling path).

    The query pipeline reads chains asynchronously through the engine;
    this helper exists for index verification and unit tests.
    """
    ids: list[np.ndarray] = []
    fps: list[np.ndarray] = []
    address = first_address
    blocks_read = 0
    while address != NULL_ADDRESS:
        if max_blocks is not None and blocks_read >= max_blocks:
            break
        block = decode_block(codec, store.read(address, block_size))
        ids.append(block.object_ids)
        fps.append(block.fingerprints)
        address = block.next_address
        blocks_read += 1
    if not ids:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.uint64)
    return np.concatenate(ids), np.concatenate(fps)
