"""On-storage hash table: u-bit keys to 8-byte bucket addresses (Sec. 5.2).

One table exists per (search radius, compound hash).  The table is a
flat array of ``2**u`` little-endian 8-byte addresses; slot ``s`` holds
the address of the first bucket block for hash values whose low ``u``
bits equal ``s``, or :data:`~repro.layout.bucket.NULL_ADDRESS` when the
bucket is empty.  Reading one slot is one (small) storage I/O — the
"Step 1" read of Figure 10.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.layout.bucket import NULL_ADDRESS
from repro.storage.blockstore import BlockStore

__all__ = ["OnStorageHashTable", "SLOT_SIZE"]

SLOT_SIZE = 8
_SLOT = struct.Struct("<Q")


class OnStorageHashTable:
    """A flat on-storage array of bucket addresses."""

    def __init__(self, store: BlockStore, table_bits: int) -> None:
        if not 1 <= table_bits <= 32:
            raise ValueError(f"table_bits must be in [1, 32], got {table_bits}")
        self.store = store
        self.table_bits = table_bits
        self.n_slots = 1 << table_bits
        self.base_address = store.allocate(self.n_slots * SLOT_SIZE)
        # Freshly allocated storage is zero-filled, which is a *valid*
        # address; initialize every slot to NULL explicitly.
        null_row = _SLOT.pack(NULL_ADDRESS)
        store.write(self.base_address, null_row * self.n_slots)

    @property
    def size_bytes(self) -> int:
        """On-storage footprint of this table."""
        return self.n_slots * SLOT_SIZE

    def slot_address(self, slot: int) -> int:
        """Byte address of one slot (what the query pipeline reads)."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} outside [0, {self.n_slots})")
        return self.base_address + slot * SLOT_SIZE

    def write_slot(self, slot: int, bucket_address: int) -> None:
        """Point ``slot`` at a bucket chain head."""
        self.store.write(self.slot_address(slot), _SLOT.pack(bucket_address))

    def write_slots(self, slots: np.ndarray, bucket_addresses: np.ndarray) -> None:
        """Bulk variant of :meth:`write_slot` used by the index builder."""
        slots = np.asarray(slots)
        bucket_addresses = np.asarray(bucket_addresses, dtype=np.uint64)
        if slots.shape != bucket_addresses.shape:
            raise ValueError("slots and bucket_addresses must have equal shape")
        for slot, address in zip(slots.tolist(), bucket_addresses.tolist()):
            self.write_slot(int(slot), int(address))

    def write_table(self, addresses: np.ndarray) -> None:
        """Replace the whole table with ``addresses`` (one per slot)."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        if addresses.shape != (self.n_slots,):
            raise ValueError(f"expected {self.n_slots} addresses, got shape {addresses.shape}")
        self.store.write(self.base_address, addresses.astype("<u8").tobytes())

    def read_slot(self, slot: int) -> int:
        """Synchronous slot read (testing / tooling path)."""
        raw = self.store.read(self.slot_address(slot), SLOT_SIZE)
        return _SLOT.unpack(raw)[0]

    @staticmethod
    def parse_slot(raw: bytes) -> int:
        """Parse the 8 bytes returned by an asynchronous slot read."""
        return _SLOT.unpack(raw)[0]
