"""Byte-accurate on-storage index layout (paper Sec. 5.1-5.3, Figure 9).

The index consists of, per (search radius, compound hash):

- a *hash table*: a flat array of 8-byte bucket addresses indexed by the
  low ``u`` bits of the 32-bit compound hash value, and
- *buckets*: linked lists of fixed-size blocks, each holding a 16-byte
  header (8-byte next-block address, 2-byte entry count, 6 bytes
  reserved) followed by 5-byte object infos (object ID + fingerprint).

Everything here produces and parses real bytes in a
:class:`~repro.storage.blockstore.BlockStore`.
"""

from repro.layout.bucket import (
    BLOCK_HEADER_SIZE,
    DEFAULT_BLOCK_SIZE,
    NULL_ADDRESS,
    BucketBlock,
    decode_block,
    encode_bucket,
    entries_per_block,
    read_bucket,
)
from repro.layout.hash_table import OnStorageHashTable
from repro.layout.object_info import OBJECT_INFO_SIZE, ObjectInfoCodec
from repro.layout.builder import BuiltIndex, IndexBuilder, TableHandle

__all__ = [
    "BLOCK_HEADER_SIZE",
    "DEFAULT_BLOCK_SIZE",
    "NULL_ADDRESS",
    "BucketBlock",
    "decode_block",
    "encode_bucket",
    "entries_per_block",
    "read_bucket",
    "OnStorageHashTable",
    "OBJECT_INFO_SIZE",
    "ObjectInfoCodec",
    "IndexBuilder",
    "BuiltIndex",
    "TableHandle",
]
