"""Unit constants and human-readable formatting.

All simulated times in the library are expressed in *nanoseconds* as
floats; these helpers keep the conversion factors in one place.
"""

from __future__ import annotations

__all__ = [
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "format_time",
    "format_bytes",
    "format_iops",
]

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4


def format_time(nanoseconds: float) -> str:
    """Render a duration in the most natural unit (ns/us/ms/s)."""
    value = float(nanoseconds)
    if value < NS_PER_US:
        return f"{value:.0f} ns"
    if value < NS_PER_MS:
        return f"{value / NS_PER_US:.2f} us"
    if value < NS_PER_S:
        return f"{value / NS_PER_MS:.2f} ms"
    return f"{value / NS_PER_S:.2f} s"


def format_bytes(num_bytes: float) -> str:
    """Render a byte count using binary prefixes."""
    value = float(num_bytes)
    for threshold, suffix in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if value >= threshold:
            return f"{value / threshold:.2f} {suffix}"
    return f"{value:.0f} B"


def format_iops(iops: float) -> str:
    """Render an IOPS figure the way the paper's tables do (kIOPS/MIOPS)."""
    value = float(iops)
    if value >= 1e6:
        return f"{value / 1e6:.2f} MIOPS"
    if value >= 1e3:
        return f"{value / 1e3:.1f} kIOPS"
    return f"{value:.1f} IOPS"
