"""Shared helpers: seeded randomness, unit formatting, validation."""

from repro.utils.rng import rng_for, spawn_rngs
from repro.utils.units import (
    format_bytes,
    format_iops,
    format_time,
    NS_PER_US,
    NS_PER_MS,
    NS_PER_S,
)
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
    require_power_of_two,
)

__all__ = [
    "rng_for",
    "spawn_rngs",
    "format_bytes",
    "format_iops",
    "format_time",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "require",
    "require_positive",
    "require_in_range",
    "require_power_of_two",
]
