"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Any

__all__ = [
    "require",
    "as_int",
    "require_positive",
    "require_in_range",
    "require_power_of_two",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Raise unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_power_of_two(value: int, name: str) -> None:
    """Raise unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def as_int(value: Any, name: str) -> int:
    """Coerce ``value`` to int, rejecting values that lose precision."""
    result = int(value)
    if result != value:
        raise ValueError(f"{name} must be an integer, got {value!r}")
    return result
