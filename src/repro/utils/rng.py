"""Deterministic random number generation.

Every stochastic component of the library (hash function sampling, dataset
synthesis, query selection) derives its generator from a ``(seed, label)``
pair so that experiments are reproducible while independent components do
not share random streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["rng_for", "spawn_rngs"]


def _label_to_entropy(label: str) -> int:
    """Map an arbitrary string label to a stable 64-bit integer."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(seed: int, label: str = "") -> np.random.Generator:
    """Return a generator determined entirely by ``seed`` and ``label``.

    Two calls with equal arguments yield generators producing identical
    streams; different labels decorrelate streams even for equal seeds.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, _label_to_entropy(label)]))


def spawn_rngs(seed: int, label: str, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators for one labeled component."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence([seed, _label_to_entropy(label)])
    return [np.random.default_rng(child) for child in root.spawn(count)]
