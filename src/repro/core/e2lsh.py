"""In-memory E2LSH answering top-k c-ANNS (paper Secs. 2.3 and 4).

This is the reference implementation used (a) as the in-memory
competitor in Figures 2, 11, 13 and 14, and (b) as the *measurement
instrument* of Sec. 4: running it yields the average rung count and the
bucket occupancies from which the I/O cost of an external-memory
execution is derived (Table 4, Figure 3).

The hash index is a CSR-grouped table per (radius rung, compound hash):
sorted unique 32-bit hash keys, offsets, and a flat object-ID array.
Queries walk the radius ladder; each rung probes L buckets, collects at
most S candidates, distance-checks them against the query, and stops as
soon as k objects lie within ``c * R`` (the (R, c)-NN success condition).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.query_stats import QueryStats
from repro.core.radii import RadiusLadder

__all__ = ["E2LSHIndex", "QueryAnswer", "GroupedTable"]


@dataclass(frozen=True, eq=False)
class QueryAnswer:
    """Result of one top-k query."""

    #: Object IDs sorted by increasing true distance (may be < k IDs).
    ids: np.ndarray
    #: True Euclidean distances matching :attr:`ids`.
    distances: np.ndarray
    #: What the query did (drives the timing model and Sec. 4 analysis).
    stats: QueryStats = field(default_factory=QueryStats, compare=False)

    @property
    def found(self) -> bool:
        """True if at least one neighbor was reported."""
        return self.ids.size > 0


class GroupedTable:
    """One (rung, table) bucket map in CSR form."""

    __slots__ = ("keys", "offsets", "ids")

    def __init__(self, hash_values: np.ndarray) -> None:
        order = np.argsort(hash_values, kind="stable")
        sorted_values = hash_values[order]
        boundaries = np.flatnonzero(np.diff(sorted_values)) + 1
        self.keys = sorted_values[np.concatenate(([0], boundaries))] if sorted_values.size else sorted_values
        # int32/uint32 throughout: one table stores n entries and the
        # experiments keep hundreds of tables alive, so width matters.
        self.offsets = np.concatenate(([0], boundaries, [sorted_values.size])).astype(np.int32)
        self.ids = order.astype(np.int32)

    @property
    def n_buckets(self) -> int:
        """Number of non-empty buckets."""
        return int(self.keys.size)

    @property
    def memory_bytes(self) -> int:
        """DRAM footprint of this table."""
        return self.keys.nbytes + self.offsets.nbytes + self.ids.nbytes

    def lookup(self, hash_value: int) -> np.ndarray:
        """Object IDs in the bucket for ``hash_value`` (possibly empty)."""
        position = np.searchsorted(self.keys, hash_value)
        if position == self.keys.size or self.keys[position] != hash_value:
            return self.ids[:0]
        return self.ids[self.offsets[position] : self.offsets[position + 1]]

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all non-empty buckets (for the Sec. 4.3 analysis)."""
        return np.diff(self.offsets)


class E2LSHIndex:
    """In-memory E2LSH over a fixed database."""

    def __init__(
        self,
        data: np.ndarray,
        params: E2LSHParams,
        ladder: RadiusLadder | None = None,
        seed: int = 0,
        bank: CompoundHashBank | None = None,
        projections: np.ndarray | None = None,
    ) -> None:
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] < 1:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        if params.n != data.shape[0]:
            raise ValueError(f"params.n={params.n} != n={data.shape[0]}")
        self.data = data
        self.params = params
        self.ladder = ladder or RadiusLadder.for_data(data, params.c)
        if bank is None:
            bank = CompoundHashBank.create(
                d=data.shape[1], m=params.m, L=params.L, w=params.w, seed=seed
            )
            projections = None  # projections must match the bank
        if bank.m != params.m or bank.L != params.L:
            raise ValueError(
                f"bank has (m={bank.m}, L={bank.L}), params need "
                f"(m={params.m}, L={params.L}); use bank.with_m()"
            )
        self.bank = bank
        # tables[rung][li] — built once, queried many times.
        self.tables: list[list[GroupedTable]] = []
        if projections is None:
            projections = self.bank.project(data)
        for radius in self.ladder:
            hash_values = self.bank.mix32(self.bank.codes_for_radius(projections, radius))
            self.tables.append([GroupedTable(hash_values[:, li]) for li in range(params.L)])
        del projections

    # -- introspection ----------------------------------------------------

    @property
    def n(self) -> int:
        """Database size."""
        return self.data.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.data.shape[1]

    @property
    def index_memory_bytes(self) -> int:
        """DRAM held by the hash index (excludes the database itself)."""
        tables = sum(t.memory_bytes for rung in self.tables for t in rung)
        return tables + self.bank.memory_bytes

    def bucket_sizes(self, rung: int) -> list[np.ndarray]:
        """Non-empty bucket sizes of every table at one rung."""
        return [table.bucket_sizes() for table in self.tables[rung]]

    # -- query -------------------------------------------------------------

    def query(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Top-k c-ANNS via the (R, c)-NN radius ladder."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.size != self.d:
            raise ValueError(f"query has d={query.size}, index expects {self.d}")

        params = self.params
        stats = QueryStats()
        stats.ops.projection_scalar_ops += self.d * params.L * params.m
        projections = self.bank.project(query)

        pool_ids = np.empty(0, dtype=np.int64)
        pool_dists = np.empty(0, dtype=np.float64)

        for rung_index, radius in enumerate(self.ladder):
            stats.rungs_searched += 1
            stats.ops.rounds += 1
            stats.ops.projection_scalar_ops += params.L * params.m  # re-quantize + mix
            hash_values = self.bank.mix32(self.bank.codes_for_radius(projections, radius))[0]

            collected: list[np.ndarray] = []
            total = 0
            for li in range(params.L):
                stats.buckets_probed += 1
                stats.ops.bucket_lookups += 1
                ids = self.tables[rung_index][li].lookup(int(hash_values[li])).astype(np.int64)
                if ids.size == 0:
                    continue
                stats.nonempty_buckets += 1
                take = min(ids.size, params.S - total)
                stats.bucket_sizes_examined.append(int(take))
                if take > 0:
                    collected.append(ids[:take])
                    total += take
                if total >= params.S:
                    break

            if collected:
                candidates = np.unique(np.concatenate(collected))
                new = candidates[~np.isin(candidates, pool_ids, assume_unique=True)]
                if new.size:
                    diffs = self.data[new].astype(np.float64) - query.astype(np.float64)
                    dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
                    stats.candidates_checked += int(new.size)
                    stats.ops.candidate_fetches += int(new.size)
                    stats.ops.distance_scalar_ops += int(new.size) * self.d
                    pool_ids = np.concatenate([pool_ids, new])
                    pool_dists = np.concatenate([pool_dists, dists])

            # (R, c)-NN success: k objects within c * R terminate the ladder.
            if pool_ids.size and int((pool_dists <= params.c * radius).sum()) >= k:
                break

        stats.bucket_blocks_read = len(stats.bucket_sizes_examined)

        if pool_ids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return QueryAnswer(ids=empty, distances=empty.astype(np.float64), stats=stats)
        order = np.argsort(pool_dists, kind="stable")[:k]
        return QueryAnswer(ids=pool_ids[order], distances=pool_dists[order], stats=stats)

    def query_batch(self, queries: np.ndarray, k: int = 1) -> list[QueryAnswer]:
        """Answer each row of ``queries`` independently."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        return [self.query(row, k=k) for row in queries]
