"""The paper's primary contribution: E2LSH and E2LSH-on-Storage.

- :mod:`repro.core.lsh` — the p-stable hash family of Eq. 1 and the
  compound hashes of Eq. 4,
- :mod:`repro.core.collision` — the collision probability p_w(s) and the
  exponent rho,
- :mod:`repro.core.params` — Eq. 5 parameter derivation with the paper's
  gamma scaling (Sec. 3.3),
- :mod:`repro.core.radii` — the (R, c)-NN radius ladder (Sec. 2.3),
- :mod:`repro.core.e2lsh` — in-memory E2LSH answering top-k c-ANNS,
- :mod:`repro.core.e2lshos` — the external-memory adaptation (Sec. 5),
- :mod:`repro.core.multiprobe` — multi-probe extension (Sec. 7 ablation).
"""

from repro.core.collision import (
    collision_probability,
    query_aware_collision_probability,
    rho_for_width,
)
from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.core.e2lsh import E2LSHIndex, QueryAnswer
from repro.stats import OpCounts, QueryStats


def __getattr__(name: str) -> object:
    # E2LSHoSIndex/BatchResult are loaded lazily (PEP 562): e2lshos
    # pulls in the layout/storage/analysis stacks, which themselves
    # import leaf modules of this package — eager import here would be
    # circular.
    if name in ("E2LSHoSIndex", "BatchResult"):
        from repro.core import e2lshos

        return getattr(e2lshos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "collision_probability",
    "query_aware_collision_probability",
    "rho_for_width",
    "BatchResult",
    "CompoundHashBank",
    "E2LSHParams",
    "RadiusLadder",
    "E2LSHIndex",
    "E2LSHoSIndex",
    "QueryAnswer",
    "OpCounts",
    "QueryStats",
]
