"""E2LSH parameter derivation (paper Eq. 5 and Sec. 3.3).

With collision probabilities ``p1 = p_w(R)`` and ``p2 = p_w(cR)``::

    m = gamma * log_{1/p2} n      (gamma is the paper's accuracy knob)
    L = n ** rho
    S = 2 * L

``rho = ln(1/p1) / ln(1/p2)`` is the *theoretical* exponent; the paper
treats the effective rho (hence L, hence the index size) as a design
choice "large enough to achieve the desired range of accuracy" — real
datasets have near neighbors much closer than the rung radius, so their
effective p1 is far higher than the worst-case bound and much smaller L
suffices (their L is 16-51 where the worst-case bound would demand
hundreds).  We mirror that: ``rho`` is an explicit parameter defaulting
to a practical value, and ``gamma`` rescales ``m`` without touching the
index size, exactly as in Sec. 3.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.collision import collision_probability

__all__ = ["E2LSHParams", "DEFAULT_C", "DEFAULT_W", "DEFAULT_RHO"]

#: The paper's approximation ratio for E2LSH (Sec. 3.3).
DEFAULT_C = 2.0
#: Bucket width in units of the rung radius; p2 = p_w(c) stays well below
#: p1 = p_w(1) at this setting.
DEFAULT_W = 4.0
#: Practical index-size exponent (see module docstring).
DEFAULT_RHO = 0.30


@dataclass(frozen=True)
class E2LSHParams:
    """Resolved E2LSH parameters for one database size."""

    n: int
    c: float = DEFAULT_C
    w: float = DEFAULT_W
    rho: float = DEFAULT_RHO
    #: Accuracy scaling of m (Sec. 3.3); smaller gamma widens buckets'
    #: effective reach (more candidates, higher accuracy, more work).
    gamma: float = 1.0
    #: Candidate-count multiplier: S = s_factor * L (the paper uses 2L).
    s_factor: float = 2.0
    #: Explicit overrides of the derived m / L / S.  The paper itself
    #: treats L as a per-dataset design choice (Table 4); a sharded
    #: deployment uses these to give every shard the *full* dataset's
    #: hash structure while n reflects only the shard's subset.
    m_explicit: int | None = None
    L_explicit: int | None = None
    S_explicit: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.c <= 1:
            raise ValueError(f"c must be > 1, got {self.c}")
        if self.w <= 0:
            raise ValueError(f"w must be positive, got {self.w}")
        if not 0 < self.rho < 1:
            raise ValueError(f"rho must be in (0, 1), got {self.rho}")
        if self.gamma <= 0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")
        if self.s_factor <= 0:
            raise ValueError(f"s_factor must be positive, got {self.s_factor}")
        for label, value in (
            ("m_explicit", self.m_explicit),
            ("L_explicit", self.L_explicit),
            ("S_explicit", self.S_explicit),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{label} must be >= 1, got {value}")

    @property
    def p1(self) -> float:
        """Collision probability of points at the rung radius."""
        return float(collision_probability(self.w))

    @property
    def p2(self) -> float:
        """Collision probability of points at c times the rung radius."""
        return float(collision_probability(self.w / self.c))

    @property
    def m(self) -> int:
        """Hash functions per compound hash: ``ceil(gamma * log_{1/p2} n)``."""
        if self.m_explicit is not None:
            return self.m_explicit
        base = math.log(max(self.n, 2)) / math.log(1.0 / self.p2)
        return max(1, math.ceil(self.gamma * base))

    @property
    def L(self) -> int:
        """Number of compound hashes (hash tables per radius): ``ceil(n^rho)``."""
        if self.L_explicit is not None:
            return self.L_explicit
        return max(1, math.ceil(self.n**self.rho))

    @property
    def S(self) -> int:
        """Candidate budget per radius: ``s_factor * L`` (paper: 2L)."""
        if self.S_explicit is not None:
            return self.S_explicit
        return max(1, math.ceil(self.s_factor * self.L))

    @property
    def success_probability(self) -> float:
        """Datar et al.'s guarantee at gamma = 1: ``1/2 - 1/e``."""
        return 0.5 - 1.0 / math.e

    def with_gamma(self, gamma: float) -> "E2LSHParams":
        """Copy with a different accuracy scaling (does not change L)."""
        return replace(self, gamma=gamma)

    def with_s_factor(self, s_factor: float) -> "E2LSHParams":
        """Copy with a different candidate budget."""
        return replace(self, s_factor=s_factor)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"E2LSHParams(n={self.n}, c={self.c}, w={self.w}, rho={self.rho}, "
            f"gamma={self.gamma}: m={self.m}, L={self.L}, S={self.S}, "
            f"p1={self.p1:.3f}, p2={self.p2:.3f})"
        )
