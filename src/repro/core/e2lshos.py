"""E2LSH-on-Storage (paper Sec. 5).

The hash index (tables + buckets) lives on storage; the database vectors
stay in DRAM.  Each query is a cooperative task following Figure 10:

1. compute the query's compound hash values (Compute),
2. read the hash-table slots of all occupancy-filtered tables of the
   current rung in one asynchronous batch (Step 1),
3. read the first block of every non-empty bucket in one batch (Step 2),
   then follow chain pointers in further batches while the S-candidate
   budget lasts,
4. fingerprint-filter the entries, fetch candidates from DRAM, compute
   true distances, and update the (R, c)-NN state (Step 3).

Many query tasks are interleaved by the
:class:`~repro.storage.engine.AsyncIOEngine`, which is how the paper
builds deep I/O queues (Sec. 5.4).  The same tasks executed against a
:class:`~repro.storage.page_cache.PageCache` reproduce the synchronous
memory-mapped baseline of Sec. 6.5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.machine_model import DEFAULT_MACHINE, MachineModel
from repro.core.e2lsh import QueryAnswer
from repro.core.params import E2LSHParams
from repro.core.query_stats import OpCounts, QueryStats
from repro.core.radii import RadiusLadder
from repro.layout.bucket import NULL_ADDRESS, decode_block
from repro.layout.builder import BuiltIndex, IndexBuilder
from repro.layout.hash_table import SLOT_SIZE, OnStorageHashTable
from repro.storage.blockstore import BlockStore, MemoryBlockStore
from repro.storage.engine import AsyncIOEngine, Compute, EngineResult, Read, ReadBatch, Task
from repro.storage.page_cache import PageCache

__all__ = ["E2LSHoSIndex", "BatchResult"]


@dataclass
class BatchResult:
    """Answers plus engine statistics for one batch of queries."""

    answers: list[QueryAnswer]
    engine: EngineResult

    @property
    def mean_query_time_ns(self) -> float:
        """Average per-query time (makespan over interleaved queries)."""
        return self.engine.mean_task_time_ns

    @property
    def queries_per_second(self) -> float:
        """Query throughput."""
        return self.engine.tasks_per_second


class E2LSHoSIndex:
    """External-memory E2LSH over a built on-storage index."""

    def __init__(
        self,
        built: BuiltIndex,
        data: np.ndarray,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.shape[0] != built.params.n:
            raise ValueError(f"data has n={data.shape[0]}, index expects {built.params.n}")
        self.built = built
        self.data = data
        self.machine = machine

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        params: E2LSHParams,
        store: BlockStore | None = None,
        ladder: RadiusLadder | None = None,
        block_size: int = 512,
        table_bits: int | None = None,
        seed: int = 0,
        machine: MachineModel = DEFAULT_MACHINE,
        bank=None,
    ) -> "E2LSHoSIndex":
        """Build the on-storage index for ``data`` and wrap it."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        ladder = ladder or RadiusLadder.for_data(data, params.c)
        store = store if store is not None else MemoryBlockStore()
        builder = IndexBuilder(
            store=store,
            params=params,
            ladder=ladder,
            block_size=block_size,
            table_bits=table_bits,
            seed=seed,
        )
        return cls(built=builder.build(data, bank=bank), data=data, machine=machine)

    # -- introspection -------------------------------------------------------

    @property
    def params(self) -> E2LSHParams:
        """E2LSH parameters the index was built with."""
        return self.built.params

    @property
    def ladder(self) -> RadiusLadder:
        """Radius ladder."""
        return self.built.ladder

    @property
    def storage_bytes(self) -> int:
        """On-storage index size (Table 6, "Index storage")."""
        return self.built.stats.index_storage_bytes

    @property
    def dram_bytes(self) -> int:
        """Runtime DRAM: database + resident index data (Table 6)."""
        return self.data.nbytes + self.built.dram_bytes

    # -- query tasks ----------------------------------------------------------

    def query_task(
        self,
        query: np.ndarray,
        k: int = 1,
        id_map: np.ndarray | None = None,
        stop_k: int | None = None,
    ) -> Task:
        """Cooperative task answering one query (drive with the engine).

        ``id_map`` remaps the answer's object IDs through a lookup table
        before the task returns — a shard answering on behalf of a
        sharded service reports *global* IDs this way, so the dispatcher
        can merge shard answers without knowing the partitioning.

        ``stop_k`` decouples the rung-descent termination quota from the
        answer size: a shard holding 1/N of the database stops once it
        has ``ceil(k/N) + slack`` candidates within ``c * R`` (its
        expected share of the global top-k) while still *reporting* up
        to ``k`` so a skewed partition cannot starve the merge.
        Defaults to ``k`` (the paper's single-node condition).
        """
        stop_k = k if stop_k is None else stop_k
        if stop_k < 1:
            raise ValueError(f"stop_k must be >= 1, got {stop_k}")
        task = self._run_query(
            np.asarray(query, dtype=np.float32).reshape(-1), k, stop_k
        )
        if id_map is None:
            return task
        if id_map.shape[0] < self.built.params.n:
            raise ValueError(
                f"id_map covers {id_map.shape[0]} objects, index holds {self.built.params.n}"
            )
        return self._remap_ids(task, id_map)

    @staticmethod
    def _remap_ids(task: Task, id_map: np.ndarray) -> Task:
        answer: QueryAnswer = yield from task
        ids = id_map[answer.ids] if answer.ids.size else answer.ids
        return QueryAnswer(
            ids=np.asarray(ids, dtype=np.int64), distances=answer.distances, stats=answer.stats
        )

    def _run_query(self, query: np.ndarray, k: int, stop_k: int) -> Task:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        d = self.data.shape[1]
        if query.size != d:
            raise ValueError(f"query has d={query.size}, index expects {d}")
        built = self.built
        params = built.params
        codec = built.codec
        machine = self.machine
        stats = QueryStats()

        # Hash the query once; rungs reuse the projections (Sec. 5.3).
        step = OpCounts(projection_scalar_ops=d * params.L * params.m)
        stats.ops.add(step)
        yield Compute(machine.compute_ns(step))
        projections = built.bank.project(query)

        pool_ids = np.empty(0, dtype=np.int64)
        pool_dists = np.empty(0, dtype=np.float64)

        for rung_index, radius in enumerate(built.ladder):
            stats.rungs_searched += 1
            step = OpCounts(rounds=1, projection_scalar_ops=params.L * params.m)
            stats.ops.add(step)
            yield Compute(machine.compute_ns(step))
            hash_values = built.bank.mix32(built.bank.codes_for_radius(projections, radius))[0]
            slots, fingerprints = codec.split_hash(hash_values)

            # DRAM occupancy filter: skip I/O for empty buckets (exact
            # membership of the 32-bit value; see TableHandle).
            rung_tables = built.tables[rung_index]
            probes: list[tuple[OnStorageHashTable, int, int]] = []
            for l in range(params.L):
                stats.buckets_probed += 1
                handle = rung_tables[l]
                if handle.contains(int(hash_values[l])):
                    probes.append((handle.table, int(slots[l]), int(fingerprints[l])))
            step = OpCounts(bucket_lookups=params.L)
            stats.ops.add(step)
            yield Compute(machine.compute_ns(step))

            budget = params.S
            collected: list[np.ndarray] = []
            if probes:
                # Step 1: hash-table slot reads, all in one async batch.
                slot_reads = [(table.slot_address(slot), SLOT_SIZE) for table, slot, _ in probes]
                stats.ios_issued += len(slot_reads)
                raw_slots = yield ReadBatch(slot_reads)
                heads = [
                    (OnStorageHashTable.parse_slot(raw), fp)
                    for raw, (_, _, fp) in zip(raw_slots, probes)
                ]
                # Step 2: first bucket block of every non-empty bucket.
                pending = [(address, fp) for address, fp in heads if address != NULL_ADDRESS]
                stats.nonempty_buckets += len(pending)
                while pending and budget > 0:
                    reads = [(address, built.block_size) for address, _ in pending]
                    stats.ios_issued += len(reads)
                    raw_blocks = yield ReadBatch(reads)
                    next_pending: list[tuple[int, int]] = []
                    for raw, (_, fp) in zip(raw_blocks, pending):
                        if budget <= 0:
                            break
                        block = decode_block(codec, raw)
                        matches = block.object_ids[block.fingerprints == fp]
                        take = min(int(matches.size), budget)
                        stats.bucket_sizes_examined.append(int(block.count))
                        stats.bucket_blocks_read += 1
                        if take > 0:
                            collected.append(matches[:take].astype(np.int64))
                            budget -= take
                        if block.has_next and budget > 0:
                            next_pending.append((block.next_address, fp))
                    pending = next_pending

            # Step 3: fingerprint-filtered candidates -> true distances.
            if collected:
                candidates = np.unique(np.concatenate(collected))
                new = candidates[~np.isin(candidates, pool_ids, assume_unique=True)]
                if new.size:
                    diffs = self.data[new].astype(np.float64) - query.astype(np.float64)
                    dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
                    stats.candidates_checked += int(new.size)
                    step = OpCounts(
                        candidate_fetches=int(new.size),
                        distance_scalar_ops=int(new.size) * d,
                    )
                    stats.ops.add(step)
                    yield Compute(machine.compute_ns(step))
                    pool_ids = np.concatenate([pool_ids, new])
                    pool_dists = np.concatenate([pool_dists, dists])

            if pool_ids.size and int((pool_dists <= params.c * radius).sum()) >= stop_k:
                break

        if pool_ids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return QueryAnswer(ids=empty, distances=empty.astype(np.float64), stats=stats)
        order = np.argsort(pool_dists, kind="stable")[:k]
        return QueryAnswer(ids=pool_ids[order], distances=pool_dists[order], stats=stats)

    # -- batch execution -------------------------------------------------------

    def run(
        self,
        queries: np.ndarray,
        engine: AsyncIOEngine,
        k: int = 1,
        workers: int = 1,
    ) -> BatchResult:
        """Answer all ``queries`` by interleaving their tasks on ``engine``."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        tasks = [self.query_task(row, k=k) for row in queries]
        result = engine.run(tasks, workers=workers)
        return BatchResult(answers=list(result.results), engine=result)

    def run_mmap_sync(
        self,
        queries: np.ndarray,
        cache: PageCache,
        k: int = 1,
    ) -> tuple[list[QueryAnswer], float]:
        """Synchronous memory-mapped execution (Sec. 6.5 baseline).

        Every index read becomes a blocking page-cache access; queries
        run one after another with no I/O overlap.  Returns the answers
        and the total simulated time.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        clock = 0.0
        answers: list[QueryAnswer] = []
        for row in queries:
            task = self.query_task(row, k=k)
            send_value = None
            while True:
                try:
                    action = task.send(send_value)
                except StopIteration as stop:
                    answers.append(stop.value)
                    break
                send_value = None
                if isinstance(action, Compute):
                    clock += action.duration_ns
                elif isinstance(action, Read):
                    send_value, clock = cache.read(clock, action.address, action.length)
                elif isinstance(action, ReadBatch):
                    payload = []
                    for address, length in action.requests:
                        data, clock = cache.read(clock, address, length)
                        payload.append(data)
                    send_value = payload
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unsupported action {action!r}")
        return answers, clock
