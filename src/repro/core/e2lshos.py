"""E2LSH-on-Storage (paper Sec. 5).

The hash index (tables + buckets) lives on storage; the database vectors
stay in DRAM.  Each query is a cooperative task following Figure 10:

1. compute the query's compound hash values (Compute),
2. read the hash-table slots of all occupancy-filtered tables of the
   current rung in one asynchronous batch (Step 1),
3. read the first block of every non-empty bucket in one batch (Step 2),
   then follow chain pointers in further batches while the S-candidate
   budget lasts,
4. fingerprint-filter the entries, fetch candidates from DRAM, compute
   true distances, and update the (R, c)-NN state (Step 3).

Many query tasks are interleaved by the
:class:`~repro.storage.engine.AsyncIOEngine`, which is how the paper
builds deep I/O queues (Sec. 5.4).  The same tasks executed against a
:class:`~repro.storage.page_cache.PageCache` reproduce the synchronous
memory-mapped baseline of Sec. 6.5.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.machine_model import DEFAULT_MACHINE, MachineModel
from repro.core.e2lsh import QueryAnswer
from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.query_stats import OpCounts, QueryStats
from repro.core.radii import RadiusLadder
from repro.layout.bucket import NULL_ADDRESS, decode_block
from repro.layout.builder import BuiltIndex, IndexBuilder, TableHandle
from repro.layout.hash_table import SLOT_SIZE
from repro.storage.blockstore import BlockStore, MemoryBlockStore
from repro.storage.engine import AsyncIOEngine, Compute, EngineResult, Read, ReadBatch, Task
from repro.storage.page_cache import PageCache

__all__ = ["E2LSHoSIndex", "BatchResult"]

#: Upper bound on memoized per-query wave plans; cleared wholesale when
#: exceeded (service query pools are far smaller, so this never churns).
_PLAN_CACHE_CAP = 4096


@dataclass
class BatchResult:
    """Answers plus engine statistics for one batch of queries."""

    answers: list[QueryAnswer]
    engine: EngineResult

    @property
    def mean_query_time_ns(self) -> float:
        """Average per-query time (makespan over interleaved queries)."""
        return self.engine.mean_task_time_ns

    @property
    def queries_per_second(self) -> float:
        """Query throughput."""
        return self.engine.tasks_per_second


class _RungLookup:
    """Flattened occupancy filter and slot addresses for one rung.

    Concatenates every table's sorted ``present_values`` under a
    ``(table << 32) | value`` key — globally sorted because the keys are
    table-major and sorted within each table — so a single
    ``np.searchsorted`` answers all ``B x L`` membership probes of a
    query wave, replacing ``B x L`` Python-level
    :meth:`~repro.layout.builder.TableHandle.contains` calls.  Slot byte
    addresses come from the cached per-table bases, matching
    :meth:`~repro.layout.hash_table.OnStorageHashTable.slot_address`.
    """

    __slots__ = ("keys", "base_addresses", "tables", "_shifts")

    def __init__(self, handles: Sequence[TableHandle]) -> None:
        n_tables = len(handles)
        self._shifts = np.arange(n_tables, dtype=np.uint64) << np.uint64(32)
        self.keys = np.concatenate(
            [
                self._shifts[li] | handles[li].present_values.astype(np.uint64)
                for li in range(n_tables)
            ]
        )
        self.base_addresses = np.array(
            [handle.table.base_address for handle in handles], dtype=np.int64
        )
        self.tables = [handle.table for handle in handles]

    def contains(self, hash_values: np.ndarray) -> np.ndarray:
        """Occupancy mask for ``(B, L)`` hash values against this rung."""
        keys = self.keys
        if keys.size == 0:
            return np.zeros(hash_values.shape, dtype=bool)
        probes = (self._shifts[None, :] | hash_values.astype(np.uint64)).ravel()
        pos = np.searchsorted(keys, probes)
        clamped = np.minimum(pos, keys.size - 1)
        hit = (keys[clamped] == probes) & (pos < keys.size)
        return hit.reshape(hash_values.shape)


class _WavePlan:
    """Shared, lazily materialized hash state for one query wave.

    Holds the ``(B, d)`` query matrix and computes projections plus
    per-rung hash values, occupancy masks, and slot addresses once for
    the whole wave on first touch; each member task reads its own row
    ``i``.  Simulated Compute/Read charges stay per-task inside
    :meth:`E2LSHoSIndex._run_query` — the plan only amortizes the *wall*
    cost of the numpy calls across the wave, so a wave of B queries is
    indistinguishable (answers, I/O counts, simulated timing) from B
    scalar queries.
    """

    __slots__ = ("index", "queries", "_projections", "_rungs")

    def __init__(self, index: "E2LSHoSIndex", queries: np.ndarray) -> None:
        self.index = index
        self.queries = queries
        self._projections: np.ndarray | None = None
        self._rungs: dict[int, tuple] = {}

    @property
    def projections(self) -> np.ndarray:
        if self._projections is None:
            self._projections = self.index.built.bank.project_rows(self.queries)
        return self._projections

    def rung(self, rung_index: int, radius: float) -> tuple:
        """``(hash_values, slots, fingerprints, present, addresses)`` arrays."""
        cached = self._rungs.get(rung_index)
        if cached is None:
            built = self.index.built
            bank = built.bank
            hash_values = bank.mix32(bank.codes_for_radius(self.projections, radius))
            slots, fingerprints = built.codec.split_hash(hash_values)
            lookup = self.index._rung_lookup(rung_index)
            present = lookup.contains(hash_values)
            addresses = lookup.base_addresses[None, :] + slots.astype(np.int64) * SLOT_SIZE
            cached = (hash_values, slots, fingerprints, present, addresses)
            self._rungs[rung_index] = cached
        return cached


class E2LSHoSIndex:
    """External-memory E2LSH over a built on-storage index."""

    def __init__(
        self,
        built: BuiltIndex,
        data: np.ndarray,
        machine: MachineModel = DEFAULT_MACHINE,
    ) -> None:
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.shape[0] != built.params.n:
            raise ValueError(f"data has n={data.shape[0]}, index expects {built.params.n}")
        self.built = built
        self.data = data
        self.machine = machine
        #: Per-rung flattened occupancy/address tables, built on first
        #: query touch (queries share them across waves and batches).
        self._rung_lookups: dict[int, _RungLookup] = {}
        #: Hash state memo: query bytes -> (wave plan, row).  Hashing is
        #: a pure function of the query vector and the (fixed) bank, and
        #: ``project_rows`` is batch-invariant, so a recurring query can
        #: reuse the plan row computed for an earlier wave bit-for-bit.
        self._plan_cache: dict[bytes, tuple[_WavePlan, int]] = {}
        # The projection, per-rung hashing, and occupancy-filter Compute
        # steps are query-independent; share one OpCounts (``add`` only
        # reads its argument) and one modelled duration across all tasks.
        params, d = built.params, data.shape[1]
        self._proj_step = OpCounts(projection_scalar_ops=d * params.L * params.m)
        self._proj_ns = machine.compute_ns(self._proj_step)
        self._rung_step = OpCounts(rounds=1, projection_scalar_ops=params.L * params.m)
        self._rung_ns = machine.compute_ns(self._rung_step)
        self._filter_step = OpCounts(bucket_lookups=params.L)
        self._filter_ns = machine.compute_ns(self._filter_step)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        params: E2LSHParams,
        store: BlockStore | None = None,
        ladder: RadiusLadder | None = None,
        block_size: int = 512,
        table_bits: int | None = None,
        seed: int = 0,
        machine: MachineModel = DEFAULT_MACHINE,
        bank: CompoundHashBank | None = None,
    ) -> "E2LSHoSIndex":
        """Build the on-storage index for ``data`` and wrap it."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        ladder = ladder or RadiusLadder.for_data(data, params.c)
        store = store if store is not None else MemoryBlockStore()
        builder = IndexBuilder(
            store=store,
            params=params,
            ladder=ladder,
            block_size=block_size,
            table_bits=table_bits,
            seed=seed,
        )
        return cls(built=builder.build(data, bank=bank), data=data, machine=machine)

    # -- introspection -------------------------------------------------------

    @property
    def params(self) -> E2LSHParams:
        """E2LSH parameters the index was built with."""
        return self.built.params

    @property
    def ladder(self) -> RadiusLadder:
        """Radius ladder."""
        return self.built.ladder

    @property
    def storage_bytes(self) -> int:
        """On-storage index size (Table 6, "Index storage")."""
        return self.built.stats.index_storage_bytes

    @property
    def dram_bytes(self) -> int:
        """Runtime DRAM: database + resident index data (Table 6)."""
        return self.data.nbytes + self.built.dram_bytes

    # -- maintenance hooks ----------------------------------------------------

    def invalidate_query_caches(self) -> None:
        """Drop the lazily-built query caches after an index mutation.

        :class:`~repro.core.updates.IndexUpdater` rewrites bucket chains
        and occupancy filters in place; the per-rung flattened lookup
        tables and the hash-plan memo would otherwise keep serving the
        pre-mutation view (hiding fresh inserts from vectorized
        queries).  Maintenance paths must call this after every batch of
        store mutations.
        """
        self._rung_lookups.clear()
        self._plan_cache.clear()

    def maintenance_compute_ns(self, count: int) -> float:
        """Modelled CPU cost of hashing ``count`` objects for maintenance.

        Inserting an object hashes it once per rung across all tables —
        the same projection + per-rung lattice-code work a query spends
        before it touches storage — so merge jobs charge this per delta
        entry they rewrite into the static tables.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return count * (self._proj_ns + len(self.built.ladder) * self._rung_ns)

    # -- query tasks ----------------------------------------------------------

    def query_tasks(
        self,
        queries: np.ndarray,
        k: int = 1,
        id_map: np.ndarray | None = None,
        stop_k: int | None = None,
    ) -> list[Task]:
        """Plan a micro-batch of queries as one wave of cooperative tasks.

        The whole ``(B, d)`` matrix is hashed at once — projections,
        per-rung lattice codes, occupancy filtering via one sorted-array
        ``searchsorted``, and slot addressing are computed once per wave
        and shared by the returned tasks.  Each task still yields its
        own Compute/ReadBatch actions, so driving the list on the engine
        produces *exactly* the answers, I/O counts, and simulated timing
        of ``[query_task(q) for q in queries]``; only the wall-clock
        cost of planning is amortized (hashing uses the batch-invariant
        :meth:`~repro.core.lsh.CompoundHashBank.project_rows`).

        ``id_map`` remaps the answers' object IDs through a lookup table
        before each task returns — a shard answering on behalf of a
        sharded service reports *global* IDs this way, so the dispatcher
        can merge shard answers without knowing the partitioning.

        ``stop_k`` decouples the rung-descent termination quota from the
        answer size: a shard holding 1/N of the database stops once it
        has ``ceil(k/N) + slack`` candidates within ``c * R`` (its
        expected share of the global top-k) while still *reporting* up
        to ``k`` so a skewed partition cannot starve the merge.
        Defaults to ``k`` (the paper's single-node condition).
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        d = self.data.shape[1]
        if queries.ndim != 2 or queries.shape[0] < 1:
            raise ValueError(f"queries must be a (B, {d}) matrix, got shape {queries.shape}")
        if queries.shape[1] != d:
            raise ValueError(f"queries have d={queries.shape[1]}, index expects {d}")
        stop_k = k if stop_k is None else stop_k
        if stop_k < 1:
            raise ValueError(f"stop_k must be >= 1, got {stop_k}")
        if id_map is not None and id_map.shape[0] < self.built.params.n:
            raise ValueError(
                f"id_map covers {id_map.shape[0]} objects, index holds {self.built.params.n}"
            )
        cache = self._plan_cache
        refs: list[tuple[_WavePlan, int] | None] = []
        keys: list[bytes] = []
        fresh: dict[bytes, int] = {}
        fresh_rows: list[int] = []
        for row in range(queries.shape[0]):
            key = queries[row].tobytes()
            keys.append(key)
            ref = cache.get(key)
            if ref is None and key not in fresh:
                fresh[key] = len(fresh_rows)
                fresh_rows.append(row)
            refs.append(ref)
        if fresh_rows:
            if len(fresh_rows) == queries.shape[0]:
                sub = queries
            else:
                sub = np.ascontiguousarray(queries[fresh_rows])
            wave = _WavePlan(self, sub)
            if len(cache) + len(fresh) > _PLAN_CACHE_CAP:
                cache.clear()
            for key, col in fresh.items():
                cache[key] = (wave, col)
            for row, ref in enumerate(refs):
                if ref is None:
                    refs[row] = (wave, fresh[keys[row]])
        tasks = [self._run_query(plan, col, k, stop_k) for plan, col in refs]
        if id_map is None:
            return tasks
        return [self._remap_ids(task, id_map) for task in tasks]

    def query_task(
        self,
        query: np.ndarray,
        k: int = 1,
        id_map: np.ndarray | None = None,
        stop_k: int | None = None,
    ) -> Task:
        """Cooperative task answering one query (drive with the engine).

        The ``B=1`` wrapper around :meth:`query_tasks`; see there for
        the ``id_map`` and ``stop_k`` semantics.
        """
        queries = np.asarray(query, dtype=np.float32).reshape(1, -1)
        return self.query_tasks(queries, k=k, id_map=id_map, stop_k=stop_k)[0]

    @staticmethod
    def _remap_ids(task: Task, id_map: np.ndarray) -> Task:
        answer: QueryAnswer = yield from task
        ids = id_map[answer.ids] if answer.ids.size else answer.ids
        return QueryAnswer(
            ids=np.asarray(ids, dtype=np.int64), distances=answer.distances, stats=answer.stats
        )

    def _rung_lookup(self, rung_index: int) -> _RungLookup:
        lookup = self._rung_lookups.get(rung_index)
        if lookup is None:
            lookup = _RungLookup(self.built.tables[rung_index])
            self._rung_lookups[rung_index] = lookup
        return lookup

    def _run_query(self, plan: _WavePlan, i: int, k: int, stop_k: int) -> Task:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        d = self.data.shape[1]
        built = self.built
        params = built.params
        codec = built.codec
        machine = self.machine
        stats = QueryStats()
        query = plan.queries[i]

        # Hash the query once; rungs reuse the projections (Sec. 5.3).
        # The plan materializes the whole wave's hash state on first
        # touch; this member charges its own share of the Compute cost.
        # The constant steps increment their counters directly — same
        # arithmetic as ``ops.add(OpCounts(...))`` without touching the
        # six zero fields on every simulated event.
        ops = stats.ops
        ops.projection_scalar_ops += d * params.L * params.m
        yield Compute(self._proj_ns)

        pool_ids = np.empty(0, dtype=np.int64)
        pool_dists = np.empty(0, dtype=np.float64)
        seen: np.ndarray | None = None

        for rung_index, radius in enumerate(built.ladder):
            stats.rungs_searched += 1
            ops.rounds += 1
            ops.projection_scalar_ops += params.L * params.m
            yield Compute(self._rung_ns)
            _, _, fingerprints, present, addresses = plan.rung(rung_index, radius)

            # DRAM occupancy filter: skip I/O for empty buckets (exact
            # membership of the 32-bit value; see _RungLookup).
            stats.buckets_probed += params.L
            probe_cols = np.flatnonzero(present[i])
            ops.bucket_lookups += params.L
            yield Compute(self._filter_ns)

            budget = params.S
            collected: list[np.ndarray] = []
            if probe_cols.size:
                row_addresses = addresses[i]
                row_fps = fingerprints[i]
                # Step 1: hash-table slot reads, all in one async batch.
                slot_reads = [(int(row_addresses[li]), SLOT_SIZE) for li in probe_cols]
                stats.ios_issued += len(slot_reads)
                raw_slots = yield ReadBatch(slot_reads)
                heads = np.frombuffer(b"".join(raw_slots), dtype="<u8")
                # Step 2: first bucket block of every non-empty bucket.
                pending = [
                    (int(address), int(row_fps[li]))
                    for address, li in zip(heads, probe_cols)
                    if address != NULL_ADDRESS
                ]
                stats.nonempty_buckets += len(pending)
                while pending and budget > 0:
                    reads = [(address, built.block_size) for address, _ in pending]
                    stats.ios_issued += len(reads)
                    raw_blocks = yield ReadBatch(reads)
                    next_pending: list[tuple[int, int]] = []
                    for raw, (_, fp) in zip(raw_blocks, pending):
                        if budget <= 0:
                            break
                        block = decode_block(codec, raw)
                        matches = block.object_ids[block.fingerprints == fp]
                        take = min(int(matches.size), budget)
                        stats.bucket_sizes_examined.append(int(block.count))
                        stats.bucket_blocks_read += 1
                        if take > 0:
                            collected.append(matches[:take].astype(np.int64))
                            budget -= take
                        if block.has_next and budget > 0:
                            next_pending.append((block.next_address, fp))
                    pending = next_pending

            # Step 3: fingerprint-filtered candidates -> true distances.
            if collected:
                # Sorted-unique candidates minus the pool, exactly as
                # ``np.unique`` + ``~np.isin(..., pool_ids)`` would give,
                # via one sort and a seen-bitmap over the n objects —
                # numpy's hash-based unique and isin's mergesort dominate
                # the event loop otherwise.
                cand = np.concatenate(collected)
                cand.sort(kind="stable")
                if cand.size > 1:
                    keep = np.empty(cand.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(cand[1:], cand[:-1], out=keep[1:])
                    candidates = cand[keep]
                else:
                    candidates = cand
                # Bitmap over the live object ids (inserts may have
                # grown the dataset past the build-time params.n).
                n_objects = self.data.shape[0]
                if seen is None or seen.size < n_objects:
                    grown = np.zeros(n_objects, dtype=bool)
                    if seen is not None:
                        grown[: seen.size] = seen
                    seen = grown
                new = candidates[~seen[candidates]]
                if new.size:
                    seen[new] = True
                    diffs = self.data[new].astype(np.float64) - query.astype(np.float64)
                    dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
                    stats.candidates_checked += int(new.size)
                    step = OpCounts(
                        candidate_fetches=int(new.size),
                        distance_scalar_ops=int(new.size) * d,
                    )
                    stats.ops.add(step)
                    yield Compute(machine.compute_ns(step))
                    pool_ids = np.concatenate([pool_ids, new])
                    pool_dists = np.concatenate([pool_dists, dists])

            if pool_ids.size and int((pool_dists <= params.c * radius).sum()) >= stop_k:
                break

        if pool_ids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return QueryAnswer(ids=empty, distances=empty.astype(np.float64), stats=stats)
        order = np.argsort(pool_dists, kind="stable")[:k]
        return QueryAnswer(ids=pool_ids[order], distances=pool_dists[order], stats=stats)

    # -- batch execution -------------------------------------------------------

    def run(
        self,
        queries: np.ndarray,
        engine: AsyncIOEngine | None = None,
        k: int = 1,
        workers: int = 1,
        *,
        mode: str = "async",
        cache: PageCache | None = None,
    ) -> BatchResult:
        """Answer all ``queries`` as one wave, under either execution mode.

        ``mode="async"`` (default) interleaves the wave's tasks on the
        given :class:`~repro.storage.engine.AsyncIOEngine` — the paper's
        deep-queue asynchronous execution (Sec. 5.4, Eq. 7).

        ``mode="mmap_sync"`` drives the same tasks against a
        :class:`~repro.storage.page_cache.PageCache` instead: every
        index read becomes a blocking page-cache access and queries run
        one after another with no I/O overlap (the Sec. 6.5 mmap
        baseline).  Pass ``cache=`` and leave ``engine`` as ``None``.
        The returned :class:`BatchResult` synthesizes its engine figures
        from the blocking walk — ``stall_ns`` absorbs all time the CPU
        spent waiting on the cache.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        if mode == "async":
            if engine is None:
                raise ValueError("mode='async' needs an engine")
            if cache is not None:
                raise ValueError("mode='async' takes no cache; pass mode='mmap_sync'")
            tasks = self.query_tasks(queries, k=k)
            result = engine.run(tasks, workers=workers)
            return BatchResult(answers=list(result.results), engine=result)
        if mode != "mmap_sync":
            raise ValueError(f"unknown mode {mode!r}; expected 'async' or 'mmap_sync'")
        if cache is None:
            raise ValueError("mode='mmap_sync' needs a cache")
        if engine is not None:
            raise ValueError("mode='mmap_sync' drives the page cache; leave engine=None")
        clock = 0.0
        compute_ns = 0.0
        io_count = 0
        answers: list[QueryAnswer] = []
        finish_times: list[float] = []
        for task in self.query_tasks(queries, k=k):
            send_value = None
            while True:
                try:
                    action = task.send(send_value)
                except StopIteration as stop:
                    answers.append(stop.value)
                    finish_times.append(clock)
                    break
                send_value = None
                if isinstance(action, Compute):
                    clock += action.duration_ns
                    compute_ns += action.duration_ns
                elif isinstance(action, Read):
                    send_value, clock = cache.read(clock, action.address, action.length)
                    io_count += 1
                elif isinstance(action, ReadBatch):
                    payload = []
                    for address, length in action.requests:
                        data, clock = cache.read(clock, address, length)
                        payload.append(data)
                    io_count += len(action.requests)
                    send_value = payload
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unsupported action {action!r}")
        synthesized = EngineResult(
            makespan_ns=clock,
            results=list(answers),
            finish_times_ns=finish_times,
            io_count=io_count,
            compute_ns=compute_ns,
            io_cpu_ns=0.0,
            stall_ns=max(0.0, clock - compute_ns),
        )
        return BatchResult(answers=answers, engine=synthesized)

    def run_mmap_sync(
        self,
        queries: np.ndarray,
        cache: PageCache,
        k: int = 1,
    ) -> tuple[list[QueryAnswer], float]:
        """Deprecated alias for ``run(queries, mode="mmap_sync", cache=cache)``.

        Returns the legacy ``(answers, total_simulated_ns)`` pair; new
        code should call :meth:`run` and read the :class:`BatchResult`.
        """
        warnings.warn(
            "run_mmap_sync is deprecated; use run(queries, mode='mmap_sync', cache=cache)",
            DeprecationWarning,
            stacklevel=2,
        )
        batch = self.run(queries, k=k, mode="mmap_sync", cache=cache)
        return batch.answers, batch.engine.makespan_ns
