"""The p-stable LSH family and compound hashes (paper Eqs. 1 and 4).

One :class:`CompoundHashBank` holds the random projections for all
``L`` compound hashes of ``m`` functions each.  The same projections are
shared across the radius ladder: rung ``R`` only rescales the bucket
width to ``w * R`` (equivalent to hashing the data scaled by ``1/R``),
so ``X @ A`` is computed once and floored per rung.  This is the
standard E2LSH-package economy; rungs remain pairwise independent *in
the offsets* and the measured collision behaviour matches the per-rung
analysis, while index construction avoids an ``r``-fold matmul blowup.

Compound hash values are reduced to ``v = 32`` bits (Sec. 5.2) by a
per-table universal mix of the ``m`` integer lattice codes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_for

__all__ = ["CompoundHashBank"]

#: SplitMix64 multiplier used to finalize the 32-bit compound hash value.
_FINALIZER = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class CompoundHashBank:
    """Random projections and mixers for L compound hashes of m functions."""

    #: Projection matrix of shape (d, L * m); columns are the ``a`` vectors.
    a: np.ndarray
    #: Uniform offsets in [0, 1), shape (L * m,) — the ``b / w`` of Eq. 1.
    b: np.ndarray
    #: Odd 64-bit multipliers for the universal mix, shape (L, m).
    mixers: np.ndarray
    m: int
    L: int
    w: float

    @classmethod
    def create(cls, d: int, m: int, L: int, w: float, seed: int) -> "CompoundHashBank":
        """Sample a bank for ``d``-dimensional data."""
        if d < 1 or m < 1 or L < 1:
            raise ValueError(f"d, m, L must be >= 1, got {d}, {m}, {L}")
        if w <= 0:
            raise ValueError(f"w must be positive, got {w}")
        rng = rng_for(seed, "compound-hash-bank")
        a = rng.standard_normal((d, L * m)).astype(np.float32)
        b = rng.random(L * m).astype(np.float64)
        mixers = (rng.integers(1, 2**63, size=(L, m), dtype=np.uint64) << np.uint64(1)) | np.uint64(1)
        return cls(a=a, b=b, mixers=mixers, m=m, L=L, w=w)

    @property
    def d(self) -> int:
        """Data dimensionality."""
        return int(self.a.shape[0])

    def with_m(self, m_new: int) -> "CompoundHashBank":
        """A bank using only the first ``m_new`` functions of each table.

        A prefix of a compound hash is itself a valid compound hash, so
        accuracy tuning via the paper's gamma knob (which only changes
        m, Sec. 3.3) can reuse one bank — and one projection pass —
        across all gamma values.
        """
        if not 1 <= m_new <= self.m:
            raise ValueError(f"m_new must be in [1, {self.m}], got {m_new}")
        if m_new == self.m:
            return self
        columns = (
            np.arange(self.L)[:, None] * self.m + np.arange(m_new)[None, :]
        ).reshape(-1)
        return CompoundHashBank(
            a=self.a[:, columns],
            b=self.b[columns],
            mixers=self.mixers[:, :m_new],
            m=m_new,
            L=self.L,
            w=self.w,
        )

    def select_tables(self, tables: "Sequence[int] | np.ndarray") -> "CompoundHashBank":
        """A bank holding only the given compound hashes (tables).

        Each compound hash is independent, so any subset is itself a
        valid bank over the same data.  This is how a table-partitioned
        deployment (PLSH-style) gives every shard its own disjoint slice
        of the L tables while all shards hash identically to the
        single-node index.
        """
        tables = np.asarray(tables, dtype=np.int64)
        if tables.size < 1:
            raise ValueError("need at least one table")
        if tables.min() < 0 or tables.max() >= self.L or np.unique(tables).size != tables.size:
            raise ValueError(f"tables must be distinct indices in [0, {self.L}), got {tables}")
        columns = (tables[:, None] * self.m + np.arange(self.m)[None, :]).reshape(-1)
        return CompoundHashBank(
            a=self.a[:, columns],
            b=self.b[columns],
            mixers=self.mixers[tables],
            m=self.m,
            L=int(tables.size),
            w=self.w,
        )

    def select_projection_columns(self, projections: np.ndarray, m_new: int) -> np.ndarray:
        """Restrict full-bank projections to the first ``m_new`` per table."""
        if projections.shape[1] != self.L * self.m:
            raise ValueError(
                f"projections have {projections.shape[1]} columns, expected {self.L * self.m}"
            )
        columns = (
            np.arange(self.L)[:, None] * self.m + np.arange(m_new)[None, :]
        ).reshape(-1)
        return projections[:, columns]

    @property
    def memory_bytes(self) -> int:
        """DRAM footprint of the bank (kept in memory by E2LSHoS)."""
        return self.a.nbytes + self.b.nbytes + self.mixers.nbytes

    def project(self, points: np.ndarray) -> np.ndarray:
        """Dot products ``points @ a`` of shape (n, L * m), float64.

        This is the expensive part of hashing; callers cache it per
        query (or per build chunk) and reuse it for every rung.
        """
        points = np.asarray(points, dtype=np.float32)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != self.d:
            raise ValueError(f"points have d={points.shape[1]}, bank expects {self.d}")
        return (points @ self.a).astype(np.float64)

    def project_rows(self, points: np.ndarray) -> np.ndarray:
        """Batch-invariant dot products, shape (n, L * m), float64.

        Same mathematics as :meth:`project`, but computed with a
        reduction whose per-row result is independent of how many rows
        share the call: row ``i`` of ``project_rows(Q)`` is bitwise
        identical to ``project_rows(Q[i:i+1])``.  BLAS matmul does not
        guarantee this (it blocks/reorders the float32 accumulation by
        operand shape), so the *query* hot path hashes through this
        method — a query planned inside a wave of B must land in exactly
        the buckets it would probe alone.  Build-time bulk hashing keeps
        the faster :meth:`project`.
        """
        points = np.asarray(points, dtype=np.float32)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != self.d:
            raise ValueError(f"points have d={points.shape[1]}, bank expects {self.d}")
        return np.einsum("nd,dm->nm", points, self.a).astype(np.float64)

    def codes_for_radius(self, projections: np.ndarray, radius: float) -> np.ndarray:
        """Lattice codes ``floor(proj / (w R) + b)`` of shape (n, L, m)."""
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        width = self.w * radius
        codes = np.floor(projections / width + self.b).astype(np.int64)
        return codes.reshape(-1, self.L, self.m)

    def mix32(self, codes: np.ndarray) -> np.ndarray:
        """Reduce (n, L, m) lattice codes to (n, L) 32-bit hash values.

        Uses a per-table universal linear combination over Z/2^64
        followed by a SplitMix-style finalizer; the high 32 bits become
        the compound hash value ``v`` of Sec. 5.2.
        """
        if codes.ndim != 3 or codes.shape[1] != self.L or codes.shape[2] != self.m:
            raise ValueError(f"codes must have shape (n, {self.L}, {self.m})")
        unsigned = codes.astype(np.uint64)
        mixed = np.einsum("nlm,lm->nl", unsigned, self.mixers, dtype=np.uint64)
        mixed ^= mixed >> np.uint64(31)
        mixed *= _FINALIZER
        return (mixed >> np.uint64(32)).astype(np.uint32)

    def hash_values(self, points: np.ndarray, radius: float) -> np.ndarray:
        """Convenience: 32-bit compound hash values of shape (n, L)."""
        return self.mix32(self.codes_for_radius(self.project(points), radius))
