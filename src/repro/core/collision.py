"""Collision probabilities of p-stable LSH (paper Sec. 2.2).

For the hash ``h(o) = floor((a.o + b) / w)`` with ``a ~ N(0, I)``, two
points at Euclidean distance ``s`` collide with probability (Datar et
al. 2004)::

    p_w(s) = 1 - 2 Phi(-w/s) - (2 s / (sqrt(2 pi) w)) (1 - exp(-w^2 / (2 s^2)))

which depends only on the ratio ``t = w / s`` and decreases
monotonically in ``s``.  QALSH's query-aware hash drops the floor and
uses a window of width ``w`` centered on the query projection, giving
``2 Phi(w / (2 s)) - 1``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

__all__ = [
    "collision_probability",
    "query_aware_collision_probability",
    "rho_for_width",
    "width_for_rho",
]

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def collision_probability(w_over_s: float | np.ndarray) -> float | np.ndarray:
    """p-stable collision probability as a function of ``t = w / s``.

    ``t -> 0`` (far points) gives probability 0; ``t -> inf`` (identical
    points) gives 1.  Accepts scalars or arrays.
    """
    t = np.asarray(w_over_s, dtype=float)
    if np.any(t < 0):
        raise ValueError("w / s must be non-negative")
    with np.errstate(divide="ignore", invalid="ignore"):
        p = 1.0 - 2.0 * norm.cdf(-t) - (2.0 / (_SQRT_2PI * t)) * (1.0 - np.exp(-(t**2) / 2.0))
    p = np.where(t == 0, 0.0, p)
    p = np.clip(p, 0.0, 1.0)
    return float(p) if np.isscalar(w_over_s) or p.ndim == 0 else p


def query_aware_collision_probability(w_over_s: float | np.ndarray) -> float | np.ndarray:
    """QALSH's query-centered collision probability ``2 Phi(t/2) - 1``."""
    t = np.asarray(w_over_s, dtype=float)
    if np.any(t < 0):
        raise ValueError("w / s must be non-negative")
    p = 2.0 * norm.cdf(t / 2.0) - 1.0
    return float(p) if np.isscalar(w_over_s) or p.ndim == 0 else p


def rho_for_width(w: float, c: float) -> float:
    """Theoretical exponent ``rho = ln(1/p1) / ln(1/p2)`` (Eq. 5).

    ``p1 = p_w(R)`` and ``p2 = p_w(cR)`` depend only on ``w`` (measured
    in units of the radius R) and the approximation ratio ``c``.
    """
    if w <= 0:
        raise ValueError(f"w must be positive, got {w}")
    if c <= 1:
        raise ValueError(f"c must be > 1, got {c}")
    p1 = collision_probability(w)
    p2 = collision_probability(w / c)
    return math.log(1.0 / p1) / math.log(1.0 / p2)


def width_for_rho(target_rho: float, c: float, lo: float = 0.05, hi: float = 64.0) -> float:
    """Invert :func:`rho_for_width` by bisection.

    ``rho_for_width`` decreases in ``w`` (wider buckets reject far points
    relatively better under c-scaling), so a simple bisection suffices.
    Raises if ``target_rho`` is outside the achievable range.
    """
    rho_lo = rho_for_width(hi, c)  # smallest achievable rho
    rho_hi = rho_for_width(lo, c)  # largest achievable rho
    if not rho_lo <= target_rho <= rho_hi:
        raise ValueError(
            f"rho={target_rho} not achievable for c={c}; range is [{rho_lo:.3f}, {rho_hi:.3f}]"
        )
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if rho_for_width(mid, c) > target_rho:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
