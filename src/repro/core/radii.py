"""The (R, c)-NN radius ladder (paper Sec. 2.3).

c-ANNS is solved by answering (R, c)-near-neighbor queries for
``R = 1, c, c^2, ...`` until an answer appears.  The largest radius ever
needed is ``R_max = 2 * x_max * sqrt(d)`` where ``x_max`` is the largest
absolute coordinate, so the ladder has ``r = ceil(log_c R_max)`` rungs —
a property of the data's extent, not its size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["RadiusLadder"]


@dataclass(frozen=True)
class RadiusLadder:
    """The increasing radii searched by E2LSH."""

    c: float
    radii: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.c <= 1:
            raise ValueError(f"c must be > 1, got {self.c}")
        if not self.radii:
            raise ValueError("ladder must have at least one rung")

    @classmethod
    def for_data(cls, data: np.ndarray, c: float) -> "RadiusLadder":
        """Build the ladder for a database array of shape (n, d)."""
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        x_max = float(np.abs(data).max()) if data.size else 1.0
        return cls.for_extent(x_max, data.shape[1], c)

    @classmethod
    def for_extent(cls, x_max: float, d: int, c: float) -> "RadiusLadder":
        """Build the ladder from the coordinate extent and dimensionality."""
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        r_max = 2.0 * max(x_max, 0.0) * math.sqrt(d)
        if r_max <= 1.0:
            rungs = 1
        else:
            rungs = max(1, math.ceil(math.log(r_max, c)))
        return cls(c=c, radii=tuple(c**i for i in range(rungs)))

    @property
    def rungs(self) -> int:
        """Total number of radii ``r`` (Table 4's "Total # radii")."""
        return len(self.radii)

    @property
    def r_max(self) -> float:
        """Largest radius in the ladder."""
        return self.radii[-1]

    def __iter__(self) -> Iterator[float]:
        return iter(self.radii)

    def __len__(self) -> int:
        return len(self.radii)

    def __getitem__(self, index: int) -> float:
        return self.radii[index]
