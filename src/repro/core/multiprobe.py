"""Multi-probe extension of E2LSH (paper Sec. 7 discussion item).

The paper's Discussion suggests "incorporating the ideas from
small-index methods in such a way that the index size of E2LSHoS is
reduced without sacrificing its sublinear query time".  Multi-Probe LSH
(Lv et al., VLDB 2007) is the canonical such idea: probe not only the
bucket the query hashes to but also the *neighboring* lattice cells
most likely to hold near objects, so fewer tables (smaller L, hence a
smaller index) reach the same recall.

This module implements query-directed probing on top of the existing
:class:`~repro.core.e2lsh.E2LSHIndex`: for each (rung, table) it
generates up to ``n_probes`` perturbed compound hash values, ordered by
the query-to-boundary distances of the perturbed coordinates (the
standard query-directed score), and probes each of them.  The ablation
benchmark compares index size and I/O count against plain E2LSH at
equal accuracy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.e2lsh import E2LSHIndex, QueryAnswer
from repro.core.lsh import CompoundHashBank
from repro.stats import QueryStats

__all__ = ["MultiProbeE2LSH", "perturbation_sequence"]


def perturbation_sequence(
    boundary_distances: np.ndarray, max_probes: int
) -> list[tuple[int, ...]]:
    """Query-directed perturbation sets, cheapest first.

    ``boundary_distances`` has shape (m, 2): for each of the m hash
    coordinates, the squared distance from the query's projection to
    the lower (delta = -1) and upper (delta = +1) cell boundary.  A
    perturbation set flips a subset of coordinates by +-1; its score is
    the sum of the flipped boundary distances.  Sets are enumerated
    best-first with the classic heap of (score, set) expansions.

    Returns up to ``max_probes`` non-empty perturbation sets encoded as
    tuples of flat indices into ``boundary_distances`` (index 2*j + s
    flips coordinate j toward side s).
    """
    m = boundary_distances.shape[0]
    if boundary_distances.shape != (m, 2):
        raise ValueError("boundary_distances must have shape (m, 2)")
    if max_probes <= 0:
        return []
    flat = boundary_distances.reshape(-1)
    order = np.argsort(flat, kind="stable")
    # Heap entries: (score, next_rank_to_extend, frozenset of ranks).
    out: list[tuple[int, ...]] = []
    heap: list[tuple[float, tuple[int, ...]]] = [(float(flat[order[0]]), (0,))]
    seen = {(0,)}
    while heap and len(out) < max_probes:
        score, ranks = heapq.heappop(heap)
        coords = [int(order[r]) for r in ranks]
        # A valid set flips each coordinate at most once (not both sides).
        if len({c // 2 for c in coords}) == len(coords):
            out.append(tuple(coords))
        last = ranks[-1]
        # "Shift" and "expand" successors (Lv et al. Sec. 4.2).
        if last + 1 < flat.size:
            shifted = ranks[:-1] + (last + 1,)
            if shifted not in seen:
                seen.add(shifted)
                heapq.heappush(
                    heap,
                    (score - float(flat[order[last]]) + float(flat[order[last + 1]]), shifted),
                )
            expanded = ranks + (last + 1,)
            if expanded not in seen:
                seen.add(expanded)
                heapq.heappush(heap, (score + float(flat[order[last + 1]]), expanded))
    return out


@dataclass
class MultiProbeE2LSH:
    """Query-directed multi-probe wrapper around an E2LSH index."""

    index: E2LSHIndex
    #: Extra probes per (rung, table) beyond the home bucket.
    n_probes: int = 8

    def __post_init__(self) -> None:
        if self.n_probes < 0:
            raise ValueError(f"n_probes must be >= 0, got {self.n_probes}")

    def query(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Top-k c-ANNS probing perturbed buckets at every rung."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        index = self.index
        params = index.params
        bank = index.bank
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.size != index.d:
            raise ValueError(f"query has d={query.size}, index expects {index.d}")

        stats = QueryStats()
        stats.ops.projection_scalar_ops += index.d * params.L * params.m
        projections = bank.project(query)

        pool_ids = np.empty(0, dtype=np.int64)
        pool_dists = np.empty(0, dtype=np.float64)

        for rung_index, radius in enumerate(index.ladder):
            stats.rungs_searched += 1
            stats.ops.rounds += 1
            width = bank.w * radius
            scaled = projections[0] / width + bank.b  # fractional lattice coords
            codes = np.floor(scaled).astype(np.int64).reshape(params.L, params.m)
            fractions = (scaled - np.floor(scaled)).reshape(params.L, params.m)

            collected: list[np.ndarray] = []
            total = 0
            for li in range(params.L):
                # Home bucket plus query-directed perturbations.
                lower = fractions[li] ** 2
                upper = (1.0 - fractions[li]) ** 2
                boundary = np.stack([lower, upper], axis=1)
                probe_sets = [()] + perturbation_sequence(boundary, self.n_probes)
                for probe in probe_sets:
                    perturbed = codes[li].copy()
                    for flat_index in probe:
                        coordinate, side = divmod(flat_index, 2)
                        perturbed[coordinate] += -1 if side == 0 else 1
                    hash_value = int(self._mix_single(bank, perturbed, li))
                    stats.buckets_probed += 1
                    stats.ops.bucket_lookups += 1
                    ids = index.tables[rung_index][li].lookup(hash_value).astype(np.int64)
                    if ids.size == 0:
                        continue
                    stats.nonempty_buckets += 1
                    take = min(ids.size, params.S - total)
                    stats.bucket_sizes_examined.append(int(take))
                    if take > 0:
                        collected.append(ids[:take])
                        total += take
                    if total >= params.S:
                        break
                if total >= params.S:
                    break

            if collected:
                candidates = np.unique(np.concatenate(collected))
                new = candidates[~np.isin(candidates, pool_ids, assume_unique=True)]
                if new.size:
                    diffs = index.data[new].astype(np.float64) - query.astype(np.float64)
                    dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
                    stats.candidates_checked += int(new.size)
                    stats.ops.candidate_fetches += int(new.size)
                    stats.ops.distance_scalar_ops += int(new.size) * index.d
                    pool_ids = np.concatenate([pool_ids, new])
                    pool_dists = np.concatenate([pool_dists, dists])

            if pool_ids.size and int((pool_dists <= params.c * radius).sum()) >= k:
                break

        if pool_ids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return QueryAnswer(ids=empty, distances=empty.astype(np.float64), stats=stats)
        order = np.argsort(pool_dists, kind="stable")[:k]
        return QueryAnswer(ids=pool_ids[order], distances=pool_dists[order], stats=stats)

    @staticmethod
    def _mix_single(bank: CompoundHashBank, codes_row: np.ndarray, li: int) -> int:
        """32-bit hash of one table's (possibly perturbed) code vector.

        Must reproduce :meth:`CompoundHashBank.mix32` exactly — modular
        arithmetic in uint64 arrays, so overflow wraps silently and the
        home probe hits the same bucket the index was built with.
        """
        unsigned = codes_row.astype(np.uint64)
        mixed = np.array(
            [np.einsum("m,m->", unsigned, bank.mixers[li], dtype=np.uint64)],
            dtype=np.uint64,
        )
        mixed ^= mixed >> np.uint64(31)
        mixed *= np.uint64(0x9E3779B97F4A7C15)
        return int(mixed[0] >> np.uint64(32))

    def query_batch(self, queries: np.ndarray, k: int = 1) -> list[QueryAnswer]:
        """Answer each row of ``queries`` independently."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        return [self.query(row, k=k) for row in queries]
