"""Compatibility shim: the stats types live in :mod:`repro.stats`.

They sit outside the ``core`` package so that the analysis layer can
import them without triggering ``repro.core``'s package init (which
imports the analysis layer back — see the import graph note in
DESIGN.md).
"""

from repro.stats import OpCounts, QueryStats

__all__ = ["OpCounts", "QueryStats"]
