"""Incremental index maintenance (paper Sec. 7, "Storage-specific issues").

The paper notes that one advantage of LSH over graph/tree ANNS is an
index that is "easy to maintain and update", and that on SSDs the write
volume matters because it consumes device endurance: "the impact of
object insertion and deletion is small, [but] rebuilding the entire
index should be done sparingly".

:class:`IndexUpdater` implements that maintenance path on a built
:class:`~repro.core.e2lshos.E2LSHoSIndex`:

- **insert**: hash the new objects, and for every (radius, table)
  append them to their bucket chains — a read-modify-write of the head
  block when it has room, or a freshly allocated block prepended to the
  chain when it does not.  Per object this writes O(L x r) small blocks,
  tiny compared to rebuilding the whole index.
- **delete**: locate the object's entry in every chain and rewrite the
  affected block with the entry removed (plus a DRAM tombstone so
  queries drop in-flight candidates immediately).

The block store counts every byte written, so the endurance ablation
benchmark can compare incremental maintenance against full rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.e2lshos import E2LSHoSIndex
from repro.layout.builder import TableHandle
from repro.layout.bucket import (
    BLOCK_HEADER_SIZE,
    NULL_ADDRESS,
    decode_block,
)
from repro.layout.object_info import OBJECT_INFO_SIZE

__all__ = ["IndexUpdater", "UpdateStats"]

import struct

_HEADER = struct.Struct("<QH6x")


@dataclass
class UpdateStats:
    """What maintenance has done so far."""

    inserted: int = 0
    deleted: int = 0
    blocks_rewritten: int = 0
    blocks_allocated: int = 0
    #: Head/chain blocks read during read-modify-write maintenance.
    blocks_read: int = 0

    @property
    def io_requests(self) -> int:
        """Device requests maintenance cost (reads + block writes)."""
        return self.blocks_read + self.blocks_rewritten + self.blocks_allocated


class IndexUpdater:
    """Insert/delete objects on a live on-storage index."""

    def __init__(self, index: E2LSHoSIndex) -> None:
        self.index = index
        self.stats = UpdateStats()
        self._deleted: set[int] = set()

    @property
    def capacity(self) -> int:
        """Largest object ID the 5-byte object info can address."""
        return (1 << self.index.built.codec.id_bits) - 1

    @property
    def deleted_ids(self) -> frozenset[int]:
        """Tombstoned object IDs (filtered from query candidates)."""
        return frozenset(self._deleted)

    # -- insertion -------------------------------------------------------------

    def insert(self, vector: np.ndarray) -> int:
        """Insert one object; returns its new ID."""
        return int(self.insert_batch(np.asarray(vector, dtype=np.float32)[None, :])[0])

    def insert_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Insert several objects; returns their new IDs."""
        index = self.index
        built = index.built
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != index.data.shape[1]:
            raise ValueError(
                f"vectors must have shape (k, {index.data.shape[1]}), got {vectors.shape}"
            )
        first_id = index.data.shape[0]
        new_ids = np.arange(first_id, first_id + vectors.shape[0], dtype=np.int64)
        if int(new_ids[-1]) > self.capacity:
            raise ValueError(
                f"object ID {int(new_ids[-1])} exceeds the layout capacity {self.capacity}"
            )

        # Grow the DRAM-resident database (the paper keeps vectors in DRAM).
        index.data = np.vstack([index.data, vectors])

        projections = built.bank.project(vectors)
        for rung_index, radius in enumerate(built.ladder):
            hash_values = built.bank.mix32(built.bank.codes_for_radius(projections, radius))
            for li in range(built.params.L):
                handle = built.tables[rung_index][li]
                slots, fingerprints = built.codec.split_hash(hash_values[:, li])
                for obj, slot, fp in zip(new_ids.tolist(), slots.tolist(), fingerprints.tolist()):
                    self._insert_entry(handle, int(slot), int(obj), int(fp))
                # Keep the exact occupancy filter exact.
                merged = np.union1d(handle.present_values, hash_values[:, li].astype(np.uint32))
                object.__setattr__(handle, "present_values", merged)
        self.stats.inserted += int(vectors.shape[0])
        return new_ids

    def _insert_entry(
        self, handle: TableHandle, slot: int, object_id: int, fingerprint: int
    ) -> None:
        built = self.index.built
        store = built.store
        codec = built.codec
        capacity = (built.block_size - BLOCK_HEADER_SIZE) // OBJECT_INFO_SIZE
        head = handle.table.read_slot(slot)
        if head != NULL_ADDRESS:
            raw = store.read(head, min(built.block_size, store.size_bytes - head))
            self.stats.blocks_read += 1
            block = decode_block(codec, raw)
            if block.count < capacity:
                # Head block has room only if its on-storage record does
                # (compact allocation sizes records to their count), so
                # append via a freshly sized record replacing the head.
                ids = np.concatenate([block.object_ids, [object_id]]).astype(np.uint64)
                fps = np.concatenate([block.fingerprints, [fingerprint]]).astype(np.uint64)
                address = self._write_block(ids, fps, block.next_address)
                handle.table.write_slot(slot, address)
                self.stats.blocks_rewritten += 1
                return
        # Chain full (or empty): prepend a new block pointing at the head.
        ids = np.array([object_id], dtype=np.uint64)
        fps = np.array([fingerprint], dtype=np.uint64)
        address = self._write_block(ids, fps, head)
        handle.table.write_slot(slot, address)
        self.stats.blocks_allocated += 1

    def _write_block(self, ids: np.ndarray, fps: np.ndarray, next_address: int) -> int:
        built = self.index.built
        payload = built.codec.pack(ids, fps)
        record = _HEADER.pack(next_address, ids.size) + payload
        # Maintenance writes whole device blocks (as the paper's SSDs
        # would): pad to block_size.  This also guarantees the query
        # path's fixed-size block reads stay inside the allocation.
        record += b"\x00" * (built.block_size - len(record) % built.block_size if len(record) % built.block_size else 0)
        address = built.store.allocate(len(record))
        built.store.write(address, record)
        return address

    # -- deletion -------------------------------------------------------------

    def delete(self, object_id: int) -> None:
        """Remove one object from every bucket chain (and tombstone it)."""
        index = self.index
        built = index.built
        if not 0 <= object_id < index.data.shape[0]:
            raise ValueError(f"object {object_id} outside [0, {index.data.shape[0]})")
        if object_id in self._deleted:
            raise ValueError(f"object {object_id} already deleted")

        vector = index.data[object_id][None, :]
        projections = built.bank.project(vector)
        for rung_index, radius in enumerate(built.ladder):
            hash_values = built.bank.mix32(built.bank.codes_for_radius(projections, radius))
            for li in range(built.params.L):
                handle = built.tables[rung_index][li]
                slots, fingerprints = built.codec.split_hash(hash_values[:, li])
                self._delete_entry(handle, int(slots[0]), object_id, int(fingerprints[0]))
        self._deleted.add(object_id)
        self.stats.deleted += 1

    def _delete_entry(
        self, handle: TableHandle, slot: int, object_id: int, fingerprint: int
    ) -> None:
        built = self.index.built
        store = built.store
        codec = built.codec
        address = handle.table.read_slot(slot)
        while address != NULL_ADDRESS:
            raw = store.read(address, min(built.block_size, store.size_bytes - address))
            self.stats.blocks_read += 1
            block = decode_block(codec, raw)
            match = (block.object_ids == object_id) & (block.fingerprints == fingerprint)
            if match.any():
                keep = ~match
                payload = codec.pack(
                    block.object_ids[keep].astype(np.uint64), block.fingerprints[keep]
                )
                record = _HEADER.pack(block.next_address, int(keep.sum())) + payload
                # The shrunken record fits in place of the old one.
                store.write(address, record)
                self.stats.blocks_rewritten += 1
                return
            address = block.next_address
        # Not found in any block (e.g. it fell to the S-truncation during
        # a partial rebuild): the tombstone alone is sufficient.

    # -- query-side filtering ---------------------------------------------------

    def filter_answer_ids(self, ids: np.ndarray) -> np.ndarray:
        """Drop tombstoned IDs from a candidate/answer array."""
        if not self._deleted:
            return ids
        mask = np.array([obj not in self._deleted for obj in ids.tolist()])
        return ids[mask]
