"""Exact brute-force baseline.

Used for ground truth in tests and as the trivial linear-time
comparison point; its operation counts make the cost of exactness
explicit (n distance computations per query, always).
"""

from __future__ import annotations

import numpy as np

from repro.core.e2lsh import QueryAnswer
from repro.core.query_stats import OpCounts, QueryStats

__all__ = ["LinearScanIndex"]


class LinearScanIndex:
    """Exact k-NN by scanning the whole database."""

    def __init__(self, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self.data = data

    @property
    def n(self) -> int:
        """Database size."""
        return self.data.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.data.shape[1]

    def query(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Exact top-k answer."""
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, {self.n}], got {k}")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.size != self.d:
            raise ValueError(f"query has d={query.size}, index expects {self.d}")
        diffs = self.data.astype(np.float64) - query
        dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
        top = np.argpartition(dists, k - 1)[:k]
        order = top[np.argsort(dists[top], kind="stable")]
        stats = QueryStats(
            ops=OpCounts(
                distance_scalar_ops=self.n * self.d,
                candidate_fetches=self.n,
            ),
            candidates_checked=self.n,
        )
        return QueryAnswer(ids=order.astype(np.int64), distances=dists[order], stats=stats)

    def query_batch(self, queries: np.ndarray, k: int = 1) -> list[QueryAnswer]:
        """Answer each row of ``queries`` independently."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        return [self.query(row, k=k) for row in queries]
