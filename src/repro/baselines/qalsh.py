"""QALSH: query-aware LSH with collision counting (Huang et al., VLDB 2015).

QALSH keeps one B+ tree per hash function over the raw projections
``a_i . o`` (no quantization at build time — buckets are defined at
query time, *centered on the query's projection*, hence "query-aware").
A query proceeds by virtual rehashing: for rounds ``R = 1, c, c^2, ...``
each tree's search window is ``[a_i.q - w R / 2, a_i.q + w R / 2]``;
objects appearing in a window increment a collision counter, and an
object whose count reaches the threshold ``l = alpha * m`` becomes a
candidate for true-distance checking.  The search stops when

- T1: the current k-th best distance is within ``c * R``, or
- T2: ``beta * n + k - 1`` candidates have been checked.

Index size is O(n log n) and query time superlinear — the paper's
Figure 2 shows QALSH consistently slower than SRS, which our
implementation reproduces.  The accuracy knob is the approximation
ratio ``c`` (Sec. 3.3: "for lack of other tweakable parameters").
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.bptree import BPlusTree, TraversalCounters
from repro.core.collision import query_aware_collision_probability
from repro.core.e2lsh import QueryAnswer
from repro.core.query_stats import OpCounts, QueryStats
from repro.utils.rng import rng_for

__all__ = ["QALSHIndex", "qalsh_parameters", "DEFAULT_DELTA"]

#: Failure probability delta giving the paper's success target 1/2 - 1/e.
DEFAULT_DELTA = 1.0 - (0.5 - 1.0 / math.e)


def qalsh_parameters(
    n: int, c: float, w: float, delta: float = DEFAULT_DELTA, beta_count: int = 100
) -> tuple[int, float, int]:
    """Derive (m, alpha, collision threshold l) per the QALSH paper.

    ``beta_count = beta * n`` is the candidate budget (QALSH uses 100).
    """
    if n < 1 or c <= 1 or w <= 0 or not 0 < delta < 1:
        raise ValueError("invalid QALSH parameters")
    p1 = float(query_aware_collision_probability(w))
    p2 = float(query_aware_collision_probability(w / c))
    beta = min(1.0, beta_count / n)
    term_beta = math.sqrt(math.log(2.0 / beta))
    term_delta = math.sqrt(math.log(1.0 / delta))
    m = max(1, math.ceil((term_beta + term_delta) ** 2 / (2.0 * (p1 - p2) ** 2)))
    alpha = (term_beta * p2 + term_delta * p1) / (term_beta + term_delta)
    threshold = max(1, math.ceil(alpha * m))
    return m, alpha, threshold


class QALSHIndex:
    """QALSH over a fixed database."""

    #: QALSH's recommended bucket width for c = 2.
    DEFAULT_W = 2.719

    def __init__(
        self,
        data: np.ndarray,
        c: float = 2.0,
        w: float | None = None,
        delta: float = DEFAULT_DELTA,
        beta_count: int = 100,
        seed: int = 0,
        leaf_capacity: int = 64,
    ) -> None:
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        self.data = data
        self.c = c
        self.w = w if w is not None else self.DEFAULT_W
        self.delta = delta
        self.beta_count = beta_count
        self.m, self.alpha, self.threshold = qalsh_parameters(
            data.shape[0], c, self.w, delta, beta_count
        )
        rng = rng_for(seed, "qalsh-projections")
        self.directions = rng.standard_normal((data.shape[1], self.m)).astype(np.float64)
        projections = data.astype(np.float64) @ self.directions
        ids = np.arange(data.shape[0], dtype=np.int64)
        self.trees = [
            BPlusTree(projections[:, i], ids, leaf_capacity=leaf_capacity)
            for i in range(self.m)
        ]
        self._proj_extent = float(np.abs(projections).max()) or 1.0

    @property
    def n(self) -> int:
        """Database size."""
        return self.data.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.data.shape[1]

    @property
    def index_memory_bytes(self) -> int:
        """DRAM of the m B+ trees (keys + values + node overhead)."""
        per_entry = 16 + 4  # key + value + amortized node overhead
        return self.m * self.n * per_entry + self.directions.nbytes

    def query(self, query: np.ndarray, k: int = 1, c: float | None = None) -> QueryAnswer:
        """Top-k c-ANNS by virtual rehashing; ``c`` overrides the knob."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.size != self.d:
            raise ValueError(f"query has d={query.size}, index expects {self.d}")
        c = c if c is not None else self.c
        if c <= 1:
            raise ValueError(f"c must be > 1, got {c}")

        projected_query = query @ self.directions
        counts = np.zeros(self.n, dtype=np.int16)
        checked = np.zeros(self.n, dtype=bool)
        #: Per-tree already-covered window [lo, hi) — grown each round.
        window_lo = projected_query.copy()
        window_hi = projected_query.copy()
        budget = self.beta_count + k - 1
        counters = TraversalCounters()

        best_ids: list[int] = []
        best_dists: list[float] = []
        distance_ops = 0
        candidates_checked = 0
        rounds = 0

        radius = 1.0
        max_radius = 4.0 * self._proj_extent / self.w + 1.0
        while True:
            rounds += 1
            half_width = self.w * radius / 2.0
            new_candidates: list[np.ndarray] = []
            for i, tree in enumerate(self.trees):
                center = projected_query[i]
                lo, hi = center - half_width, center + half_width
                # Only the not-yet-covered flanks are new this round.
                for flank_lo, flank_hi in ((lo, window_lo[i]), (window_hi[i], hi)):
                    if flank_hi <= flank_lo:
                        continue
                    _, ids = tree.window(flank_lo, flank_hi, counters)
                    if ids.size == 0:
                        continue
                    np.add.at(counts, ids, 1)
                    hit = ids[(counts[ids] >= self.threshold) & ~checked[ids]]
                    if hit.size:
                        new_candidates.append(np.unique(hit))
                window_lo[i], window_hi[i] = lo, hi

            if new_candidates:
                candidates = np.unique(np.concatenate(new_candidates))
                candidates = candidates[~checked[candidates]]
                room = budget - candidates_checked
                candidates = candidates[:room]
                if candidates.size:
                    checked[candidates] = True
                    diffs = self.data[candidates].astype(np.float64) - query
                    dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
                    distance_ops += int(candidates.size) * self.d
                    candidates_checked += int(candidates.size)
                    for obj, dist in zip(candidates.tolist(), dists.tolist()):
                        position = np.searchsorted(best_dists, dist)
                        if position < k:
                            best_dists.insert(position, dist)
                            best_ids.insert(position, obj)
                            if len(best_dists) > k:
                                best_dists.pop()
                                best_ids.pop()

            # T1: answer good enough for this radius; T2: budget exhausted.
            if len(best_dists) == k and best_dists[-1] <= c * radius:
                break
            if candidates_checked >= budget:
                break
            if radius > max_radius:
                break
            radius *= c

        stats = QueryStats(
            ops=OpCounts(
                projection_scalar_ops=self.d * self.m,
                distance_scalar_ops=distance_ops,
                candidate_fetches=candidates_checked,
                btree_entry_scans=counters.entries_scanned,
                tree_node_visits=counters.node_visits,
                rounds=rounds,
            ),
            candidates_checked=candidates_checked,
            rungs_searched=rounds,
        )
        return QueryAnswer(
            ids=np.asarray(best_ids, dtype=np.int64),
            distances=np.asarray(best_dists, dtype=np.float64),
            stats=stats,
        )

    def query_batch(
        self, queries: np.ndarray, k: int = 1, c: float | None = None
    ) -> list[QueryAnswer]:
        """Answer each row of ``queries`` independently."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        return [self.query(row, k=k, c=c) for row in queries]
