"""Packed R-tree over low-dimensional points with incremental NN.

This is SRS's index substrate: the projected (m ~ 6-8 dimensional)
points are bulk-loaded into an R-tree and queried with the classic
best-first *incremental* nearest-neighbor algorithm (Hjaltason &
Samet): a priority queue holds nodes keyed by the minimum distance of
their bounding rectangle and points keyed by their exact distance;
popping yields points in strictly non-decreasing distance order.

Bulk loading uses Sort-Tile-Recursive (STR): points are recursively
sorted and sliced along successive dimensions until slices fit a leaf.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

__all__ = ["RTree", "NNCounters"]


@dataclass
class NNCounters:
    """Operation counters for one incremental-NN traversal."""

    node_visits: int = 0
    heap_ops: int = 0
    points_returned: int = 0


class _Node:
    __slots__ = ("lower", "upper", "children", "point_ids")

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        children: list["_Node"] | None,
        point_ids: np.ndarray | None,
    ) -> None:
        self.lower = lower
        self.upper = upper
        self.children = children
        self.point_ids = point_ids

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None

    def min_dist_sq(self, query: np.ndarray) -> float:
        """Squared distance from ``query`` to the bounding rectangle."""
        delta = np.maximum(self.lower - query, 0.0) + np.maximum(query - self.upper, 0.0)
        return float((delta**2).sum())


class RTree:
    """STR bulk-loaded R-tree with best-first incremental NN."""

    def __init__(
        self,
        points: np.ndarray,
        leaf_capacity: int = 32,
        fanout: int = 8,
    ) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty (n, m) array, got {points.shape}")
        if leaf_capacity < 1 or fanout < 2:
            raise ValueError("leaf_capacity must be >= 1 and fanout >= 2")
        self.points = points
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.root = self._build(np.arange(points.shape[0], dtype=np.int64), depth=0)
        self.n_nodes = self._count_nodes(self.root)

    # -- construction ----------------------------------------------------------

    def _build(self, ids: np.ndarray, depth: int) -> _Node:
        subset = self.points[ids]
        lower = subset.min(axis=0)
        upper = subset.max(axis=0)
        if ids.size <= self.leaf_capacity:
            return _Node(lower, upper, children=None, point_ids=ids)
        # STR slice: sort along the cycling dimension, cut into fanout slabs.
        dim = depth % self.points.shape[1]
        order = ids[np.argsort(subset[:, dim], kind="stable")]
        n_slabs = min(self.fanout, math.ceil(ids.size / self.leaf_capacity))
        slab_size = math.ceil(ids.size / n_slabs)
        children = [
            self._build(order[i : i + slab_size], depth + 1)
            for i in range(0, ids.size, slab_size)
        ]
        return _Node(lower, upper, children=children, point_ids=None)

    def _count_nodes(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(child) for child in node.children)

    @property
    def memory_bytes(self) -> int:
        """Approximate DRAM footprint (points + node rectangles)."""
        per_node = 2 * self.points.shape[1] * 8 + 64
        return self.points.nbytes + self.n_nodes * per_node

    # -- incremental NN ----------------------------------------------------------

    def incremental_nn(
        self,
        query: np.ndarray,
        counters: NNCounters | None = None,
    ) -> Iterator[tuple[float, int]]:
        """Yield ``(distance, point_id)`` in non-decreasing distance order."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.size != self.points.shape[1]:
            raise ValueError(
                f"query has m={query.size}, tree expects {self.points.shape[1]}"
            )
        counters = counters if counters is not None else NNCounters()
        # Heap entries: (squared distance, tiebreak, is_point, payload).
        counter = 0
        heap: list[tuple[float, int, bool, object]] = [
            (self.root.min_dist_sq(query), counter, False, self.root)
        ]
        counters.heap_ops += 1
        while heap:
            dist_sq, _, is_point, payload = heapq.heappop(heap)
            counters.heap_ops += 1
            if is_point:
                counters.points_returned += 1
                yield math.sqrt(dist_sq), int(payload)  # type: ignore[arg-type]
                continue
            node: _Node = payload  # type: ignore[assignment]
            counters.node_visits += 1
            if node.is_leaf:
                ids = node.point_ids
                deltas = self.points[ids] - query
                dists = np.einsum("nm,nm->n", deltas, deltas)
                for point_dist, point_id in zip(dists.tolist(), ids.tolist()):
                    counter += 1
                    heapq.heappush(heap, (point_dist, counter, True, point_id))
                    counters.heap_ops += 1
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(heap, (child.min_dist_sq(query), counter, False, child))
                    counters.heap_ops += 1

    def knn(self, query: np.ndarray, k: int) -> list[tuple[float, int]]:
        """Exact k nearest points in the projected space (testing helper)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        result = []
        for dist, point_id in self.incremental_nn(query):
            result.append((dist, point_id))
            if len(result) == k:
                break
        return result
