"""External-memory SRS sketch (paper's concluding suggestion).

The conclusion notes that small-index methods could also benefit from
modern storage on memory-limited machines: "external-memory SRS and
QALSH may issue requests for adjacent tree nodes while processing the
current node".  This module demonstrates that idea: the SRS R-tree's
nodes are serialized to the block store (one 512-byte record per node),
and the incremental-NN walk runs as an engine task that *prefetches*
the next-best frontier nodes in asynchronous batches instead of reading
one node per blocking I/O.

It is deliberately a sketch — enough to measure the sync-vs-async gap
for a tree workload (the ablation benchmark) — not a production index.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.baselines.rtree import _Node
from repro.baselines.srs import SRSIndex
from repro.storage.blockstore import BlockStore
from repro.storage.engine import Compute, ReadBatch, Task

__all__ = ["StorageSRS", "build_storage_srs"]

_NODE_RECORD = 512
#: node record: u8 is_leaf, u8 n_entries, 6 pad, then entries:
#:   leaf: n x u64 point ids;  internal: n x u64 child addresses.
_HEADER = struct.Struct("<BB6x")
#: Cost of scoring one frontier entry (heap + rectangle distance).
_VISIT_NS = 150.0


@dataclass
class _NodeRecord:
    is_leaf: bool
    entries: np.ndarray  # point ids or child addresses
    lower: np.ndarray
    upper: np.ndarray


class StorageSRS:
    """SRS with its R-tree nodes resident on (simulated) storage."""

    def __init__(self, srs: SRSIndex, store: BlockStore, prefetch: int = 8) -> None:
        if prefetch < 1:
            raise ValueError(f"prefetch must be >= 1, got {prefetch}")
        self.srs = srs
        self.store = store
        self.prefetch = prefetch
        #: DRAM-resident per-node rectangles (small), keyed by address.
        self._rects: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.root_address = self._persist(srs.tree.root)

    def _persist(self, node: _Node) -> int:
        if node.is_leaf:
            entries = node.point_ids.astype(np.uint64)
        else:
            entries = np.array(
                [self._persist(child) for child in node.children], dtype=np.uint64
            )
        if 16 + entries.size * 8 > _NODE_RECORD:
            raise ValueError(
                f"node with {entries.size} entries exceeds the {_NODE_RECORD}-byte record"
            )
        address = self.store.allocate(_NODE_RECORD)
        record = _HEADER.pack(1 if node.is_leaf else 0, entries.size)
        record += entries.astype("<u8").tobytes()
        record += b"\x00" * (_NODE_RECORD - len(record))
        self.store.write(address, record)
        self._rects[address] = (node.lower, node.upper)
        return address

    def _decode(self, raw: bytes, address: int) -> _NodeRecord:
        is_leaf, count = _HEADER.unpack_from(raw)
        entries = np.frombuffer(raw, dtype="<u8", count=count, offset=8).astype(np.uint64)
        lower, upper = self._rects[address]
        return _NodeRecord(is_leaf=bool(is_leaf), entries=entries, lower=lower, upper=upper)

    def query_task(self, query: np.ndarray, k: int, t_prime: int) -> Task:
        """Engine task: asynchronous best-first NN over on-storage nodes."""
        return self._run(np.asarray(query, dtype=np.float64).reshape(-1), k, t_prime, True)

    def query_task_sync_order(self, query: np.ndarray, k: int, t_prime: int) -> Task:
        """Same walk, but one node read per batch (no prefetching)."""
        return self._run(np.asarray(query, dtype=np.float64).reshape(-1), k, t_prime, False)

    def _run(self, query: np.ndarray, k: int, t_prime: int, prefetch: bool) -> Task:
        if k < 1 or t_prime < k:
            raise ValueError("need k >= 1 and t_prime >= k")
        srs = self.srs
        projected_query = query @ srs.projection
        points = srs.projected

        def min_dist_sq(address: int) -> float:
            lower, upper = self._rects[address]
            delta = np.maximum(lower - projected_query, 0.0) + np.maximum(
                projected_query - upper, 0.0
            )
            return float((delta**2).sum())

        counter = 0
        # Frontier of (score, tiebreak, is_point, payload).
        frontier: list[tuple[float, int, bool, int]] = [
            (min_dist_sq(self.root_address), counter, False, self.root_address)
        ]
        best: list[tuple[float, int]] = []
        examined = 0
        while frontier and examined < t_prime:
            # Pop points cheaply; gather the next node addresses to read.
            to_read: list[int] = []
            width = self.prefetch if prefetch else 1
            while frontier and len(to_read) < width:
                score, _, is_point, payload = heapq.heappop(frontier)
                if is_point:
                    true_dist = float(
                        np.linalg.norm(
                            srs.data[payload].astype(np.float64) - query
                        )
                    )
                    heapq.heappush(best, (-true_dist, payload))
                    if len(best) > k:
                        heapq.heappop(best)
                    examined += 1
                    if examined >= t_prime:
                        break
                else:
                    to_read.append(payload)
            if not to_read:
                continue
            yield Compute(_VISIT_NS * len(to_read))
            raw_nodes = yield ReadBatch([(address, _NODE_RECORD) for address in to_read])
            for raw, address in zip(raw_nodes, to_read):
                record = self._decode(raw, address)
                if record.is_leaf:
                    ids = record.entries.astype(np.int64)
                    deltas = points[ids] - projected_query
                    dists = np.einsum("nm,nm->n", deltas, deltas)
                    for dist, point_id in zip(dists.tolist(), ids.tolist()):
                        counter += 1
                        heapq.heappush(frontier, (dist, counter, True, point_id))
                else:
                    for child in record.entries.tolist():
                        counter += 1
                        heapq.heappush(frontier, (min_dist_sq(child), counter, False, child))

        ordered = sorted((-neg, obj) for neg, obj in best)
        ids = np.array([obj for _, obj in ordered], dtype=np.int64)
        dists = np.array([dist for dist, _ in ordered], dtype=np.float64)
        return ids, dists


def build_storage_srs(
    data: np.ndarray, store: BlockStore, seed: int = 0, prefetch: int = 8
) -> StorageSRS:
    """Convenience constructor: SRS index + on-storage tree."""
    srs = SRSIndex(data, seed=seed, leaf_capacity=32, fanout=8)
    return StorageSRS(srs, store, prefetch=prefetch)
