"""SRS: c-ANNS with a tiny index (Sun et al., VLDB 2014).

SRS projects the d-dimensional database into a tiny m-dimensional space
(m = 8 here, the value the paper found to work well for all datasets,
Sec. 3.3) using Gaussian random projections, indexes the projections in
an R-tree, and answers a query by walking the projected points in
increasing projected distance (incremental NN), checking true distances
as it goes.  Two stopping rules apply:

- the budget rule: stop after T' points (the accuracy knob), and
- the early-termination test: if a point with true distance below
  ``best / c`` existed, its projected distance squared over
  ``(best/c)^2`` would be chi^2_m distributed; once the frontier's
  projected distance makes that event unlikely (CDF above a threshold
  tied to the target success probability), searching further cannot
  change the c-approximate answer.

The index is linear in n and the query time is linear in n — the paper
uses SRS as the representative state-of-the-art small-index method.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import chi2

from repro.baselines.rtree import NNCounters, RTree
from repro.core.e2lsh import QueryAnswer
from repro.core.query_stats import OpCounts, QueryStats
from repro.utils.rng import rng_for

__all__ = ["SRSIndex", "DEFAULT_EARLY_STOP_CONFIDENCE"]

#: Early-termination confidence tied to the paper's success probability
#: target of 1/2 - 1/e (stop once the chance of a missed c-NN among the
#: unseen points drops below 1 - that target).
DEFAULT_EARLY_STOP_CONFIDENCE = 1.0 - (0.5 - 1.0 / np.e)


class SRSIndex:
    """SRS over a fixed database."""

    def __init__(
        self,
        data: np.ndarray,
        m: int = 8,
        c: float = 4.0,
        seed: int = 0,
        leaf_capacity: int = 32,
        fanout: int = 8,
    ) -> None:
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty (n, d) array, got {data.shape}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if c <= 1:
            raise ValueError(f"c must be > 1, got {c}")
        self.data = data
        self.m = m
        self.c = c
        rng = rng_for(seed, "srs-projection")
        #: Gaussian projection: projected dist^2 ~ true dist^2 * chi^2_m.
        self.projection = rng.standard_normal((data.shape[1], m)).astype(np.float64)
        self.projected = data.astype(np.float64) @ self.projection
        self.tree = RTree(self.projected, leaf_capacity=leaf_capacity, fanout=fanout)

    @property
    def n(self) -> int:
        """Database size."""
        return self.data.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.data.shape[1]

    @property
    def index_memory_bytes(self) -> int:
        """DRAM of the projections + R-tree (the paper's "tiny index")."""
        return self.projected.nbytes + self.tree.memory_bytes + self.projection.nbytes

    def query(
        self,
        query: np.ndarray,
        k: int = 1,
        t_prime: int | None = None,
        use_early_stop: bool | None = None,
        early_stop_confidence: float = DEFAULT_EARLY_STOP_CONFIDENCE,
    ) -> QueryAnswer:
        """Top-k c-ANNS; ``t_prime`` caps the points examined (the knob).

        The chi-squared early-termination test provides the theoretical
        c-ANNS guarantee but stops long before reaching tight empirical
        ratios; following Sec. 3.3 ("we control the accuracy by varying
        T'"), it is disabled by default whenever an explicit ``t_prime``
        is given and enabled in guarantee mode (``t_prime=None``).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if use_early_stop is None:
            use_early_stop = t_prime is None
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.size != self.d:
            raise ValueError(f"query has d={query.size}, index expects {self.d}")
        budget = t_prime if t_prime is not None else self.n
        if budget < k:
            raise ValueError(f"t_prime={budget} smaller than k={k}")

        projected_query = query @ self.projection
        counters = NNCounters()
        best_ids: list[int] = []
        best_dists: list[float] = []
        examined = 0
        distance_ops = 0

        for projected_dist, point_id in self.tree.incremental_nn(projected_query, counters):
            examined += 1
            true_dist = float(np.linalg.norm(self.data[point_id].astype(np.float64) - query))
            distance_ops += self.d
            # Maintain the running top-k (insertion into a short list).
            position = np.searchsorted(best_dists, true_dist)
            if position < k:
                best_dists.insert(position, true_dist)
                best_ids.insert(position, point_id)
                if len(best_dists) > k:
                    best_dists.pop()
                    best_ids.pop()
            if examined >= budget:
                break
            if use_early_stop and len(best_dists) == k:
                threshold = best_dists[-1] / self.c
                if threshold > 0:
                    confidence = chi2.cdf(projected_dist**2 / threshold**2, df=self.m)
                    if confidence >= early_stop_confidence:
                        break

        stats = QueryStats(
            ops=OpCounts(
                projection_scalar_ops=self.d * self.m,
                distance_scalar_ops=distance_ops,
                candidate_fetches=examined,
                tree_node_visits=counters.node_visits,
                heap_ops=counters.heap_ops,
            ),
            candidates_checked=examined,
        )
        return QueryAnswer(
            ids=np.asarray(best_ids, dtype=np.int64),
            distances=np.asarray(best_dists, dtype=np.float64),
            stats=stats,
        )

    def query_batch(
        self, queries: np.ndarray, k: int = 1, t_prime: int | None = None
    ) -> list[QueryAnswer]:
        """Answer each row of ``queries`` independently."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        return [self.query(row, k=k, t_prime=t_prime) for row in queries]
