"""Competing methods, implemented from scratch (paper Sec. 3.1).

- :mod:`repro.baselines.linear_scan` — exact brute force,
- :mod:`repro.baselines.bptree` — B+ tree (QALSH's index substrate),
- :mod:`repro.baselines.rtree` — packed R-tree with best-first
  incremental NN (SRS's index substrate),
- :mod:`repro.baselines.srs` — SRS (Sun et al., VLDB 2014),
- :mod:`repro.baselines.qalsh` — QALSH (Huang et al., VLDB 2015).

SRS and QALSH are the small-index state of the art the paper benchmarks
E2LSHoS against; both run fully in memory here, as in the paper.
"""

from repro.baselines.linear_scan import LinearScanIndex
from repro.baselines.bptree import BPlusTree
from repro.baselines.rtree import RTree
from repro.baselines.srs import SRSIndex
from repro.baselines.qalsh import QALSHIndex

__all__ = ["LinearScanIndex", "BPlusTree", "RTree", "SRSIndex", "QALSHIndex"]
