"""Bulk-loaded B+ tree over (float key, int value) pairs.

This is QALSH's index substrate: one tree per hash function, keyed by
the projection ``a_i . o`` with the object ID as value.  The tree
supports the two access patterns QALSH needs:

- :meth:`locate`: descend to the first entry with key >= x (counting
  node visits), and
- :meth:`window`: gather all entries with keys in [lo, hi) by walking
  linked leaves from a located position (counting leaf visits and
  entries scanned).

Leaves store their keys/values as NumPy arrays so window gathering is
vectorized per leaf while the structure remains a genuine paged tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BPlusTree", "TraversalCounters"]


@dataclass
class TraversalCounters:
    """Operation counters for one traversal."""

    node_visits: int = 0
    leaf_visits: int = 0
    entries_scanned: int = 0


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self, keys: np.ndarray, values: np.ndarray) -> None:
        self.keys = keys
        self.values = values
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None


class _Internal:
    __slots__ = ("separators", "children")

    def __init__(self, separators: np.ndarray, children: list) -> None:
        # separators[i] = smallest key in children[i + 1].
        self.separators = separators
        self.children = children


class BPlusTree:
    """Immutable bulk-loaded B+ tree."""

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        leaf_capacity: int = 64,
        fanout: int = 16,
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.int64)
        if keys.ndim != 1 or keys.shape != values.shape:
            raise ValueError("keys and values must be equal-length 1-D arrays")
        if keys.size == 0:
            raise ValueError("cannot build an empty tree")
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf_capacity and fanout must be >= 2")
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]

        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.n_entries = int(keys.size)

        leaves = [
            _Leaf(keys[i : i + leaf_capacity], values[i : i + leaf_capacity])
            for i in range(0, keys.size, leaf_capacity)
        ]
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
            right.prev = left
        self.leaves = leaves
        self.height = 1

        level: list = leaves
        level_min_keys = [float(leaf.keys[0]) for leaf in leaves]
        while len(level) > 1:
            parents = []
            parent_mins = []
            for i in range(0, len(level), fanout):
                children = level[i : i + fanout]
                mins = level_min_keys[i : i + fanout]
                parents.append(_Internal(np.array(mins[1:], dtype=np.float64), children))
                parent_mins.append(mins[0])
            level = parents
            level_min_keys = parent_mins
            self.height += 1
        self.root = level[0]

    # -- lookups -------------------------------------------------------------

    def locate(self, key: float, counters: TraversalCounters | None = None) -> tuple[_Leaf, int]:
        """Leaf and in-leaf index of the first entry with key >= ``key``.

        If every key is smaller, returns the last leaf with an index one
        past its end.
        """
        counters = counters if counters is not None else TraversalCounters()
        node = self.root
        while isinstance(node, _Internal):
            counters.node_visits += 1
            # side="left": when key equals a separator, duplicates of the
            # key may extend into the child *before* the separator, and
            # "first entry >= key" must find them.
            child = int(np.searchsorted(node.separators, key, side="left"))
            node = node.children[child]
        counters.node_visits += 1
        counters.leaf_visits += 1
        index = int(np.searchsorted(node.keys, key, side="left"))
        if index == node.keys.size and node.next is not None:
            # Key falls in a gap between leaves: normalize to the next leaf.
            return node.next, 0
        return node, index

    def window(
        self,
        lo: float,
        hi: float,
        counters: TraversalCounters | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (keys, values) with ``lo <= key < hi`` in ascending order."""
        if hi < lo:
            raise ValueError(f"empty window: hi={hi} < lo={lo}")
        counters = counters if counters is not None else TraversalCounters()
        leaf, index = self.locate(lo, counters)
        keys_out: list[np.ndarray] = []
        values_out: list[np.ndarray] = []
        while leaf is not None:
            if index > 0:
                keys = leaf.keys[index:]
                values = leaf.values[index:]
            else:
                keys, values = leaf.keys, leaf.values
            if keys.size == 0:
                break
            counters.leaf_visits += 1
            stop = int(np.searchsorted(keys, hi, side="left"))
            counters.entries_scanned += stop
            if stop > 0:
                keys_out.append(keys[:stop])
                values_out.append(values[:stop])
            if stop < keys.size:
                break
            leaf = leaf.next
            index = 0
        if not keys_out:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        return np.concatenate(keys_out), np.concatenate(values_out)

    def min_key(self) -> float:
        """Smallest key in the tree."""
        return float(self.leaves[0].keys[0])

    def max_key(self) -> float:
        """Largest key in the tree."""
        return float(self.leaves[-1].keys[-1])

    def __len__(self) -> int:
        return self.n_entries
