"""Save and load E2LSHoS indices built over a :class:`FileBlockStore`.

The block store file holds the hash tables and bucket chains; this
module persists the *DRAM side* needed to query them again: the hash
bank (projections, offsets, mixers), the parameters and radius ladder,
and per-table metadata (base addresses, occupancy filters).  Everything
lands in one ``.npz`` next to the block store file, so an index built
once can serve queries across process restarts — the workflow a real
deployment of the paper's system would use.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.layout.builder import BuildStats, BuiltIndex, TableHandle
from repro.layout.hash_table import OnStorageHashTable
from repro.layout.object_info import ObjectInfoCodec
from repro.storage.blockstore import BlockStore

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: E2LSHoSIndex, path: str | os.PathLike[str]) -> None:
    """Write the index's DRAM-side state to ``path`` (an ``.npz``)."""
    built = index.built
    params = built.params
    meta = {
        "version": _FORMAT_VERSION,
        "params": {
            "n": params.n,
            "c": params.c,
            "w": params.w,
            "rho": params.rho,
            "gamma": params.gamma,
            "s_factor": params.s_factor,
        },
        "ladder": {"c": built.ladder.c, "radii": list(built.ladder.radii)},
        "block_size": built.block_size,
        "table_bits": built.codec.table_bits,
        "rungs": len(built.tables),
        "tables_per_rung": len(built.tables[0]) if built.tables else 0,
        "stats": {
            "n_tables": built.stats.n_tables,
            "n_buckets": built.stats.n_buckets,
            "n_blocks": built.stats.n_blocks,
            "table_bytes": built.stats.table_bytes,
            "bucket_bytes": built.stats.bucket_bytes,
        },
    }
    arrays: dict[str, np.ndarray] = {
        "bank_a": built.bank.a,
        "bank_b": built.bank.b,
        "bank_mixers": built.bank.mixers,
        "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    base_addresses = []
    for rung_index, rung in enumerate(built.tables):
        for li, handle in enumerate(rung):
            base_addresses.append(
                (handle.table.base_address, handle.n_buckets, handle.n_blocks, handle.bucket_bytes)
            )
            arrays[f"present_{rung_index}_{li}"] = handle.present_values
    arrays["table_records"] = np.asarray(base_addresses, dtype=np.int64)
    np.savez_compressed(os.fspath(path), **arrays)


def load_index(
    path: str | os.PathLike[str],
    store: BlockStore,
    data: np.ndarray,
) -> E2LSHoSIndex:
    """Reconstruct an index from ``path`` plus its block store and data.

    ``store`` must be the same block store (same bytes, same addresses)
    the index was built over, and ``data`` the same database vectors.
    """
    with np.load(os.fspath(path)) as payload:
        meta = json.loads(bytes(payload["meta_json"]).decode("utf-8"))
        if meta["version"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {meta['version']}")
        params = E2LSHParams(**meta["params"])
        ladder = RadiusLadder(c=meta["ladder"]["c"], radii=tuple(meta["ladder"]["radii"]))
        bank = CompoundHashBank(
            a=payload["bank_a"],
            b=payload["bank_b"],
            mixers=payload["bank_mixers"],
            m=params.m,
            L=params.L,
            w=params.w,
        )
        codec = ObjectInfoCodec(n_objects=params.n, table_bits=int(meta["table_bits"]))
        records = payload["table_records"]
        built = BuiltIndex(
            store=store,
            codec=codec,
            bank=bank,
            params=params,
            ladder=ladder,
            block_size=int(meta["block_size"]),
        )
        rungs = int(meta["rungs"])
        per_rung = int(meta["tables_per_rung"])
        if records.shape[0] != rungs * per_rung:
            raise ValueError("table record count does not match the ladder geometry")
        row = 0
        for rung_index in range(rungs):
            rung_tables = []
            for li in range(per_rung):
                base, n_buckets, n_blocks, bucket_bytes = (int(v) for v in records[row])
                table = OnStorageHashTable.__new__(OnStorageHashTable)
                table.store = store
                table.table_bits = codec.table_bits
                table.n_slots = 1 << codec.table_bits
                table.base_address = base
                rung_tables.append(
                    TableHandle(
                        table=table,
                        present_values=payload[f"present_{rung_index}_{li}"],
                        n_buckets=n_buckets,
                        n_blocks=n_blocks,
                        bucket_bytes=bucket_bytes,
                    )
                )
                row += 1
            built.tables.append(rung_tables)
        built.stats = BuildStats(**meta["stats"])
    return E2LSHoSIndex(built=built, data=np.ascontiguousarray(data, dtype=np.float32))
