"""Index persistence: save/load a built E2LSHoS index."""

from repro.io.persistence import load_index, save_index

__all__ = ["save_index", "load_index"]
