"""Service-level statistics: throughput, tail latency, queues, IOPS.

Latency here is *service* latency — simulated arrival to last-shard
completion, including admission queueing and micro-batching delay — not
the bare engine makespan of a batch run.  Percentiles use the
nearest-rank definition (deterministic, no interpolation), which is what
SLO accounting wants: "p99 = 2.1 ms" means 99% of completed queries
finished in at most 2.1 ms of simulated time.

With replicated shards the report carries two granularities: per-shard
aggregates (summed over the shard's replicas, backward compatible with
the single-copy fields) and per-replica IOPS / I/O counts /
active-window fractions, plus the hedge ledger — armed, cancelled
(primary answered before the timer fired), issued, wins, losses, and
losers cancelled while still queued.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.storage.engine import EngineResult
from repro.utils.units import NS_PER_S, format_iops, format_time

__all__ = [
    "percentile",
    "QueryRecord",
    "UpdateRecord",
    "MergeRecord",
    "ServiceStats",
    "ServiceReport",
]


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile: smallest value with ≥ p% at or below it."""
    if not 0 < p <= 100:
        raise ValueError(f"p must be in (0, 100], got {p}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("no values to take a percentile of")
    rank = math.ceil(p / 100 * len(ordered))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class QueryRecord:
    """Lifecycle of one completed query."""

    query_id: int
    #: Which vector of the query pool was asked (Zipf reuse repeats these).
    pool_index: int
    arrival_ns: float
    finish_ns: float

    @property
    def latency_ns(self) -> float:
        """Arrival-to-completion service latency."""
        return self.finish_ns - self.arrival_ns


@dataclass(frozen=True)
class UpdateRecord:
    """Lifecycle of one completed ingest update (insert or delete).

    ``finish_ns`` is when the update was *applied* to the last target
    shard's delta state — queueing behind a full delta (compaction
    backpressure) is part of the latency, the background merge that
    later persists it is not.
    """

    update_id: int
    #: ``"insert"`` or ``"delete"``.
    kind: str
    arrival_ns: float
    finish_ns: float

    @property
    def latency_ns(self) -> float:
        """Arrival-to-applied ingest latency."""
        return self.finish_ns - self.arrival_ns


@dataclass(frozen=True)
class MergeRecord:
    """One completed background merge/compaction on one shard."""

    shard_id: int
    start_ns: float
    finish_ns: float
    #: Delta inserts rewritten into the static tables.
    inserts: int
    #: Tombstones compacted out of the static tables.
    tombstones: int
    #: Maintenance device requests the rewrite cost.
    write_ios: int
    #: Bytes written to the block store (SSD endurance, paper Sec. 7).
    write_bytes: int

    @property
    def duration_ns(self) -> float:
        """Merge-start to last-replica-completion span."""
        return self.finish_ns - self.start_ns


@dataclass
class ServiceStats:
    """Mutable collector filled in by the service loop."""

    records: list[QueryRecord] = field(default_factory=list)
    rejected: int = 0
    #: Admission-queue depth sampled at every enqueue (all lanes pooled).
    queue_depth_samples: list[int] = field(default_factory=list)
    #: Sub-queries per dispatched micro-batch.
    batch_sizes: list[int] = field(default_factory=list)
    #: Hedge timers armed at admission (hedged routing only).
    hedges_armed: int = 0
    #: Timers disarmed because the primary answered before the deadline.
    hedges_cancelled: int = 0
    #: Duplicates actually re-issued to a second replica.
    hedges_issued: int = 0
    #: Duplicates whose answer beat the primary's.
    hedge_wins: int = 0
    #: Duplicates beaten by the primary.
    hedge_losses: int = 0
    #: Losing copies cancelled while still queued (never cost device I/O).
    hedge_losers_cancelled: int = 0
    #: Timers that fired with no replica able to take the duplicate.
    hedges_suppressed: int = 0
    #: Completed ingest updates (second traffic class; never folded
    #: into the query latency distribution).
    update_records: list[UpdateRecord] = field(default_factory=list)
    #: Updates shed by ingest admission (full lane or exhausted id space).
    updates_rejected: int = 0
    #: Deletes that resolved to nothing (target shed or already gone).
    updates_noop: int = 0
    #: Completed background merges.
    merge_records: list[MergeRecord] = field(default_factory=list)
    #: Unmerged delta entries per shard at run end.
    merge_debt: tuple[int, ...] = ()

    def record_completion(
        self, query_id: int, pool_index: int, arrival_ns: float, finish_ns: float
    ) -> None:
        """Note one query finishing."""
        self.records.append(
            QueryRecord(
                query_id=query_id,
                pool_index=pool_index,
                arrival_ns=arrival_ns,
                finish_ns=finish_ns,
            )
        )

    def record_rejection(self) -> None:
        """Note one query shed by admission control."""
        self.rejected += 1

    def record_update(
        self, update_id: int, kind: str, arrival_ns: float, finish_ns: float
    ) -> None:
        """Note one ingest update applied to all its target shards."""
        self.update_records.append(
            UpdateRecord(
                update_id=update_id,
                kind=kind,
                arrival_ns=arrival_ns,
                finish_ns=finish_ns,
            )
        )

    def record_update_rejection(self) -> None:
        """Note one update shed by ingest admission control."""
        self.updates_rejected += 1

    def record_update_noop(self) -> None:
        """Note one delete that resolved to nothing."""
        self.updates_noop += 1

    def record_merge(self, record: MergeRecord) -> None:
        """Note one background merge completing on all replicas."""
        self.merge_records.append(record)

    def latencies_ns(self) -> np.ndarray:
        """Completed-query latencies in completion order."""
        return np.array([record.latency_ns for record in self.records], dtype=np.float64)

    def report(
        self, shard_results: Sequence[EngineResult | Sequence[EngineResult]]
    ) -> "ServiceReport":
        """Freeze the run into a :class:`ServiceReport`.

        ``shard_results`` holds, per shard, the per-replica
        :class:`EngineResult` list.  The pre-replication flat form (a
        bare :class:`EngineResult` per shard) went through a
        DeprecationWarning cycle and is now rejected — wrap each result
        in a one-element list.
        """
        if any(isinstance(row, EngineResult) for row in shard_results):
            raise TypeError(
                "ServiceStats.report takes one list of per-replica "
                "EngineResults per shard; the flat per-shard form was "
                "deprecated and has been removed — wrap each result in a "
                "one-element list"
            )
        nested: list[list[EngineResult]] = [list(row) for row in shard_results]
        if not self.records:
            if self.rejected == 0:
                raise ValueError("no completed queries to report on")
            return self._rejection_only_report(nested)
        latencies = self.latencies_ns()
        first_arrival = min(record.arrival_ns for record in self.records)
        last_finish = max(record.finish_ns for record in self.records)
        duration = max(last_finish - first_arrival, 1.0)

        def active_fraction(result: EngineResult) -> float:
            stats = result.device_stats
            if stats.completed == 0:
                return 0.0
            active = stats.last_completion_ns - stats.first_submit_ns
            return min(1.0, max(0.0, active / duration))

        return ServiceReport(
            completed=len(self.records),
            rejected=self.rejected,
            duration_ns=duration,
            throughput_qps=len(self.records) * NS_PER_S / duration,
            mean_latency_ns=float(latencies.mean()),
            p50_ns=percentile(latencies, 50),
            p95_ns=percentile(latencies, 95),
            p99_ns=percentile(latencies, 99),
            max_latency_ns=float(latencies.max()),
            mean_queue_depth=(
                float(np.mean(self.queue_depth_samples)) if self.queue_depth_samples else 0.0
            ),
            max_queue_depth=max(self.queue_depth_samples, default=0),
            mean_batch_size=(
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            shard_iops=tuple(
                sum(result.device_stats.observed_iops() for result in row)
                for row in nested
            ),
            shard_io_counts=tuple(
                sum(result.io_count for result in row) for row in nested
            ),
            replica_iops=tuple(
                tuple(result.device_stats.observed_iops() for result in row)
                for row in nested
            ),
            replica_io_counts=tuple(
                tuple(result.io_count for result in row) for row in nested
            ),
            replica_active_fraction=tuple(
                tuple(active_fraction(result) for result in row) for row in nested
            ),
            hedges_armed=self.hedges_armed,
            hedges_cancelled=self.hedges_cancelled,
            hedges_issued=self.hedges_issued,
            hedge_wins=self.hedge_wins,
            hedge_losses=self.hedge_losses,
            hedge_losers_cancelled=self.hedge_losers_cancelled,
            hedges_suppressed=self.hedges_suppressed,
            **self._ingest_fields(nested),
        )

    def _ingest_fields(self, nested: list[list[EngineResult]]) -> dict[str, object]:
        """The ingest traffic class's slice of the report.

        Update latency gets its own percentile distribution — folding
        update completions into the query percentiles would let a flood
        of cheap delta appends mask a query-tail regression.
        """
        update_latencies = [record.latency_ns for record in self.update_records]
        return {
            "updates_completed": len(self.update_records),
            "updates_rejected": self.updates_rejected,
            "updates_noop": self.updates_noop,
            "update_p50_ns": (
                percentile(update_latencies, 50) if update_latencies else 0.0
            ),
            "update_p95_ns": (
                percentile(update_latencies, 95) if update_latencies else 0.0
            ),
            "update_p99_ns": (
                percentile(update_latencies, 99) if update_latencies else 0.0
            ),
            "update_max_ns": max(update_latencies, default=0.0),
            "inserts_applied": sum(
                1 for record in self.update_records if record.kind == "insert"
            ),
            "deletes_applied": sum(
                1 for record in self.update_records if record.kind == "delete"
            ),
            "merges_completed": len(self.merge_records),
            "merge_write_ios": sum(record.write_ios for record in self.merge_records),
            "merge_write_bytes": sum(
                record.write_bytes for record in self.merge_records
            ),
            "shard_merge_debt": self.merge_debt,
            "shard_write_io_counts": tuple(
                sum(result.write_count for result in row) for row in nested
            ),
            "replica_write_io_counts": tuple(
                tuple(result.write_count for result in row) for row in nested
            ),
        }

    def _rejection_only_report(
        self, nested: list[list[EngineResult]]
    ) -> "ServiceReport":
        """Report of a run where admission shed every single query.

        There is no latency distribution to summarize, but the run still
        happened — overload experiments (tiny ``queue_capacity``, huge
        offered rate) want the rejection count and queue figures back,
        not a crash.
        """
        return ServiceReport(
            completed=0,
            rejected=self.rejected,
            duration_ns=0.0,
            throughput_qps=0.0,
            mean_latency_ns=0.0,
            p50_ns=0.0,
            p95_ns=0.0,
            p99_ns=0.0,
            max_latency_ns=0.0,
            mean_queue_depth=(
                float(np.mean(self.queue_depth_samples)) if self.queue_depth_samples else 0.0
            ),
            max_queue_depth=max(self.queue_depth_samples, default=0),
            mean_batch_size=(
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            shard_iops=tuple(0.0 for _ in nested),
            shard_io_counts=tuple(
                sum(result.io_count for result in row) for row in nested
            ),
            replica_iops=tuple(tuple(0.0 for _ in row) for row in nested),
            replica_io_counts=tuple(
                tuple(result.io_count for result in row) for row in nested
            ),
            replica_active_fraction=tuple(tuple(0.0 for _ in row) for row in nested),
            hedges_armed=self.hedges_armed,
            hedges_cancelled=self.hedges_cancelled,
            hedges_issued=self.hedges_issued,
            hedge_wins=self.hedge_wins,
            hedge_losses=self.hedge_losses,
            hedge_losers_cancelled=self.hedge_losers_cancelled,
            hedges_suppressed=self.hedges_suppressed,
            **self._ingest_fields(nested),
        )


@dataclass(frozen=True)
class ServiceReport:
    """Immutable summary of one load-test run."""

    completed: int
    rejected: int
    duration_ns: float
    throughput_qps: float
    mean_latency_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_latency_ns: float
    mean_queue_depth: float
    max_queue_depth: int
    mean_batch_size: float
    #: Observed random-read IOPS per shard (summed over its replicas).
    shard_iops: tuple[float, ...]
    #: I/O requests issued per shard (summed over its replicas).
    shard_io_counts: tuple[int, ...]
    #: Observed IOPS per (shard, replica).
    replica_iops: tuple[tuple[float, ...], ...] = ()
    #: I/O requests issued per (shard, replica).
    replica_io_counts: tuple[tuple[int, ...], ...] = ()
    #: Active-window fraction of the run per (shard, replica): time from
    #: the replica's first submitted read to its last completion, over
    #: the run span.  A span metric, not device busy time — it shows
    #: *when* a replica saw traffic (a bypassed replica reads ~0), not
    #: how hard it worked (see ``replica_iops`` for that).
    replica_active_fraction: tuple[tuple[float, ...], ...] = ()
    hedges_armed: int = 0
    hedges_cancelled: int = 0
    hedges_issued: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0
    hedge_losers_cancelled: int = 0
    hedges_suppressed: int = 0
    #: Ingest updates applied to all their target shards.
    updates_completed: int = 0
    #: Updates shed by ingest admission control.
    updates_rejected: int = 0
    #: Deletes that resolved to nothing (their insert was shed, or the
    #: target was already deleted).
    updates_noop: int = 0
    #: Arrival-to-applied update latency percentiles — a separate
    #: distribution from the query percentiles above, never mixed.
    update_p50_ns: float = 0.0
    update_p95_ns: float = 0.0
    update_p99_ns: float = 0.0
    update_max_ns: float = 0.0
    inserts_applied: int = 0
    deletes_applied: int = 0
    #: Background merges that completed on every replica.
    merges_completed: int = 0
    #: Maintenance device requests all merges cost.
    merge_write_ios: int = 0
    #: Block-store bytes all merges wrote (SSD endurance).
    merge_write_bytes: int = 0
    #: Unmerged delta entries per shard at run end.
    shard_merge_debt: tuple[int, ...] = ()
    #: Maintenance write requests per shard (summed over its replicas);
    #: ``shard_io_counts`` stays reads-only, so the two columns give the
    #: query-vs-ingest device split directly.
    shard_write_io_counts: tuple[int, ...] = ()
    #: Maintenance write requests per (shard, replica).
    replica_write_io_counts: tuple[tuple[int, ...], ...] = ()

    @property
    def offered(self) -> int:
        """Queries that reached admission (completed + rejected)."""
        return self.completed + self.rejected

    @property
    def mean_ios_per_query(self) -> float:
        """Average I/Os a completed query cost across all shards."""
        return sum(self.shard_io_counts) / self.completed if self.completed else 0.0

    @property
    def n_replicas(self) -> int:
        """Replication factor reflected in the per-replica columns."""
        return max((len(row) for row in self.replica_io_counts), default=1)

    @property
    def hedge_fraction(self) -> float:
        """Duplicates issued per admitted sub-query (IOPS overhead proxy)."""
        subqueries = self.completed * max(1, len(self.shard_io_counts))
        return self.hedges_issued / subqueries if subqueries else 0.0

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI output)."""
        lines = [
            f"completed {self.completed} queries in {format_time(self.duration_ns)} "
            f"({self.throughput_qps:,.0f} q/s), rejected {self.rejected}",
            f"latency: p50 {format_time(self.p50_ns)}, p95 {format_time(self.p95_ns)}, "
            f"p99 {format_time(self.p99_ns)}, max {format_time(self.max_latency_ns)}",
            f"queues: mean depth {self.mean_queue_depth:.1f}, max {self.max_queue_depth}, "
            f"mean batch {self.mean_batch_size:.1f}",
            "shards: "
            + ", ".join(
                f"#{i} {format_iops(iops)} ({count} IOs{self._active_suffix(i)})"
                for i, (iops, count) in enumerate(zip(self.shard_iops, self.shard_io_counts))
            ),
        ]
        if self.n_replicas > 1:
            for i, (iops_row, active_row) in enumerate(
                zip(self.replica_iops, self.replica_active_fraction)
            ):
                lines.append(
                    f"shard #{i} replicas: "
                    + ", ".join(
                        f"r{j} {format_iops(iops)} (active {active:.0%})"
                        for j, (iops, active) in enumerate(zip(iops_row, active_row))
                    )
                )
        if self.hedges_armed:
            lines.append(
                f"hedges: armed {self.hedges_armed}, cancelled {self.hedges_cancelled}, "
                f"issued {self.hedges_issued}, wins {self.hedge_wins}, "
                f"losses {self.hedge_losses}, suppressed {self.hedges_suppressed} "
                f"({self.hedge_losers_cancelled} losers cancelled in queue, "
                f"{self.hedge_fraction:.1%} duplicate rate)"
            )
        if self.updates_completed or self.updates_rejected or self.updates_noop:
            # The ingest traffic class reports its own latency
            # distribution — update completions are never folded into
            # the query percentiles above.
            lines.append(
                f"ingest: applied {self.updates_completed} updates "
                f"({self.inserts_applied} inserts, {self.deletes_applied} deletes), "
                f"rejected {self.updates_rejected}, no-ops {self.updates_noop}"
            )
            if self.updates_completed:
                lines.append(
                    f"ingest latency: p50 {format_time(self.update_p50_ns)}, "
                    f"p95 {format_time(self.update_p95_ns)}, "
                    f"p99 {format_time(self.update_p99_ns)}, "
                    f"max {format_time(self.update_max_ns)}"
                )
            lines.append(
                f"merges: {self.merges_completed} completed, "
                f"{self.merge_write_ios} write IOs, "
                f"{self.merge_write_bytes:,} bytes written, "
                f"debt {list(self.shard_merge_debt)}"
            )
        return "\n".join(lines)

    def _active_suffix(self, shard: int) -> str:
        """``, active NN%`` for the shard's busiest replica, if known."""
        if shard >= len(self.replica_active_fraction):
            return ""
        row = self.replica_active_fraction[shard]
        if not row:
            return ""
        return f", active {max(row):.0%}"
