"""Admission control, micro-batching, and replica routing.

The dispatcher keeps one *lane* per replica — N shards x R replicas.
An admitted query fans out into one sub-query per shard
(scatter-gather); a :class:`~repro.serving.replication.ReplicaRouter`
picks which replica's lane receives each sub-query.  Each lane buffers
its sub-queries and releases them to the replica's engine session as a
micro-batch when either

- ``max_batch`` sub-queries are waiting (size trigger), or
- the oldest waiting sub-query has been queued ``max_delay_ns`` (time
  trigger — bounds the latency cost of batching at low load).

Admission is bounded per lane by ``queue_capacity`` *outstanding*
sub-queries (queued plus in flight).  A query is admitted only if every
shard has a replica lane with a free slot; otherwise it is shed and
counted — the service degrades by rejecting load instead of growing
queues without bound.

Under the ``hedged`` routing policy a hedge timer is armed per
sub-query at admission.  If the primary replica has not answered when
the timer fires, the sub-query is re-issued to a second replica and the
first answer wins.  The loser is *cancelled* when it is still queued in
its lane (it never reaches the device); once in flight its completion
is simply discarded.  Both outcomes are counted
(:class:`~repro.serving.stats.ServiceStats`), because hedging spends
duplicate IOPS to buy tail latency and the exchange rate matters.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.obs.trace import NULL_TRACER, Tracer
from repro.serving.events import EVENT_FLUSH, EVENT_HEDGE
from repro.serving.replication import ReplicaRouter, RoutingConfig
from repro.serving.sharding import ShardedIndex
from repro.serving.stats import ServiceStats
from repro.storage.engine import Completion, EngineSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.ingest import IngestCoordinator, UpdateArrival

__all__ = ["DispatchConfig", "Dispatcher"]


@dataclass(frozen=True)
class DispatchConfig:
    """Micro-batching and admission-control knobs."""

    #: Size trigger: flush a lane once this many sub-queries wait.
    max_batch: int = 8
    #: Time trigger: flush no later than first-enqueue + this delay.
    max_delay_ns: float = 50_000.0
    #: Max outstanding sub-queries per replica lane (queued + in flight).
    queue_capacity: int = 512

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ns < 0:
            raise ValueError(f"max_delay_ns must be >= 0, got {self.max_delay_ns}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")


@dataclass
class _Lane:
    """Per-replica admission queue.

    ``pending`` holds ``(query_id, query, k, enqueue_ns)`` in enqueue
    order, so the time-trigger deadline is always the *oldest surviving*
    entry's — cancelling a hedge loser out of the middle (or the front)
    of the queue never distorts younger entries' batching windows.
    Query *tasks* are planned at flush time, not admission time: a full
    lane flushes as one vectorized wave
    (:meth:`~repro.core.e2lshos.E2LSHoSIndex.query_tasks`), and a task
    is pure planning until the engine steps it, so deferring creation
    has zero simulated effect.
    """

    pending: list[tuple[int, Any, int, float]] = field(default_factory=list)
    outstanding: int = 0

    @property
    def deadline_ns(self) -> float:
        return self.pending[0][3] if self.pending else math.inf


@dataclass
class _HedgeState:
    """One armed hedge timer (per admitted sub-query)."""

    deadline_ns: float
    primary: int
    query: np.ndarray
    k: int
    #: Replica the duplicate went to; ``None`` until the timer fires.
    secondary: int | None = None
    #: Timer disarmed because the primary answered before the deadline.
    cancelled: bool = False


class Dispatcher:
    """Routes admitted queries into per-replica micro-batched sessions."""

    def __init__(
        self,
        sharded: ShardedIndex,
        sessions: Sequence[EngineSession] | Sequence[Sequence[EngineSession]],
        config: DispatchConfig,
        stats: ServiceStats,
        routing: RoutingConfig | None = None,
        tracer: Tracer = NULL_TRACER,
        vectorize: bool = True,
    ) -> None:
        self.sharded = sharded
        self.sessions = self._check_sessions(sharded, sessions)
        self.config = config
        self.stats = stats
        self.routing = routing or RoutingConfig()
        self.tracer = tracer
        #: Flush full lanes as one planned wave (``query_tasks`` +
        #: ``submit_batch``).  ``False`` keeps the scalar per-sub-query
        #: path; both produce byte-identical reports and traces.
        self.vectorize = vectorize
        self.router = ReplicaRouter(self.routing, n_shards=sharded.n_shards)
        self._lanes = [[_Lane() for _ in row] for row in self.sessions]
        #: Total queued (unflushed) sub-queries across all lanes.
        self._pending_count = 0
        #: Lane time-trigger deadlines, lazily revalidated against the
        #: lanes on peek (a cancelled front entry re-keys its lane).
        #: Entries are ``(deadline_ns, EVENT_FLUSH, shard, replica)``
        #: per the serving.events tie-order tagging contract (SIM001).
        self._flush_heap: list[tuple[float, int, int, int]] = []
        #: (query_id, shard) -> admission time, for hedge-anchor latencies.
        self._admit_ns: dict[tuple[int, int], float] = {}
        #: (query_id, shard) -> armed hedge timer.
        self._hedges: dict[tuple[int, int], _HedgeState] = {}
        #: Hedge timers ordered by deadline (lazily pruned).  Entries
        #: are ``(deadline_ns, EVENT_HEDGE, seq, key)`` — see
        #: serving.events (SIM001).
        self._hedge_heap: list[tuple[float, int, int, tuple[int, int]]] = []
        self._hedge_seq = 0
        #: Sub-queries whose answer arrived but whose hedge copy is still
        #: in flight; the copy's completion is discarded on arrival.
        self._expect_loser: set[tuple[int, int]] = set()
        #: Ingest coordinator handling the update traffic class (set by
        #: the service when the run carries an update stream); update
        #: admission rides its own per-shard lanes, never the query lanes.
        self.ingest: "IngestCoordinator | None" = None

    @staticmethod
    def _check_sessions(
        sharded: ShardedIndex,
        sessions: Sequence[EngineSession] | Sequence[Sequence[EngineSession]],
    ) -> list[list[EngineSession]]:
        if len(sessions) != sharded.n_shards:
            raise ValueError(
                f"{sharded.n_shards} shards need {sharded.n_shards} session rows, "
                f"got {len(sessions)}"
            )
        nested: list[list[EngineSession]] = [
            [row] if isinstance(row, EngineSession) else list(row) for row in sessions
        ]
        for shard_id, (row, group) in enumerate(zip(nested, sharded.replica_groups)):
            if len(row) != group.n_replicas:
                raise ValueError(
                    f"shard {shard_id} has {group.n_replicas} replicas, "
                    f"got {len(row)} sessions"
                )
        return nested

    # -- admission ------------------------------------------------------------

    def admit(self, now_ns: float, query_id: int, query: np.ndarray, k: int) -> bool:
        """Fan ``query`` out to one replica lane per shard; False = shed."""
        targets: list[int] = []
        for shard_id in range(self.sharded.n_shards):
            lanes = self._lanes[shard_id]
            replica = self.router.route(
                shard_id, [lane.outstanding for lane in lanes], self.config.queue_capacity
            )
            if replica is None:
                self.stats.record_rejection()
                return False
            targets.append(replica)
        hedge_delay = self.router.hedge_delay_ns()
        for shard_id, replica in enumerate(targets):
            self.router.commit(shard_id, replica)
            self._enqueue(shard_id, replica, query_id, query, k, now_ns)
            self._admit_ns[(query_id, shard_id)] = now_ns
            # A single-lane shard has nowhere to hedge to; arming a timer
            # would only litter the ledger with suppressed fires.
            if hedge_delay is not None and len(self._lanes[shard_id]) > 1:
                self._arm_hedge(query_id, shard_id, replica, query, k, now_ns + hedge_delay)
        # Size trigger fires during admission, batching B sub-queries exactly.
        for shard_id, replica in enumerate(targets):
            if len(self._lanes[shard_id][replica].pending) >= self.config.max_batch:
                self._flush(shard_id, replica, now_ns)
        return True

    def admit_update(self, now_ns: float, update: "UpdateArrival") -> None:
        """Admit one ingest update (second traffic class).

        Updates never touch the query lanes: the ingest coordinator
        keeps its own bounded per-shard lanes and sheds into
        ``updates_rejected``, so an ingest storm backpressures ingest
        instead of starving query admission.
        """
        if self.ingest is None:
            raise RuntimeError(
                "update admitted on a dispatcher with no ingest coordinator"
            )
        self.ingest.admit(now_ns, update)

    def _enqueue(
        self,
        shard_id: int,
        replica: int,
        query_id: int,
        query: np.ndarray,
        k: int,
        now_ns: float,
        hedge: bool = False,
    ) -> None:
        lane = self._lanes[shard_id][replica]
        lane.pending.append((query_id, query, k, now_ns))
        lane.outstanding += 1
        self._pending_count += 1
        if len(lane.pending) == 1:
            heapq.heappush(
                self._flush_heap,
                (now_ns + self.config.max_delay_ns, EVENT_FLUSH, shard_id, replica),
            )
        self.stats.queue_depth_samples.append(len(lane.pending))
        self.tracer.attempt_enqueued(query_id, shard_id, replica, hedge, now_ns)

    # -- flushing -------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        """True while any lane holds unflushed sub-queries."""
        return self._pending_count > 0

    @property
    def next_flush_ns(self) -> float:
        """Earliest time trigger across lanes (``inf`` when all empty)."""
        heap = self._flush_heap
        while heap:
            deadline, _, shard_id, replica = heap[0]
            lane = self._lanes[shard_id][replica]
            if not lane.pending:
                heapq.heappop(heap)
                continue
            actual = lane.deadline_ns + self.config.max_delay_ns
            if actual != deadline:
                heapq.heapreplace(heap, (actual, EVENT_FLUSH, shard_id, replica))
                continue
            return deadline
        return math.inf

    def flush_due(self, now_ns: float) -> None:
        """Fire every lane whose time trigger has passed."""
        heap = self._flush_heap
        while heap:
            deadline, _, shard_id, replica = heap[0]
            lane = self._lanes[shard_id][replica]
            if not lane.pending:
                heapq.heappop(heap)
                continue
            actual = lane.deadline_ns + self.config.max_delay_ns
            if actual != deadline:
                heapq.heapreplace(heap, (actual, EVENT_FLUSH, shard_id, replica))
                continue
            if deadline > now_ns:
                return
            heapq.heappop(heap)
            self._flush(shard_id, replica, now_ns)

    def _flush(self, shard_id: int, replica: int, now_ns: float) -> None:
        lane = self._lanes[shard_id][replica]
        pending = lane.pending
        if not pending:
            return
        session = self.sessions[shard_id][replica]
        shard = self.sharded.shards[shard_id]
        self.stats.batch_sizes.append(len(pending))
        self._pending_count -= len(pending)
        if not self.vectorize or len(pending) == 1:
            for query_id, query, k, _ in pending:
                session.submit(shard.query_task(query, k=k), ready_ns=now_ns, tag=query_id)
        else:
            # One planned wave per run of equal k (k is constant within a
            # service run, so this is one wave in practice).
            start, n = 0, len(pending)
            while start < n:
                k = pending[start][2]
                end = start + 1
                while end < n and pending[end][2] == k:
                    end += 1
                if end - start == 1:
                    query_id, query, _, _ = pending[start]
                    session.submit(shard.query_task(query, k=k), ready_ns=now_ns, tag=query_id)
                else:
                    chunk = pending[start:end]
                    tasks = shard.query_tasks(np.stack([entry[1] for entry in chunk]), k=k)
                    session.submit_batch(
                        tasks, ready_ns=now_ns, tags=[entry[0] for entry in chunk]
                    )
                start = end
        for query_id, _, _, _ in pending:
            self.tracer.attempt_flushed(query_id, shard_id, replica, now_ns)
        pending.clear()

    # -- introspection (timeline sampling) ------------------------------------

    def queue_depths(self) -> list[list[int]]:
        """Sub-queries waiting (unflushed) per (shard, replica) lane."""
        return [[len(lane.pending) for lane in row] for row in self._lanes]

    def outstanding_counts(self) -> list[list[int]]:
        """Outstanding sub-queries (queued + in flight) per lane."""
        return [[lane.outstanding for lane in row] for row in self._lanes]

    def ingest_queue_depths(self) -> list[int]:
        """Queued updates per shard ingest lane ([] without ingest)."""
        if self.ingest is None:
            return []
        return self.ingest.lane_depths()

    # -- hedging --------------------------------------------------------------

    def _arm_hedge(
        self,
        query_id: int,
        shard_id: int,
        primary: int,
        query: np.ndarray,
        k: int,
        deadline_ns: float,
    ) -> None:
        key = (query_id, shard_id)
        self._hedges[key] = _HedgeState(
            deadline_ns=deadline_ns, primary=primary, query=query, k=k
        )
        heapq.heappush(self._hedge_heap, (deadline_ns, EVENT_HEDGE, self._hedge_seq, key))
        self._hedge_seq += 1
        self.stats.hedges_armed += 1
        self.tracer.hedge_armed(query_id, shard_id, deadline_ns)

    def _prune_hedges(self) -> None:
        while self._hedge_heap:
            key = self._hedge_heap[0][3]
            state = self._hedges.get(key)
            if state is None or state.cancelled or state.secondary is not None:
                heapq.heappop(self._hedge_heap)
            else:
                return

    @property
    def next_hedge_ns(self) -> float:
        """Earliest armed hedge deadline (``inf`` when none)."""
        self._prune_hedges()
        return self._hedge_heap[0][0] if self._hedge_heap else math.inf

    def fire_hedges(self, now_ns: float) -> None:
        """Re-issue every sub-query whose hedge deadline has passed."""
        self._prune_hedges()
        while self._hedge_heap and self._hedge_heap[0][0] <= now_ns:
            key = heapq.heappop(self._hedge_heap)[3]
            state = self._hedges.get(key)
            if state is None or state.cancelled or state.secondary is not None:
                continue
            query_id, shard_id = key
            lanes = self._lanes[shard_id]
            secondary = self.router.secondary(
                shard_id,
                state.primary,
                [lane.outstanding for lane in lanes],
                self.config.queue_capacity,
            )
            if secondary is None:
                # No replica can take the duplicate; leave the primary be.
                state.cancelled = True
                self.stats.hedges_suppressed += 1
                self.tracer.hedge_suppressed(query_id, shard_id, now_ns)
                continue
            state.secondary = secondary
            self.tracer.hedge_fired(query_id, shard_id, secondary, now_ns)
            self._enqueue(shard_id, secondary, query_id, state.query, state.k, now_ns, hedge=True)
            self.stats.hedges_issued += 1
            if len(lanes[secondary].pending) >= self.config.max_batch:
                self._flush(shard_id, secondary, now_ns)
            self._prune_hedges()

    def _cancel_queued(self, shard_id: int, replica: int, query_id: int) -> bool:
        """Drop a still-queued copy of (query_id, shard) from its lane."""
        lane = self._lanes[shard_id][replica]
        for position, entry in enumerate(lane.pending):
            if entry[0] == query_id:
                del lane.pending[position]
                lane.outstanding -= 1
                self._pending_count -= 1
                return True
        return False

    # -- completion bookkeeping ----------------------------------------------

    def subquery_done(
        self, shard_id: int, replica: int, completion: Completion
    ) -> Any | None:
        """Process one replica completion.

        Returns the sub-query's answer when this completion wins (first
        copy to finish), or ``None`` for a hedge loser whose answer
        already arrived from the other replica.
        """
        lane = self._lanes[shard_id][replica]
        if lane.outstanding <= 0:
            raise RuntimeError(
                f"shard {shard_id} replica {replica} has no outstanding sub-queries"
            )
        lane.outstanding -= 1
        key = (completion.tag, shard_id)
        if key in self._expect_loser:
            self._expect_loser.discard(key)
            self.tracer.attempt_finished(
                completion.tag, shard_id, replica, completion, winner=False
            )
            return None
        admit_ns = self._admit_ns.pop(key, None)
        if admit_ns is None:  # pragma: no cover - defensive
            raise RuntimeError(f"completion for unknown sub-query {key}")
        self.router.observe(completion.finish_ns - admit_ns)
        state = self._hedges.pop(key, None)
        if state is not None and not state.cancelled:
            if state.secondary is None:
                # Primary answered before the timer fired: disarm it.
                state.cancelled = True
                self.stats.hedges_cancelled += 1
                self.tracer.hedge_disarmed(completion.tag, shard_id, completion.finish_ns)
            else:
                loser = state.primary if replica == state.secondary else state.secondary
                if replica == state.secondary:
                    self.stats.hedge_wins += 1
                else:
                    self.stats.hedge_losses += 1
                if self._cancel_queued(shard_id, loser, completion.tag):
                    # The losing copy never reached the device.
                    self.stats.hedge_losers_cancelled += 1
                    self.tracer.attempt_cancelled(
                        completion.tag, shard_id, loser, completion.finish_ns
                    )
                else:
                    self._expect_loser.add(key)
        self.tracer.attempt_finished(
            completion.tag, shard_id, replica, completion, winner=True
        )
        return completion.result
