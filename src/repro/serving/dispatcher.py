"""Admission control and micro-batching in front of the shards.

The dispatcher keeps one *lane* per shard.  An admitted query fans out
into one sub-query task per shard (scatter-gather); each lane buffers
its sub-queries and releases them to the shard's engine session as a
micro-batch when either

- ``max_batch`` sub-queries are waiting (size trigger), or
- the oldest waiting sub-query has been queued ``max_delay_ns`` (time
  trigger — bounds the latency cost of batching at low load).

Admission is bounded per shard by ``queue_capacity`` *outstanding*
sub-queries (queued plus in flight).  A query is admitted only if every
lane has a free slot; otherwise it is shed and counted — the service
degrades by rejecting load instead of growing queues without bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.serving.sharding import ShardedIndex
from repro.serving.stats import ServiceStats
from repro.storage.engine import EngineSession, Task

__all__ = ["DispatchConfig", "Dispatcher"]


@dataclass(frozen=True)
class DispatchConfig:
    """Micro-batching and admission-control knobs."""

    #: Size trigger: flush a lane once this many sub-queries wait.
    max_batch: int = 8
    #: Time trigger: flush no later than first-enqueue + this delay.
    max_delay_ns: float = 50_000.0
    #: Max outstanding sub-queries per shard (queued + in flight).
    queue_capacity: int = 512

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ns < 0:
            raise ValueError(f"max_delay_ns must be >= 0, got {self.max_delay_ns}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")


@dataclass
class _Lane:
    """Per-shard admission queue."""

    pending: list[tuple[int, Task]] = field(default_factory=list)
    first_enqueue_ns: float = math.inf
    outstanding: int = 0

    @property
    def deadline_ns(self) -> float:
        return self.first_enqueue_ns


class Dispatcher:
    """Routes admitted queries into per-shard micro-batched sessions."""

    def __init__(
        self,
        sharded: ShardedIndex,
        sessions: list[EngineSession],
        config: DispatchConfig,
        stats: ServiceStats,
    ) -> None:
        if len(sessions) != sharded.n_shards:
            raise ValueError(
                f"{sharded.n_shards} shards need {sharded.n_shards} sessions, "
                f"got {len(sessions)}"
            )
        self.sharded = sharded
        self.sessions = sessions
        self.config = config
        self.stats = stats
        self._lanes = [_Lane() for _ in sharded.shards]

    # -- admission ------------------------------------------------------------

    def admit(self, now_ns: float, query_id: int, query: np.ndarray, k: int) -> bool:
        """Fan ``query`` out to every lane; False = shed by admission."""
        if any(lane.outstanding >= self.config.queue_capacity for lane in self._lanes):
            self.stats.record_rejection()
            return False
        for shard, lane in zip(self.sharded.shards, self._lanes):
            lane.pending.append((query_id, shard.query_task(query, k=k)))
            lane.outstanding += 1
            if len(lane.pending) == 1:
                lane.first_enqueue_ns = now_ns
            self.stats.queue_depth_samples.append(len(lane.pending))
        # Size trigger fires during admission, batching B queries exactly.
        for position, lane in enumerate(self._lanes):
            if len(lane.pending) >= self.config.max_batch:
                self._flush(position, now_ns)
        return True

    # -- flushing -------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        """True while any lane holds unflushed sub-queries."""
        return any(lane.pending for lane in self._lanes)

    @property
    def next_flush_ns(self) -> float:
        """Earliest time trigger across lanes (``inf`` when all empty)."""
        deadlines = [
            lane.deadline_ns + self.config.max_delay_ns
            for lane in self._lanes
            if lane.pending
        ]
        return min(deadlines, default=math.inf)

    def flush_due(self, now_ns: float) -> None:
        """Fire every lane whose time trigger has passed."""
        for position, lane in enumerate(self._lanes):
            if lane.pending and lane.deadline_ns + self.config.max_delay_ns <= now_ns:
                self._flush(position, now_ns)

    def _flush(self, position: int, now_ns: float) -> None:
        lane = self._lanes[position]
        self.stats.batch_sizes.append(len(lane.pending))
        for query_id, task in lane.pending:
            self.sessions[position].submit(task, ready_ns=now_ns, tag=query_id)
        lane.pending.clear()
        lane.first_enqueue_ns = math.inf

    # -- completion bookkeeping ----------------------------------------------

    def subquery_done(self, position: int) -> None:
        """Release one outstanding slot on shard ``position``."""
        lane = self._lanes[position]
        if lane.outstanding <= 0:
            raise RuntimeError(f"shard {position} has no outstanding sub-queries")
        lane.outstanding -= 1
