"""The committed scenario catalog: the situations serving claims are
regression-tested against.

Each builder returns a fully-specified, seeded
:class:`~repro.serving.scenario.ScenarioSpec`; the catalog is the
*library of situations* the ROADMAP calls for — every entry replays
byte-identically, so "hedging beats round-robin under a windowed slow
replica" is a test, not an anecdote.  Fault windows and workload
periods are expressed as fractions of the nominal run length
(``requests / qps``), so the quick and full scales exercise the same
story at different sizes:

============================  =================================================
scenario                      the situation
============================  =================================================
``steady-state``              healthy fleet, Poisson arrivals, mild skew —
                              the control every other entry is read against
``flash-crowd``               offered rate steps 4x for the middle third of
                              the run (admission + queueing under burst)
``diurnal``                    sinusoidal rate swing (capacity must absorb the
                              crest, not the mean)
``hot-set-drift``             Zipf head marches through the query pool
                              (cache-invalidation shape)
``replica-stall-storm``       one replica takes periodic GC-style stalls for
                              a mid-run window; hedged routing races past it
``correlated-fault``          one replica of *every* shard degrades 4x in the
                              same window — a bad rack, not a bad disk
``steady-ingest``             sustained insert/delete stream at ~25% of the
                              query rate; delta tables and background merges
                              compete with queries for IOPS
``compaction-stall-storm``    the steady ingest mix while a stalling replica
                              holds merge windows open — deltas and ingest
                              lanes fill behind the stalled compaction
============================  =================================================

The ``quick`` scale keeps CI smoke runs under a few seconds; the full
scale is the nightly chaos sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.config import DataConfig, FaultTimeline, ServingConfig, WorkloadSpec
from repro.serving.scenario import ScenarioSpec
from repro.utils.units import NS_PER_S, NS_PER_US

__all__ = [
    "CATALOG_NAMES",
    "CatalogScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "build_scenario",
    "catalog",
    "steady_state",
    "flash_crowd",
    "diurnal",
    "hot_set_drift",
    "replica_stall_storm",
    "correlated_fault",
    "steady_ingest",
    "compaction_stall_storm",
]


@dataclass(frozen=True)
class CatalogScale:
    """Sizing knobs shared by every catalog entry."""

    n: int
    pool_queries: int
    requests: int
    qps: float

    @property
    def run_ns(self) -> float:
        """Nominal run length the windows/periods are fractions of."""
        return self.requests / self.qps * NS_PER_S

    @property
    def run_us(self) -> float:
        return self.run_ns / NS_PER_US


QUICK_SCALE = CatalogScale(n=1_200, pool_queries=16, requests=32, qps=4_000.0)
FULL_SCALE = CatalogScale(n=8_000, pool_queries=32, requests=512, qps=4_000.0)

#: The fleet every entry runs on: enough shards for scatter-gather and a
#: spare copy for the fault entries to lean on.
_FLEET = dict(n_shards=4, scheme="table", replicas=2)
_SEED = 7
_TARGET_P99_MS = 4.0


def steady_state(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="steady-state",
        description="healthy fleet under Poisson arrivals with mild skew; "
        "the control the chaos entries are read against",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=ServingConfig(**_FLEET, routing="least_outstanding"),
        workload=WorkloadSpec(requests=scale.requests, qps=scale.qps, zipf_s=0.9),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def flash_crowd(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="flash-crowd",
        description="offered rate steps 4x for the middle third of the run",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=ServingConfig(**_FLEET, routing="least_outstanding"),
        workload=WorkloadSpec(
            requests=scale.requests,
            qps=scale.qps,
            shape="flash_crowd",
            flash_at_us=scale.run_us / 3.0,
            flash_duration_us=scale.run_us / 3.0,
            flash_multiplier=4.0,
            zipf_s=0.9,
        ),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def diurnal(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="diurnal",
        description="sinusoidal rate swing; capacity must absorb the crest",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=ServingConfig(**_FLEET, routing="least_outstanding"),
        workload=WorkloadSpec(
            requests=scale.requests,
            qps=scale.qps,
            shape="diurnal",
            period_us=scale.run_us / 2.0,
            amplitude=0.6,
            zipf_s=0.9,
        ),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def hot_set_drift(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="hot-set-drift",
        description="Zipf head marches through the query pool "
        "(the shape that invalidates result caches)",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=ServingConfig(**_FLEET, routing="least_outstanding"),
        workload=WorkloadSpec(
            requests=scale.requests,
            qps=scale.qps,
            zipf_s=1.1,
            hot_drift_period_us=scale.run_us / 8.0,
            hot_drift_stride=3,
        ),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def replica_stall_storm(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="replica-stall-storm",
        description="one replica takes periodic GC-style stalls for the "
        "middle half of the run; hedged routing races past it",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=ServingConfig(**_FLEET, routing="hedged"),
        workload=WorkloadSpec(requests=scale.requests, qps=scale.qps, zipf_s=0.9),
        faults=FaultTimeline.stall_storm(
            shard=0,
            replica=1,
            stall_period_ns=scale.run_ns / 16.0,
            stall_duration_ns=scale.run_ns / 32.0,
            start_ns=scale.run_ns / 4.0,
            stop_ns=3.0 * scale.run_ns / 4.0,
        ),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def correlated_fault(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="correlated-fault",
        description="one replica of every shard degrades 4x in the same "
        "window - a bad rack, not a bad disk",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=ServingConfig(**_FLEET, routing="least_outstanding"),
        workload=WorkloadSpec(requests=scale.requests, qps=scale.qps, zipf_s=0.9),
        faults=FaultTimeline.correlated(
            shards=range(_FLEET["n_shards"]),
            replica=1,
            latency_multiplier=4.0,
            start_ns=scale.run_ns / 4.0,
            stop_ns=3.0 * scale.run_ns / 4.0,
        ),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def _ingest_serving(scale: CatalogScale, routing: str) -> ServingConfig:
    """The ingest entries' deployment: the fleet plus delta/merge knobs.

    Merge thresholds scale with the request count so both scales see
    several full merge cycles, and the delta stays small enough that a
    stalled merge visibly backpressures the ingest lanes.
    """
    threshold = max(2, scale.requests // 8)
    return ServingConfig(
        **_FLEET,
        routing=routing,
        delta_capacity=threshold * 4,
        merge_threshold=threshold,
        ingest_queue_capacity=max(8, scale.requests // 2),
        merge_io_batch=16,
    )


def _ingest_workload(scale: CatalogScale) -> WorkloadSpec:
    """Steady queries plus a sustained insert/delete stream at ~25% QPS."""
    return WorkloadSpec(
        requests=scale.requests,
        qps=scale.qps,
        zipf_s=0.9,
        ingest_requests=max(8, scale.requests // 2),
        ingest_qps=scale.qps / 4.0,
        delete_fraction=0.25,
    )


def steady_ingest(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="steady-ingest",
        description="sustained insert/delete stream at ~25% of the query "
        "rate; delta tables and background merges compete with queries "
        "for device IOPS",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=_ingest_serving(scale, routing="least_outstanding"),
        workload=_ingest_workload(scale),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


def compaction_stall_storm(scale: CatalogScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="compaction-stall-storm",
        description="the steady ingest mix while one replica takes "
        "periodic GC-style stalls; stalled merge tasks hold the merge "
        "window open and the delta/ingest lanes fill behind it",
        data=DataConfig(n=scale.n, pool_queries=scale.pool_queries),
        serving=_ingest_serving(scale, routing="hedged"),
        workload=_ingest_workload(scale),
        faults=FaultTimeline.stall_storm(
            shard=0,
            replica=1,
            stall_period_ns=scale.run_ns / 16.0,
            stall_duration_ns=scale.run_ns / 32.0,
            start_ns=scale.run_ns / 4.0,
            stop_ns=3.0 * scale.run_ns / 4.0,
        ),
        seed=_SEED,
        target_p99_ms=_TARGET_P99_MS,
    )


_BUILDERS = {
    "steady-state": steady_state,
    "flash-crowd": flash_crowd,
    "diurnal": diurnal,
    "hot-set-drift": hot_set_drift,
    "replica-stall-storm": replica_stall_storm,
    "correlated-fault": correlated_fault,
    "steady-ingest": steady_ingest,
    "compaction-stall-storm": compaction_stall_storm,
}

CATALOG_NAMES: tuple[str, ...] = tuple(_BUILDERS)


def build_scenario(name: str, quick: bool = False) -> ScenarioSpec:
    """One catalog entry at the quick (CI smoke) or full (nightly) scale."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; catalog: {', '.join(CATALOG_NAMES)}"
        ) from None
    return builder(QUICK_SCALE if quick else FULL_SCALE)


def catalog(quick: bool = False) -> list[ScenarioSpec]:
    """Every catalog entry, in the order the table above lists them."""
    return [build_scenario(name, quick=quick) for name in CATALOG_NAMES]
