"""Partitioning a dataset across E2LSHoS shards that share one LSH.

Each shard owns a disjoint subset of the database, builds an on-storage
index over that subset, and answers queries on its own device volume
through its own :class:`~repro.storage.engine.AsyncIOEngine`.  Because
LSH partitions by *data* (not by query), a top-k query is scattered to
every shard and the per-shard answers merged — the shard answers carry
global object IDs (``id_map`` in
:meth:`~repro.core.e2lshos.E2LSHoSIndex.query_task`), so the merge is a
plain k-way selection by true distance.

Three decisions keep the scatter-gather I/O close to a single node's
(naively sharding an LSH multiplies work by ``N^(1-rho)`` because every
shard re-derives its own L from a smaller n, searches deeper rungs, and
spends a full S budget):

1. **Shared hash structure.**  All shards use one projection bank, one
   radius ladder (fit on the full dataset), and the full dataset's
   m / L (via the ``*_explicit`` overrides of
   :class:`~repro.core.params.E2LSHParams`).  A shard's tables are then
   exactly the single-node tables restricted to its objects, and the
   per-shard DRAM occupancy filters skip the buckets whose entries all
   live elsewhere — a singleton bucket costs one slot I/O fleet-wide,
   same as unsharded.
2. **Split candidate budget.**  Each shard gets ``ceil(S / N)`` so the
   fleet-wide candidate work matches the paper's S, not N times it.
3. **Quota termination.**  A shard holding 1/N of the data stops its
   rung descent once it has ``ceil(k/N) + 1`` hits within ``c * R``
   (its expected share of the global top-k) while still reporting up to
   k, so a skewed partition cannot starve the merge (``stop_k``).

Three partitioning schemes are provided:

- ``hash``: objects dealt to shards by a seeded pseudo-random
  permutation, the balanced analog of hashing object IDs;
- ``range``: objects in contiguous ID ranges (cheap to reason about,
  but exposed to insertion-order skew in real deployments);
- ``table``: the *index* is partitioned instead — each shard owns a
  disjoint slice of the L hash tables built over **all** objects
  (PLSH-style).  Object partitioning scales DRAM and storage with the
  fleet but pays ``min(bucket_size, N)`` I/Os where a single node pays
  one, because a probed bucket's entries are spread across devices;
  table partitioning keeps fleet-wide I/O *identical* to a single
  node's (the same buckets exist, merely distributed), so saturation
  throughput scales with the device count — at the price of
  replicating the in-DRAM vectors on every shard.  The serving
  benchmark quantifies both trade-offs.

All schemes are deterministic given the seed and leave no shard empty.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.machine_model import DEFAULT_MACHINE, MachineModel
from repro.core.e2lsh import QueryAnswer
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.lsh import CompoundHashBank
from repro.core.params import E2LSHParams
from repro.core.query_stats import QueryStats
from repro.core.radii import RadiusLadder
from repro.serving.replication import FaultSpec, ReplicaGroup, build_replica_engines
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine, EngineResult, Task

__all__ = [
    "PARTITION_SCHEMES",
    "ShardPlan",
    "plan_shards",
    "Shard",
    "ShardedIndex",
    "ShardedBatchResult",
    "merge_answers",
]

PARTITION_SCHEMES = ("hash", "range", "table")


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic unit-to-shard assignment.

    The partitioned *unit* is objects for the ``hash`` / ``range``
    schemes and hash tables for the ``table`` scheme.
    """

    scheme: str
    n_shards: int
    #: ``assignment[unit] == shard_id``.
    assignment: np.ndarray

    @property
    def unit(self) -> str:
        """What one assignment entry refers to."""
        return "table" if self.scheme == "table" else "object"

    @property
    def n_units(self) -> int:
        """Number of partitioned units (objects or tables)."""
        return int(self.assignment.shape[0])

    def members(self, shard_id: int) -> np.ndarray:
        """Unit IDs owned by ``shard_id``, ascending."""
        return np.flatnonzero(self.assignment == shard_id).astype(np.int64)

    def shard_sizes(self) -> np.ndarray:
        """Units per shard."""
        return np.bincount(self.assignment, minlength=self.n_shards)


def plan_shards(n: int, n_shards: int, scheme: str = "hash", seed: int = 0) -> ShardPlan:
    """Assign ``n`` units (objects, or tables for ``table``) to shards."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n < n_shards:
        raise ValueError(f"cannot spread {n} units over {n_shards} shards")
    if scheme == "hash":
        order = np.random.default_rng(seed).permutation(n)
        assignment = np.empty(n, dtype=np.int64)
        assignment[order] = np.arange(n, dtype=np.int64) % n_shards
    elif scheme == "range":
        assignment = (np.arange(n, dtype=np.int64) * n_shards) // n
    elif scheme == "table":
        # Tables are exchangeable; round-robin is balanced and seedless.
        assignment = np.arange(n, dtype=np.int64) % n_shards
    else:
        raise ValueError(f"unknown scheme {scheme!r}; known: {PARTITION_SCHEMES}")
    return ShardPlan(scheme=scheme, n_shards=n_shards, assignment=assignment)


def merge_answers(parts: Sequence[QueryAnswer], k: int) -> QueryAnswer:
    """Scatter-gather merge: k smallest true distances across shards.

    Table-partitioned shards can report the same object (it lives in
    every shard's tables), so the merge deduplicates by ID; distances
    are true distances, hence identical across duplicates.
    """
    if not parts:
        raise ValueError("nothing to merge")
    stats = QueryStats()
    for part in parts:
        stats.merge(part.stats)
    ids = np.concatenate([part.ids for part in parts])
    distances = np.concatenate([part.distances for part in parts])
    order = np.argsort(distances, kind="stable")
    ids, distances = ids[order], distances[order]
    _, first_seen = np.unique(ids, return_index=True)
    keep = np.sort(first_seen)[:k]
    return QueryAnswer(ids=ids[keep], distances=distances[keep], stats=stats)


@dataclass
class Shard:
    """One shard: its index, engine (own device volume), and ID mapping."""

    shard_id: int
    index: E2LSHoSIndex
    engine: AsyncIOEngine
    #: ``global_ids[local_id] == global object id``; ``None`` when local
    #: IDs already are global (table partitioning holds all objects).
    global_ids: np.ndarray | None
    #: Denominator of the termination quota: the number of shards the
    #: *objects* are spread over (1 under table partitioning — every
    #: shard must satisfy the full single-node stop condition because
    #: its candidates overlap the other shards').
    quota_shards: int = 1

    def stop_k(self, k: int) -> int:
        """Rung-descent quota: this shard's expected share of top-k."""
        return min(k, math.ceil(k / self.quota_shards) + 1)

    def query_task(self, query: np.ndarray, k: int) -> Task:
        """Sub-query task reporting global IDs (dispatcher-ready)."""
        return self.index.query_task(
            query, k=k, id_map=self.global_ids, stop_k=self.stop_k(k)
        )

    def query_tasks(self, queries: np.ndarray, k: int) -> list[Task]:
        """One planned wave of sub-query tasks reporting global IDs."""
        return self.index.query_tasks(
            queries, k=k, id_map=self.global_ids, stop_k=self.stop_k(k)
        )


@dataclass
class ShardedBatchResult:
    """Merged answers plus per-shard engine statistics."""

    answers: list[QueryAnswer]
    shard_results: list[EngineResult]

    @property
    def makespan_ns(self) -> float:
        """Simulated completion time (shards run in parallel)."""
        return max(result.makespan_ns for result in self.shard_results)


class ShardedIndex:
    """A dataset partitioned across N independent E2LSHoS shards.

    Each shard may be replicated R ways (``replica_groups``): the
    replicas share the shard's built index and block store but own
    independent device volumes, so routing between them trades IOPS
    for tail latency.  ``shards[i].engine`` is replica 0 of group
    ``i`` — the single-copy view used by the batch :meth:`run` path.
    """

    def __init__(
        self,
        shards: list[Shard],
        plan: ShardPlan,
        replica_groups: list[ReplicaGroup] | None = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded index needs at least one shard")
        if replica_groups is None:
            replica_groups = [
                ReplicaGroup(
                    shard=shard,
                    engines=[shard.engine],
                    profiles=[shard.engine.volume.devices[0].profile],
                )
                for shard in shards
            ]
        if len(replica_groups) != len(shards):
            raise ValueError(
                f"{len(shards)} shards need {len(shards)} replica groups, "
                f"got {len(replica_groups)}"
            )
        factors = {group.n_replicas for group in replica_groups}
        if len(factors) != 1:
            raise ValueError(f"replication factor must be uniform, got {sorted(factors)}")
        self.shards = shards
        self.plan = plan
        self.replica_groups = replica_groups

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        params: E2LSHParams | None = None,
        n_shards: int = 1,
        scheme: str = "hash",
        device: str = "cssd",
        devices_per_shard: int = 1,
        interface: str = "io_uring",
        block_size: int = 512,
        seed: int = 0,
        machine: MachineModel = DEFAULT_MACHINE,
        replicas: int = 1,
        faults: Sequence[FaultSpec] = (),
        ladder: RadiusLadder | None = None,
    ) -> "ShardedIndex":
        """Partition ``data`` and build one index + engine per shard.

        ``params`` parameterizes the *whole* dataset.  Every shard keeps
        the full dataset's m and L and one shared projection bank and
        radius ladder (see the module docstring), while its ``n`` — and
        hence its storage, DRAM filters, and ID codec — reflects only
        the subset it owns.  The S budget is split evenly.

        ``replicas`` puts R copies of each shard on independent device
        volumes; ``faults`` degrades chosen replicas (see
        :class:`~repro.serving.replication.FaultSpec`).

        ``ladder`` pins an explicit radius ladder instead of deriving it
        from ``data`` — a rebuild over a dataset grown by streaming
        ingest must reuse the serving fleet's ladder to answer
        identically.
        """
        for fault in faults:
            if fault.shard >= n_shards or fault.replica >= replicas:
                raise ValueError(
                    f"fault targets shard {fault.shard} replica {fault.replica}, "
                    f"deployment has {n_shards} shards x {replicas} replicas"
                )
        data = np.ascontiguousarray(data, dtype=np.float32)
        params = params if params is not None else E2LSHParams(n=data.shape[0])
        if params.n != data.shape[0]:
            raise ValueError(f"params have n={params.n}, data has n={data.shape[0]}")
        n_units = params.L if scheme == "table" else data.shape[0]
        plan = plan_shards(n_units, n_shards, scheme=scheme, seed=seed)
        bank = CompoundHashBank.create(
            d=data.shape[1], m=params.m, L=params.L, w=params.w, seed=seed
        )
        if ladder is None:
            ladder = RadiusLadder.for_data(data, params.c)
        shards: list[Shard] = []
        replica_groups: list[ReplicaGroup] = []
        for shard_id in range(n_shards):
            members = plan.members(shard_id)
            if scheme == "table":
                # Every shard indexes all objects under its table slice.
                shard_data = data
                shard_bank = bank.select_tables(members)
                global_ids = None
                quota_shards = 1
                shard_params = replace(
                    params,
                    m_explicit=params.m,
                    L_explicit=int(members.size),
                    S_explicit=max(1, math.ceil(params.S * members.size / params.L)),
                )
            else:
                shard_data = data[members]
                shard_bank = bank
                global_ids = members
                quota_shards = n_shards
                shard_params = replace(
                    params,
                    n=int(members.size),
                    m_explicit=params.m,
                    L_explicit=params.L,
                    S_explicit=max(1, math.ceil(params.S / n_shards)),
                )
            store = MemoryBlockStore()
            index = E2LSHoSIndex.build(
                shard_data,
                shard_params,
                store=store,
                ladder=ladder,
                block_size=block_size,
                seed=seed,
                machine=machine,
                bank=shard_bank,
            )
            engines, profiles = build_replica_engines(
                store,
                shard_id,
                replicas=replicas,
                device=device,
                devices_per_replica=devices_per_shard,
                interface=interface,
                faults=faults,
            )
            shard = Shard(
                shard_id=shard_id,
                index=index,
                engine=engines[0],
                global_ids=global_ids,
                quota_shards=quota_shards,
            )
            shards.append(shard)
            replica_groups.append(
                ReplicaGroup(shard=shard, engines=engines, profiles=profiles)
            )
        return cls(shards, plan, replica_groups)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def n_replicas(self) -> int:
        """Replication factor R (uniform across shards)."""
        return self.replica_groups[0].n_replicas

    @property
    def storage_bytes(self) -> int:
        """Total on-storage index size across shards."""
        return sum(shard.index.storage_bytes for shard in self.shards)

    @property
    def dram_bytes(self) -> int:
        """Total runtime DRAM across shards."""
        return sum(shard.index.dram_bytes for shard in self.shards)

    def run(
        self, queries: np.ndarray, k: int = 1, workers_per_shard: int = 1
    ) -> ShardedBatchResult:
        """Batch scatter-gather: every query on every shard, then merge.

        Shards execute concurrently on their own engines; the service
        path (:class:`~repro.serving.service.QueryService`) adds
        arrivals, queueing, and micro-batching on top of the same tasks.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        shard_results: list[EngineResult] = []
        per_shard_answers: list[list[QueryAnswer]] = []
        for shard in self.shards:
            tasks = [shard.query_task(row, k=k) for row in queries]
            result = shard.engine.run(tasks, workers=workers_per_shard)
            shard_results.append(result)
            per_shard_answers.append(list(result.results))
        answers = [
            merge_answers([answers[q] for answers in per_shard_answers], k)
            for q in range(queries.shape[0])
        ]
        return ShardedBatchResult(answers=answers, shard_results=shard_results)
