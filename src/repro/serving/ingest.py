"""Streaming ingest: per-shard delta tables, tombstones, and background merges.

PLSH (Sundaram et al., PVLDB'13) serves queries *while inserting* by
giving each node a small in-memory delta table that is periodically
merged into the static hash tables; the paper's Sec. 7 argues this
cheap incremental maintenance is LSH's key operational edge over
graph/tree indexes.  This module mirrors that shape on the serving
stack as a **second traffic class** next to queries:

- **Admission.**  Updates (:class:`UpdateArrival`) enter through the
  dispatcher on their own per-shard ingest lanes (bounded FIFO queues,
  separate from the query lanes).  An accepted update is *applied* to
  the target shards' DRAM delta state as soon as the delta table has
  room; otherwise it waits in the lane until a merge frees space.
  Update latency is arrival-to-applied — backpressure from compaction
  shows up as queueing delay, exactly like a production ingest path.
- **Delta visibility.**  Applied inserts live in DRAM and are answered
  by an exact scan merged into every query's scatter-gather result
  (PLSH's delta-table probe); applied deletes are DRAM tombstones that
  filter static answers immediately.  The delta scan and tombstone
  filter are charged zero simulated time — like the scatter-gather
  merge, a few dozen DRAM distance computations are noise next to
  hashing and I/O.
- **Merges.**  When a shard's delta reaches ``merge_threshold`` the
  coordinator snapshots it, rewrites its contents into the shard's
  block-store tables via :class:`~repro.core.updates.IndexUpdater`
  (the store mutation is applied eagerly; the snapshot stays visible
  in DRAM until the merge *completes*, and the scatter-gather merge
  deduplicates by id, so double visibility is harmless), and submits
  one background timing task per replica that charges the hashing CPU
  and the maintenance write I/O to the same sessions and device
  volumes queries run on.  Compaction competes with queries for IOPS;
  a stalled replica (:class:`~repro.serving.replication.FaultSpec`)
  holds the merge window open and lets the delta — and then the ingest
  lanes — fill behind it: a compaction-stall storm.

Determinism: every structure here is either a list in apply order or a
dict used for membership/lookup only (iteration goes through
``sorted``), so one seed still yields a byte-identical
``ServiceReport``.  Entries in the service loop's update heap carry the
:data:`~repro.serving.events.EVENT_UPDATE` tie-order tag — updates run
last at equal timestamps, which keeps the query path of a no-ingest
run byte-identical to pre-ingest behavior.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.updates import IndexUpdater
from repro.serving.stats import MergeRecord, ServiceStats
from repro.storage.engine import Compute, EngineSession, Task, WriteBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.e2lsh import QueryAnswer
    from repro.serving.sharding import ShardedIndex

__all__ = [
    "INGEST_KINDS",
    "IngestConfig",
    "UpdateArrival",
    "MergeTicket",
    "IngestCoordinator",
]

INGEST_KINDS = ("insert", "delete")


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of the delta/merge lifecycle (per shard)."""

    #: Max unmerged delta entries (inserts + tombstones) a shard holds;
    #: further accepted updates queue in the ingest lane.
    delta_capacity: int = 512
    #: Delta size that triggers a background merge.
    merge_threshold: int = 128
    #: Bounded ingest admission queue per shard; a full lane sheds.
    queue_capacity: int = 256
    #: Maintenance I/Os per ``WriteBatch`` a merge task issues.
    merge_io_batch: int = 32

    def __post_init__(self) -> None:
        if self.delta_capacity < 1:
            raise ValueError(f"delta_capacity must be >= 1, got {self.delta_capacity}")
        if not 1 <= self.merge_threshold <= self.delta_capacity:
            raise ValueError(
                f"merge_threshold must be in [1, delta_capacity="
                f"{self.delta_capacity}], got {self.merge_threshold}"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.merge_io_batch < 1:
            raise ValueError(f"merge_io_batch must be >= 1, got {self.merge_io_batch}")


@dataclass(frozen=True)
class UpdateArrival:
    """One offered update, pre-materialized by the scenario seed.

    ``object_id`` is a *scheduled* (logical) id: for inserts, the id
    the workload generator assigned assuming nothing is shed; for
    deletes, the scheduled id of the target.  The coordinator maps
    scheduled ids to physical ids at admission, so a delete whose
    insert was shed resolves to a counted no-op instead of silently
    deleting the wrong object.
    """

    update_id: int
    time_ns: float
    #: ``"insert"`` or ``"delete"``.
    kind: str
    #: Scheduled id (see above).
    object_id: int
    #: Insert payload; ``None`` for deletes.
    vector: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.kind not in INGEST_KINDS:
            raise ValueError(f"unknown update kind {self.kind!r}; known: {INGEST_KINDS}")
        if self.kind == "insert" and self.vector is None:
            raise ValueError("insert updates need a vector")
        if self.kind == "delete" and self.vector is not None:
            raise ValueError("delete updates take no vector")


@dataclass(frozen=True, slots=True)
class MergeTicket:
    """Engine-completion tag of one merge's per-replica timing task.

    The service loop routes completions carrying a ticket to
    :meth:`IngestCoordinator.merge_task_done` instead of the
    dispatcher's query bookkeeping (merge tasks bypass the lanes).
    """

    shard_id: int
    seq: int


@dataclass
class _ShardDelta:
    """DRAM delta state of one shard.

    ``inserts``/``tombstones`` hold physical global ids in apply order.
    While a merge is in flight, the first ``snap_inserts`` /
    ``snap_tombstones`` entries are the frozen snapshot being rewritten
    into the store (removed at merge completion); entries after the
    prefix arrived later and may still be mutated (a delete of an
    unsnapshotted insert annihilates in place, never reaching storage).
    """

    inserts: list[int] = field(default_factory=list)
    tombstones: list[int] = field(default_factory=list)
    snap_inserts: int = 0
    snap_tombstones: int = 0
    merging: bool = False

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.tombstones)


@dataclass
class _MergeJob:
    """One in-flight background merge (at most one per shard)."""

    shard_id: int
    seq: int
    start_ns: float
    insert_ids: list[int]
    tombstone_ids: list[int]
    replicas_pending: int
    write_ios: int
    write_bytes: int


class IngestCoordinator:
    """Owns the delta/tombstone state and the merge lifecycle.

    Constructed by the service per run when the workload carries an
    ingest mix; the dispatcher delegates update admission here, and the
    service loop feeds merge-task completions back in.
    """

    def __init__(
        self,
        sharded: "ShardedIndex",
        sessions: list[list[EngineSession]],
        config: IngestConfig,
        stats: ServiceStats,
        max_inserts: int = 0,
    ) -> None:
        if max_inserts < 0:
            raise ValueError(f"max_inserts must be >= 0, got {max_inserts}")
        self.sharded = sharded
        self.sessions = sessions
        self.config = config
        self.stats = stats
        n_shards = sharded.n_shards
        self._table_scheme = sharded.plan.scheme == "table"
        if self._table_scheme:
            self._initial_n = int(sharded.shards[0].index.data.shape[0])
        else:
            self._initial_n = int(sharded.plan.n_units)
        self._updaters = [IndexUpdater(shard.index) for shard in sharded.shards]
        self._lanes: list[deque[UpdateArrival]] = [deque() for _ in range(n_shards)]
        self._deltas = [_ShardDelta() for _ in range(n_shards)]
        #: Original object membership per shard (object schemes only);
        #: initial global id -> local id via binary search.
        self._members: list[np.ndarray | None] = []
        #: Local-id count per shard, counting *admitted* inserts, for
        #: the id-codec capacity check at admission.
        self._local_counts: list[int] = []
        for shard_id, shard in enumerate(sharded.shards):
            if self._table_scheme:
                self._members.append(None)
                self._local_counts.append(self._initial_n)
            else:
                members = sharded.plan.members(shard_id)
                self._members.append(members)
                self._local_counts.append(int(members.size))
                # Pre-size the global-id map so tasks planned before a
                # merge hold an array the merge can fill *in place* —
                # an in-flight query that picks up a just-merged insert
                # remaps it through the same bound array.
                if max_inserts > 0 and shard.global_ids is not None:
                    shard.global_ids = np.concatenate(
                        [
                            shard.global_ids,
                            np.full(max_inserts, -1, dtype=np.int64),
                        ]
                    )
        #: Physical gid -> vector for everything inserted this run
        #: (kept for late-applying shards; DRAM at simulation scale).
        self._live_vectors: dict[int, np.ndarray] = {}
        #: Physical gid -> number of shard deltas it is visible in.
        self._live_refs: dict[int, int] = {}
        #: Physical gid -> number of shard tombstones not yet compacted.
        self._tomb_refs: dict[int, int] = {}
        #: Scheduled insert id -> physical gid (diverges once inserts shed).
        self._assigned: dict[int, int] = {}
        #: Physical gid -> local id per shard, for merged inserts.
        self._local_ids: list[dict[int, int]] = [{} for _ in range(n_shards)]
        #: Physical gid -> owner shard (object schemes, inserted objects).
        self._owner: dict[int, int] = {}
        #: Physical gids with an accepted delete (membership tests only).
        self._deleted: set[int] = set()
        #: update_id -> (update, physical delete target, shards left).
        self._pending: dict[int, tuple[UpdateArrival, int, int]] = {}
        self._jobs: dict[int, _MergeJob] = {}
        self._merge_seq = 0
        self._next_gid = self._initial_n

    # -- admission ------------------------------------------------------------

    def admit(self, now_ns: float, update: UpdateArrival) -> None:
        """Admit one update: apply, queue, shed, or count a no-op."""
        if update.kind == "insert":
            targets = self._insert_targets()
            if targets is None or any(
                len(self._lanes[shard_id]) >= self.config.queue_capacity
                for shard_id in targets
            ):
                self.stats.record_update_rejection()
                return
            gid = self._next_gid
            self._next_gid += 1
            self._assigned[update.object_id] = gid
            assert update.vector is not None  # __post_init__ guarantees
            self._live_vectors[gid] = np.ascontiguousarray(
                update.vector, dtype=np.float32
            )
            if not self._table_scheme:
                self._owner[gid] = gid % self.sharded.n_shards
            for shard_id in targets:
                self._local_counts[shard_id] += 1
            target_gid = gid
        else:
            resolved = self._resolve_delete(update.object_id)
            if resolved is None:
                self.stats.record_update_noop()
                return
            targets = self._delete_targets(resolved)
            if any(
                len(self._lanes[shard_id]) >= self.config.queue_capacity
                for shard_id in targets
            ):
                self.stats.record_update_rejection()
                return
            self._deleted.add(resolved)
            target_gid = resolved
        self._pending[update.update_id] = (update, target_gid, len(targets))
        for shard_id in targets:
            self._lanes[shard_id].append(update)
            self._drain(shard_id, now_ns)

    def _insert_targets(self) -> list[int] | None:
        """Shards a new insert fans out to; ``None`` when id space is full."""
        if self._table_scheme:
            targets = list(range(self.sharded.n_shards))
        else:
            targets = [self._next_gid % self.sharded.n_shards]
        for shard_id in targets:
            # The prospective largest local id must fit the shard's
            # object-info codec (IndexUpdater would raise otherwise).
            if self._local_counts[shard_id] >= self._updaters[shard_id].capacity:
                return None
        return targets

    def _resolve_delete(self, scheduled_id: int) -> int | None:
        """Scheduled target -> physical gid; ``None`` makes it a no-op."""
        if scheduled_id < self._initial_n:
            physical = scheduled_id
        else:
            mapped = self._assigned.get(scheduled_id)
            if mapped is None:  # the insert was shed
                return None
            physical = mapped
        if physical in self._deleted:
            return None
        return physical

    def _delete_targets(self, gid: int) -> list[int]:
        if self._table_scheme:
            return list(range(self.sharded.n_shards))
        if gid < self._initial_n:
            return [int(self.sharded.plan.assignment[gid])]
        return [self._owner[gid]]

    # -- delta application -----------------------------------------------------

    def _drain(self, shard_id: int, now_ns: float) -> None:
        """Apply queued updates while the delta has room; check merges."""
        lane = self._lanes[shard_id]
        delta = self._deltas[shard_id]
        while lane and delta.size < self.config.delta_capacity:
            self._apply(shard_id, lane.popleft(), now_ns)
        self._maybe_merge(shard_id, now_ns)

    def _apply(
        self, shard_id: int, update: UpdateArrival, now_ns: float, record: bool = True
    ) -> None:
        delta = self._deltas[shard_id]
        _, gid, remaining = self._pending[update.update_id]
        if update.kind == "insert":
            delta.inserts.append(gid)
            self._live_refs[gid] = self._live_refs.get(gid, 0) + 1
        else:
            # A delete of an id still sitting in the *unsnapshotted*
            # delta annihilates the pair in DRAM — neither side ever
            # touches storage.  A snapshotted or static target gets a
            # tombstone, compacted out at this shard's next merge.
            try:
                position = delta.inserts.index(gid, delta.snap_inserts)
            except ValueError:
                position = -1
            if position >= 0:
                del delta.inserts[position]
                self._unref_live(gid)
            else:
                delta.tombstones.append(gid)
                self._tomb_refs[gid] = self._tomb_refs.get(gid, 0) + 1
        if remaining > 1:
            self._pending[update.update_id] = (update, gid, remaining - 1)
        else:
            del self._pending[update.update_id]
            if record:
                self.stats.record_update(
                    update.update_id, update.kind, update.time_ns, now_ns
                )

    def _unref_live(self, gid: int) -> None:
        refs = self._live_refs[gid] - 1
        if refs:
            self._live_refs[gid] = refs
        else:
            del self._live_refs[gid]

    def _unref_tomb(self, gid: int) -> None:
        refs = self._tomb_refs[gid] - 1
        if refs:
            self._tomb_refs[gid] = refs
        else:
            del self._tomb_refs[gid]

    # -- merge lifecycle -------------------------------------------------------

    def _maybe_merge(self, shard_id: int, now_ns: float) -> None:
        delta = self._deltas[shard_id]
        if delta.merging or delta.size < self.config.merge_threshold:
            return
        self._start_merge(shard_id, now_ns)

    def _start_merge(self, shard_id: int, now_ns: float) -> None:
        delta = self._deltas[shard_id]
        delta.merging = True
        delta.snap_inserts = len(delta.inserts)
        delta.snap_tombstones = len(delta.tombstones)
        insert_ids = list(delta.inserts)
        tombstone_ids = list(delta.tombstones)
        write_ios, write_bytes = self._mutate_store(shard_id, insert_ids, tombstone_ids)
        index = self.sharded.shards[shard_id].index
        compute_ns = index.maintenance_compute_ns(len(insert_ids) + len(tombstone_ids))
        ticket = MergeTicket(shard_id=shard_id, seq=self._merge_seq)
        self._merge_seq += 1
        self._jobs[shard_id] = _MergeJob(
            shard_id=shard_id,
            seq=ticket.seq,
            start_ns=now_ns,
            insert_ids=insert_ids,
            tombstone_ids=tombstone_ids,
            replicas_pending=len(self.sessions[shard_id]),
            write_ios=write_ios,
            write_bytes=write_bytes,
        )
        requests = self._write_requests(shard_id, write_ios)
        for session in self.sessions[shard_id]:
            session.submit(
                self._merge_task(compute_ns, requests), ready_ns=now_ns, tag=ticket
            )

    def _mutate_store(
        self, shard_id: int, insert_ids: list[int], tombstone_ids: list[int]
    ) -> tuple[int, int]:
        """Rewrite delta contents into the shard's static tables.

        Returns the (device requests, bytes written) the rewrite cost —
        the real read-modify-write footprint out of
        :class:`~repro.core.updates.UpdateStats` and the block store's
        endurance counter, which the background timing tasks then charge
        to the devices.
        """
        shard = self.sharded.shards[shard_id]
        updater = self._updaters[shard_id]
        store = shard.index.built.store
        requests_before = updater.stats.io_requests
        bytes_before = store.bytes_written
        if insert_ids:
            vectors = np.stack([self._live_vectors[gid] for gid in insert_ids])
            local_ids = updater.insert_batch(vectors)
            local_map = self._local_ids[shard_id]
            if shard.global_ids is not None:
                base = int(local_ids[0])
                for offset, gid in enumerate(insert_ids):
                    shard.global_ids[base + offset] = gid
                    local_map[gid] = base + offset
            else:
                for local, gid in zip(local_ids.tolist(), insert_ids):
                    local_map[gid] = int(local)
        for gid in tombstone_ids:
            updater.delete(self._local_id(shard_id, gid))
        shard.index.invalidate_query_caches()
        return (
            updater.stats.io_requests - requests_before,
            store.bytes_written - bytes_before,
        )

    def _local_id(self, shard_id: int, gid: int) -> int:
        if self._table_scheme:
            return gid
        if gid < self._initial_n:
            members = self._members[shard_id]
            assert members is not None
            return int(np.searchsorted(members, gid))
        return self._local_ids[shard_id][gid]

    def _write_requests(self, shard_id: int, n_ios: int) -> list[tuple[int, int]]:
        """Synthetic maintenance-write addresses, round-robin over stripes."""
        volume = self.sharded.replica_groups[shard_id].engines[0].volume
        block = self.sharded.shards[shard_id].index.built.block_size
        n_devices = volume.device_count
        unit = volume.stripe_unit
        return [((i % n_devices) * unit, block) for i in range(n_ios)]

    def _merge_task(self, compute_ns: float, requests: list[tuple[int, int]]) -> Task:
        """Background timing task: hash CPU, then chunked write waves."""
        yield Compute(compute_ns)
        batch = self.config.merge_io_batch
        for start in range(0, len(requests), batch):
            yield WriteBatch(requests[start : start + batch])
        return None

    def merge_task_done(self, ticket: MergeTicket, finish_ns: float) -> None:
        """One replica finished its merge task; last one completes the merge."""
        job = self._jobs[ticket.shard_id]
        if job.seq != ticket.seq:  # pragma: no cover - defensive
            raise RuntimeError(
                f"stale merge ticket {ticket} (current seq {job.seq})"
            )
        job.replicas_pending -= 1
        if job.replicas_pending:
            return
        del self._jobs[ticket.shard_id]
        delta = self._deltas[ticket.shard_id]
        del delta.inserts[: len(job.insert_ids)]
        del delta.tombstones[: len(job.tombstone_ids)]
        delta.snap_inserts = 0
        delta.snap_tombstones = 0
        delta.merging = False
        for gid in job.insert_ids:
            self._unref_live(gid)
        for gid in job.tombstone_ids:
            self._unref_tomb(gid)
        self.stats.record_merge(
            MergeRecord(
                shard_id=ticket.shard_id,
                start_ns=job.start_ns,
                finish_ns=finish_ns,
                inserts=len(job.insert_ids),
                tombstones=len(job.tombstone_ids),
                write_ios=job.write_ios,
                write_bytes=job.write_bytes,
            )
        )
        self._drain(ticket.shard_id, finish_ns)

    # -- query-side visibility -------------------------------------------------

    def finish_answer(
        self, parts: list["QueryAnswer"], query: np.ndarray, k: int
    ) -> "QueryAnswer":
        """Scatter-gather merge with delta visibility and tombstones.

        Static shard answers are filtered through the live tombstones,
        the DRAM delta contributes an exact top-k scan, and the usual
        k-way merge deduplicates by id (a snapshot entry visible both
        in DRAM and, mid-merge, in the store resolves to one answer
        row with the identical true distance).
        """
        from repro.serving.sharding import merge_answers

        filtered = [self._filter_tombstones(part) for part in parts]
        extra = self._delta_answer(query, k)
        if extra is not None:
            filtered.append(extra)
        return merge_answers(filtered, k)

    def _filter_tombstones(self, answer: "QueryAnswer") -> "QueryAnswer":
        from repro.core.e2lsh import QueryAnswer

        if not self._tomb_refs or not answer.ids.size:
            return answer
        keep = np.array(
            [gid not in self._tomb_refs for gid in answer.ids.tolist()], dtype=bool
        )
        if keep.all():
            return answer
        return QueryAnswer(
            ids=answer.ids[keep], distances=answer.distances[keep], stats=answer.stats
        )

    def _delta_answer(self, query: np.ndarray, k: int) -> "QueryAnswer | None":
        from repro.core.e2lsh import QueryAnswer
        from repro.core.query_stats import QueryStats

        if not self._live_refs:
            return None
        visible = [gid for gid in sorted(self._live_refs) if gid not in self._tomb_refs]
        if not visible:
            return None
        matrix = np.stack([self._live_vectors[gid] for gid in visible])
        # Match the static path's distance arithmetic bit for bit, so
        # duplicate ids dedup on identical values at the merge.
        diffs = matrix.astype(np.float64) - query.astype(np.float64)
        dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
        order = np.argsort(dists, kind="stable")[:k]
        ids = np.asarray([visible[i] for i in order.tolist()], dtype=np.int64)
        return QueryAnswer(ids=ids, distances=dists[order], stats=QueryStats())

    # -- run-end accounting ----------------------------------------------------

    @property
    def queued_updates(self) -> int:
        """Updates admitted but not yet applied everywhere."""
        return sum(len(lane) for lane in self._lanes)

    def lane_depths(self) -> list[int]:
        """Queued (admitted, unapplied) updates per shard ingest lane."""
        return [len(lane) for lane in self._lanes]

    def merge_debt(self) -> tuple[int, ...]:
        """Unmerged delta entries per shard (what a restart would replay)."""
        return tuple(delta.size for delta in self._deltas)

    def finalize(self) -> None:
        """Freeze run-end state into the stats collector."""
        if self._jobs:  # pragma: no cover - defensive
            raise RuntimeError(f"{len(self._jobs)} merges never completed")
        if self.queued_updates or self._pending:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{self.queued_updates} updates still queued at run end"
            )
        self.stats.merge_debt = self.merge_debt()

    # -- offline compaction ----------------------------------------------------

    def compact_now(self) -> None:
        """Force-merge every shard's remaining delta, outside simulated time.

        An offline checkpoint for end-state verification: after this,
        the static indexes answer exactly what the delta-augmented
        service answered, so a from-scratch rebuild over the surviving
        objects can be compared byte for byte.  Charges no simulated
        device time — never call it mid-run.
        """
        if self._jobs:
            raise RuntimeError("cannot compact while a merge is in flight")
        for shard_id in range(self.sharded.n_shards):
            lane = self._lanes[shard_id]
            delta = self._deltas[shard_id]
            while lane:
                # Lanes only hold entries while the delta is full;
                # lift the cap for the offline pass.
                self._apply(shard_id, lane.popleft(), 0.0, record=False)
            if not delta.size:
                continue
            insert_ids = list(delta.inserts)
            tombstone_ids = list(delta.tombstones)
            self._mutate_store(shard_id, insert_ids, tombstone_ids)
            delta.inserts.clear()
            delta.tombstones.clear()
            delta.snap_inserts = 0
            delta.snap_tombstones = 0
            for gid in insert_ids:
                self._unref_live(gid)
            for gid in tombstone_ids:
                self._unref_tomb(gid)
