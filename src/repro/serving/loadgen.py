"""Workload generation: open-loop and closed-loop query streams.

Open loop models independent users: arrivals follow a Poisson process
(or a uniform ticker) at a configured rate, regardless of how fast the
service answers — the regime where queues grow and tail latency blows up
past saturation.  Closed loop models a fixed fleet of clients that each
wait for their answer (plus think time) before asking again — the regime
that measures *saturation throughput*.

Query content is drawn from a fixed pool of vectors.  By default the
pool is cycled round-robin; a Zipf exponent > 0 skews reuse toward the
head of the pool, the classic "popular queries" shape that makes
result/page caching worthwhile (a ROADMAP follow-on).

For fault-injected load tests, pair a workload with
:class:`~repro.serving.replication.FaultSpec` (a degraded or stalling
replica passed to ``ShardedIndex.build``): the same deterministic
arrival stream then measures how each routing policy degrades — the
symmetric-replica case where every policy ties is the control.

Everything is deterministic given the workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.units import NS_PER_S

__all__ = [
    "Arrival",
    "ARRIVAL_PROCESSES",
    "QuerySelector",
    "DriftingSelector",
    "OpenLoopWorkload",
    "ClosedLoopWorkload",
    "open_loop_arrivals",
    "thinned_arrival_times",
]

ARRIVAL_PROCESSES = ("poisson", "uniform")


@dataclass(frozen=True)
class Arrival:
    """One query entering the service."""

    query_id: int
    time_ns: float
    #: Index into the query pool (repeats under Zipf-skewed reuse).
    pool_index: int


class QuerySelector:
    """Maps query sequence numbers to query-pool indices."""

    def __init__(self, pool_size: int, zipf_s: float = 0.0, seed: int = 0) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if zipf_s < 0:
            raise ValueError(f"zipf_s must be non-negative, got {zipf_s}")
        self.pool_size = pool_size
        self.zipf_s = zipf_s
        self._rng = np.random.default_rng(seed)
        if zipf_s > 0:
            weights = 1.0 / np.arange(1, pool_size + 1, dtype=np.float64) ** zipf_s
            self._weights = weights / weights.sum()
        else:
            self._weights = None

    def select(self, sequence: int) -> int:
        """Pool index of the ``sequence``-th query."""
        if self._weights is None:
            return sequence % self.pool_size
        return int(self._rng.choice(self.pool_size, p=self._weights))


class DriftingSelector(QuerySelector):
    """Zipf-skewed selection whose hot set moves over simulated time.

    The Zipf draw produces a popularity *rank*; the mapping from rank to
    pool entry rotates by ``stride`` positions once per ``drift period``.
    The head of the distribution therefore marches through the pool —
    the shape that invalidates result caches keyed on pool entries while
    keeping the instantaneous skew identical to :class:`QuerySelector`.
    """

    def __init__(
        self,
        pool_size: int,
        zipf_s: float,
        drift_period_ns: float,
        stride: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(pool_size, zipf_s=zipf_s, seed=seed)
        if zipf_s <= 0:
            raise ValueError("a drifting hot set needs zipf_s > 0")
        if drift_period_ns <= 0:
            raise ValueError(f"drift_period_ns must be positive, got {drift_period_ns}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.drift_period_ns = drift_period_ns
        self.stride = stride

    def select(self, sequence: int, time_ns: float = 0.0) -> int:
        rank = super().select(sequence)
        rotation = int(time_ns // self.drift_period_ns) * self.stride
        return (rank + rotation) % self.pool_size


@dataclass(frozen=True)
class OpenLoopWorkload:
    """Arrival process with a fixed offered rate."""

    qps: float
    n_queries: int
    arrivals: str = "poisson"
    zipf_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.n_queries < 1:
            raise ValueError(f"n_queries must be >= 1, got {self.n_queries}")
        if self.arrivals not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrivals!r}; known: {ARRIVAL_PROCESSES}"
            )


@dataclass(frozen=True)
class ClosedLoopWorkload:
    """Fixed client fleet; a new query is issued only on completion."""

    concurrency: int
    n_queries: int
    think_time_ns: float = 0.0
    zipf_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.n_queries < 1:
            raise ValueError(f"n_queries must be >= 1, got {self.n_queries}")
        if self.think_time_ns < 0:
            raise ValueError(f"think_time_ns must be >= 0, got {self.think_time_ns}")


def open_loop_arrivals(workload: OpenLoopWorkload, pool_size: int) -> list[Arrival]:
    """Materialize the full arrival sequence of an open-loop workload."""
    rng = np.random.default_rng(workload.seed)
    mean_gap_ns = NS_PER_S / workload.qps
    if workload.arrivals == "poisson":
        gaps = rng.exponential(mean_gap_ns, size=workload.n_queries)
    else:
        gaps = np.full(workload.n_queries, mean_gap_ns)
    times = np.cumsum(gaps)
    selector = QuerySelector(pool_size, zipf_s=workload.zipf_s, seed=workload.seed + 1)
    return [
        Arrival(query_id=i, time_ns=float(times[i]), pool_index=selector.select(i))
        for i in range(workload.n_queries)
    ]


def thinned_arrival_times(
    rate_fn: Callable[[float], float],
    rate_max_qps: float,
    n: int,
    seed: int = 0,
) -> np.ndarray:
    """Arrival times of a non-homogeneous Poisson process (Lewis thinning).

    Candidate arrivals are drawn from a homogeneous process at
    ``rate_max_qps`` and each is kept with probability
    ``rate_fn(t) / rate_max_qps`` — exact for any bounded rate function,
    and fully determined by ``seed``.  ``rate_fn`` takes a time in
    nanoseconds and returns an instantaneous rate in queries/second that
    must never exceed ``rate_max_qps``.
    """
    if rate_max_qps <= 0:
        raise ValueError(f"rate_max_qps must be positive, got {rate_max_qps}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    mean_gap_ns = NS_PER_S / rate_max_qps
    times = np.empty(n, dtype=np.float64)
    t = 0.0
    kept = 0
    while kept < n:
        t += float(rng.exponential(mean_gap_ns))
        rate = rate_fn(t)
        if rate > rate_max_qps * (1.0 + 1e-9):
            raise ValueError(
                f"rate_fn({t:.0f}) = {rate:.3f} exceeds rate_max_qps {rate_max_qps:.3f}"
            )
        if rng.random() * rate_max_qps < rate:
            times[kept] = t
            kept += 1
    return times
