"""Multi-shard query serving on top of the E2LSHoS simulator.

The paper's async engine (Sec. 5.4, Eq. 7) makes a single disk-resident
index CPU/IOPS-bound; this package puts a *service* in front of it:

- :mod:`repro.serving.sharding` — partition a dataset across shards,
  each with its own device volume and async engine; scatter-gather
  top-k merging.
- :mod:`repro.serving.replication` — R-way replica groups per shard,
  routing policies (round-robin, least-outstanding, hedged requests),
  and fault injection (degraded or stalling replicas).
- :mod:`repro.serving.dispatcher` — bounded admission queues,
  micro-batching, and hedge timers in front of the replica lanes.
- :mod:`repro.serving.loadgen` — open-loop (Poisson / uniform arrivals,
  optional Zipf-skewed query reuse) and closed-loop workloads.
- :mod:`repro.serving.stats` — throughput, latency percentiles, queue
  depth, per-replica IOPS and activity, and hedge win/loss accounting.
- :mod:`repro.serving.service` — the discrete-event loop tying
  arrivals, dispatch, hedging, and replica engines together in
  simulated time (tie order: completions -> flushes -> hedges ->
  arrivals).
"""

from repro.serving.dispatcher import DispatchConfig, Dispatcher
from repro.serving.loadgen import (
    Arrival,
    ClosedLoopWorkload,
    OpenLoopWorkload,
    QuerySelector,
    open_loop_arrivals,
)
from repro.serving.replication import (
    ROUTING_POLICIES,
    FaultSpec,
    ReplicaGroup,
    ReplicaRouter,
    RoutingConfig,
)
from repro.serving.service import QueryService
from repro.serving.sharding import Shard, ShardedIndex, ShardPlan, merge_answers, plan_shards
from repro.serving.stats import ServiceReport, ServiceStats, percentile

__all__ = [
    "Arrival",
    "ClosedLoopWorkload",
    "DispatchConfig",
    "Dispatcher",
    "FaultSpec",
    "OpenLoopWorkload",
    "QueryService",
    "QuerySelector",
    "ROUTING_POLICIES",
    "ReplicaGroup",
    "ReplicaRouter",
    "RoutingConfig",
    "ServiceReport",
    "ServiceStats",
    "Shard",
    "ShardPlan",
    "ShardedIndex",
    "merge_answers",
    "open_loop_arrivals",
    "percentile",
    "plan_shards",
]
