"""Multi-shard query serving on top of the E2LSHoS simulator.

The paper's async engine (Sec. 5.4, Eq. 7) makes a single disk-resident
index CPU/IOPS-bound; this package puts a *service* in front of it:

- :mod:`repro.serving.sharding` — partition a dataset across shards,
  each with its own device volume and async engine; scatter-gather
  top-k merging.
- :mod:`repro.serving.replication` — R-way replica groups per shard,
  routing policies (round-robin, least-outstanding, hedged requests),
  and fault injection (degraded or stalling replicas).
- :mod:`repro.serving.dispatcher` — bounded admission queues,
  micro-batching, and hedge timers in front of the replica lanes.
- :mod:`repro.serving.loadgen` — open-loop (Poisson / uniform arrivals,
  optional Zipf-skewed query reuse) and closed-loop workloads.
- :mod:`repro.serving.stats` — throughput, latency percentiles, queue
  depth, per-replica IOPS and activity, and hedge win/loss accounting.
- :mod:`repro.serving.events` — the named event-class tie-order tags
  (``EVENT_COMPLETION`` ... ``EVENT_UPDATE``) every serving heap
  entry carries; ``repro lint`` rule SIM001 enforces the shape.
- :mod:`repro.serving.ingest` — streaming insert/delete traffic as a
  second traffic class: per-shard DRAM delta tables and tombstones
  queried alongside the static index, plus background merge/compaction
  jobs that rewrite deltas into the block store and compete with
  queries for device IOPS.
- :mod:`repro.serving.service` — the discrete-event loop tying
  arrivals, dispatch, hedging, ingest, and replica engines together in
  simulated time (tie order: completions -> flushes -> hedges ->
  arrivals -> updates).
- :mod:`repro.serving.config` — typed, JSON-round-trippable config
  dataclasses for every layer above (deployment, workload, fault
  timeline).
- :mod:`repro.serving.scenario` — :class:`ScenarioSpec` composing the
  configs with one seed; ``run_scenario`` replays a spec into a
  byte-identical :class:`ServiceReport`.
- :mod:`repro.serving.catalog` — the committed library of situations
  (steady state, flash crowd, diurnal, hot-set drift, stall storm,
  correlated fault) the ``repro scenarios`` CLI runs.
"""

from repro.serving.catalog import CATALOG_NAMES, build_scenario, catalog
from repro.serving.config import (
    ARRIVAL_SHAPES,
    INGEST_SHAPES,
    DataConfig,
    FaultTimeline,
    ServingConfig,
    WorkloadSpec,
)
from repro.serving.dispatcher import DispatchConfig, Dispatcher
from repro.serving.ingest import (
    INGEST_KINDS,
    IngestConfig,
    IngestCoordinator,
    MergeTicket,
    UpdateArrival,
)
from repro.serving.loadgen import (
    Arrival,
    ClosedLoopWorkload,
    DriftingSelector,
    OpenLoopWorkload,
    QuerySelector,
    open_loop_arrivals,
    thinned_arrival_times,
)
from repro.serving.replication import (
    ROUTING_POLICIES,
    FaultSpec,
    ReplicaGroup,
    ReplicaRouter,
    RoutingConfig,
    StallingDevice,
    TimelineDevice,
)
from repro.serving.events import (
    EVENT_ARRIVAL,
    EVENT_COMPLETION,
    EVENT_FLUSH,
    EVENT_HEDGE,
    EVENT_UPDATE,
    TIE_ORDER,
)
from repro.serving.scenario import (
    ScenarioIndex,
    ScenarioResult,
    ScenarioSpec,
    build_scenario_index,
    run_scenario,
    workload_arrivals,
    workload_updates,
)
from repro.serving.service import QueryService
from repro.serving.sharding import Shard, ShardedIndex, ShardPlan, merge_answers, plan_shards
from repro.serving.stats import (
    MergeRecord,
    ServiceReport,
    ServiceStats,
    UpdateRecord,
    percentile,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "Arrival",
    "CATALOG_NAMES",
    "ClosedLoopWorkload",
    "DataConfig",
    "DispatchConfig",
    "Dispatcher",
    "DriftingSelector",
    "EVENT_ARRIVAL",
    "EVENT_COMPLETION",
    "EVENT_FLUSH",
    "EVENT_HEDGE",
    "EVENT_UPDATE",
    "FaultSpec",
    "FaultTimeline",
    "INGEST_KINDS",
    "INGEST_SHAPES",
    "IngestConfig",
    "IngestCoordinator",
    "MergeRecord",
    "MergeTicket",
    "OpenLoopWorkload",
    "QueryService",
    "QuerySelector",
    "ROUTING_POLICIES",
    "ReplicaGroup",
    "ReplicaRouter",
    "RoutingConfig",
    "ScenarioIndex",
    "ScenarioResult",
    "ScenarioSpec",
    "ServiceReport",
    "ServiceStats",
    "ServingConfig",
    "Shard",
    "ShardPlan",
    "ShardedIndex",
    "StallingDevice",
    "TIE_ORDER",
    "TimelineDevice",
    "UpdateArrival",
    "UpdateRecord",
    "WorkloadSpec",
    "build_scenario",
    "build_scenario_index",
    "catalog",
    "merge_answers",
    "open_loop_arrivals",
    "percentile",
    "plan_shards",
    "run_scenario",
    "thinned_arrival_times",
    "workload_arrivals",
    "workload_updates",
]
