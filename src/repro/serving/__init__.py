"""Multi-shard query serving on top of the E2LSHoS simulator.

The paper's async engine (Sec. 5.4, Eq. 7) makes a single disk-resident
index CPU/IOPS-bound; this package puts a *service* in front of it:

- :mod:`repro.serving.sharding` — partition a dataset across shards,
  each with its own index, device volume, and engine; scatter-gather
  top-k merging.
- :mod:`repro.serving.dispatcher` — bounded admission queues and
  micro-batching in front of the shards.
- :mod:`repro.serving.loadgen` — open-loop (Poisson / uniform arrivals,
  optional Zipf-skewed query reuse) and closed-loop workloads.
- :mod:`repro.serving.stats` — throughput, latency percentiles, queue
  depth, and per-shard IOPS accounting.
- :mod:`repro.serving.service` — the discrete-event loop tying arrivals,
  dispatch, and shard engines together in simulated time.
"""

from repro.serving.dispatcher import DispatchConfig, Dispatcher
from repro.serving.loadgen import (
    Arrival,
    ClosedLoopWorkload,
    OpenLoopWorkload,
    QuerySelector,
    open_loop_arrivals,
)
from repro.serving.service import QueryService
from repro.serving.sharding import Shard, ShardedIndex, ShardPlan, merge_answers, plan_shards
from repro.serving.stats import ServiceReport, ServiceStats, percentile

__all__ = [
    "Arrival",
    "ClosedLoopWorkload",
    "DispatchConfig",
    "Dispatcher",
    "OpenLoopWorkload",
    "QueryService",
    "QuerySelector",
    "ServiceReport",
    "ServiceStats",
    "Shard",
    "ShardPlan",
    "ShardedIndex",
    "merge_answers",
    "open_loop_arrivals",
    "percentile",
    "plan_shards",
]
