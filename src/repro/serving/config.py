"""Typed, serializable configuration for the serving stack.

Everything a load test needs — the deployment, the workload, and the
fault timeline — was previously spread across a ~25-flag CLI and long
kwarg lists on :meth:`~repro.serving.sharding.ShardedIndex.build`,
:class:`~repro.serving.dispatcher.DispatchConfig`, and
:class:`~repro.serving.replication.RoutingConfig`.  This module gives
each layer one frozen dataclass with a strict ``from_dict`` (unknown
keys and invalid values raise), so a complete serving situation is a
JSON-round-trippable value:

- :class:`DataConfig` — which dataset analog, at what size, with which
  index parameters;
- :class:`ServingConfig` — shards, replicas, devices, routing/hedging,
  micro-batching, and admission (the deployment);
- :class:`WorkloadSpec` — arrival shape (constant / Poisson /
  diurnal-sine / flash-crowd / ramp), offered rate, query population
  (Zipf skew, drifting hot set), or a closed-loop client fleet;
- :class:`FaultTimeline` — :class:`~repro.serving.replication.FaultSpec`
  events with start/stop windows, plus constructors for correlated
  replica faults and stall storms.

:class:`~repro.serving.scenario.ScenarioSpec` composes the four (plus a
single seed) into a replayable scenario; the defaults here are the one
source of truth the ``repro loadtest`` flags are generated from.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, fields
from typing import Any

from repro.datasets.registry import DATASET_NAMES
from repro.serving.dispatcher import DispatchConfig
from repro.serving.ingest import IngestConfig
from repro.serving.replication import FaultSpec, RoutingConfig
from repro.serving.sharding import PARTITION_SCHEMES
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES
from repro.utils.units import NS_PER_US

__all__ = [
    "ARRIVAL_SHAPES",
    "INGEST_SHAPES",
    "WORKLOAD_MODES",
    "DataConfig",
    "ServingConfig",
    "WorkloadSpec",
    "FaultTimeline",
    "strict_from_dict",
]

ARRIVAL_SHAPES = ("poisson", "uniform", "diurnal", "flash_crowd", "ramp")
#: Ingest updates arrive at a constant base rate; the exotic query
#: shapes make no sense for maintenance traffic.
INGEST_SHAPES = ("poisson", "uniform")
WORKLOAD_MODES = ("open", "closed")


def strict_from_dict(cls: type, payload: Mapping[str, Any], context: str) -> Any:
    """Construct a config dataclass from a mapping, rejecting unknown keys.

    Value validation is the dataclass's own ``__post_init__``; this
    helper only guards the key set, so a typo in a JSON spec fails
    loudly instead of silently falling back to a default.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{context} must be a mapping, got {type(payload).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"{context}: unknown key(s) {unknown}; known: {sorted(known)}")
    return cls(**payload)


# --------------------------------------------------------------------------
# Data
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DataConfig:
    """Dataset analog and index parameters of a scenario."""

    dataset: str = "sift"
    #: Database size (vectors indexed).
    n: int = 4_000
    #: Query-pool size the workload draws from.
    pool_queries: int = 32
    gamma: float = 0.5
    s_factor: float = 32.0
    #: Index exponent; ``None`` uses the dataset's calibrated default.
    rho: float | None = None

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_NAMES:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; known: {sorted(DATASET_NAMES)}"
            )
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.pool_queries < 1:
            raise ValueError(f"pool_queries must be >= 1, got {self.pool_queries}")
        if self.gamma <= 0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")
        if self.s_factor <= 0:
            raise ValueError(f"s_factor must be positive, got {self.s_factor}")
        if self.rho is not None and not 0 < self.rho < 1:
            raise ValueError(f"rho must be in (0, 1), got {self.rho}")

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DataConfig":
        return strict_from_dict(cls, payload, "data config")


# --------------------------------------------------------------------------
# Deployment
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingConfig:
    """The deployment: shards, replicas, devices, routing, batching."""

    n_shards: int = 1
    scheme: str = "hash"
    device: str = "cssd"
    devices_per_shard: int = 1
    interface: str = "io_uring"
    workers_per_shard: int = 1
    replicas: int = 1
    routing: str = "round_robin"
    #: Explicit hedge delay; ``None`` adapts to the observed sub-query p50.
    hedge_delay_us: float | None = None
    #: Micro-batch size trigger (admission lanes).
    max_batch: int = DispatchConfig.max_batch
    #: Micro-batch time trigger.
    batch_delay_us: float = DispatchConfig.max_delay_ns / NS_PER_US
    #: Bounded admission: max outstanding sub-queries per replica lane.
    queue_capacity: int = DispatchConfig.queue_capacity
    # -- ingest (delta tables / background merges) --
    #: Max unmerged delta entries a shard holds before updates queue.
    delta_capacity: int = IngestConfig.delta_capacity
    #: Delta size that triggers a background merge.
    merge_threshold: int = IngestConfig.merge_threshold
    #: Bounded ingest admission queue per shard.
    ingest_queue_capacity: int = IngestConfig.queue_capacity
    #: Maintenance writes per wave a background merge issues.
    merge_io_batch: int = IngestConfig.merge_io_batch

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.scheme not in PARTITION_SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; known: {PARTITION_SCHEMES}"
            )
        if self.device not in DEVICE_PROFILES:
            raise ValueError(
                f"unknown device {self.device!r}; known: {sorted(DEVICE_PROFILES)}"
            )
        if self.devices_per_shard < 1:
            raise ValueError(
                f"devices_per_shard must be >= 1, got {self.devices_per_shard}"
            )
        if self.interface not in INTERFACE_PROFILES:
            raise ValueError(
                f"unknown interface {self.interface!r}; "
                f"known: {sorted(INTERFACE_PROFILES)}"
            )
        if INTERFACE_PROFILES[self.interface].synchronous:
            raise ValueError(
                f"interface {self.interface!r} is synchronous; the serving "
                "engine needs an async interface"
            )
        if self.workers_per_shard < 1:
            raise ValueError(
                f"workers_per_shard must be >= 1, got {self.workers_per_shard}"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        # Delegate routing/batching validation to the runtime configs so
        # there is exactly one rulebook (e.g. hedge_delay_us requires the
        # 'hedged' policy).
        self.routing_config()
        self.dispatch_config()
        self.ingest_config()

    def routing_config(self) -> RoutingConfig:
        """The :class:`RoutingConfig` this deployment runs with."""
        hedge_delay_ns = (
            self.hedge_delay_us * NS_PER_US if self.hedge_delay_us is not None else None
        )
        return RoutingConfig(policy=self.routing, hedge_delay_ns=hedge_delay_ns)

    def dispatch_config(self) -> DispatchConfig:
        """The :class:`DispatchConfig` this deployment runs with."""
        return DispatchConfig(
            max_batch=self.max_batch,
            max_delay_ns=self.batch_delay_us * NS_PER_US,
            queue_capacity=self.queue_capacity,
        )

    def ingest_config(self) -> IngestConfig:
        """The :class:`IngestConfig` this deployment runs with."""
        return IngestConfig(
            delta_capacity=self.delta_capacity,
            merge_threshold=self.merge_threshold,
            queue_capacity=self.ingest_queue_capacity,
            merge_io_batch=self.merge_io_batch,
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServingConfig":
        return strict_from_dict(cls, payload, "serving config")


# --------------------------------------------------------------------------
# Workload
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """Parametric workload: arrival shape and query population.

    Open-loop shapes are *rate functions* ``rate(t)`` sampled by
    thinning (see :func:`repro.serving.loadgen.thinned_arrival_times`),
    so every shape is replayable from the scenario seed:

    - ``poisson`` / ``uniform``: constant-rate arrivals (the PR-1
      processes, byte-compatible with the legacy CLI);
    - ``diurnal``: ``qps * (1 + amplitude * sin(2*pi*t / period_us))``;
    - ``flash_crowd``: ``qps``, stepping to ``qps * flash_multiplier``
      inside ``[flash_at_us, flash_at_us + flash_duration_us)``;
    - ``ramp``: linear from ``qps`` to ``ramp_to_qps`` over
      ``ramp_duration_us``, then flat.

    The query population is drawn from the data config's query pool with
    optional Zipf skew; ``hot_drift_period_us > 0`` rotates *which* pool
    entries are hot by ``hot_drift_stride`` positions every period (the
    shifting-hot-set shape result caches must survive).

    ``ingest_requests > 0`` adds a second, concurrent traffic class:
    inserts/deletes offered at ``ingest_qps`` (its own constant-rate
    process, seeded independently of the query arrivals so adding ingest
    never perturbs the query stream).
    """

    mode: str = "open"
    #: Total queries offered (open) or completed (closed).
    requests: int = 256
    #: Base offered rate (open loop).
    qps: float = 2_000.0
    shape: str = "poisson"
    # -- diurnal --
    period_us: float = 0.0
    amplitude: float = 0.0
    # -- flash crowd --
    flash_at_us: float = 0.0
    flash_duration_us: float = 0.0
    flash_multiplier: float = 1.0
    # -- ramp --
    ramp_to_qps: float = 0.0
    ramp_duration_us: float = 0.0
    # -- query population --
    zipf_s: float = 0.0
    hot_drift_period_us: float = 0.0
    hot_drift_stride: int = 0
    # -- closed loop --
    concurrency: int = 16
    think_time_us: float = 0.0
    # -- ingest mix (second traffic class, open loop only) --
    #: Updates offered over the run; 0 disables ingest.
    ingest_requests: int = 0
    #: Offered update rate (updates/s).
    ingest_qps: float = 0.0
    #: Fraction of updates that are deletes (of earlier inserts or of
    #: initial objects); the rest are inserts.
    delete_fraction: float = 0.0
    #: Update inter-arrival process.
    ingest_shape: str = "poisson"

    def __post_init__(self) -> None:
        if self.mode not in WORKLOAD_MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {WORKLOAD_MODES}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(
                f"unknown arrival shape {self.shape!r}; known: {ARRIVAL_SHAPES}"
            )
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.think_time_us < 0:
            raise ValueError(f"think_time_us must be >= 0, got {self.think_time_us}")
        if self.mode == "closed" and self.shape != "poisson":
            raise ValueError(
                "closed-loop workloads have no arrival process; leave shape "
                f"at its default (got {self.shape!r})"
            )
        if self.shape == "diurnal":
            if self.period_us <= 0:
                raise ValueError("diurnal shape needs period_us > 0")
            if not 0 < self.amplitude <= 1:
                raise ValueError(
                    f"diurnal amplitude must be in (0, 1], got {self.amplitude}"
                )
        elif self.period_us or self.amplitude:
            raise ValueError(
                f"period_us/amplitude only apply to the diurnal shape "
                f"(shape is {self.shape!r})"
            )
        if self.shape == "flash_crowd":
            if self.flash_duration_us <= 0:
                raise ValueError("flash_crowd shape needs flash_duration_us > 0")
            if self.flash_multiplier <= 1:
                raise ValueError(
                    f"flash_multiplier must exceed 1, got {self.flash_multiplier}"
                )
            if self.flash_at_us < 0:
                raise ValueError(f"flash_at_us must be >= 0, got {self.flash_at_us}")
        elif self.flash_at_us or self.flash_duration_us or self.flash_multiplier != 1.0:
            raise ValueError(
                f"flash_* knobs only apply to the flash_crowd shape "
                f"(shape is {self.shape!r})"
            )
        if self.shape == "ramp":
            if self.ramp_to_qps <= 0:
                raise ValueError("ramp shape needs ramp_to_qps > 0")
            if self.ramp_duration_us <= 0:
                raise ValueError("ramp shape needs ramp_duration_us > 0")
        elif self.ramp_to_qps or self.ramp_duration_us:
            raise ValueError(
                f"ramp_* knobs only apply to the ramp shape (shape is {self.shape!r})"
            )
        if self.hot_drift_period_us < 0:
            raise ValueError(
                f"hot_drift_period_us must be >= 0, got {self.hot_drift_period_us}"
            )
        if self.hot_drift_period_us > 0:
            if self.mode != "open":
                raise ValueError("hot-set drift needs an open-loop workload")
            if self.zipf_s <= 0:
                raise ValueError(
                    "hot-set drift needs zipf_s > 0 (a uniform population "
                    "has no hot set to move)"
                )
            if self.hot_drift_stride < 1:
                raise ValueError(
                    f"hot_drift_stride must be >= 1 when drifting, "
                    f"got {self.hot_drift_stride}"
                )
        elif self.hot_drift_stride:
            raise ValueError("hot_drift_stride needs hot_drift_period_us > 0")
        if self.ingest_requests < 0:
            raise ValueError(
                f"ingest_requests must be >= 0, got {self.ingest_requests}"
            )
        if self.ingest_shape not in INGEST_SHAPES:
            raise ValueError(
                f"unknown ingest shape {self.ingest_shape!r}; known: {INGEST_SHAPES}"
            )
        if self.ingest_requests > 0:
            if self.mode != "open":
                raise ValueError("the ingest mix needs an open-loop workload")
            if self.ingest_qps <= 0:
                raise ValueError(
                    "ingest_requests > 0 needs ingest_qps > 0, "
                    f"got {self.ingest_qps}"
                )
            if not 0 <= self.delete_fraction <= 1:
                raise ValueError(
                    f"delete_fraction must be in [0, 1], got {self.delete_fraction}"
                )
        else:
            if self.ingest_qps or self.delete_fraction:
                raise ValueError(
                    "ingest_qps/delete_fraction only apply when "
                    f"ingest_requests > 0 (got {self.ingest_requests})"
                )

    # -- the rate function ----------------------------------------------------

    def rate_at(self, t_ns: float) -> float:
        """Instantaneous offered rate (q/s) at simulated time ``t_ns``."""
        t_us = t_ns / NS_PER_US
        if self.shape == "diurnal":
            return self.qps * (
                1.0 + self.amplitude * math.sin(2.0 * math.pi * t_us / self.period_us)
            )
        if self.shape == "flash_crowd":
            if self.flash_at_us <= t_us < self.flash_at_us + self.flash_duration_us:
                return self.qps * self.flash_multiplier
            return self.qps
        if self.shape == "ramp":
            progress = min(1.0, t_us / self.ramp_duration_us)
            return self.qps + (self.ramp_to_qps - self.qps) * progress
        return self.qps

    @property
    def peak_qps(self) -> float:
        """The rate function's maximum — what capacity planning must absorb."""
        if self.shape == "diurnal":
            return self.qps * (1.0 + self.amplitude)
        if self.shape == "flash_crowd":
            return self.qps * self.flash_multiplier
        if self.shape == "ramp":
            return max(self.qps, self.ramp_to_qps)
        return self.qps

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        return strict_from_dict(cls, payload, "workload spec")


# --------------------------------------------------------------------------
# Fault timeline
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultTimeline:
    """A replayable chaos script: windowed fault events on the fleet.

    Events are plain :class:`~repro.serving.replication.FaultSpec`
    values — an event without a window (``start_ns=0``, ``stop_ns=None``)
    is the always-on PR-5 fault; windowed events arrive and clear
    mid-run.  The constructors below build the two patterns the chaos
    catalog leans on: correlated faults (the same failure hitting one
    replica of *every* shard at once — a bad rack, a rollout gone wrong)
    and stall storms (repeated GC-style pauses marching over a window).
    """

    events: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultSpec):
                raise ValueError(f"fault events must be FaultSpec, got {event!r}")

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def correlated(
        cls,
        shards: Iterable[int],
        replica: int,
        latency_multiplier: float,
        start_ns: float = 0.0,
        stop_ns: float | None = None,
    ) -> "FaultTimeline":
        """The same degradation on one replica of every listed shard."""
        return cls(
            events=tuple(
                FaultSpec(
                    shard=shard,
                    replica=replica,
                    latency_multiplier=latency_multiplier,
                    start_ns=start_ns,
                    stop_ns=stop_ns,
                )
                for shard in shards
            )
        )

    @classmethod
    def stall_storm(
        cls,
        shard: int,
        replica: int,
        stall_period_ns: float,
        stall_duration_ns: float,
        start_ns: float = 0.0,
        stop_ns: float | None = None,
        latency_multiplier: float = 1.0,
    ) -> "FaultTimeline":
        """Repeated stalls marching over a window on one replica."""
        return cls(
            events=(
                FaultSpec(
                    shard=shard,
                    replica=replica,
                    latency_multiplier=latency_multiplier,
                    stall_period_ns=stall_period_ns,
                    stall_duration_ns=stall_duration_ns,
                    start_ns=start_ns,
                    stop_ns=stop_ns,
                ),
            )
        )

    def merged(self, other: "FaultTimeline") -> "FaultTimeline":
        """Both timelines' events, concatenated."""
        return FaultTimeline(events=self.events + other.events)

    def validate_against(self, n_shards: int, replicas: int) -> None:
        """Reject events targeting replicas outside the deployment."""
        for event in self.events:
            if event.shard >= n_shards or event.replica >= replicas:
                raise ValueError(
                    f"fault targets shard {event.shard} replica {event.replica}, "
                    f"but the deployment is {n_shards} shard(s) x "
                    f"{replicas} replica(s)"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "events": [
                {f.name: getattr(event, f.name) for f in fields(event)}
                for event in self.events
            ]
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultTimeline":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"fault timeline must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"events"})
        if unknown:
            raise ValueError(f"fault timeline: unknown key(s) {unknown}")
        events = payload.get("events", [])
        if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
            raise ValueError("fault timeline events must be a list")
        return cls(
            events=tuple(
                strict_from_dict(FaultSpec, event, f"fault event #{i}")
                for i, event in enumerate(events)
            )
        )
