"""R-way shard replication: replica groups, routing, fault injection.

A shard holds a *copy* of its slice of the index; replication puts R
such copies on R independent device volumes so the dispatcher can trade
IOPS for tail latency.  Because the simulator separates bytes (the
block store) from timing (the device volume), replicas share one store
and one built index — only the timing components are duplicated, which
is exactly what distinguishes replicas from shards.

Three routing policies decide which replica serves a sub-query:

- ``round_robin``: cycle through the replicas of each shard, skipping
  lanes that are at capacity.  Oblivious — a slow replica keeps
  receiving its full share and drags the tail.
- ``least_outstanding``: pick the replica with the fewest outstanding
  sub-queries (ties break to the lowest replica index, so replays are
  deterministic).  A degraded replica backs up and is organically
  avoided.
- ``hedged``: route like ``round_robin``, but arm a *hedge timer* at
  admission; if the primary has not answered after a delay anchored at
  the observed sub-query p50, re-issue the sub-query to a second
  replica and take whichever copy answers first.  The loser is
  cancelled if it is still queued, and counted either way — hedging
  buys tail latency with duplicate IOPS, and the accounting makes the
  price visible.

Fault injection (:class:`FaultSpec`) degrades a chosen replica with a
latency multiplier and/or intermittent stalls.  Without a fault the
simulated replicas are symmetric and hedges almost never win the race;
a single slow replica is the scenario where hedged routing measurably
beats round-robin (see ``benchmarks/test_serving_replicas.py``).
"""

from __future__ import annotations

import math
from bisect import insort
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.storage.blockstore import BlockStore
from repro.storage.device import DeviceProfile, StorageDevice
from repro.storage.engine import AsyncIOEngine, EngineSession
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES
from repro.storage.raid import StripedVolume

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sharding imports us)
    from repro.serving.sharding import Shard

__all__ = [
    "ROUTING_POLICIES",
    "HEDGE_OBSERVATION_CAP",
    "FaultSpec",
    "RoutingConfig",
    "ReplicaGroup",
    "ReplicaRouter",
    "StallingDevice",
    "TimelineDevice",
    "build_replica_engines",
]

ROUTING_POLICIES = ("round_robin", "least_outstanding", "hedged")

#: Adaptive hedge anchoring stops recording once this many sub-query
#: latencies are held: memory stays bounded and sorted insertion stays
#: cheap, and after thousands of observations the quantile is stable.
#: (Load-shift tracking over longer horizons would want a decaying
#: estimator instead; not needed at simulation scales.)
HEDGE_OBSERVATION_CAP = 4096


# --------------------------------------------------------------------------
# Fault injection
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """Degrade one replica of one shard.

    ``latency_multiplier`` stretches the device's service time and
    shrinks its saturated IOPS by the same factor (a uniformly slow
    copy — thermal throttling, a failing drive, a noisy neighbour).
    ``stall_period_ns``/``stall_duration_ns`` add intermittent stalls:
    for the first ``stall_duration_ns`` of every ``stall_period_ns``
    window the device accepts no new requests (garbage collection
    pauses); requests submitted during a stall wait for the window to
    end, in-flight requests complete normally.

    ``start_ns``/``stop_ns`` bound the fault in simulated time: the
    degradation (and any stall pattern) is active only while
    ``start_ns <= t < stop_ns``.  The defaults (0, ``None`` = forever)
    reproduce the always-on PR-5 behaviour exactly; a *windowed* fault
    is instead applied per-request by a :class:`TimelineDevice`, which
    stretches the service time of reads starting inside the window
    (the saturated-IOPS regulator is left untouched — a transient slow
    spell, not a permanently smaller drive).
    """

    shard: int
    replica: int
    latency_multiplier: float = 1.0
    stall_period_ns: float = 0.0
    stall_duration_ns: float = 0.0
    start_ns: float = 0.0
    stop_ns: float | None = None

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1, got {self.latency_multiplier}"
            )
        if self.stall_duration_ns < 0 or self.stall_period_ns < 0:
            raise ValueError("stall period/duration must be >= 0")
        if (self.stall_duration_ns > 0) != (self.stall_period_ns > 0):
            raise ValueError(
                "stall_period_ns and stall_duration_ns must be set together "
                f"(got period={self.stall_period_ns}, duration={self.stall_duration_ns})"
            )
        if self.stall_duration_ns > 0 and self.stall_period_ns <= self.stall_duration_ns:
            raise ValueError(
                f"stall_period_ns ({self.stall_period_ns}) must exceed "
                f"stall_duration_ns ({self.stall_duration_ns})"
            )
        if self.start_ns < 0:
            raise ValueError(f"start_ns must be >= 0, got {self.start_ns}")
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise ValueError(
                f"stop_ns ({self.stop_ns}) must exceed start_ns ({self.start_ns})"
            )

    @property
    def windowed(self) -> bool:
        """True when the fault is bounded in time (scenario timelines)."""
        return self.start_ns > 0 or self.stop_ns is not None

    def active_at(self, t_ns: float) -> bool:
        """True while the fault's window covers simulated time ``t_ns``."""
        if t_ns < self.start_ns:
            return False
        return self.stop_ns is None or t_ns < self.stop_ns

    def applies_to(self, shard: int, replica: int) -> bool:
        """True when this fault targets the given replica."""
        return self.shard == shard and self.replica == replica

    def degrade(self, profile: DeviceProfile) -> DeviceProfile:
        """The member-device profile after the latency multiplier."""
        if self.latency_multiplier == 1.0:
            return profile
        return replace(
            profile,
            name=f"{profile.name}!x{self.latency_multiplier:g}",
            latency_ns=profile.latency_ns * self.latency_multiplier,
            max_iops=profile.max_iops / self.latency_multiplier,
        )


class StallingDevice(StorageDevice):
    """A device that periodically refuses new submissions.

    Submissions landing inside a stall window are deferred to the end of
    the window; everything else follows the base timing model.
    """

    def __init__(self, profile: DeviceProfile, period_ns: float, duration_ns: float) -> None:
        super().__init__(profile)
        if duration_ns <= 0 or period_ns <= duration_ns:
            raise ValueError("need 0 < duration_ns < period_ns")
        self.period_ns = period_ns
        self.duration_ns = duration_ns

    def _deferred(self, submit_ns: float) -> float:
        phase = submit_ns % self.period_ns
        if phase < self.duration_ns:
            return submit_ns - phase + self.duration_ns
        return submit_ns

    def submit(self, submit_ns: float, length: int) -> float:
        return super().submit(self._deferred(submit_ns), length)


class TimelineDevice(StorageDevice):
    """A device degraded by *time-windowed* fault events.

    Each event is ``(start_ns, stop_ns, latency_multiplier,
    stall_period_ns, stall_duration_ns)`` with ``stop_ns = inf`` for an
    open-ended window.  While a window is active, reads starting inside
    it are served ``latency_multiplier`` times slower, and — if the
    event carries a stall pattern — submissions landing in the first
    ``stall_duration_ns`` of every ``stall_period_ns`` (phase-anchored
    at the window's start) are deferred to the end of the stall.
    Deferral is re-checked until no event moves the submission again, so
    back-to-back windows (a stall *storm*) compose; overlapping windows
    multiply their latency factors.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        events: Sequence[tuple[float, float, float, float, float]],
    ) -> None:
        super().__init__(profile)
        if not events:
            raise ValueError("a TimelineDevice needs at least one fault event")
        for start, stop, multiplier, period, duration in events:
            if not 0 <= start < stop:
                raise ValueError(f"need 0 <= start < stop, got [{start}, {stop})")
            if multiplier < 1.0:
                raise ValueError(f"latency multiplier must be >= 1, got {multiplier}")
            if duration > 0 and period <= duration:
                raise ValueError("need stall duration < stall period")
        self.events = tuple(sorted(events))

    def _deferred(self, submit_ns: float) -> float:
        moved = True
        while moved:
            moved = False
            for start, stop, _, period, duration in self.events:
                if duration <= 0 or not start <= submit_ns < stop:
                    continue
                phase = (submit_ns - start) % period
                if phase < duration:
                    submit_ns = min(submit_ns - phase + duration, stop)
                    moved = True
        return submit_ns

    def _latency_scale(self, start_ns: float) -> float:
        scale = 1.0
        for start, stop, multiplier, _, _ in self.events:
            if start <= start_ns < stop:
                scale *= multiplier
        return scale

    def submit(self, submit_ns: float, length: int) -> float:
        return super().submit(self._deferred(submit_ns), length)


def build_replica_engines(
    store: BlockStore,
    shard_id: int,
    replicas: int = 1,
    device: str = "cssd",
    devices_per_replica: int = 1,
    interface: str = "io_uring",
    faults: Sequence[FaultSpec] = (),
    stripe_unit: int = 512,
) -> tuple[list[AsyncIOEngine], list[DeviceProfile]]:
    """One engine (own device volume) per replica over a shared store.

    Returns the engines plus the member-device profile of each replica
    after any matching :class:`FaultSpec` has been applied.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if device not in DEVICE_PROFILES:
        raise KeyError(f"unknown device {device!r}; known: {sorted(DEVICE_PROFILES)}")
    if interface not in INTERFACE_PROFILES:
        raise KeyError(
            f"unknown interface {interface!r}; known: {sorted(INTERFACE_PROFILES)}"
        )
    engines: list[AsyncIOEngine] = []
    profiles: list[DeviceProfile] = []
    for replica in range(replicas):
        profile = DEVICE_PROFILES[device]
        matching = [f for f in faults if f.applies_to(shard_id, replica)]
        steady = [f for f in matching if not f.windowed]
        windowed = [f for f in matching if f.windowed]
        # Always-on degradation is baked into the profile (service time up,
        # saturated IOPS down), exactly the PR-5 behaviour.
        for fault in steady:
            profile = fault.degrade(profile)
        steady_stalls = [f for f in steady if f.stall_duration_ns > 0]
        if len(steady_stalls) > 1:
            raise ValueError(
                f"shard {shard_id} replica {replica} has {len(steady_stalls)} "
                "always-on stall faults; compose them into one FaultSpec "
                "(overlapping stall windows are not modeled)"
            )
        if windowed:
            # Windowed faults (and any always-on stall pattern riding along)
            # are applied per-request by a TimelineDevice.  The always-on
            # stall contributes only its stall fields — its latency
            # multiplier is already baked into the profile above.
            events = [
                (
                    f.start_ns,
                    math.inf if f.stop_ns is None else f.stop_ns,
                    f.latency_multiplier,
                    f.stall_period_ns,
                    f.stall_duration_ns,
                )
                for f in windowed
            ] + [
                (0.0, math.inf, 1.0, f.stall_period_ns, f.stall_duration_ns)
                for f in steady_stalls
            ]
            members = [
                TimelineDevice(profile, events) for _ in range(devices_per_replica)
            ]
            volume = StripedVolume(members, stripe_unit=stripe_unit)
        elif steady_stalls:
            members = [
                StallingDevice(
                    profile,
                    steady_stalls[0].stall_period_ns,
                    steady_stalls[0].stall_duration_ns,
                )
                for _ in range(devices_per_replica)
            ]
            volume = StripedVolume(members, stripe_unit=stripe_unit)
        else:
            volume = StripedVolume.of(profile, devices_per_replica, stripe_unit)
        engines.append(AsyncIOEngine(volume, INTERFACE_PROFILES[interface], store))
        profiles.append(profile)
    return engines, profiles


# --------------------------------------------------------------------------
# Replica groups
# --------------------------------------------------------------------------


@dataclass
class ReplicaGroup:
    """R copies of one shard: shared index and store, independent timing."""

    shard: "Shard"
    engines: list[AsyncIOEngine]
    #: Member-device profile of each replica (after fault degradation).
    profiles: list[DeviceProfile]

    def __post_init__(self) -> None:
        if not self.engines:
            raise ValueError("a replica group needs at least one engine")
        if len(self.profiles) != len(self.engines):
            raise ValueError(
                f"{len(self.engines)} engines need {len(self.engines)} profiles, "
                f"got {len(self.profiles)}"
            )

    @property
    def n_replicas(self) -> int:
        """Replication factor R of this shard."""
        return len(self.engines)

    def sessions(self, workers: int = 1, profile_tasks: bool = False) -> list[EngineSession]:
        """Open one incremental session per replica."""
        return [
            engine.session(workers=workers, profile_tasks=profile_tasks)
            for engine in self.engines
        ]


# --------------------------------------------------------------------------
# Routing
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RoutingConfig:
    """Replica-selection policy and hedging knobs."""

    policy: str = "round_robin"
    #: Explicit hedge delay; ``None`` adapts to the observed sub-query
    #: latency quantile below.
    hedge_delay_ns: float | None = None
    #: Quantile (percent) anchoring the adaptive hedge delay.
    hedge_quantile: float = 50.0
    #: Scale applied to the anchored quantile (1.0 = hedge at p50).
    hedge_multiplier: float = 1.0
    #: Completed sub-queries required before adaptive hedging arms.
    hedge_min_observations: int = 8

    def __post_init__(self) -> None:
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; known: {ROUTING_POLICIES}"
            )
        if self.hedge_delay_ns is not None and self.hedge_delay_ns < 0:
            raise ValueError(f"hedge_delay_ns must be >= 0, got {self.hedge_delay_ns}")
        if self.hedge_delay_ns is not None and self.policy != "hedged":
            raise ValueError(
                f"hedge_delay_ns is set but policy is {self.policy!r}; "
                "only 'hedged' issues hedged requests"
            )
        if not 0 < self.hedge_quantile <= 100:
            raise ValueError(
                f"hedge_quantile must be in (0, 100], got {self.hedge_quantile}"
            )
        if self.hedge_multiplier <= 0:
            raise ValueError(
                f"hedge_multiplier must be positive, got {self.hedge_multiplier}"
            )
        if self.hedge_min_observations < 1:
            raise ValueError(
                f"hedge_min_observations must be >= 1, got {self.hedge_min_observations}"
            )

    @property
    def hedging(self) -> bool:
        """True when the policy issues hedged requests."""
        return self.policy == "hedged"


@dataclass
class ReplicaRouter:
    """Stateful replica selection for one dispatcher run.

    The router owns the round-robin cursors and the sub-query latency
    observations that anchor the adaptive hedge delay; the dispatcher
    owns the lanes and passes their outstanding counts in.
    """

    config: RoutingConfig
    n_shards: int
    _cursors: list[int] = field(init=False)
    #: Observed sub-query latencies, kept sorted (``insort``) so the
    #: quantile anchor is an O(1) index read per admission instead of a
    #: full sort — long runs would otherwise go quadratic.
    _observed_ns: list[float] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        self._cursors = [0] * self.n_shards

    def route(self, shard: int, outstanding: Sequence[int], capacity: int) -> int | None:
        """Replica to serve the next sub-query; ``None`` when all full.

        Pure probe — round-robin cursors advance only on :meth:`commit`,
        so a query shed because *another* shard is full leaves every
        cursor untouched (otherwise alternating admit/shed patterns
        would pin a shard's traffic onto one replica).
        """
        n = len(outstanding)
        if self.config.policy == "least_outstanding":
            best = min(range(n), key=lambda r: (outstanding[r], r))
            return best if outstanding[best] < capacity else None
        # round_robin and hedged: cycle, skipping lanes at capacity.
        cursor = self._cursors[shard]
        for step in range(n):
            candidate = (cursor + step) % n
            if outstanding[candidate] < capacity:
                return candidate
        return None

    def commit(self, shard: int, replica: int) -> None:
        """Record that the probed ``replica`` actually received work."""
        self._cursors[shard] = replica + 1  # route() reduces modulo R

    def secondary(
        self, shard: int, primary: int, outstanding: Sequence[int], capacity: int
    ) -> int | None:
        """Hedge target: least-outstanding replica other than ``primary``."""
        candidates = [
            r
            for r in range(len(outstanding))
            if r != primary and outstanding[r] < capacity
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (outstanding[r], r))

    def observe(self, latency_ns: float) -> None:
        """Record one completed sub-query's admission-to-answer latency.

        Only the adaptive hedge anchor reads these, so recording is a
        no-op under other policies (and under an explicit hedge delay).
        """
        if not self.config.hedging or self.config.hedge_delay_ns is not None:
            return
        if len(self._observed_ns) < HEDGE_OBSERVATION_CAP:
            insort(self._observed_ns, latency_ns)

    @property
    def observations(self) -> int:
        """Sub-query latencies recorded so far."""
        return len(self._observed_ns)

    def hedge_delay_ns(self) -> float | None:
        """Current hedge delay; ``None`` while hedging is not armed."""
        if not self.config.hedging:
            return None
        if self.config.hedge_delay_ns is not None:
            return self.config.hedge_delay_ns
        count = len(self._observed_ns)
        if count < self.config.hedge_min_observations:
            return None
        # Nearest-rank quantile straight off the sorted observations.
        rank = math.ceil(self.config.hedge_quantile / 100 * count)
        return self._observed_ns[rank - 1] * self.config.hedge_multiplier
