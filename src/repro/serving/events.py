"""Event-class tie-order tags for the serving event loop's heaps.

The :class:`~repro.serving.service.QueryService` loop is a five-source
discrete-event simulation, and **tie order at equal timestamps is part
of the determinism contract**: completions run before flushes, flushes
before hedges, hedges before arrivals, arrivals before updates (see the
``service.py`` module docstring; regression tests pin one seed to a
byte-identical ``ServiceReport``).  Every heap in ``repro.serving``
therefore keys its entries as ``(time_ns, EVENT_<CLASS>, ...)``: the
tag names which contract class the entry belongs to, keeps same-time
entries ordered by an explicit field instead of whatever payload
happens to sit at index 1, and makes every push site greppable for its
class.  The SIM001 rule of ``repro lint`` enforces the shape
statically.

The numeric values mirror the loop's tie order, so the tags would sort
correctly even if entries of different classes ever shared one heap.
"""

from __future__ import annotations

__all__ = [
    "EVENT_COMPLETION",
    "EVENT_FLUSH",
    "EVENT_HEDGE",
    "EVENT_ARRIVAL",
    "EVENT_UPDATE",
    "TIE_ORDER",
]

#: A replica engine finishing a sub-query (runs first at equal times).
EVENT_COMPLETION = 0
#: A dispatcher lane's micro-batch time trigger.
EVENT_FLUSH = 1
#: An armed hedge timer firing.
EVENT_HEDGE = 2
#: A client query arriving.
EVENT_ARRIVAL = 3
#: An ingest update (insert/delete) arriving (runs last at equal
#: times, so the query path of a no-ingest run is byte-identical to a
#: loop that never heard of updates).
EVENT_UPDATE = 4

#: The pinned processing order at equal timestamps.
TIE_ORDER = (EVENT_COMPLETION, EVENT_FLUSH, EVENT_HEDGE, EVENT_ARRIVAL, EVENT_UPDATE)
