"""The query service: arrivals -> dispatcher -> replica engines, in one
simulated clock.

The loop is a five-source discrete-event simulation.  At every
iteration the earliest of

1. the next resumable task on any replica's engine session,
2. the next micro-batch time trigger (dispatcher lane deadline),
3. the next armed hedge deadline (hedged routing only),
4. the next query arrival,
5. the next ingest update arrival (insert/delete traffic)

is processed.  **Tie order is part of the contract**: at equal
timestamps, completions run before flushes, flushes before hedges,
hedges before arrivals, arrivals before updates.  Completions first
means a sub-query finishing exactly at its hedge deadline cancels the
timer instead of issuing a useless duplicate, and frees its admission
slot before a same-instant arrival is considered; hedges before
arrivals means a duplicate joins the micro-batch an arrival would
trigger; updates last means the query path of a no-ingest run is
byte-identical to a loop that never heard of updates.  Regression tests
pin this order — do not reorder the branches.

Replica sessions advance independently (each replica owns its device
volume), but completions feed back into the loop: the last shard answer
of a query completes it, and — under a closed-loop workload — issues
that client's next query.  The scatter-gather merge itself is charged
zero time (a k-way merge of a few dozen candidates is noise next to
hashing and I/O).

Rejected queries (bounded admission) complete immediately from the
client's point of view: an open-loop client just goes away; a
closed-loop client retries after the micro-batch delay.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

import numpy as np

from repro.core.e2lsh import QueryAnswer
from repro.obs.metrics import MetricsRegistry, Timeline
from repro.obs.selfprof import LoopProfile
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serving.dispatcher import DispatchConfig, Dispatcher
from repro.serving.events import EVENT_ARRIVAL, EVENT_UPDATE
from repro.serving.ingest import (
    IngestConfig,
    IngestCoordinator,
    MergeTicket,
    UpdateArrival,
)
from repro.serving.loadgen import (
    Arrival,
    ClosedLoopWorkload,
    OpenLoopWorkload,
    QuerySelector,
    open_loop_arrivals,
)
from repro.serving.replication import RoutingConfig
from repro.serving.sharding import ShardedIndex, merge_answers
from repro.serving.stats import ServiceReport, ServiceStats

__all__ = ["QueryService"]


class QueryService:
    """Serves top-k queries over a :class:`ShardedIndex` in simulated time."""

    def __init__(
        self,
        sharded: ShardedIndex,
        dispatch: DispatchConfig | None = None,
        routing: RoutingConfig | None = None,
        workers_per_shard: int = 1,
        tracer: Tracer | None = None,
        metrics_interval_ns: float | None = None,
        vectorize: bool = True,
        profile_interval_ns: float | None = None,
    ) -> None:
        self.sharded = sharded
        self.dispatch = dispatch or DispatchConfig()
        self.routing = routing or RoutingConfig()
        self.workers_per_shard = workers_per_shard
        #: Span tracer observing the run; the default no-ops every hook
        #: and keeps per-task engine profiling off (zero-cost-when-off).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Simulated-time sampling period for the metrics timeline;
        #: ``None`` disables sampling.
        self.metrics_interval_ns = metrics_interval_ns
        #: Flush full dispatcher lanes as vectorized waves; ``False``
        #: runs the scalar per-sub-query path (same reports and traces,
        #: byte for byte — only wall-clock speed differs).
        self.vectorize = vectorize
        #: Simulated-time sampling period for the *wall-clock* loop
        #: profile timeline; ``None`` disables it.  Wall figures are
        #: non-deterministic, so they live next to the metrics export,
        #: never in traces or reports.
        self.profile_interval_ns = profile_interval_ns
        #: Per-phase wall events/sec timeline of the last run (``None``
        #: unless ``profile_interval_ns`` was set).
        self.profile_timeline: Timeline | None = None
        #: Merged answers of the last run, keyed by query id.
        self.answers: dict[int, QueryAnswer] = {}
        #: Collector of the last run.
        self.stats = ServiceStats()
        #: Metrics registry of the last run (filled at run end).
        self.metrics = MetricsRegistry()
        #: Timeline of the last run (``None`` unless sampling enabled).
        self.timeline: Timeline | None = None
        #: Wall-clock self-profile of the last run's event loop.
        self.loop_profile = LoopProfile()
        #: Ingest coordinator of the last run (``None`` unless the run
        #: carried an update stream); exposes the delta/merge state for
        #: post-run verification (e.g. offline compaction).
        self.ingest: IngestCoordinator | None = None

    # -- public entry points --------------------------------------------------

    def run_open_loop(
        self, pool: np.ndarray, workload: OpenLoopWorkload, k: int = 10
    ) -> ServiceReport:
        """Offer a fixed arrival rate; report what the service sustained."""
        pool = self._check_pool(pool)
        arrivals = open_loop_arrivals(workload, pool.shape[0])
        return self._run(pool, arrivals, on_done=None, k=k)

    def run_closed_loop(
        self, pool: np.ndarray, workload: ClosedLoopWorkload, k: int = 10
    ) -> ServiceReport:
        """Run a fixed client fleet to completion (saturation throughput)."""
        pool = self._check_pool(pool)
        selector = QuerySelector(
            pool.shape[0], zipf_s=workload.zipf_s, seed=workload.seed + 1
        )
        issued = min(workload.concurrency, workload.n_queries)
        initial = [
            Arrival(query_id=i, time_ns=0.0, pool_index=selector.select(i))
            for i in range(issued)
        ]
        state = {"issued": issued}

        def on_done(now_ns: float) -> Arrival | None:
            if state["issued"] >= workload.n_queries:
                return None
            query_id = state["issued"]
            state["issued"] += 1
            return Arrival(
                query_id=query_id,
                time_ns=now_ns + workload.think_time_ns,
                pool_index=selector.select(query_id),
            )

        return self._run(pool, initial, on_done=on_done, k=k)

    def run_arrivals(
        self,
        pool: np.ndarray,
        arrivals: list[Arrival],
        k: int = 10,
        updates: list[UpdateArrival] | None = None,
        ingest: IngestConfig | None = None,
    ) -> ServiceReport:
        """Serve a pre-materialized arrival sequence (open loop).

        This is the entry point scenario runs use: the arrival stream —
        whatever its shape or query population — is generated up front
        from the scenario seed, so replaying a spec replays the exact
        event sequence.

        ``updates`` adds a second, concurrent traffic class: inserts and
        deletes admitted through per-shard ingest lanes, visible to
        queries via DRAM delta tables/tombstones, and persisted by
        background merges that compete with queries for device IOPS
        (see :mod:`repro.serving.ingest`).
        """
        pool = self._check_pool(pool)
        for arrival in arrivals:
            if not 0 <= arrival.pool_index < pool.shape[0]:
                raise ValueError(
                    f"arrival {arrival.query_id} targets pool index "
                    f"{arrival.pool_index}, pool has {pool.shape[0]} entries"
                )
        return self._run(
            pool, list(arrivals), on_done=None, k=k, updates=updates, ingest=ingest
        )

    # -- the event loop -------------------------------------------------------

    def _run(
        self,
        pool: np.ndarray,
        arrivals: list[Arrival],
        on_done: Callable[[float], Arrival | None] | None,
        k: int,
        updates: list[UpdateArrival] | None = None,
        ingest: IngestConfig | None = None,
    ) -> ServiceReport:
        self.stats = ServiceStats()
        self.answers = {}
        self.metrics = MetricsRegistry()
        self.timeline = (
            Timeline(self.metrics_interval_ns)
            if self.metrics_interval_ns is not None
            else None
        )
        self.loop_profile = profile = LoopProfile()
        tracer = self.tracer
        sessions = [
            group.sessions(
                workers=self.workers_per_shard, profile_tasks=tracer.enabled
            )
            for group in self.sharded.replica_groups
        ]
        dispatcher = Dispatcher(
            self.sharded,
            sessions,
            self.dispatch,
            self.stats,
            routing=self.routing,
            tracer=tracer,
            vectorize=self.vectorize,
        )
        coordinator: IngestCoordinator | None = None
        updates_by_id: dict[int, UpdateArrival] = {}
        # Entries are (time_ns, EVENT_UPDATE, update_id) per the
        # serving.events tie-order tagging contract (SIM001).
        update_heap: list[tuple[float, int, int]] = []
        if updates:
            coordinator = IngestCoordinator(
                self.sharded,
                sessions,
                ingest if ingest is not None else IngestConfig(),
                self.stats,
                max_inserts=sum(1 for u in updates if u.kind == "insert"),
            )
            dispatcher.ingest = coordinator
            updates_by_id = {u.update_id: u for u in updates}
            update_heap = [(u.time_ns, EVENT_UPDATE, u.update_id) for u in updates]
            heapq.heapify(update_heap)
        self.ingest = coordinator
        n_shards = self.sharded.n_shards
        flat_sessions = [
            (shard_id, replica, session)
            for shard_id, row in enumerate(sessions)
            for replica, session in enumerate(row)
        ]

        # Entries are (time_ns, EVENT_ARRIVAL, query_id, pool_index) per
        # the serving.events tie-order tagging contract (SIM001).
        arrival_heap = [
            (a.time_ns, EVENT_ARRIVAL, a.query_id, a.pool_index) for a in arrivals
        ]
        heapq.heapify(arrival_heap)
        #: query_id -> (arrival_ns, pool_index, parts, latest finish so far)
        in_flight: dict[int, tuple[float, int, list[QueryAnswer], float]] = {}

        def sample(t_ns: float) -> dict:
            """Timeline row: run state as of the last event before t_ns."""
            return {
                "in_flight": len(in_flight),
                "completed": len(self.stats.records),
                "rejected": self.stats.rejected,
                "queue_depth": dispatcher.queue_depths(),
                "outstanding": dispatcher.outstanding_counts(),
                "replica_io_counts": [
                    [session.io_count for session in row] for row in sessions
                ],
                "hedges_issued": self.stats.hedges_issued,
                "hedge_wins": self.stats.hedge_wins,
                "hedges_cancelled": self.stats.hedges_cancelled,
            }

        def issue(arrival: Arrival | None) -> None:
            if arrival is not None:
                heapq.heappush(
                    arrival_heap,
                    (arrival.time_ns, EVENT_ARRIVAL, arrival.query_id, arrival.pool_index),
                )

        timeline = self.timeline
        self.profile_timeline = profile_timeline = (
            Timeline(self.profile_interval_ns)
            if self.profile_interval_ns is not None
            else None
        )
        last_wall = {"events": 0.0, "seconds": 0.0}

        def profile_sample(t_ns: float) -> dict:
            """Per-interval wall events/sec (delta since the last tick)."""
            point = profile.checkpoint()
            events = point["events_total"] - last_wall["events"]
            seconds = point["wall_seconds"] - last_wall["seconds"]
            last_wall["events"] = point["events_total"]
            last_wall["seconds"] = point["wall_seconds"]
            return {
                "events": events,
                "wall_seconds": seconds,
                "events_per_sec": events / seconds if seconds > 0 else 0.0,
            }

        profile.start()
        while True:
            # The loop runs while any source can still produce an event;
            # all-inf timestamps mean no arrivals, no queued or parked
            # work, and no live hedge timers — i.e. the run is over.
            t_arrival = arrival_heap[0][0] if arrival_heap else math.inf
            t_update = update_heap[0][0] if update_heap else math.inf
            t_flush = dispatcher.next_flush_ns
            t_hedge = dispatcher.next_hedge_ns
            shard_id, replica, session = flat_sessions[0]
            t_engine = session.next_ready_ns
            for entry in flat_sessions:
                t_entry = entry[2].next_ready_ns
                if t_entry < t_engine:
                    t_engine = t_entry
                    shard_id, replica, session = entry
            t_next = min(t_arrival, t_flush, t_hedge, t_engine, t_update)
            if math.isinf(t_next):
                break
            if timeline is not None:
                timeline.advance(t_next, sample)
            if profile_timeline is not None:
                profile_timeline.advance(t_next, profile_sample)

            # Contract: completions -> flushes -> hedges -> arrivals -> updates.
            if t_engine <= min(t_flush, t_hedge, t_arrival, t_update):
                profile.engine_steps += 1
                completion = session.step()
                if completion is None:
                    continue
                if coordinator is not None and isinstance(completion.tag, MergeTicket):
                    # Background merge tasks bypass the dispatcher's
                    # lane accounting — they were never admitted.
                    coordinator.merge_task_done(completion.tag, completion.finish_ns)
                    continue
                part = dispatcher.subquery_done(shard_id, replica, completion)
                if part is None:
                    continue  # hedge loser; the answer already arrived
                query_id = completion.tag
                arrival_ns, pool_index, parts, latest = in_flight[query_id]
                parts.append(part)
                latest = max(latest, completion.finish_ns)
                if len(parts) < n_shards:
                    in_flight[query_id] = (arrival_ns, pool_index, parts, latest)
                    continue
                del in_flight[query_id]
                if coordinator is not None:
                    self.answers[query_id] = coordinator.finish_answer(
                        parts, pool[pool_index], k
                    )
                else:
                    self.answers[query_id] = merge_answers(parts, k)
                self.stats.record_completion(query_id, pool_index, arrival_ns, latest)
                tracer.query_completed(query_id, latest)
                if on_done is not None:
                    issue(on_done(latest))
                continue

            if t_flush <= min(t_hedge, t_arrival, t_update):
                profile.flushes += 1
                dispatcher.flush_due(t_flush)
                continue

            if t_hedge <= min(t_arrival, t_update):
                profile.hedges += 1
                dispatcher.fire_hedges(t_hedge)
                continue

            if t_arrival <= t_update:
                profile.arrivals += 1
                _, _, query_id, pool_index = heapq.heappop(arrival_heap)
                if dispatcher.admit(t_arrival, query_id, pool[pool_index], k=k):
                    in_flight[query_id] = (t_arrival, pool_index, [], 0.0)
                    tracer.query_admitted(query_id, t_arrival)
                else:
                    profile.rejections += 1
                    tracer.query_rejected(query_id, t_arrival)
                    if on_done is not None:
                        # Closed loop: the shed client retries after a backoff.
                        issue(
                            Arrival(
                                query_id=query_id,
                                time_ns=t_arrival + max(self.dispatch.max_delay_ns, 1.0),
                                pool_index=pool_index,
                            )
                        )
                continue

            profile.updates += 1
            _, _, update_id = heapq.heappop(update_heap)
            dispatcher.admit_update(t_update, updates_by_id[update_id])
        profile.stop()

        if in_flight:  # pragma: no cover - defensive
            raise RuntimeError(f"{len(in_flight)} queries never completed")
        if coordinator is not None:
            coordinator.finalize()
        self._publish_metrics()
        return self.stats.report(
            [[session.result() for session in row] for row in sessions]
        )

    def _publish_metrics(self) -> None:
        """Mirror the finished run into the metrics registry."""
        metrics = self.metrics
        stats = self.stats
        metrics.counter("queries_completed").inc(len(stats.records))
        metrics.counter("queries_rejected").inc(stats.rejected)
        metrics.counter("hedges_issued").inc(stats.hedges_issued)
        metrics.counter("hedge_wins").inc(stats.hedge_wins)
        metrics.counter("hedges_cancelled").inc(stats.hedges_cancelled)
        latency = metrics.histogram("query_latency_ns")
        for record in stats.records:
            latency.observe(record.latency_ns)
        if stats.update_records or stats.updates_rejected or stats.updates_noop:
            metrics.counter("updates_completed").inc(len(stats.update_records))
            metrics.counter("updates_rejected").inc(stats.updates_rejected)
            metrics.counter("updates_noop").inc(stats.updates_noop)
            metrics.counter("merges_completed").inc(len(stats.merge_records))
            metrics.counter("merge_write_ios").inc(
                sum(record.write_ios for record in stats.merge_records)
            )
            # A separate histogram: update latency is its own traffic
            # class, never folded into query_latency_ns.
            update_latency = metrics.histogram("update_latency_ns")
            for update_record in stats.update_records:
                update_latency.observe(update_record.latency_ns)
        self.loop_profile.publish(metrics)

    def metrics_snapshot(self) -> dict:
        """Exportable metrics of the last run (registry, timeline, wall)."""
        return {
            "schema": "repro-metrics/1",
            "metrics": self.metrics.snapshot(),
            "timeline": self.timeline.as_dict() if self.timeline else None,
            "wall": self.loop_profile.as_dict(),
            "wall_timeline": (
                self.profile_timeline.as_dict() if self.profile_timeline else None
            ),
        }

    @staticmethod
    def _check_pool(pool: np.ndarray) -> np.ndarray:
        pool = np.asarray(pool, dtype=np.float32)
        if pool.ndim == 1:
            pool = pool[None, :]
        if pool.ndim != 2 or pool.shape[0] < 1:
            raise ValueError(f"query pool must be (m, d) with m >= 1, got {pool.shape}")
        return pool
