"""Replayable serving scenarios: one spec object -> one SLO report.

A :class:`ScenarioSpec` composes the four config layers of
:mod:`repro.serving.config` — data, deployment, workload, fault
timeline — with a single ``seed``.  The seed drives dataset synthesis,
index build, arrival sampling, and query selection, so running the same
spec twice yields a byte-identical :class:`~repro.serving.stats.ServiceReport`;
serializing via :meth:`ScenarioSpec.to_dict` and loading the JSON back
replays the exact run.  This is the contract the chaos catalog
(:mod:`repro.serving.catalog`) and the ``repro scenarios`` CLI build on:
a production claim like "hedging beats round-robin under a windowed 5x
slow replica" is pinned to a spec file, not to a flag incantation.

:func:`run_scenario` is the one entry point: it wires
``ShardedIndex.build``, the :class:`~repro.serving.dispatcher.Dispatcher`
config, :class:`~repro.serving.replication.RoutingConfig`, the PR-6
tracer/metrics hooks, and the arrival stream from the spec, and returns
a :class:`ScenarioResult` carrying the report plus everything the CLI
and experiments need (answers, records, loop profile, the service for
trace/metrics export).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.core.params import E2LSHParams
from repro.datasets.registry import DATASET_SPECS, load_dataset
from repro.obs.selfprof import LoopProfile
from repro.obs.trace import Tracer
from repro.serving.config import (
    DataConfig,
    FaultTimeline,
    ServingConfig,
    WorkloadSpec,
)
from repro.serving.loadgen import (
    Arrival,
    ClosedLoopWorkload,
    DriftingSelector,
    QuerySelector,
    thinned_arrival_times,
)
from repro.serving.ingest import UpdateArrival
from repro.serving.service import QueryService
from repro.serving.sharding import ShardedIndex
from repro.serving.stats import QueryRecord, ServiceReport
from repro.utils.units import NS_PER_MS, NS_PER_S, NS_PER_US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.e2lsh import QueryAnswer
    from repro.datasets.registry import Dataset

__all__ = [
    "SCENARIO_SCHEMA",
    "REPORT_SCHEMA",
    "ScenarioSpec",
    "ScenarioIndex",
    "ScenarioResult",
    "workload_arrivals",
    "workload_updates",
    "build_scenario_index",
    "run_scenario",
]

SCENARIO_SCHEMA = "repro-scenario/1"
REPORT_SCHEMA = "repro-scenario-report/1"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, replayable serving situation."""

    name: str
    data: DataConfig = field(default_factory=DataConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: FaultTimeline = field(default_factory=FaultTimeline)
    #: The one seed: dataset synthesis, index build, arrivals, selection.
    seed: int = 1
    k: int = 10
    #: SLO the scenario's report is judged against.
    target_p99_ms: float = 2.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.target_p99_ms <= 0:
            raise ValueError(f"target_p99_ms must be positive, got {self.target_p99_ms}")
        self.faults.validate_against(self.serving.n_shards, self.serving.replicas)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; ``from_dict`` round-trips it exactly."""
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "k": self.k,
            "target_p99_ms": self.target_p99_ms,
            "data": self.data.to_dict(),
            "serving": self.serving.to_dict(),
            "workload": self.workload.to_dict(),
            "faults": self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(f"scenario must be a mapping, got {type(payload).__name__}")
        payload = dict(payload)
        schema = payload.pop("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValueError(
                f"unsupported scenario schema {schema!r}; expected {SCENARIO_SCHEMA!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"scenario: unknown key(s) {unknown}; known: {sorted(known)}")
        nested = {
            "data": DataConfig.from_dict,
            "serving": ServingConfig.from_dict,
            "workload": WorkloadSpec.from_dict,
            "faults": FaultTimeline.from_dict,
        }
        kwargs: dict[str, Any] = {}
        for key, value in payload.items():
            kwargs[key] = nested[key](value) if key in nested else value
        return cls(**kwargs)


def workload_arrivals(
    workload: WorkloadSpec, pool_size: int, seed: int
) -> list[Arrival]:
    """Materialize an open-loop workload spec's full arrival sequence.

    For the constant-rate shapes this reproduces
    :func:`~repro.serving.loadgen.open_loop_arrivals` draw-for-draw
    (same rng stream, selector seeded ``seed + 1``), so a spec built
    from legacy ``loadtest`` flags replays the legacy run exactly.  The
    time-varying shapes sample their rate function by Lewis thinning at
    the shape's peak rate.
    """
    if workload.mode != "open":
        raise ValueError("workload_arrivals needs an open-loop workload spec")
    rng = np.random.default_rng(seed)
    n = workload.requests
    if workload.shape == "poisson":
        times = np.cumsum(rng.exponential(NS_PER_S / workload.qps, size=n))
    elif workload.shape == "uniform":
        times = np.cumsum(np.full(n, NS_PER_S / workload.qps))
    else:
        times = thinned_arrival_times(
            workload.rate_at, workload.peak_qps, n, seed=seed
        )
    if workload.hot_drift_period_us > 0:
        selector = DriftingSelector(
            pool_size,
            zipf_s=workload.zipf_s,
            drift_period_ns=workload.hot_drift_period_us * NS_PER_US,
            stride=workload.hot_drift_stride,
            seed=seed + 1,
        )
        return [
            Arrival(
                query_id=i,
                time_ns=float(times[i]),
                pool_index=selector.select(i, time_ns=float(times[i])),
            )
            for i in range(n)
        ]
    selector = QuerySelector(pool_size, zipf_s=workload.zipf_s, seed=seed + 1)
    return [
        Arrival(query_id=i, time_ns=float(times[i]), pool_index=selector.select(i))
        for i in range(n)
    ]


def workload_updates(
    workload: WorkloadSpec, data: np.ndarray, seed: int
) -> list[UpdateArrival]:
    """Materialize a workload spec's ingest mix (inserts and deletes).

    Seeded ``seed + 2`` — its own rng stream next to the arrival stream
    (``seed``) and the query selector (``seed + 1``), so turning ingest
    on never perturbs the query side.  Insert vectors are dataset rows
    plus small Gaussian noise (new objects from the same distribution);
    delete targets are drawn from the *scheduled* live population —
    initial objects and earlier scheduled inserts — so deletes can hit
    objects still sitting in a delta table.
    """
    if workload.mode != "open":
        raise ValueError("workload_updates needs an open-loop workload spec")
    if workload.ingest_requests == 0:
        return []
    rng = np.random.default_rng(seed + 2)
    n = workload.ingest_requests
    gap_ns = NS_PER_S / workload.ingest_qps
    if workload.ingest_shape == "poisson":
        times = np.cumsum(rng.exponential(gap_ns, size=n))
    else:
        times = np.cumsum(np.full(n, gap_ns))
    initial_n = int(data.shape[0])
    noise_scale = 0.05 * float(data.std())
    live: list[int] = list(range(initial_n))
    next_scheduled = initial_n
    updates: list[UpdateArrival] = []
    for i in range(n):
        is_delete = bool(live) and float(rng.random()) < workload.delete_fraction
        if is_delete:
            slot = int(rng.integers(len(live)))
            target = live.pop(slot)
            updates.append(
                UpdateArrival(
                    update_id=i,
                    time_ns=float(times[i]),
                    kind="delete",
                    object_id=target,
                )
            )
        else:
            row = int(rng.integers(initial_n))
            vector = data[row] + rng.normal(scale=noise_scale, size=data.shape[1])
            updates.append(
                UpdateArrival(
                    update_id=i,
                    time_ns=float(times[i]),
                    kind="insert",
                    object_id=next_scheduled,
                    vector=np.ascontiguousarray(vector, dtype=np.float32),
                )
            )
            live.append(next_scheduled)
            next_scheduled += 1
    return updates


@dataclass(frozen=True)
class ScenarioIndex:
    """A built deployment, reusable across runs of compatible specs."""

    dataset: "Dataset"
    params: E2LSHParams
    sharded: ShardedIndex


def build_scenario_index(spec: ScenarioSpec) -> ScenarioIndex:
    """Synthesize the dataset and build the sharded index a spec calls for."""
    data = spec.data
    dataset = load_dataset(
        data.dataset, n=data.n, n_queries=data.pool_queries, seed=spec.seed
    )
    rho = data.rho if data.rho is not None else DATASET_SPECS[data.dataset].rho
    params = E2LSHParams(
        n=dataset.n, rho=rho, gamma=data.gamma, s_factor=data.s_factor
    )
    serving = spec.serving
    sharded = ShardedIndex.build(
        dataset.data,
        params,
        n_shards=serving.n_shards,
        scheme=serving.scheme,
        device=serving.device,
        devices_per_shard=serving.devices_per_shard,
        interface=serving.interface,
        seed=spec.seed,
        replicas=serving.replicas,
        faults=spec.faults.events,
    )
    return ScenarioIndex(dataset=dataset, params=params, sharded=sharded)


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario run: the report plus everything around it."""

    spec: ScenarioSpec
    report: ServiceReport
    index: ScenarioIndex
    #: The service that ran — exposes trace/metrics export and raw stats.
    service: QueryService

    @property
    def answers(self) -> dict[int, "QueryAnswer"]:
        """Merged answers keyed by query id."""
        return self.service.answers

    @property
    def records(self) -> list[QueryRecord]:
        """Per-query completion records in completion order."""
        return list(self.service.stats.records)

    @property
    def loop_profile(self) -> LoopProfile:
        """Wall-clock self-profile of the run's event loop."""
        return self.service.loop_profile

    @property
    def slo_met(self) -> bool:
        """Did the run's p99 stay within the spec's target?"""
        return self.report.p99_ns <= self.spec.target_p99_ms * NS_PER_MS

    def slo_dict(self) -> dict[str, Any]:
        """The per-scenario SLO report the ``scenarios`` CLI emits."""
        from dataclasses import asdict

        return {
            "schema": REPORT_SCHEMA,
            "scenario": self.spec.name,
            "spec": self.spec.to_dict(),
            "report": asdict(self.report),
            "slo": {
                "target_p99_ms": self.spec.target_p99_ms,
                "p99_ms": self.report.p99_ns / NS_PER_MS,
                "met": self.slo_met,
            },
        }


def run_scenario(
    spec: ScenarioSpec,
    *,
    tracer: Tracer | None = None,
    metrics_interval_ns: float | None = None,
    index: ScenarioIndex | None = None,
    vectorize: bool = True,
    profile_interval_ns: float | None = None,
) -> ScenarioResult:
    """Run one scenario end to end and report against its SLO.

    ``index`` lets callers reuse a built deployment across several runs
    (e.g. the routing-policy sweep in ``experiments/serving_replicas``);
    it must have been built from a spec with the same data, serving, and
    fault configuration — only the workload and SLO may differ.

    ``vectorize`` and ``profile_interval_ns`` are *execution* knobs, not
    part of the spec: they change how fast the simulator runs (and how
    its wall throughput is sampled), never the simulated outcome, so
    they do not participate in the spec's JSON round-trip.
    """
    if index is None:
        index = build_scenario_index(spec)
    service = QueryService(
        index.sharded,
        dispatch=spec.serving.dispatch_config(),
        routing=spec.serving.routing_config(),
        workers_per_shard=spec.serving.workers_per_shard,
        tracer=tracer,
        metrics_interval_ns=metrics_interval_ns,
        vectorize=vectorize,
        profile_interval_ns=profile_interval_ns,
    )
    pool = index.dataset.queries
    workload = spec.workload
    if workload.mode == "closed":
        closed = ClosedLoopWorkload(
            concurrency=workload.concurrency,
            n_queries=workload.requests,
            think_time_ns=workload.think_time_us * NS_PER_US,
            zipf_s=workload.zipf_s,
            seed=spec.seed,
        )
        report = service.run_closed_loop(pool, closed, k=spec.k)
    else:
        arrivals = workload_arrivals(workload, pool.shape[0], spec.seed)
        if workload.ingest_requests > 0:
            updates = workload_updates(workload, index.dataset.data, spec.seed)
            report = service.run_arrivals(
                pool,
                arrivals,
                k=spec.k,
                updates=updates,
                ingest=spec.serving.ingest_config(),
            )
        else:
            report = service.run_arrivals(pool, arrivals, k=spec.k)
    return ScenarioResult(spec=spec, report=report, index=index, service=service)
