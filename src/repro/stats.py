"""Operation counts and per-query statistics.

The reproduction replaces wall-clock measurement with *operation
counting*: every algorithm records how many scalar multiply-adds, random
memory fetches, index-structure probes, etc. it actually performed, and
:mod:`repro.analysis.machine_model` converts those counts into
nanoseconds calibrated against the paper's hardware.  This keeps the
compute/I-O cost *ratios* — which the paper's conclusions rest on —
while the absolute numbers come from real executions of real code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["OpCounts", "QueryStats"]


@dataclass
class OpCounts:
    """Primitive operation counters shared by all methods."""

    #: Scalar multiply-adds spent projecting points onto hash directions.
    projection_scalar_ops: int = 0
    #: Scalar operations spent computing Euclidean distances.
    distance_scalar_ops: int = 0
    #: Candidate objects fetched from DRAM for distance checking.
    candidate_fetches: int = 0
    #: Hash-table probes (in-memory tables / slot parses).
    bucket_lookups: int = 0
    #: R-tree nodes expanded (SRS).
    tree_node_visits: int = 0
    #: B+-tree leaf entries touched during window expansion (QALSH).
    btree_entry_scans: int = 0
    #: Priority-queue pushes/pops (SRS incremental NN).
    heap_ops: int = 0
    #: Search rounds (radius rungs / virtual-rehash rounds).
    rounds: int = 0

    def add(self, other: "OpCounts") -> None:
        """Accumulate ``other`` into ``self`` in place."""
        for name in _OP_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def scaled(self, factor: float) -> "OpCounts":
        """Return a copy with every counter multiplied by ``factor``."""
        return OpCounts(**{name: int(getattr(self, name) * factor) for name in _OP_FIELDS})


# Resolved once at import: ``dataclasses.fields`` is surprisingly hot when
# ``add`` runs per simulated Compute step on the query path.
_OP_FIELDS = tuple(f.name for f in fields(OpCounts))


@dataclass
class QueryStats:
    """What one query did, independent of any timing model."""

    ops: OpCounts = field(default_factory=OpCounts)
    #: Radius rungs actually searched (Table 4's per-query radii count).
    rungs_searched: int = 0
    #: (rung, table) probes whose bucket was non-empty.
    nonempty_buckets: int = 0
    #: Total (rung, table) probes issued.
    buckets_probed: int = 0
    #: Distinct candidate objects whose true distance was computed.
    candidates_checked: int = 0
    #: Bucket *blocks* that a finite-block-size index would have read
    #: (keyed by block size; filled by the I/O accounting helpers).
    bucket_blocks_read: int = 0
    #: I/O requests an E2LSHoS execution actually issued (0 in-memory).
    ios_issued: int = 0
    #: Number of entries *examined* in each non-empty bucket visited, in
    #: visit order (bucket size truncated by the remaining S budget).
    #: Drives the finite-block-size I/O analysis of Sec. 4.3 / Figure 3.
    bucket_sizes_examined: list[int] = field(default_factory=list)

    @property
    def n_io_infinite_block(self) -> float:
        """The paper's N_io,inf: one hash-table I/O plus one bucket I/O
        per non-empty bucket probed (empty buckets are skipped via the
        in-DRAM occupancy filter, Sec. 4.3)."""
        return 2.0 * self.nonempty_buckets

    def merge(self, other: "QueryStats") -> None:
        """Accumulate ``other`` into ``self`` (for averaging over queries)."""
        self.ops.add(other.ops)
        self.rungs_searched += other.rungs_searched
        self.nonempty_buckets += other.nonempty_buckets
        self.buckets_probed += other.buckets_probed
        self.candidates_checked += other.candidates_checked
        self.bucket_blocks_read += other.bucket_blocks_read
        self.ios_issued += other.ios_issued
        self.bucket_sizes_examined.extend(other.bucket_sizes_examined)
