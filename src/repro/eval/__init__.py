"""Accuracy evaluation: ground truth, overall ratio, knob tuning.

The paper compares methods at equal accuracy, measured by the *overall
ratio* (Sec. 3.2): the average over the top-k answers of the returned
distance divided by the exact i-th nearest distance.  1.0 is exact;
the paper's default target is 1.05.
"""

from repro.eval.ground_truth import GroundTruth, exact_knn
from repro.eval.ratio import overall_ratio, recall_at_k
from repro.eval.harness import MethodRun, TunedMethod, tune_to_ratio

__all__ = [
    "GroundTruth",
    "exact_knn",
    "overall_ratio",
    "recall_at_k",
    "MethodRun",
    "TunedMethod",
    "tune_to_ratio",
]
