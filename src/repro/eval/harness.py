"""Accuracy-target tuning harness (paper Sec. 3.3).

Every method has one accuracy knob: E2LSH tunes ``gamma`` (and through
it m), SRS tunes the candidate budget T', QALSH tunes its approximation
ratio c.  Experiments sweep the knob from cheap/inaccurate to
expensive/accurate, record a :class:`MethodRun` per setting, and select
the cheapest run meeting the overall-ratio target (default 1.05).  The
full sweep is kept because the requirement curves of Figures 3-8 are
functions of the accuracy level.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.query_stats import QueryStats

__all__ = ["MethodRun", "TunedMethod", "tune_to_ratio", "DEFAULT_TARGET_RATIO"]

#: The paper's default accuracy target.
DEFAULT_TARGET_RATIO = 1.05


@dataclass
class MethodRun:
    """Outcome of running one method at one knob setting."""

    knob: float
    overall_ratio: float
    #: Modeled mean query time (nanoseconds).
    mean_time_ns: float
    #: Per-query statistics (None for methods that do not report them).
    stats: list[QueryStats] | None = None
    #: Per-query answers (IDs/distances), method-specific payload.
    answers: list[Any] = field(default_factory=list)

    def meets(self, target_ratio: float) -> bool:
        """True when this run hits the accuracy target."""
        return self.overall_ratio <= target_ratio


@dataclass
class TunedMethod:
    """A full knob sweep plus the selected run."""

    name: str
    runs: list[MethodRun]
    selected: MethodRun
    target_ratio: float

    @property
    def achieved(self) -> bool:
        """True when the selected run actually met the target."""
        return self.selected.meets(self.target_ratio)


def tune_to_ratio(
    name: str,
    run_fn: Callable[[float], MethodRun],
    knobs: Sequence[float],
    target_ratio: float = DEFAULT_TARGET_RATIO,
    stop_early: bool = False,
) -> TunedMethod:
    """Sweep ``knobs`` (ordered cheap -> accurate) and select a run.

    The selected run is the first (cheapest) one meeting the target; if
    none does, the most accurate run is selected and ``achieved`` is
    False.  With ``stop_early`` the sweep stops at the first run that
    meets the target (used when only the operating point is needed);
    otherwise all knobs are evaluated so accuracy-vs-cost curves can be
    plotted.
    """
    if not knobs:
        raise ValueError("need at least one knob setting")
    runs: list[MethodRun] = []
    for knob in knobs:
        run = run_fn(float(knob))
        runs.append(run)
        if stop_early and run.meets(target_ratio):
            break
    meeting = [run for run in runs if run.meets(target_ratio)]
    if meeting:
        selected = min(meeting, key=lambda run: run.mean_time_ns)
    else:
        selected = min(runs, key=lambda run: run.overall_ratio)
    return TunedMethod(name=name, runs=runs, selected=selected, target_ratio=target_ratio)
