"""Exact k-nearest-neighbor ground truth via chunked brute force."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GroundTruth", "exact_knn"]


@dataclass(frozen=True, eq=False)
class GroundTruth:
    """Exact neighbors for one query set."""

    #: IDs of shape (n_queries, k), ascending distance.
    ids: np.ndarray
    #: Distances of shape (n_queries, k).
    distances: np.ndarray

    @property
    def k(self) -> int:
        """Neighbors per query."""
        return self.ids.shape[1]


def exact_knn(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    chunk_rows: int = 65_536,
) -> GroundTruth:
    """Exact top-k by chunked brute-force distance computation.

    Chunking over database rows keeps the distance matrix within a few
    hundred MB even for the largest sweeps.
    """
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    n, q = data.shape[0], queries.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    best_ids = np.zeros((q, 0), dtype=np.int64)
    best_dists = np.zeros((q, 0), dtype=np.float64)
    query_sq = (queries**2).sum(axis=1)[:, None]
    for start in range(0, n, chunk_rows):
        chunk = data[start : start + chunk_rows]
        sq = query_sq + (chunk**2).sum(axis=1)[None, :] - 2.0 * (queries @ chunk.T)
        dists = np.sqrt(np.maximum(sq, 0.0))
        take = min(k, chunk.shape[0])
        part = np.argpartition(dists, take - 1, axis=1)[:, :take]
        rows = np.arange(q)[:, None]
        best_ids = np.concatenate([best_ids, part + start], axis=1)
        best_dists = np.concatenate([best_dists, dists[rows, part]], axis=1)
        if best_ids.shape[1] > k:
            keep = np.argpartition(best_dists, k - 1, axis=1)[:, :k]
            best_ids = best_ids[rows, keep]
            best_dists = best_dists[rows, keep]

    order = np.argsort(best_dists, axis=1, kind="stable")
    rows = np.arange(q)[:, None]
    return GroundTruth(ids=best_ids[rows, order], distances=best_dists[rows, order])
