"""Overall ratio and recall metrics (paper Sec. 3.2)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.eval.ground_truth import GroundTruth

__all__ = ["overall_ratio", "recall_at_k", "MISSING_PENALTY_RATIO"]

#: Ratio charged for each neighbor a method failed to return at all;
#: large enough that incomplete answers never pass an accuracy target.
MISSING_PENALTY_RATIO = 10.0


def overall_ratio(
    answer_distances: Sequence[np.ndarray],
    truth: GroundTruth,
    k: int,
) -> float:
    """Mean over queries of ``(1/k) sum_i d_i / d*_i``.

    ``answer_distances[j]`` holds the returned distances of query ``j``
    in ascending order (possibly fewer than k).  Exact answers give 1.0.
    """
    if len(answer_distances) != truth.ids.shape[0]:
        raise ValueError(
            f"{len(answer_distances)} answers for {truth.ids.shape[0]} queries"
        )
    if not 1 <= k <= truth.k:
        raise ValueError(f"k must be in [1, {truth.k}], got {k}")
    per_query = []
    for answer, exact in zip(answer_distances, truth.distances):
        answer = np.asarray(answer, dtype=np.float64)[:k]
        exact_k = np.maximum(exact[:k], 1e-12)
        ratios = np.full(k, MISSING_PENALTY_RATIO)
        found = answer.size
        if found:
            ratios[:found] = np.maximum(answer / exact_k[:found], 1.0)
        per_query.append(ratios.mean())
    return float(np.mean(per_query))


def recall_at_k(
    answer_ids: Sequence[np.ndarray],
    truth: GroundTruth,
    k: int,
) -> float:
    """Fraction of exact top-k IDs recovered, averaged over queries."""
    if not 1 <= k <= truth.k:
        raise ValueError(f"k must be in [1, {truth.k}], got {k}")
    scores = []
    for answer, exact in zip(answer_ids, truth.ids):
        exact_set = set(exact[:k].tolist())
        hit = sum(1 for obj in np.asarray(answer)[:k].tolist() if obj in exact_set)
        scores.append(hit / k)
    return float(np.mean(scores))
