"""DET004 — no internal use of deprecated compatibility shims."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["DeprecatedShimRule", "DEPRECATED_SYMBOLS"]

#: Deprecated symbol -> the replacement to point callers at.
DEPRECATED_SYMBOLS: dict[str, str] = {
    "run_mmap_sync": "E2LSHoSIndex.run(queries, mode='mmap_sync', cache=...)",
}


def _is_flat_report_call(node: ast.Call) -> bool:
    """Detect the removed flat per-shard ``ServiceStats.report`` form.

    The current contract passes one *list of per-replica results per
    shard* (a nested list); the legacy flat form passed one result per
    shard.  Statically we flag ``<x>.report([...])`` whose first
    argument is a list comprehension producing non-list elements — the
    shape every historical flat call site had.
    """
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "report"):
        return False
    if not node.args:
        return False
    arg = node.args[0]
    if not isinstance(arg, ast.ListComp):
        return False
    return not isinstance(arg.elt, (ast.List, ast.ListComp))


@register
class DeprecatedShimRule(Rule):
    """Internal code must not lean on deprecated compatibility shims.

    Shims exist to give *external* callers a deprecation cycle; internal
    call sites that keep using them hide the migration debt, keep dead
    code paths warm, and — for simulation entry points like
    ``run_mmap_sync`` — bypass the batch-first API whose scalar/vector
    byte-equivalence is what regression tests actually pin.  The flat
    per-shard ``ServiceStats.report`` form has been removed outright;
    pass one list of per-replica ``EngineResult`` per shard.
    """

    id = "DET004"
    title = "use of a deprecated shim (run_mmap_sync / flat report form)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node.attr in DEPRECATED_SYMBOLS:
                    yield self._symbol_finding(module, node, node.attr)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in DEPRECATED_SYMBOLS:
                    yield self._symbol_finding(module, node, node.id)
            elif isinstance(node, ast.Call) and _is_flat_report_call(node):
                yield self.finding(
                    module,
                    node,
                    "flat per-shard ServiceStats.report form (one result per "
                    "shard) is removed; pass one list of per-replica results "
                    "per shard",
                )

    def _symbol_finding(self, module: ModuleContext, node: ast.AST, name: str) -> Finding:
        return self.finding(
            module,
            node,
            f"deprecated shim {name}; use {DEPRECATED_SYMBOLS[name]}",
        )
