"""API001 — every module-level public symbol belongs to ``__all__``."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["PublicApiRule"]


def _statement_lists(body: list[ast.stmt]) -> Iterator[list[ast.stmt]]:
    """Module body plus conditional/try blocks at module level.

    ``if TYPE_CHECKING:`` imports and version-gated definitions still
    bind module attributes, so they count toward the public surface.
    """
    yield body
    for stmt in body:
        if isinstance(stmt, ast.If):
            yield from _statement_lists(stmt.body)
            yield from _statement_lists(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _statement_lists(stmt.body)
            yield from _statement_lists(stmt.orelse)
            yield from _statement_lists(stmt.finalbody)
            for handler in stmt.handlers:
                yield from _statement_lists(handler.body)


@register
class PublicApiRule(Rule):
    """The curated ``__all__`` is the module's public API — keep it true.

    Star imports, the PEP 562 lazy loaders, and the public-API
    regression tests all read ``__all__``; a public def/class/constant
    missing from it is an accidental export whose availability is
    untested, and an ``__all__`` entry with no matching binding breaks
    ``from module import *`` and every name-resolution test.  Modules
    that define public symbols must carry a curated ``__all__``
    (prefix helpers with ``_`` to keep them out of the surface).
    """

    id = "API001"
    title = "public symbol missing from __all__ (or stale __all__ entry)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        exported: list[str] | None = None
        exported_node: ast.AST | None = None
        defined: dict[str, int] = {}  # public definitions -> first line
        bound: set[str] = set()  # every module-level binding, incl. imports

        for body in _statement_lists(module.tree.body):
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(stmt.name)
                    if not stmt.name.startswith("_"):
                        defined.setdefault(stmt.name, stmt.lineno)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        for name_node in self._target_names(target):
                            name = name_node.id
                            if name == "__all__":
                                exported = self._string_list(stmt.value)
                                exported_node = stmt
                                continue
                            bound.add(name)
                            if not name.startswith("_"):
                                defined.setdefault(name, stmt.lineno)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    if isinstance(stmt.target, ast.Name):
                        name = stmt.target.id
                        bound.add(name)
                        if not name.startswith("_"):
                            defined.setdefault(name, stmt.lineno)
                elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    for alias in stmt.names:
                        if alias.name == "*":
                            continue
                        bound.add(alias.asname or alias.name.split(".", 1)[0])

        if exported is None:
            if defined:
                yield Finding(
                    path=module.rel,
                    line=min(defined.values()),
                    col=0,
                    rule=self.id,
                    message=(
                        f"module defines {len(defined)} public symbol(s) but "
                        "no curated __all__"
                    ),
                )
            return
        exported_set = set(exported)
        for name, line in sorted(defined.items(), key=lambda item: item[1]):
            if name not in exported_set:
                yield Finding(
                    path=module.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=f"public symbol {name!r} is missing from __all__ "
                    "(export it or prefix it with '_')",
                )
        assert exported_node is not None
        if "__getattr__" in bound:
            # PEP 562 lazy loader: entries resolve at attribute-access
            # time; the runtime public-API tests cover name resolution.
            return
        for name in exported:
            if name not in bound:
                yield self.finding(
                    module,
                    exported_node,
                    f"__all__ exports {name!r} but the module never binds it",
                )

    @staticmethod
    def _target_names(target: ast.expr) -> Iterator[ast.Name]:
        if isinstance(target, ast.Name):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from PublicApiRule._target_names(elt)

    @staticmethod
    def _string_list(value: ast.expr) -> list[str]:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return []
        return [
            elt.value
            for elt in value.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]
