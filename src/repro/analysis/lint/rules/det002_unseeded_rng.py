"""DET002 — no global-state randomness; thread seeded Generators."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.base import Finding, ModuleContext, Rule, dotted_name, register

__all__ = ["UnseededRngRule", "SEEDED_FACTORIES"]

#: ``numpy.random`` attributes that *construct* seeded state rather
#: than mutating or reading the hidden global stream.
SEEDED_FACTORIES = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: ``random``-module attributes that construct an independent instance
#: (seedable) instead of driving the module-level singleton.
_STDLIB_FACTORIES = frozenset({"Random"})


@register
class UnseededRngRule(Rule):
    """Randomness must flow from an explicitly seeded ``Generator``.

    Module-level ``random.*`` and ``np.random.*`` calls draw from
    hidden global streams: any import-order change, library upgrade, or
    stray call elsewhere silently shifts every subsequent draw, and two
    components sharing the stream correlate.  Every stochastic
    component must instead thread a ``numpy.random.Generator`` derived
    from an explicit ``(seed, label)`` pair — see
    ``repro.utils.rng.rng_for`` / ``spawn_rngs``.  Constructing seeded
    state (``default_rng``, ``SeedSequence``, bit generators) is fine;
    driving the global singleton is not.
    """

    id = "DET002"
    title = "unseeded global-state randomness instead of a threaded Generator"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.aliases)
            if resolved is None:
                continue
            if resolved.startswith("numpy.random."):
                attr = resolved.split(".")[2]
                if attr not in SEEDED_FACTORIES:
                    yield self.finding(
                        module,
                        node,
                        f"global-state call {resolved}(); construct a seeded "
                        "Generator (repro.utils.rng.rng_for) and thread it instead",
                    )
            elif resolved.startswith("random."):
                attr = resolved.split(".")[1]
                if attr not in _STDLIB_FACTORIES:
                    yield self.finding(
                        module,
                        node,
                        f"stdlib global-RNG call {resolved}(); use a seeded "
                        "numpy Generator (repro.utils.rng.rng_for) instead",
                    )
