"""DET001 — no wall-clock reads in simulation-path code."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.base import Finding, ModuleContext, Rule, dotted_name, register

__all__ = ["WallClockRule", "WALL_CALLS", "WALL_ONLY_MODULES", "WALL_ONLY_PREFIXES"]

#: Fully resolved callables that read the host's clock.
WALL_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules (relative to the lint root) that legitimately measure wall
#: time; everything they export is documented as non-deterministic and
#: kept out of traces and reports.
WALL_ONLY_MODULES = frozenset({"obs/selfprof.py"})

#: Whole subtrees that are wall-clock territory by design (only
#: relevant when linting a tree wider than ``src/repro``).
WALL_ONLY_PREFIXES = ("benchmarks/",)


@register
class WallClockRule(Rule):
    """Simulation code must never read the host clock.

    Every latency in a run is *simulated* (``time_ns`` floats advanced
    by the device/interface models); a ``time.time()`` or
    ``datetime.now()`` on the sim path silently couples results to the
    machine the run happens on and breaks the one-seed -> byte-identical
    ``ServiceReport`` contract.  Wall time is allowed only in the
    allowlisted wall-only modules (the event-loop self-profiler, the
    benchmark harness), whose figures are documented as
    non-deterministic and excluded from traces and reports.
    """

    id = "DET001"
    title = "wall-clock call outside the wall-only module allowlist"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.rel in WALL_ONLY_MODULES or module.rel.startswith(WALL_ONLY_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.aliases)
            if resolved in WALL_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call {resolved}() in simulation-path code; "
                    "simulated time must come from the event loop "
                    "(wall-only modules: " + ", ".join(sorted(WALL_ONLY_MODULES)) + ")",
                )
