"""DET003 — no iteration over unordered collections on the sim path."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["UnorderedIterationRule", "ORDER_SENSITIVE_PREFIXES"]

#: Subtrees whose iteration order can feed the event loop (and thereby
#: the one-seed -> byte-identical report contract).
ORDER_SENSITIVE_PREFIXES = ("core/", "serving/", "storage/")


def _is_literal_constant_set(node: ast.expr) -> bool:
    return isinstance(node, ast.Set) and all(
        isinstance(elt, ast.Constant) for elt in node.elts
    )


def _unordered_kind(node: ast.expr, bound: list[dict[str, str]]) -> str | None:
    """Classify an iterable expression as unordered, or return ``None``.

    Matches set displays/comprehensions of non-literal values,
    ``set(...)`` / ``frozenset(...)`` constructor calls, ``.keys()``
    calls, and names locally bound to any of the above.  A literal set
    of constants is tolerated (its contents are fixed at author time
    and typically feeds membership tests pulled into a loop).
    """
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Set) and not _is_literal_constant_set(node):
        return "set display"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...) call"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys() view"
    if isinstance(node, ast.Name):
        for scope in reversed(bound):
            if node.id in scope:
                return scope[node.id]
    return None


@register
class UnorderedIterationRule(Rule):
    """Event-loop inputs must not inherit ``set``/``dict.keys`` order.

    In ``core/``, ``serving/``, and ``storage/`` the order work is
    *submitted* in is the order the simulated clock advances in: a
    ``for x in some_set`` whose order shifts with hash seeding or
    insertion history reorders engine submissions, heap pushes, and
    candidate merges — nondeterminism that end-to-end byte-equivalence
    tests only catch after the fact.  Wrap the iterable in
    ``sorted(...)`` (with an explicit key when elements aren't
    naturally ordered) or keep an explicitly ordered container.
    """

    id = "DET003"
    title = "iteration over an unordered set/dict-keys collection"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.rel.startswith(ORDER_SENSITIVE_PREFIXES):
            return
        yield from self._walk(module, module.tree.body, [{}])

    def _walk(
        self,
        module: ModuleContext,
        body: list[ast.stmt],
        bound: list[dict[str, str]],
    ) -> Iterator[Finding]:
        """Visit one statement list, tracking set-valued name bindings."""
        for stmt in body:
            yield from self._visit_stmt(module, stmt, bound)

    def _visit_stmt(
        self,
        module: ModuleContext,
        stmt: ast.stmt,
        bound: list[dict[str, str]],
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.append({})
            yield from self._walk(module, stmt.body, bound)
            bound.pop()
            return
        if isinstance(stmt, ast.ClassDef):
            yield from self._walk(module, stmt.body, bound)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                yield from self._check_expr(module, value, bound)
                kind = _unordered_kind(value, bound)
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if kind is not None:
                            bound[-1][target.id] = kind
                        else:
                            # Rebinding to an ordered value clears the taint.
                            bound[-1].pop(target.id, None)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            kind = _unordered_kind(stmt.iter, bound)
            if kind is not None:
                yield self._iter_finding(module, stmt.iter, kind)
            else:
                yield from self._check_expr(module, stmt.iter, bound)
            yield from self._walk(module, stmt.body, bound)
            yield from self._walk(module, stmt.orelse, bound)
            return
        # Generic statement: check embedded expressions, then recurse
        # into any nested statement lists (if/while/with/try bodies).
        for field_value in ast.iter_fields(stmt):
            _, value = field_value
            if isinstance(value, ast.expr):
                yield from self._check_expr(module, value, bound)
            elif isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    yield from self._walk(module, value, bound)
                else:
                    for item in value:
                        if isinstance(item, ast.expr):
                            yield from self._check_expr(module, item, bound)
                        elif isinstance(item, ast.excepthandler):
                            yield from self._walk(module, item.body, bound)
                        elif isinstance(item, (ast.withitem,)):
                            yield from self._check_expr(
                                module, item.context_expr, bound
                            )
                        elif isinstance(item, ast.match_case):
                            yield from self._walk(module, item.body, bound)

    def _check_expr(
        self,
        module: ModuleContext,
        expr: ast.expr,
        bound: list[dict[str, str]],
    ) -> Iterator[Finding]:
        """Flag unordered iterables driving comprehension generators."""
        for node in ast.walk(expr):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    kind = _unordered_kind(generator.iter, bound)
                    if kind is not None:
                        yield self._iter_finding(module, generator.iter, kind)

    def _iter_finding(self, module: ModuleContext, node: ast.expr, kind: str) -> Finding:
        return self.finding(
            module,
            node,
            f"iteration over a {kind} feeds unordered elements into "
            "order-sensitive code; wrap it in sorted(...) or use an "
            "explicitly ordered container",
        )
