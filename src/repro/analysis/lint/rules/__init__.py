"""The ``repro lint`` rule set.

Importing this package registers every rule with
:data:`repro.analysis.lint.base.REGISTRY`.  Each rule module holds one
rule class plus the constants (allowlists, symbol tables) its contract
is written in terms of, so the contract is reviewable where the check
lives.
"""

from repro.analysis.lint.rules.api001_public_all import PublicApiRule
from repro.analysis.lint.rules.det001_wall_clock import WallClockRule
from repro.analysis.lint.rules.det002_unseeded_rng import UnseededRngRule
from repro.analysis.lint.rules.det003_unordered_iter import UnorderedIterationRule
from repro.analysis.lint.rules.det004_deprecated import DeprecatedShimRule
from repro.analysis.lint.rules.sim001_tie_order import HeapTieOrderRule

__all__ = [
    "PublicApiRule",
    "WallClockRule",
    "UnseededRngRule",
    "UnorderedIterationRule",
    "DeprecatedShimRule",
    "HeapTieOrderRule",
]
