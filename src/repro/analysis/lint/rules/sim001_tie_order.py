"""SIM001 — serving heaps must carry the event-class tie-order tag."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.base import Finding, ModuleContext, Rule, dotted_name, register

__all__ = ["HeapTieOrderRule", "EVENT_TAG_PREFIX"]

#: Named constants from :mod:`repro.serving.events` tagging which
#: contract class a heap entry belongs to.
EVENT_TAG_PREFIX = "EVENT_"

#: heap-mutating callables -> positional index of the pushed item.
_PUSH_CALLS: dict[str, int] = {
    "heapq.heappush": 1,
    "heapq.heapreplace": 1,
    "heapq.heappushpop": 1,
}

#: Subtree where the event-loop tie-order contract applies.
_SERVING_PREFIX = "serving/"


def _carries_tag(item: ast.expr) -> bool:
    if not isinstance(item, ast.Tuple) or len(item.elts) < 2:
        return False
    tag = item.elts[1]
    if isinstance(tag, ast.Name):
        return tag.id.startswith(EVENT_TAG_PREFIX)
    if isinstance(tag, ast.Attribute):
        return tag.attr.startswith(EVENT_TAG_PREFIX)
    return False


@register
class HeapTieOrderRule(Rule):
    """Every serving-side heap entry states its event class, by name.

    The QueryService loop breaks same-timestamp ties in a pinned order
    — completions -> flushes -> hedges -> arrivals — and that order is
    part of the determinism contract (reordering changes which
    micro-batch a duplicate joins, hence the byte-identical-report
    guarantee).  A raw ``heapq.heappush(heap, (t, payload...))`` leaves
    the tie semantics to whatever payload happens to compare at index
    1; instead every pushed tuple must carry a named
    ``repro.serving.events.EVENT_*`` tag as its second element, so the
    entry's contract class is explicit and greppable at every push
    site.
    """

    id = "SIM001"
    title = "heap push without an EVENT_* tie-order tag at tuple index 1"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.rel.startswith(_SERVING_PREFIX):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, module.aliases)
            if resolved not in _PUSH_CALLS:
                continue
            item_index = _PUSH_CALLS[resolved]
            if len(node.args) <= item_index:
                continue  # item passed by keyword or malformed; runtime's problem
            item = node.args[item_index]
            if not _carries_tag(item):
                yield self.finding(
                    module,
                    item,
                    f"{resolved} item must be a tuple carrying a "
                    "repro.serving.events.EVENT_* tie-order tag as its "
                    "second element",
                )
