"""``repro lint`` — the AST determinism & simulation-contract checker.

Every guarantee this reproduction ships (one seed -> byte-identical
``ServiceReport``, scalar-vs-vectorized byte equivalence,
observation-free tracing) rests on source-level invariants: no wall
clock on the sim path, no global-state RNG, no unordered iteration
feeding the event loop, the pinned completions -> flushes -> hedges ->
arrivals tie order.  End-to-end regression tests catch violations after
they are written; this package encodes the contract itself as AST rules
so a violation fails ``repro lint`` (and CI) at the line that
introduces it.

- :mod:`repro.analysis.lint.base` — ``Finding``/``Rule``/registry.
- :mod:`repro.analysis.lint.rules` — the rule set (DET001, DET002,
  DET003, DET004, API001, SIM001).
- :mod:`repro.analysis.lint.engine` — file walking, inline
  ``# repro: allow[RULE-ID]`` suppressions, deterministic ordering.
- :mod:`repro.analysis.lint.reporting` — text and ``repro-lint/1``
  JSON output.
"""

from repro.analysis.lint.base import REGISTRY, Finding, ModuleContext, Rule, all_rules
from repro.analysis.lint.engine import LintResult, collect_suppressions, run_lint
from repro.analysis.lint.reporting import JSON_SCHEMA, describe_rules, to_json, to_text

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "REGISTRY",
    "all_rules",
    "LintResult",
    "run_lint",
    "collect_suppressions",
    "JSON_SCHEMA",
    "describe_rules",
    "to_json",
    "to_text",
]
