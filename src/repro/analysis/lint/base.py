"""Shared infrastructure for the ``repro lint`` static checker.

A *rule* is a small class with an id (``DET001``), a one-line title,
and a docstring stating the contract it enforces.  Rules receive one
parsed module at a time (:class:`ModuleContext`) and yield
:class:`Finding` objects; the engine (:mod:`repro.analysis.lint.engine`)
handles file discovery, inline ``# repro: allow[RULE-ID]`` suppressions,
and deterministic ordering of the output.

Rules are registered by id via :func:`register`; the registry is the
single source of truth for ``repro lint --list-rules`` and for
validating suppression comments.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from typing import ClassVar

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "REGISTRY",
    "register",
    "all_rules",
    "import_aliases",
    "dotted_name",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file:line:col."""

    #: Path relative to the lint root, posix separators.
    path: str
    #: 1-indexed source line.
    line: int
    #: 0-indexed column (ast convention).
    col: int
    #: Rule id, e.g. ``DET001``.
    rule: str
    #: Human-readable statement of the violation.
    message: str

    def as_dict(self) -> dict[str, object]:
        """Machine-readable form (key order is the JSON schema's)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """One parsed source file, as rules see it."""

    #: Posix path relative to the lint root (``serving/service.py``).
    rel: str
    tree: ast.Module
    source: str

    def __post_init__(self) -> None:
        self._aliases: dict[str, str] | None = None

    @property
    def aliases(self) -> dict[str, str]:
        """Lazily computed import-alias map (see :func:`import_aliases`)."""
        if self._aliases is None:
            self._aliases = import_aliases(self.tree)
        return self._aliases


class Rule:
    """Base class: subclass, set ``id``/``title``, implement ``check``.

    The class docstring is the rule's *rationale* — it is what
    ``repro lint --list-rules`` prints — so it should state the
    simulation contract the rule protects, not implementation detail.
    """

    id: ClassVar[str]
    title: ClassVar[str]

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


#: All registered rules, keyed by id.
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY` (ids unique)."""
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, ordered by id."""
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map locally bound names to the dotted origin they import.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    perf_counter as pc`` binds ``pc -> time.perf_counter``; a plain
    ``import numpy.random`` binds the root package name (``numpy``),
    matching runtime behaviour.  Relative imports keep their leading
    dots so they never collide with stdlib/third-party names.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                origin = f"{module}.{name.name}" if module else name.name
                aliases[name.asname or name.name] = origin
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str] | None = None) -> str | None:
    """Resolve an ``a.b.c`` attribute chain to a dotted string.

    The chain's base name is substituted through ``aliases`` so that
    ``np.random.rand`` resolves to ``numpy.random.rand`` and a
    ``from``-imported ``perf_counter`` resolves to
    ``time.perf_counter``.  Non-name bases (calls, subscripts) return
    ``None`` — rules treat those as unresolvable rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = node.id
    if aliases:
        base = aliases.get(base, base)
    parts.append(base)
    return ".".join(reversed(parts))
