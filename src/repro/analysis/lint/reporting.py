"""Human- and machine-readable output for ``repro lint``.

The JSON form is a stable schema (``repro-lint/1``) so CI can diff
findings across runs; adding keys is allowed, renaming or removing
them is a schema bump.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint.base import REGISTRY
from repro.analysis.lint.engine import LintResult

__all__ = ["JSON_SCHEMA", "to_json", "to_text", "describe_rules"]

#: Schema tag of the ``--format json`` payload.
JSON_SCHEMA = "repro-lint/1"


def to_json(result: LintResult) -> dict:
    """Machine-readable payload (stable key set, deterministic order)."""
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": JSON_SCHEMA,
        "root": result.root,
        "rules": list(result.rules),
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "counts": counts,
        "suppressed_count": len(result.suppressed),
    }


def to_text(result: LintResult) -> str:
    """``path:line:col: RULE message`` lines plus a one-line summary."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.rule} {finding.message}"
        for finding in result.findings
    ]
    lines.append(
        f"checked {result.files_checked} file(s): "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def describe_rules() -> str:
    """The registry, one rule per block: id, title, and rationale."""
    blocks = []
    for rule_id in sorted(REGISTRY):
        cls = REGISTRY[rule_id]
        rationale = " ".join((cls.__doc__ or "").split())
        body = textwrap.indent(textwrap.fill(rationale, width=76), "    ")
        blocks.append(f"{rule_id}  {cls.title}\n{body}")
    blocks.append(
        "Suppress a finding on its own line with '# repro: allow[RULE-ID]' "
        "(comma-separate several ids); unknown ids are reported as SUP001."
    )
    return "\n\n".join(blocks)
