"""File discovery, suppression handling, and rule execution.

The engine walks a directory tree of Python sources, parses each file
once, runs every (selected) rule over the AST, and filters findings
through inline suppressions::

    risky_call()  # repro: allow[DET001]

A suppression names the rule id(s) it silences (comma-separated) and
applies to findings *on its own line* — blanket or file-wide waivers
are deliberately unsupported, so every exception stays attached to the
code it excuses.  Suppressions naming a rule id the registry doesn't
know are themselves reported (``SUP001``): a typoed allow comment must
not silently waive nothing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

# Importing the rules package registers the rule set.
import repro.analysis.lint.rules  # noqa: F401  (import-for-registration)
from repro.analysis.lint.base import REGISTRY, Finding, ModuleContext, Rule, all_rules

__all__ = ["LintResult", "run_lint", "collect_suppressions", "SUPPRESS_RE"]

#: Inline suppression syntax: ``# repro: allow[DET001]`` or
#: ``# repro: allow[DET001, SIM001]``.
SUPPRESS_RE = re.compile(r"repro:\s*allow\[([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\]")

#: Engine-level finding ids (not AST rules, so not in the registry).
_UNKNOWN_SUPPRESSION = "SUP001"
_PARSE_ERROR = "PARSE001"


@dataclass
class LintResult:
    """Outcome of one lint run (findings already sorted and filtered)."""

    #: Absolute root the run walked.
    root: str
    #: Ids of the rules that ran, sorted.
    rules: list[str]
    #: Files parsed (``__pycache__`` excluded).
    files_checked: int = 0
    #: Surviving findings, sorted by (path, line, col, rule).
    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro: allow[...]``.
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed on that line.

    Comments are found with :mod:`tokenize` rather than a per-line
    regex so a ``repro: allow[...]`` inside a string literal never
    counts as a waiver.
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            allowed.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - unparsable file
        pass
    return allowed


def _select_rules(rule_ids: Sequence[str] | None) -> list[Rule]:
    if rule_ids is None:
        return all_rules()
    unknown = sorted(set(rule_ids) - set(REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    return [REGISTRY[rule_id]() for rule_id in sorted(set(rule_ids))]


def _lint_file(
    path: Path, rel: str, rules: Sequence[Rule], result: LintResult
) -> None:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        result.findings.append(
            Finding(
                path=rel,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule=_PARSE_ERROR,
                message=f"file does not parse: {error.msg}",
            )
        )
        return
    allowed = collect_suppressions(source)
    module = ModuleContext(rel=rel, tree=tree, source=source)
    for rule in rules:
        for finding in rule.check(module):
            if finding.rule in allowed.get(finding.line, ()):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    for line in sorted(allowed):
        for rule_id in sorted(allowed[line] - set(REGISTRY)):
            result.findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=0,
                    rule=_UNKNOWN_SUPPRESSION,
                    message=f"suppression names unknown rule {rule_id!r}",
                )
            )


def run_lint(root: Path | str, rule_ids: Sequence[str] | None = None) -> LintResult:
    """Lint every ``*.py`` under ``root`` with the (selected) rule set.

    ``root`` is treated as the package root: rule scoping (DET001's
    wall-only allowlist, DET003/SIM001's subtree prefixes) matches
    paths relative to it, e.g. ``serving/service.py``.
    """
    root_path = Path(root).resolve()
    if not root_path.is_dir():
        raise ValueError(f"lint root {root_path} is not a directory")
    rules = _select_rules(rule_ids)
    result = LintResult(root=str(root_path), rules=[rule.id for rule in rules])
    files = sorted(
        path
        for path in root_path.rglob("*.py")
        if "__pycache__" not in path.parts
    )
    for path in files:
        rel = path.relative_to(root_path).as_posix()
        _lint_file(path, rel, rules, result)
        result.files_checked += 1
    result.findings.sort()
    result.suppressed.sort()
    return result
