"""Query-time models and storage requirements (paper Eqs. 6-16).

Synchronous external memory execution (Figure 1(A), Eq. 6)::

    T_sync = T_compute + N_io * (T_request + T_read)

Asynchronous execution (Figure 1(B), Eq. 7)::

    T_async = max(T_compute + N_io * T_request,  N_io * T_read)

Solving ``T <= T_target`` for the storage-side unknowns yields the
requirements the paper plots in Figures 4-8:

- Eq. 9  (sync):   1/T_read   >= N_io / (T_target - T_compute)
- Eq. 10 (async):  1/T_request >= N_io / (T_target - T_compute)
- Eq. 11 (async):  1/T_read   >= N_io / T_target

All times are nanoseconds; rates are converted to IOPS (per second).
"""

from __future__ import annotations

import math

from repro.utils.units import NS_PER_S

__all__ = [
    "sync_query_time_ns",
    "async_query_time_ns",
    "required_iops",
    "required_request_rate",
    "required_sync_iops",
]


def sync_query_time_ns(
    compute_ns: float, n_io: float, request_ns: float, read_ns: float
) -> float:
    """Eq. 6: synchronous query time."""
    _check(compute_ns, n_io, request_ns, read_ns)
    return compute_ns + n_io * (request_ns + read_ns)


def async_query_time_ns(
    compute_ns: float, n_io: float, request_ns: float, read_ns: float
) -> float:
    """Eq. 7: asynchronous query time (CPU and storage fully overlapped)."""
    _check(compute_ns, n_io, request_ns, read_ns)
    return max(compute_ns + n_io * request_ns, n_io * read_ns)


def required_iops(n_io: float, target_ns: float) -> float:
    """Eq. 11: random-read IOPS needed to finish N_io reads in T_target."""
    if n_io < 0:
        raise ValueError(f"n_io must be non-negative, got {n_io}")
    if target_ns <= 0:
        raise ValueError(f"target_ns must be positive, got {target_ns}")
    return n_io * NS_PER_S / target_ns


def required_request_rate(n_io: float, target_ns: float, compute_ns: float) -> float:
    """Eq. 10: request rate (1/T_request) one core must sustain.

    Returns ``inf`` when the compute time alone exceeds the target —
    no interface is fast enough in that regime.
    """
    if n_io < 0 or compute_ns < 0:
        raise ValueError("n_io and compute_ns must be non-negative")
    if target_ns <= 0:
        raise ValueError(f"target_ns must be positive, got {target_ns}")
    headroom = target_ns - compute_ns
    if headroom <= 0:
        return math.inf
    return n_io * NS_PER_S / headroom


def required_sync_iops(n_io: float, target_ns: float, compute_ns: float) -> float:
    """Eq. 9: IOPS requirement for the *synchronous* adaptation."""
    return required_request_rate(n_io, target_ns, compute_ns)


def _check(compute_ns: float, n_io: float, request_ns: float, read_ns: float) -> None:
    if compute_ns < 0 or n_io < 0 or request_ns < 0 or read_ns < 0:
        raise ValueError("cost-model inputs must be non-negative")
