"""The paper's Sec. 4 analysis framework.

- :mod:`repro.analysis.machine_model` converts operation counts into
  nanoseconds (the substitute for the paper's Xeon + AVX-512 testbed),
- :mod:`repro.analysis.cost_model` implements the query-time models of
  Eqs. 6-7 (synchronous / asynchronous E2LSHoS),
- :mod:`repro.analysis.requirements` derives the storage performance
  requirements of Eqs. 8-16 (the curves of Figures 4-8).
"""

from repro.analysis.machine_model import MachineModel
from repro.analysis.cost_model import (
    async_query_time_ns,
    required_iops,
    required_request_rate,
    sync_query_time_ns,
)
from repro.analysis.requirements import RequirementCurve, RequirementPoint, requirement_curve

__all__ = [
    "MachineModel",
    "sync_query_time_ns",
    "async_query_time_ns",
    "required_iops",
    "required_request_rate",
    "RequirementCurve",
    "RequirementPoint",
    "requirement_curve",
]
