"""Storage requirement curves (paper Sec. 4.3-4.5, Figures 3-8).

The paper derives these curves by *running in-memory E2LSH* and counting
what an external-memory execution would have had to read: for every
non-empty bucket probed, one hash-table I/O plus ``ceil(examined /
entries_per_block)`` bucket-block I/Os.  The helpers here turn the
per-query :class:`~repro.core.query_stats.QueryStats` records into
average I/O counts for any block size, then into the IOPS /
request-rate requirements of Eqs. 9-16.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.analysis.cost_model import required_iops, required_request_rate
from repro.stats import QueryStats
from repro.layout.bucket import entries_per_block
from repro.utils.units import format_iops, format_time

__all__ = [
    "average_n_io",
    "INMEMORY_COMPUTE_FRACTION",
    "DEFAULT_UTILIZATION_CAP",
    "RequirementPoint",
    "RequirementCurve",
    "requirement_curve",
    "inmemory_cpu_requirement_scale",
    "CapacityPlan",
    "plan_capacity",
    "plan_capacity_for_scenario",
]

#: Sec. 4.5: in-memory E2LSH spends ~10% of its time on footprint stalls,
#: so T_compute = 0.9 * T_E2LSH and Eq. 16 scales the request-rate
#: requirement by 1 / (1 - 0.9) = 10.
INMEMORY_COMPUTE_FRACTION = 0.9


def average_n_io(stats: Iterable[QueryStats], block_size: int | None = 512) -> float:
    """Average I/Os per query for a given read block size.

    ``block_size=None`` reproduces the paper's ``N_io,inf`` (every bucket
    fits one block): one table read + one bucket read per non-empty
    bucket.  Finite block sizes add ``ceil(examined / capacity)`` block
    reads per bucket, following chains only as far as the candidate
    budget required (Sec. 4.3, Figure 3).
    """
    total = 0.0
    count = 0
    capacity = None if block_size is None else entries_per_block(block_size)
    for record in stats:
        count += 1
        total += record.nonempty_buckets  # one hash-table I/O per probe
        if capacity is None:
            total += record.nonempty_buckets
        else:
            for examined in record.bucket_sizes_examined:
                total += max(1, math.ceil(examined / capacity))
    if count == 0:
        raise ValueError("no query stats supplied")
    return total / count


def inmemory_cpu_requirement_scale() -> float:
    """Eq. 16's factor 10: 1 / (1 - T_compute / T_E2LSH)."""
    return 1.0 / (1.0 - INMEMORY_COMPUTE_FRACTION)


@dataclass(frozen=True)
class RequirementPoint:
    """Storage requirements at one accuracy level."""

    overall_ratio: float
    n_io: float
    target_ns: float
    compute_ns: float
    #: Eq. 11 / 13 / 15: random-read IOPS the device must deliver.
    read_iops: float
    #: Eq. 10 / 12 / 14: request rate (1/T_request) the CPU must sustain.
    request_rate: float


@dataclass(frozen=True)
class RequirementCurve:
    """One curve of Figures 4-8: requirements across accuracy levels."""

    label: str
    points: tuple[RequirementPoint, ...]

    def max_read_iops(self) -> float:
        """Worst-case (largest) IOPS requirement along the curve."""
        return max(point.read_iops for point in self.points)

    def max_request_rate(self) -> float:
        """Worst-case request-rate requirement along the curve."""
        return max(point.request_rate for point in self.points)


def requirement_curve(
    label: str,
    ratios: Sequence[float],
    n_ios: Sequence[float],
    target_ns: Sequence[float],
    compute_ns: Sequence[float],
) -> RequirementCurve:
    """Assemble a requirement curve from per-accuracy measurements.

    ``target_ns`` is the query time to match (T_SRS for Figures 4-6,
    T_E2LSH for Figures 7-8); ``compute_ns`` is E2LSHoS's own compute
    time at that accuracy.
    """
    lengths = {len(ratios), len(n_ios), len(target_ns), len(compute_ns)}
    if len(lengths) != 1:
        raise ValueError("all input sequences must have equal length")
    points = tuple(
        RequirementPoint(
            overall_ratio=float(ratio),
            n_io=float(n_io),
            target_ns=float(target),
            compute_ns=float(compute),
            read_iops=required_iops(n_io, target),
            request_rate=required_request_rate(n_io, target, compute),
        )
        for ratio, n_io, target, compute in zip(ratios, n_ios, target_ns, compute_ns)
    )
    return RequirementCurve(label=label, points=points)


# --------------------------------------------------------------------------
# Service capacity planning: "how many shards for X QPS at Y ms p99?"
# --------------------------------------------------------------------------

#: Default fraction of a device's saturated IOPS to plan against.  Past
#: this load the closed-queue device model (and real SSDs, Sec. 6.5 /
#: Figure 15) inflates latency sharply, so tail-latency SLOs need slack.
DEFAULT_UTILIZATION_CAP = 0.7


@dataclass(frozen=True)
class CapacityPlan:
    """Shard count needed to serve a QPS target under a p99 SLO.

    The IOPS balance is Eq. 11 applied fleet-wide: the service must
    absorb ``target_qps * n_io_per_query`` random reads per second, and
    each shard contributes ``devices_per_shard * device_max_iops *
    utilization_cap`` of planned capacity.  The latency side is a
    *feasibility check*, not a queueing model: ``latency_floor_ns`` is a
    measured light-load latency (e.g. the p99 of an unloaded shard), and
    no amount of sharding gets under it because every query visits every
    shard (scatter-gather).
    """

    target_qps: float
    target_p99_ns: float
    n_io_per_query: float
    device_max_iops: float
    devices_per_shard: int
    utilization_cap: float
    latency_floor_ns: float
    #: Replication factor R: copies of each shard on independent devices.
    replicas: int = 1
    #: Fraction of sub-queries re-issued by hedged routing (duplicate
    #: reads inflate the demand side of the IOPS balance).
    hedge_fraction: float = 0.0

    @property
    def required_fleet_iops(self) -> float:
        """Random-read IOPS the whole fleet must absorb."""
        return self.target_qps * self.n_io_per_query * (1.0 + self.hedge_fraction)

    @property
    def per_shard_planned_iops(self) -> float:
        """IOPS one shard's replica group contributes at the planned
        utilization (replicas hold copies, so their IOPS add)."""
        return (
            self.device_max_iops
            * self.devices_per_shard
            * self.replicas
            * self.utilization_cap
        )

    @property
    def required_shards(self) -> int:
        """Minimum shard count satisfying the IOPS balance."""
        return max(1, math.ceil(self.required_fleet_iops / self.per_shard_planned_iops))

    @property
    def total_devices(self) -> int:
        """Devices across the fleet (all shards, all replicas)."""
        return self.required_shards * self.devices_per_shard * self.replicas

    @property
    def expected_utilization(self) -> float:
        """Device utilization at the target rate with the planned fleet."""
        capacity = self.total_devices * self.device_max_iops
        return self.required_fleet_iops / capacity

    @property
    def feasible(self) -> bool:
        """True if the SLO clears the measured light-load latency floor."""
        return self.latency_floor_ns <= self.target_p99_ns

    def describe(self) -> str:
        """One-paragraph human-readable plan (CLI output)."""
        hedge = (
            f" (+{self.hedge_fraction:.0%} hedge duplicates)"
            if self.hedge_fraction > 0
            else ""
        )
        head = (
            f"{self.target_qps:,.0f} q/s x {self.n_io_per_query:.1f} IO/query{hedge} = "
            f"{format_iops(self.required_fleet_iops)} fleet-wide; "
            f"{self.required_shards} shard(s) x {self.replicas} replica(s) x "
            f"{self.devices_per_shard} device(s) "
            f"at <= {self.utilization_cap:.0%} utilization "
            f"(expected {self.expected_utilization:.0%})"
        )
        if self.feasible:
            tail = (
                f"; p99 target {format_time(self.target_p99_ns)} clears the "
                f"light-load floor {format_time(self.latency_floor_ns)}"
            )
        else:
            tail = (
                f"; INFEASIBLE: p99 target {format_time(self.target_p99_ns)} is below "
                f"the light-load floor {format_time(self.latency_floor_ns)} — "
                "sharding cannot help (every query visits every shard)"
            )
        return head + tail


def plan_capacity(
    n_io_per_query: float,
    target_qps: float,
    target_p99_ns: float,
    device_max_iops: float,
    devices_per_shard: int = 1,
    utilization_cap: float = DEFAULT_UTILIZATION_CAP,
    latency_floor_ns: float = 0.0,
    replicas: int = 1,
    hedge_fraction: float = 0.0,
) -> CapacityPlan:
    """Size a sharded service for ``target_qps`` at a p99 SLO.

    ``n_io_per_query`` comes from measurement (``average_n_io`` or a
    load test's observed I/O count per completed query);
    ``latency_floor_ns`` from a light-load run of one shard.

    ``replicas`` multiplies each shard's planned IOPS (copies answer
    from independent devices) and the fleet's device bill;
    ``hedge_fraction`` is the duplicate-sub-query rate of hedged
    routing (a load test's ``ServiceReport.hedge_fraction``), which
    inflates the demand side — hedging trades exactly this IOPS
    overhead for tail latency.
    """
    if n_io_per_query < 0:
        raise ValueError(f"n_io_per_query must be >= 0, got {n_io_per_query}")
    if target_qps <= 0:
        raise ValueError(f"target_qps must be positive, got {target_qps}")
    if target_p99_ns <= 0:
        raise ValueError(f"target_p99_ns must be positive, got {target_p99_ns}")
    if device_max_iops <= 0:
        raise ValueError(f"device_max_iops must be positive, got {device_max_iops}")
    if devices_per_shard < 1:
        raise ValueError(f"devices_per_shard must be >= 1, got {devices_per_shard}")
    if not 0 < utilization_cap <= 1:
        raise ValueError(f"utilization_cap must be in (0, 1], got {utilization_cap}")
    if latency_floor_ns < 0:
        raise ValueError(f"latency_floor_ns must be >= 0, got {latency_floor_ns}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if hedge_fraction < 0:
        raise ValueError(f"hedge_fraction must be >= 0, got {hedge_fraction}")
    return CapacityPlan(
        target_qps=target_qps,
        target_p99_ns=target_p99_ns,
        n_io_per_query=n_io_per_query,
        device_max_iops=device_max_iops,
        devices_per_shard=devices_per_shard,
        utilization_cap=utilization_cap,
        latency_floor_ns=latency_floor_ns,
        replicas=replicas,
        hedge_fraction=hedge_fraction,
    )


def plan_capacity_for_scenario(
    spec,
    report,
    *,
    latency_floor_ns: float = 0.0,
    utilization_cap: float = DEFAULT_UTILIZATION_CAP,
) -> CapacityPlan:
    """:func:`plan_capacity` fed directly from a scenario run.

    ``spec`` is a :class:`~repro.serving.scenario.ScenarioSpec` and
    ``report`` the :class:`~repro.serving.stats.ServiceReport` of its
    run — the same objects the ``scenarios``/``loadtest`` CLI holds, so
    planning needs no parallel kwarg plumbing.  The rate to plan for is
    the workload's *peak* offered rate (open loop — a diurnal crest or
    flash burst must be absorbed, not the mean) or the throughput the
    fleet proved it can sustain (closed loop).  The measured IO/query is
    deflated by the observed hedge fraction so the plan's hedge term
    re-adds duplicates without double counting.
    """
    from repro.storage.profiles import DEVICE_PROFILES

    workload = spec.workload
    target_qps = (
        workload.peak_qps if workload.mode == "open" else report.throughput_qps
    )
    return plan_capacity(
        n_io_per_query=report.mean_ios_per_query / (1.0 + report.hedge_fraction),
        target_qps=target_qps,
        target_p99_ns=spec.target_p99_ms * 1e6,
        device_max_iops=DEVICE_PROFILES[spec.serving.device].max_iops,
        devices_per_shard=spec.serving.devices_per_shard,
        utilization_cap=utilization_cap,
        latency_floor_ns=latency_floor_ns,
        replicas=spec.serving.replicas,
        hedge_fraction=report.hedge_fraction,
    )
