"""Storage requirement curves (paper Sec. 4.3-4.5, Figures 3-8).

The paper derives these curves by *running in-memory E2LSH* and counting
what an external-memory execution would have had to read: for every
non-empty bucket probed, one hash-table I/O plus ``ceil(examined /
entries_per_block)`` bucket-block I/Os.  The helpers here turn the
per-query :class:`~repro.core.query_stats.QueryStats` records into
average I/O counts for any block size, then into the IOPS /
request-rate requirements of Eqs. 9-16.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.analysis.cost_model import required_iops, required_request_rate
from repro.stats import QueryStats
from repro.layout.bucket import entries_per_block

__all__ = [
    "average_n_io",
    "RequirementPoint",
    "RequirementCurve",
    "requirement_curve",
    "inmemory_cpu_requirement_scale",
]

#: Sec. 4.5: in-memory E2LSH spends ~10% of its time on footprint stalls,
#: so T_compute = 0.9 * T_E2LSH and Eq. 16 scales the request-rate
#: requirement by 1 / (1 - 0.9) = 10.
INMEMORY_COMPUTE_FRACTION = 0.9


def average_n_io(stats: Iterable[QueryStats], block_size: int | None = 512) -> float:
    """Average I/Os per query for a given read block size.

    ``block_size=None`` reproduces the paper's ``N_io,inf`` (every bucket
    fits one block): one table read + one bucket read per non-empty
    bucket.  Finite block sizes add ``ceil(examined / capacity)`` block
    reads per bucket, following chains only as far as the candidate
    budget required (Sec. 4.3, Figure 3).
    """
    total = 0.0
    count = 0
    capacity = None if block_size is None else entries_per_block(block_size)
    for record in stats:
        count += 1
        total += record.nonempty_buckets  # one hash-table I/O per probe
        if capacity is None:
            total += record.nonempty_buckets
        else:
            for examined in record.bucket_sizes_examined:
                total += max(1, math.ceil(examined / capacity))
    if count == 0:
        raise ValueError("no query stats supplied")
    return total / count


def inmemory_cpu_requirement_scale() -> float:
    """Eq. 16's factor 10: 1 / (1 - T_compute / T_E2LSH)."""
    return 1.0 / (1.0 - INMEMORY_COMPUTE_FRACTION)


@dataclass(frozen=True)
class RequirementPoint:
    """Storage requirements at one accuracy level."""

    overall_ratio: float
    n_io: float
    target_ns: float
    compute_ns: float
    #: Eq. 11 / 13 / 15: random-read IOPS the device must deliver.
    read_iops: float
    #: Eq. 10 / 12 / 14: request rate (1/T_request) the CPU must sustain.
    request_rate: float


@dataclass(frozen=True)
class RequirementCurve:
    """One curve of Figures 4-8: requirements across accuracy levels."""

    label: str
    points: tuple[RequirementPoint, ...]

    def max_read_iops(self) -> float:
        """Worst-case (largest) IOPS requirement along the curve."""
        return max(point.read_iops for point in self.points)

    def max_request_rate(self) -> float:
        """Worst-case request-rate requirement along the curve."""
        return max(point.request_rate for point in self.points)


def requirement_curve(
    label: str,
    ratios: Sequence[float],
    n_ios: Sequence[float],
    target_ns: Sequence[float],
    compute_ns: Sequence[float],
) -> RequirementCurve:
    """Assemble a requirement curve from per-accuracy measurements.

    ``target_ns`` is the query time to match (T_SRS for Figures 4-6,
    T_E2LSH for Figures 7-8); ``compute_ns`` is E2LSHoS's own compute
    time at that accuracy.
    """
    lengths = {len(ratios), len(n_ios), len(target_ns), len(compute_ns)}
    if len(lengths) != 1:
        raise ValueError("all input sequences must have equal length")
    points = tuple(
        RequirementPoint(
            overall_ratio=float(ratio),
            n_io=float(n_io),
            target_ns=float(target),
            compute_ns=float(compute),
            read_iops=required_iops(n_io, target),
            request_rate=required_request_rate(n_io, target, compute),
        )
        for ratio, n_io, target, compute in zip(ratios, n_ios, target_ns, compute_ns)
    )
    return RequirementCurve(label=label, points=points)
