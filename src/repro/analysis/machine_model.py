"""Calibrated operation costs (substitute for the paper's testbed).

The paper measures query times on two Xeon Gold 5218 CPUs (2.3 GHz) with
AVX-512-accelerated hash and distance kernels.  We cannot reproduce
those wall-clock numbers in Python, so each primitive operation is
assigned a nanosecond cost consistent with that hardware class:

- a scalar fused multiply-add inside an AVX-512 kernel retires at
  ~0.03 ns/element in L1, but streaming high-dimensional vectors from
  DRAM makes the *effective* cost ~0.2 ns/element — this matches the
  paper's in-memory E2LSH query times (sub-millisecond for SIFT-class
  workloads, Figure 12),
- a dependent random DRAM access (hash-table probe, candidate fetch,
  tree-node hop) costs on the order of one memory latency (~80-150 ns),
- in-memory E2LSH suffers an extra ~11% stall because its working set
  includes the giant hash index; the paper measures this as "the runtime
  decreases around 10%" when the footprint shrinks (Sec. 4.5), i.e.
  ``T_compute = 0.9 * T_E2LSH`` (Eq. 16).

The *conclusions* reproduced downstream depend on cost ratios spanning
orders of magnitude (Figure 2), so modest calibration error does not
change who wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats import OpCounts

__all__ = ["MachineModel", "DEFAULT_MACHINE"]


@dataclass(frozen=True)
class MachineModel:
    """Nanosecond costs of the primitive operations in :class:`OpCounts`."""

    ns_per_projection_op: float = 0.2
    ns_per_distance_op: float = 0.2
    ns_per_candidate_fetch: float = 80.0
    ns_per_bucket_lookup: float = 120.0
    ns_per_tree_node: float = 150.0
    ns_per_btree_entry: float = 18.0
    ns_per_heap_op: float = 40.0
    ns_per_round: float = 200.0
    #: Multiplier on E2LSH compute when the full index lives in DRAM
    #: (Sec. 4.5: the large footprint adds ~10% memory-stall time, so
    #: in-memory time = compute / 0.9).
    inmemory_footprint_factor: float = 1.0 / 0.9

    def compute_ns(self, ops: OpCounts) -> float:
        """Pure compute time for an operation mix (no footprint stall)."""
        return (
            ops.projection_scalar_ops * self.ns_per_projection_op
            + ops.distance_scalar_ops * self.ns_per_distance_op
            + ops.candidate_fetches * self.ns_per_candidate_fetch
            + ops.bucket_lookups * self.ns_per_bucket_lookup
            + ops.tree_node_visits * self.ns_per_tree_node
            + ops.btree_entry_scans * self.ns_per_btree_entry
            + ops.heap_ops * self.ns_per_heap_op
            + ops.rounds * self.ns_per_round
        )

    def inmemory_e2lsh_ns(self, ops: OpCounts) -> float:
        """Query time of *in-memory* E2LSH, including the footprint stall."""
        return self.compute_ns(ops) * self.inmemory_footprint_factor


#: The single machine instance used throughout the benchmarks.
DEFAULT_MACHINE = MachineModel()
