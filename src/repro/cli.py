"""Command-line interface: build, persist, query, and analyze indices.

Usage (after ``pip install -e .``)::

    python -m repro.cli info
    python -m repro.cli build  --dataset sift --n 10000 --out /tmp/sift_idx
    python -m repro.cli query  --dataset sift --n 10000 --index /tmp/sift_idx \
                               --device cssd --count 1 --interface io_uring -k 10
    python -m repro.cli analyze --dataset sift --n 10000 --target-ms 0.5

``build``/``query`` regenerate the dataset deterministically from its
name/size/seed, so the database vectors never need to be shipped next
to the index (they are cheap to re-synthesize; a real deployment would
store them).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.analysis.cost_model import required_iops, required_request_rate
from repro.analysis.machine_model import DEFAULT_MACHINE
from repro.analysis.requirements import average_n_io, plan_capacity
from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.datasets.registry import DATASET_NAMES, DATASET_SPECS, load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio
from repro.io.persistence import load_index, save_index
from repro.obs.report import load_trace, render_report
from repro.obs.trace import SpanTracer
from repro.serving.dispatcher import DispatchConfig
from repro.serving.loadgen import ClosedLoopWorkload, OpenLoopWorkload
from repro.serving.replication import ROUTING_POLICIES, FaultSpec, RoutingConfig
from repro.serving.service import QueryService
from repro.serving.sharding import PARTITION_SCHEMES, ShardedIndex
from repro.storage.blockstore import FileBlockStore
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES, make_engine
from repro.utils.units import NS_PER_MS, NS_PER_US, format_bytes, format_iops, format_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="E2LSH-on-Storage reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets, devices, and interfaces")

    def common(
        p: argparse.ArgumentParser,
        dataset_default: str | None = None,
        n_default: int = 10_000,
        queries_default: int = 20,
    ) -> None:
        p.add_argument(
            "--dataset",
            choices=DATASET_NAMES,
            required=dataset_default is None,
            default=dataset_default,
        )
        p.add_argument("--n", type=int, default=n_default, help="database size")
        p.add_argument("--queries", type=int, default=queries_default, help="query count")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--rho", type=float, default=None, help="index exponent")
        p.add_argument("--gamma", type=float, default=0.5, help="accuracy knob")
        p.add_argument("--s-factor", type=float, default=32.0)

    build = sub.add_parser("build", help="build and persist an on-storage index")
    common(build)
    build.add_argument("--out", required=True, help="output path prefix")

    query = sub.add_parser("query", help="query a persisted index")
    common(query)
    query.add_argument("--index", required=True, help="path prefix from 'build'")
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--device", choices=sorted(DEVICE_PROFILES), default="cssd")
    query.add_argument("--count", type=int, default=1)
    query.add_argument(
        "--interface",
        choices=[n for n, p in INTERFACE_PROFILES.items() if not p.synchronous],
        default="io_uring",
    )

    analyze = sub.add_parser("analyze", help="Sec. 4 storage requirements")
    common(analyze)
    analyze.add_argument("--target-ms", type=float, default=0.5)
    analyze.add_argument("-k", type=int, default=1)

    loadtest = sub.add_parser(
        "loadtest", help="drive a sharded query service and report latency SLOs"
    )
    common(loadtest, dataset_default="sift", n_default=4_000, queries_default=32)
    loadtest.add_argument("-k", type=int, default=10)
    loadtest.add_argument("--shards", type=int, default=1)
    loadtest.add_argument("--scheme", choices=PARTITION_SCHEMES, default="hash")
    loadtest.add_argument("--device", choices=sorted(DEVICE_PROFILES), default="cssd")
    loadtest.add_argument("--devices-per-shard", type=int, default=1)
    loadtest.add_argument(
        "--interface",
        choices=[n for n, p in INTERFACE_PROFILES.items() if not p.synchronous],
        default="io_uring",
    )
    loadtest.add_argument("--workers", type=int, default=1, help="CPU workers per shard")
    loadtest.add_argument(
        "--replicas", type=int, default=1, help="copies of each shard (R)"
    )
    loadtest.add_argument("--routing", choices=ROUTING_POLICIES, default="round_robin")
    loadtest.add_argument(
        "--hedge-delay-us",
        type=float,
        default=None,
        help="explicit hedge delay; default adapts to the observed sub-query p50",
    )
    loadtest.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SHARD:REPLICA:MULT[:PERIOD_US:STALL_US]",
        help="degrade a replica by a latency multiplier, optionally with "
        "intermittent stalls; repeatable",
    )
    loadtest.add_argument("--mode", choices=("open", "closed"), default="open")
    loadtest.add_argument("--qps", type=float, default=2_000.0, help="open-loop rate")
    loadtest.add_argument("--arrivals", choices=("poisson", "uniform"), default="poisson")
    loadtest.add_argument(
        "--concurrency", type=int, default=16, help="closed-loop client count"
    )
    loadtest.add_argument("--requests", type=int, default=256, help="total queries")
    loadtest.add_argument("--zipf", type=float, default=0.0, help="query reuse skew")
    loadtest.add_argument("--batch", type=int, default=8, help="micro-batch size")
    loadtest.add_argument("--batch-delay-us", type=float, default=50.0)
    loadtest.add_argument("--queue-capacity", type=int, default=512)
    loadtest.add_argument(
        "--target-p99-ms", type=float, default=2.0, help="SLO for the capacity plan"
    )
    loadtest.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record per-query spans and write a Chrome trace_event JSON "
        "(open in Perfetto, or feed to 'repro report')",
    )
    loadtest.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics registry, sampled timeline, and simulator "
        "self-profile as JSON",
    )
    loadtest.add_argument(
        "--metrics-interval-us",
        type=float,
        default=100.0,
        help="simulated-time sampling period of the metrics timeline",
    )

    report = sub.add_parser(
        "report", help="render a recorded trace: span waterfall + tail attribution"
    )
    report.add_argument("trace", help="trace file from 'loadtest --trace'")
    report.add_argument(
        "--pct", type=float, default=99.0, help="tail percentile threshold"
    )
    report.add_argument("--top", type=int, default=5, help="tail queries to list")
    report.add_argument("--width", type=int, default=64, help="waterfall width (chars)")
    return parser


def _params(args: argparse.Namespace, n: int) -> E2LSHParams:
    rho = args.rho if args.rho is not None else DATASET_SPECS[args.dataset].rho
    return E2LSHParams(n=n, rho=rho, gamma=args.gamma, s_factor=args.s_factor)


def _cmd_info(out) -> int:
    out.write("datasets:\n")
    for name, spec in DATASET_SPECS.items():
        out.write(
            f"  {name:7s} d={spec.paper_d:4d} ({spec.paper_type}), "
            f"paper RC={spec.paper_rc}, LID={spec.paper_lid}\n"
        )
    out.write("devices:\n")
    for name, profile in DEVICE_PROFILES.items():
        out.write(
            f"  {name:6s} {format_iops(profile.qd1_iops)} @QD1, "
            f"{format_iops(profile.max_iops)} saturated, "
            f"{format_bytes(profile.capacity_bytes)}\n"
        )
    out.write("interfaces:\n")
    for name, interface in INTERFACE_PROFILES.items():
        kind = "sync" if interface.synchronous else "async"
        out.write(f"  {name:9s} {interface.cpu_overhead_ns:.0f} ns/IO ({kind})\n")
    return 0


def _cmd_build(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    prefix = Path(args.out)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    with FileBlockStore(prefix.with_suffix(".blocks")) as store:
        index = E2LSHoSIndex.build(dataset.data, params, store=store, seed=args.seed)
        save_index(index, prefix.with_suffix(".npz"))
        out.write(
            f"built {format_bytes(index.storage_bytes)} index "
            f"({index.built.ladder.rungs} radii x {params.L} tables) "
            f"-> {prefix.with_suffix('.blocks')} + {prefix.with_suffix('.npz')}\n"
        )
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    prefix = Path(args.index)
    if not prefix.with_suffix(".blocks").exists():
        out.write(f"error: no index at {prefix}\n")
        return 1
    with FileBlockStore(prefix.with_suffix(".blocks")) as store:
        index = load_index(prefix.with_suffix(".npz"), store, dataset.data)
        engine = make_engine(
            store, device=args.device, count=args.count, interface=args.interface
        )
        result = index.run(dataset.queries, engine, k=args.k)
        truth = exact_knn(dataset.data, dataset.queries, k=args.k)
        ratio = overall_ratio([a.distances for a in result.answers], truth, k=args.k)
        out.write(
            f"{len(result.answers)} queries on {args.device} x{args.count} "
            f"({args.interface}): {format_time(result.mean_query_time_ns)}/query, "
            f"{result.queries_per_second:,.0f} q/s, overall ratio {ratio:.4f}\n"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    index = E2LSHIndex(dataset.data, params, seed=args.seed)
    answers = index.query_batch(dataset.queries, k=args.k)
    stats = [a.stats for a in answers]
    compute_ns = float(np.mean([DEFAULT_MACHINE.compute_ns(a.stats.ops) for a in answers]))
    n_io = average_n_io(stats, 512)
    target_ns = args.target_ms * 1e6
    iops = required_iops(n_io, target_ns)
    rate = required_request_rate(n_io, target_ns, compute_ns)
    out.write(
        f"workload: {n_io:.1f} I/Os per query at B=512, "
        f"compute {format_time(compute_ns)}/query\n"
        f"to reach {args.target_ms} ms/query: storage >= {format_iops(iops)}, "
    )
    out.write(
        "no interface is fast enough (compute exceeds the target)\n"
        if rate == float("inf")
        else f"interface >= {format_iops(rate)} per core\n"
    )
    qualifying = [n for n, p in DEVICE_PROFILES.items() if p.max_iops >= iops]
    out.write(f"qualifying devices: {', '.join(qualifying) or 'none'}\n")
    return 0


def _parse_fault(spec: str) -> FaultSpec:
    """``SHARD:REPLICA:MULT[:PERIOD_US:STALL_US]`` -> :class:`FaultSpec`."""
    fields = spec.split(":")
    if len(fields) not in (3, 5):
        raise SystemExit(
            f"error: --fault wants SHARD:REPLICA:MULT[:PERIOD_US:STALL_US], got {spec!r}"
        )
    try:
        shard, replica = int(fields[0]), int(fields[1])
        multiplier = float(fields[2])
        period_us = float(fields[3]) if len(fields) == 5 else 0.0
        stall_us = float(fields[4]) if len(fields) == 5 else 0.0
        return FaultSpec(
            shard=shard,
            replica=replica,
            latency_multiplier=multiplier,
            stall_period_ns=period_us * NS_PER_US,
            stall_duration_ns=stall_us * NS_PER_US,
        )
    except ValueError as error:
        raise SystemExit(f"error: bad --fault {spec!r}: {error}") from error


def _cmd_loadtest(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    faults = tuple(_parse_fault(spec) for spec in args.fault)
    for fault in faults:
        if fault.shard >= args.shards or fault.replica >= args.replicas:
            raise SystemExit(
                f"error: --fault targets shard {fault.shard} replica "
                f"{fault.replica}, but the deployment is {args.shards} shard(s) "
                f"x {args.replicas} replica(s)"
            )
    if args.hedge_delay_us is not None and args.routing != "hedged":
        raise SystemExit(
            f"error: --hedge-delay-us only applies to --routing hedged "
            f"(got --routing {args.routing})"
        )
    hedge_delay_ns = (
        args.hedge_delay_us * NS_PER_US if args.hedge_delay_us is not None else None
    )
    sharded = ShardedIndex.build(
        dataset.data,
        params,
        n_shards=args.shards,
        scheme=args.scheme,
        device=args.device,
        devices_per_shard=args.devices_per_shard,
        interface=args.interface,
        seed=args.seed,
        replicas=args.replicas,
        faults=faults,
    )
    tracer = SpanTracer() if args.trace else None
    service = QueryService(
        sharded,
        dispatch=DispatchConfig(
            max_batch=args.batch,
            max_delay_ns=args.batch_delay_us * NS_PER_US,
            queue_capacity=args.queue_capacity,
        ),
        routing=RoutingConfig(policy=args.routing, hedge_delay_ns=hedge_delay_ns),
        workers_per_shard=args.workers,
        tracer=tracer,
        metrics_interval_ns=(
            args.metrics_interval_us * NS_PER_US if args.metrics_out else None
        ),
    )
    if args.mode == "open":
        workload = OpenLoopWorkload(
            qps=args.qps,
            n_queries=args.requests,
            arrivals=args.arrivals,
            zipf_s=args.zipf,
            seed=args.seed,
        )
        report = service.run_open_loop(dataset.queries, workload, k=args.k)
        offered = f"offered {args.qps:,.0f} q/s ({args.arrivals})"
    else:
        workload = ClosedLoopWorkload(
            concurrency=args.concurrency,
            n_queries=args.requests,
            zipf_s=args.zipf,
            seed=args.seed,
        )
        report = service.run_closed_loop(dataset.queries, workload, k=args.k)
        offered = f"closed loop, {args.concurrency} clients"
    faulty = f", {len(faults)} fault(s)" if faults else ""
    out.write(
        f"{args.shards} shard(s) x {args.replicas} replica(s) ({args.scheme}, "
        f"{args.routing}) on {args.device} x{args.devices_per_shard} "
        f"({args.interface}), {offered}{faulty}\n"
    )
    out.write(report.describe() + "\n")
    profile = service.loop_profile
    out.write(
        f"simulator: {profile.events_total:,} loop events in "
        f"{profile.wall_seconds:.2f} s wall "
        f"({profile.events_per_sec:,.0f} events/s)\n"
    )
    if tracer is not None:
        tracer.write(args.trace)
        out.write(
            f"trace: {len(tracer.completed_spans())} query spans -> {args.trace}\n"
        )
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(service.metrics_snapshot(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        out.write(f"metrics -> {args.metrics_out}\n")
    if report.completed == 0:
        out.write("capacity plan: skipped (no completed queries)\n")
        return 0
    # Plan for the offered rate (open loop) or the rate the fleet proved
    # it can sustain (closed loop).  The fastest observed query is the
    # closest available proxy for the light-load latency floor — unlike
    # this run's p50/p99 it excludes queueing and batching delay.
    # The measured IO/query already contains hedge duplicates; deflate it
    # so the plan's hedge term re-adds them without double counting.
    plan = plan_capacity(
        n_io_per_query=report.mean_ios_per_query / (1.0 + report.hedge_fraction),
        target_qps=args.qps if args.mode == "open" else report.throughput_qps,
        target_p99_ns=args.target_p99_ms * NS_PER_MS,
        device_max_iops=DEVICE_PROFILES[args.device].max_iops,
        devices_per_shard=args.devices_per_shard,
        latency_floor_ns=float(service.stats.latencies_ns().min()),
        replicas=args.replicas,
        hedge_fraction=report.hedge_fraction,
    )
    out.write(f"capacity plan: {plan.describe()}\n")
    return 0


def _cmd_report(args: argparse.Namespace, out) -> int:
    try:
        spans = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        out.write(f"error: {error}\n")
        return 1
    out.write(render_report(spans, pct=args.pct, top=args.top, width=args.width) + "\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "build":
        return _cmd_build(args, out)
    if args.command == "query":
        return _cmd_query(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "loadtest":
        return _cmd_loadtest(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
