"""Command-line interface: build, persist, query, and analyze indices.

Usage (after ``pip install -e .``)::

    python -m repro.cli info
    python -m repro.cli build  --dataset sift --n 10000 --out /tmp/sift_idx
    python -m repro.cli query  --dataset sift --n 10000 --index /tmp/sift_idx \
                               --device cssd --count 1 --interface io_uring -k 10
    python -m repro.cli analyze --dataset sift --n 10000 --target-ms 0.5

``build``/``query`` regenerate the dataset deterministically from its
name/size/seed, so the database vectors never need to be shipped next
to the index (they are cheap to re-synthesize; a real deployment would
store them).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.analysis.cost_model import required_iops, required_request_rate
from repro.analysis.lint import describe_rules, run_lint, to_json, to_text
from repro.analysis.machine_model import DEFAULT_MACHINE
from repro.analysis.requirements import average_n_io, plan_capacity_for_scenario
from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.datasets.registry import DATASET_NAMES, DATASET_SPECS, load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio
from repro.io.persistence import load_index, save_index
from repro.obs.report import load_trace, render_report
from repro.obs.trace import SpanTracer
from repro.serving.catalog import CATALOG_NAMES, build_scenario, catalog
from repro.serving.config import DataConfig, FaultTimeline, ServingConfig, WorkloadSpec
from repro.serving.replication import ROUTING_POLICIES, FaultSpec
from repro.serving.scenario import ScenarioResult, ScenarioSpec, run_scenario
from repro.serving.sharding import PARTITION_SCHEMES
from repro.storage.blockstore import FileBlockStore
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES, make_engine
from repro.utils.units import NS_PER_MS, NS_PER_US, format_bytes, format_iops, format_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="E2LSH-on-Storage reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets, devices, and interfaces")

    def common(
        p: argparse.ArgumentParser,
        dataset_default: str | None = None,
        n_default: int = 10_000,
        queries_default: int = 20,
    ) -> None:
        p.add_argument(
            "--dataset",
            choices=DATASET_NAMES,
            required=dataset_default is None,
            default=dataset_default,
        )
        p.add_argument("--n", type=int, default=n_default, help="database size")
        p.add_argument("--queries", type=int, default=queries_default, help="query count")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--rho", type=float, default=None, help="index exponent")
        p.add_argument("--gamma", type=float, default=0.5, help="accuracy knob")
        p.add_argument("--s-factor", type=float, default=32.0)

    build = sub.add_parser("build", help="build and persist an on-storage index")
    common(build)
    build.add_argument("--out", required=True, help="output path prefix")

    query = sub.add_parser("query", help="query a persisted index")
    common(query)
    query.add_argument("--index", required=True, help="path prefix from 'build'")
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--device", choices=sorted(DEVICE_PROFILES), default="cssd")
    query.add_argument("--count", type=int, default=1)
    query.add_argument(
        "--interface",
        choices=[n for n, p in INTERFACE_PROFILES.items() if not p.synchronous],
        default="io_uring",
    )

    analyze = sub.add_parser("analyze", help="Sec. 4 storage requirements")
    common(analyze)
    analyze.add_argument("--target-ms", type=float, default=0.5)
    analyze.add_argument("-k", type=int, default=1)

    loadtest = sub.add_parser(
        "loadtest", help="drive a sharded query service and report latency SLOs"
    )
    # Flag defaults come from the config dataclasses (one source of truth):
    # the `loadtest` command is a thin adapter that builds a ScenarioSpec.
    common(
        loadtest,
        dataset_default=DataConfig.dataset,
        n_default=DataConfig.n,
        queries_default=DataConfig.pool_queries,
    )
    loadtest.add_argument("-k", type=int, default=ScenarioSpec.k)
    loadtest.add_argument("--shards", type=int, default=ServingConfig.n_shards)
    loadtest.add_argument(
        "--scheme", choices=PARTITION_SCHEMES, default=ServingConfig.scheme
    )
    loadtest.add_argument(
        "--device", choices=sorted(DEVICE_PROFILES), default=ServingConfig.device
    )
    loadtest.add_argument(
        "--devices-per-shard", type=int, default=ServingConfig.devices_per_shard
    )
    loadtest.add_argument(
        "--interface",
        choices=[n for n, p in INTERFACE_PROFILES.items() if not p.synchronous],
        default=ServingConfig.interface,
    )
    loadtest.add_argument(
        "--workers",
        type=int,
        default=ServingConfig.workers_per_shard,
        help="CPU workers per shard",
    )
    loadtest.add_argument(
        "--replicas",
        type=int,
        default=ServingConfig.replicas,
        help="copies of each shard (R)",
    )
    loadtest.add_argument(
        "--routing", choices=ROUTING_POLICIES, default=ServingConfig.routing
    )
    loadtest.add_argument(
        "--hedge-delay-us",
        type=float,
        default=ServingConfig.hedge_delay_us,
        help="explicit hedge delay; default adapts to the observed sub-query p50",
    )
    loadtest.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SHARD:REPLICA:MULT[:PERIOD_US:STALL_US]",
        help="degrade a replica by a latency multiplier, optionally with "
        "intermittent stalls; repeatable",
    )
    loadtest.add_argument("--mode", choices=("open", "closed"), default=WorkloadSpec.mode)
    loadtest.add_argument(
        "--qps", type=float, default=WorkloadSpec.qps, help="open-loop rate"
    )
    loadtest.add_argument(
        "--arrivals", choices=("poisson", "uniform"), default=WorkloadSpec.shape
    )
    loadtest.add_argument(
        "--concurrency",
        type=int,
        default=WorkloadSpec.concurrency,
        help="closed-loop client count",
    )
    loadtest.add_argument(
        "--requests", type=int, default=WorkloadSpec.requests, help="total queries"
    )
    loadtest.add_argument(
        "--zipf", type=float, default=WorkloadSpec.zipf_s, help="query reuse skew"
    )
    loadtest.add_argument(
        "--ingest-requests",
        type=int,
        default=WorkloadSpec.ingest_requests,
        help="total ingest updates offered alongside the queries "
        "(0 disables the ingest traffic class)",
    )
    loadtest.add_argument(
        "--ingest-qps",
        type=float,
        default=WorkloadSpec.ingest_qps,
        help="offered update rate (updates/s; requires --ingest-requests)",
    )
    loadtest.add_argument(
        "--delete-fraction",
        type=float,
        default=WorkloadSpec.delete_fraction,
        help="fraction of ingest updates that are deletes",
    )
    loadtest.add_argument(
        "--batch", type=int, default=ServingConfig.max_batch, help="micro-batch size"
    )
    loadtest.add_argument(
        "--batch-delay-us", type=float, default=ServingConfig.batch_delay_us
    )
    loadtest.add_argument(
        "--queue-capacity", type=int, default=ServingConfig.queue_capacity
    )
    loadtest.add_argument(
        "--target-p99-ms",
        type=float,
        default=ScenarioSpec.target_p99_ms,
        help="SLO for the capacity plan",
    )
    loadtest.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record per-query spans and write a Chrome trace_event JSON "
        "(open in Perfetto, or feed to 'repro report')",
    )
    loadtest.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics registry, sampled timeline, and simulator "
        "self-profile as JSON",
    )
    loadtest.add_argument(
        "--metrics-interval-us",
        type=float,
        default=100.0,
        help="simulated-time sampling period of the metrics timeline",
    )
    loadtest.add_argument(
        "--profile-interval-us",
        type=float,
        default=None,
        metavar="US",
        help="also sample the simulator's wall-clock events/sec into a "
        "per-phase timeline (exported with --metrics-out)",
    )
    loadtest.add_argument(
        "--no-vectorize",
        action="store_true",
        help="run the scalar per-sub-query dispatch path instead of "
        "vectorized waves (same reports and traces, slower wall clock)",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="run the committed scenario catalog (or named/JSON scenarios) "
        "and emit one SLO report per scenario",
    )
    scenarios.add_argument(
        "--list", action="store_true", help="list catalog scenarios and exit"
    )
    scenarios.add_argument(
        "--name",
        action="append",
        default=[],
        metavar="SCENARIO",
        help="run one catalog scenario by name; repeatable "
        f"(catalog: {', '.join(CATALOG_NAMES)})",
    )
    scenarios.add_argument(
        "--spec",
        action="append",
        default=[],
        metavar="FILE",
        help="run a scenario from a JSON spec file "
        "(the format ScenarioSpec.to_dict() writes); repeatable",
    )
    scenarios.add_argument(
        "--quick",
        action="store_true",
        help="catalog scenarios at the small CI-smoke scale",
    )
    scenarios.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write one <scenario>.json SLO report per scenario into DIR",
    )

    lint = sub.add_parser(
        "lint",
        help="AST determinism & simulation-contract checker "
        "(wall clock, global RNG, unordered iteration, deprecated shims, "
        "__all__ hygiene, heap tie-order tags)",
    )
    lint.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="package tree to check (default: the installed repro package)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only this rule id; repeatable (default: all rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title, and rationale, then exit",
    )

    report = sub.add_parser(
        "report", help="render a recorded trace: span waterfall + tail attribution"
    )
    report.add_argument("trace", help="trace file from 'loadtest --trace'")
    report.add_argument(
        "--pct", type=float, default=99.0, help="tail percentile threshold"
    )
    report.add_argument("--top", type=int, default=5, help="tail queries to list")
    report.add_argument("--width", type=int, default=64, help="waterfall width (chars)")
    return parser


def _params(args: argparse.Namespace, n: int) -> E2LSHParams:
    rho = args.rho if args.rho is not None else DATASET_SPECS[args.dataset].rho
    return E2LSHParams(n=n, rho=rho, gamma=args.gamma, s_factor=args.s_factor)


def _cmd_info(out) -> int:
    out.write("datasets:\n")
    for name, spec in DATASET_SPECS.items():
        out.write(
            f"  {name:7s} d={spec.paper_d:4d} ({spec.paper_type}), "
            f"paper RC={spec.paper_rc}, LID={spec.paper_lid}\n"
        )
    out.write("devices:\n")
    for name, profile in DEVICE_PROFILES.items():
        out.write(
            f"  {name:6s} {format_iops(profile.qd1_iops)} @QD1, "
            f"{format_iops(profile.max_iops)} saturated, "
            f"{format_bytes(profile.capacity_bytes)}\n"
        )
    out.write("interfaces:\n")
    for name, interface in INTERFACE_PROFILES.items():
        kind = "sync" if interface.synchronous else "async"
        out.write(f"  {name:9s} {interface.cpu_overhead_ns:.0f} ns/IO ({kind})\n")
    return 0


def _cmd_build(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    prefix = Path(args.out)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    with FileBlockStore(prefix.with_suffix(".blocks")) as store:
        index = E2LSHoSIndex.build(dataset.data, params, store=store, seed=args.seed)
        save_index(index, prefix.with_suffix(".npz"))
        out.write(
            f"built {format_bytes(index.storage_bytes)} index "
            f"({index.built.ladder.rungs} radii x {params.L} tables) "
            f"-> {prefix.with_suffix('.blocks')} + {prefix.with_suffix('.npz')}\n"
        )
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    prefix = Path(args.index)
    if not prefix.with_suffix(".blocks").exists():
        out.write(f"error: no index at {prefix}\n")
        return 1
    with FileBlockStore(prefix.with_suffix(".blocks")) as store:
        index = load_index(prefix.with_suffix(".npz"), store, dataset.data)
        engine = make_engine(
            store, device=args.device, count=args.count, interface=args.interface
        )
        result = index.run(dataset.queries, engine, k=args.k)
        truth = exact_knn(dataset.data, dataset.queries, k=args.k)
        ratio = overall_ratio([a.distances for a in result.answers], truth, k=args.k)
        out.write(
            f"{len(result.answers)} queries on {args.device} x{args.count} "
            f"({args.interface}): {format_time(result.mean_query_time_ns)}/query, "
            f"{result.queries_per_second:,.0f} q/s, overall ratio {ratio:.4f}\n"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    index = E2LSHIndex(dataset.data, params, seed=args.seed)
    answers = index.query_batch(dataset.queries, k=args.k)
    stats = [a.stats for a in answers]
    compute_ns = float(np.mean([DEFAULT_MACHINE.compute_ns(a.stats.ops) for a in answers]))
    n_io = average_n_io(stats, 512)
    target_ns = args.target_ms * 1e6
    iops = required_iops(n_io, target_ns)
    rate = required_request_rate(n_io, target_ns, compute_ns)
    out.write(
        f"workload: {n_io:.1f} I/Os per query at B=512, "
        f"compute {format_time(compute_ns)}/query\n"
        f"to reach {args.target_ms} ms/query: storage >= {format_iops(iops)}, "
    )
    out.write(
        "no interface is fast enough (compute exceeds the target)\n"
        if rate == float("inf")
        else f"interface >= {format_iops(rate)} per core\n"
    )
    qualifying = [n for n, p in DEVICE_PROFILES.items() if p.max_iops >= iops]
    out.write(f"qualifying devices: {', '.join(qualifying) or 'none'}\n")
    return 0


def _parse_fault(spec: str) -> FaultSpec:
    """``SHARD:REPLICA:MULT[:PERIOD_US:STALL_US]`` -> :class:`FaultSpec`."""
    fields = spec.split(":")
    if len(fields) not in (3, 5):
        raise SystemExit(
            f"error: --fault wants SHARD:REPLICA:MULT[:PERIOD_US:STALL_US], got {spec!r}"
        )
    try:
        shard, replica = int(fields[0]), int(fields[1])
        multiplier = float(fields[2])
        period_us = float(fields[3]) if len(fields) == 5 else 0.0
        stall_us = float(fields[4]) if len(fields) == 5 else 0.0
        return FaultSpec(
            shard=shard,
            replica=replica,
            latency_multiplier=multiplier,
            stall_period_ns=period_us * NS_PER_US,
            stall_duration_ns=stall_us * NS_PER_US,
        )
    except ValueError as error:
        raise SystemExit(f"error: bad --fault {spec!r}: {error}") from error


def _scenario_from_loadtest(args: argparse.Namespace) -> ScenarioSpec:
    """Adapt the legacy ``loadtest`` flag set into a :class:`ScenarioSpec`.

    The flags stay backward compatible; validation lives in the config
    dataclasses, whose errors surface as the CLI's usual ``SystemExit``.
    """
    if args.hedge_delay_us is not None and args.routing != "hedged":
        raise SystemExit(
            f"error: --hedge-delay-us only applies to --routing hedged "
            f"(got --routing {args.routing})"
        )
    faults = tuple(_parse_fault(spec) for spec in args.fault)
    try:
        return ScenarioSpec(
            name="loadtest",
            data=DataConfig(
                dataset=args.dataset,
                n=args.n,
                pool_queries=args.queries,
                gamma=args.gamma,
                s_factor=args.s_factor,
                rho=args.rho,
            ),
            serving=ServingConfig(
                n_shards=args.shards,
                scheme=args.scheme,
                device=args.device,
                devices_per_shard=args.devices_per_shard,
                interface=args.interface,
                workers_per_shard=args.workers,
                replicas=args.replicas,
                routing=args.routing,
                hedge_delay_us=args.hedge_delay_us,
                max_batch=args.batch,
                batch_delay_us=args.batch_delay_us,
                queue_capacity=args.queue_capacity,
            ),
            workload=WorkloadSpec(
                mode=args.mode,
                requests=args.requests,
                qps=args.qps,
                # The legacy CLI ignores --arrivals in closed mode; the
                # spec layer rejects the combination, so drop it here.
                shape=args.arrivals if args.mode == "open" else "poisson",
                zipf_s=args.zipf,
                concurrency=args.concurrency,
                ingest_requests=args.ingest_requests,
                ingest_qps=args.ingest_qps,
                delete_fraction=args.delete_fraction,
            ),
            faults=FaultTimeline(events=faults),
            seed=args.seed,
            k=args.k,
            target_p99_ms=args.target_p99_ms,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from error


def _describe_deployment(spec: ScenarioSpec) -> str:
    serving = spec.serving
    workload = spec.workload
    if workload.mode == "open":
        shape = workload.shape if workload.shape != "poisson" else "poisson"
        offered = f"offered {workload.qps:,.0f} q/s ({shape})"
    else:
        offered = f"closed loop, {workload.concurrency} clients"
    faulty = f", {len(spec.faults)} fault(s)" if spec.faults else ""
    return (
        f"{serving.n_shards} shard(s) x {serving.replicas} replica(s) "
        f"({serving.scheme}, {serving.routing}) on {serving.device} "
        f"x{serving.devices_per_shard} ({serving.interface}), {offered}{faulty}"
    )


def _write_run(result: ScenarioResult, out) -> None:
    """The per-run body shared by ``loadtest`` and ``scenarios``."""
    out.write(result.report.describe() + "\n")
    profile = result.loop_profile
    out.write(
        f"simulator: {profile.events_total:,} loop events in "
        f"{profile.wall_seconds:.2f} s wall "
        f"({profile.events_per_sec:,.0f} events/s)\n"
    )


def _cmd_loadtest(args: argparse.Namespace, out) -> int:
    spec = _scenario_from_loadtest(args)
    tracer = SpanTracer() if args.trace else None
    result = run_scenario(
        spec,
        tracer=tracer,
        metrics_interval_ns=(
            args.metrics_interval_us * NS_PER_US if args.metrics_out else None
        ),
        vectorize=not args.no_vectorize,
        profile_interval_ns=(
            args.profile_interval_us * NS_PER_US
            if args.profile_interval_us is not None
            else None
        ),
    )
    report = result.report
    out.write(_describe_deployment(spec) + "\n")
    _write_run(result, out)
    if tracer is not None:
        tracer.write(args.trace)
        out.write(
            f"trace: {len(tracer.completed_spans())} query spans -> {args.trace}\n"
        )
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(result.service.metrics_snapshot(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        out.write(f"metrics -> {args.metrics_out}\n")
    if report.completed == 0:
        out.write("capacity plan: skipped (no completed queries)\n")
        return 0
    # Plan for the workload's peak offered rate (open loop) or the rate
    # the fleet proved it can sustain (closed loop).  The fastest
    # observed query is the closest available proxy for the light-load
    # latency floor — unlike this run's p50/p99 it excludes queueing and
    # batching delay.
    plan = plan_capacity_for_scenario(
        spec,
        report,
        latency_floor_ns=float(result.service.stats.latencies_ns().min()),
    )
    out.write(f"capacity plan: {plan.describe()}\n")
    return 0


def _cmd_scenarios(args: argparse.Namespace, out) -> int:
    if args.list:
        for name in CATALOG_NAMES:
            spec = build_scenario(name, quick=True)
            out.write(f"{name:22s} {spec.description}\n")
        return 0
    specs: list[ScenarioSpec] = []
    try:
        for name in args.name:
            specs.append(build_scenario(name, quick=args.quick))
    except ValueError as error:
        raise SystemExit(f"error: {error}") from error
    for path in args.spec:
        try:
            with open(path) as handle:
                payload = json.load(handle)
            specs.append(ScenarioSpec.from_dict(payload))
        except (OSError, ValueError, json.JSONDecodeError) as error:
            raise SystemExit(f"error: bad scenario spec {path}: {error}") from error
    if not specs:
        specs = catalog(quick=args.quick)
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    missed = 0
    for spec in specs:
        result = run_scenario(spec)
        report = result.report
        out.write(f"=== {spec.name} ===\n")
        if spec.description:
            out.write(f"{spec.description}\n")
        out.write(_describe_deployment(spec) + "\n")
        _write_run(result, out)
        verdict = "met" if result.slo_met else "MISSED"
        missed += 0 if result.slo_met else 1
        out.write(
            f"SLO: p99 {report.p99_ns / NS_PER_MS:.3f} ms vs target "
            f"{spec.target_p99_ms:.3f} ms -> {verdict}\n"
        )
        if out_dir is not None:
            path = out_dir / f"{spec.name}.json"
            with open(path, "w") as handle:
                json.dump(result.slo_dict(), handle, indent=1, sort_keys=True)
                handle.write("\n")
            out.write(f"report -> {path}\n")
    if missed:
        out.write(f"{missed}/{len(specs)} scenario(s) missed their SLO\n")
    # SLO misses are findings, not failures: chaos entries are expected
    # to hurt.  The exit code only signals broken runs.
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    if args.list_rules:
        out.write(describe_rules() + "\n")
        return 0
    root = Path(args.root) if args.root is not None else Path(__file__).resolve().parent
    try:
        result = run_lint(root, rule_ids=args.select or None)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from error
    if args.format == "json":
        json.dump(to_json(result), out, indent=1, sort_keys=True)
        out.write("\n")
    else:
        out.write(to_text(result) + "\n")
    return 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace, out) -> int:
    try:
        spans = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        out.write(f"error: {error}\n")
        return 1
    out.write(render_report(spans, pct=args.pct, top=args.top, width=args.width) + "\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "build":
        return _cmd_build(args, out)
    if args.command == "query":
        return _cmd_query(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "loadtest":
        return _cmd_loadtest(args, out)
    if args.command == "scenarios":
        return _cmd_scenarios(args, out)
    if args.command == "lint":
        return _cmd_lint(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
