"""Command-line interface: build, persist, query, and analyze indices.

Usage (after ``pip install -e .``)::

    python -m repro.cli info
    python -m repro.cli build  --dataset sift --n 10000 --out /tmp/sift_idx
    python -m repro.cli query  --dataset sift --n 10000 --index /tmp/sift_idx \
                               --device cssd --count 1 --interface io_uring -k 10
    python -m repro.cli analyze --dataset sift --n 10000 --target-ms 0.5

``build``/``query`` regenerate the dataset deterministically from its
name/size/seed, so the database vectors never need to be shipped next
to the index (they are cheap to re-synthesize; a real deployment would
store them).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.cost_model import required_iops, required_request_rate
from repro.analysis.machine_model import DEFAULT_MACHINE
from repro.analysis.requirements import average_n_io
from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.datasets.registry import DATASET_NAMES, DATASET_SPECS, load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio
from repro.io.persistence import load_index, save_index
from repro.storage.blockstore import FileBlockStore
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES, make_engine
from repro.utils.units import format_bytes, format_iops, format_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="E2LSH-on-Storage reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets, devices, and interfaces")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=DATASET_NAMES, required=True)
        p.add_argument("--n", type=int, default=10_000, help="database size")
        p.add_argument("--queries", type=int, default=20, help="query count")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--rho", type=float, default=None, help="index exponent")
        p.add_argument("--gamma", type=float, default=0.5, help="accuracy knob")
        p.add_argument("--s-factor", type=float, default=32.0)

    build = sub.add_parser("build", help="build and persist an on-storage index")
    common(build)
    build.add_argument("--out", required=True, help="output path prefix")

    query = sub.add_parser("query", help="query a persisted index")
    common(query)
    query.add_argument("--index", required=True, help="path prefix from 'build'")
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--device", choices=sorted(DEVICE_PROFILES), default="cssd")
    query.add_argument("--count", type=int, default=1)
    query.add_argument(
        "--interface",
        choices=[n for n, p in INTERFACE_PROFILES.items() if not p.synchronous],
        default="io_uring",
    )

    analyze = sub.add_parser("analyze", help="Sec. 4 storage requirements")
    common(analyze)
    analyze.add_argument("--target-ms", type=float, default=0.5)
    analyze.add_argument("-k", type=int, default=1)
    return parser


def _params(args: argparse.Namespace, n: int) -> E2LSHParams:
    rho = args.rho if args.rho is not None else DATASET_SPECS[args.dataset].rho
    return E2LSHParams(n=n, rho=rho, gamma=args.gamma, s_factor=args.s_factor)


def _cmd_info(out) -> int:
    out.write("datasets:\n")
    for name, spec in DATASET_SPECS.items():
        out.write(
            f"  {name:7s} d={spec.paper_d:4d} ({spec.paper_type}), "
            f"paper RC={spec.paper_rc}, LID={spec.paper_lid}\n"
        )
    out.write("devices:\n")
    for name, profile in DEVICE_PROFILES.items():
        out.write(
            f"  {name:6s} {format_iops(profile.qd1_iops)} @QD1, "
            f"{format_iops(profile.max_iops)} saturated, "
            f"{format_bytes(profile.capacity_bytes)}\n"
        )
    out.write("interfaces:\n")
    for name, interface in INTERFACE_PROFILES.items():
        kind = "sync" if interface.synchronous else "async"
        out.write(f"  {name:9s} {interface.cpu_overhead_ns:.0f} ns/IO ({kind})\n")
    return 0


def _cmd_build(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    prefix = Path(args.out)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    with FileBlockStore(prefix.with_suffix(".blocks")) as store:
        index = E2LSHoSIndex.build(dataset.data, params, store=store, seed=args.seed)
        save_index(index, prefix.with_suffix(".npz"))
        out.write(
            f"built {format_bytes(index.storage_bytes)} index "
            f"({index.built.ladder.rungs} radii x {params.L} tables) "
            f"-> {prefix.with_suffix('.blocks')} + {prefix.with_suffix('.npz')}\n"
        )
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    prefix = Path(args.index)
    if not prefix.with_suffix(".blocks").exists():
        out.write(f"error: no index at {prefix}\n")
        return 1
    with FileBlockStore(prefix.with_suffix(".blocks")) as store:
        index = load_index(prefix.with_suffix(".npz"), store, dataset.data)
        engine = make_engine(
            store, device=args.device, count=args.count, interface=args.interface
        )
        result = index.run(dataset.queries, engine, k=args.k)
        truth = exact_knn(dataset.data, dataset.queries, k=args.k)
        ratio = overall_ratio([a.distances for a in result.answers], truth, k=args.k)
        out.write(
            f"{len(result.answers)} queries on {args.device} x{args.count} "
            f"({args.interface}): {format_time(result.mean_query_time_ns)}/query, "
            f"{result.queries_per_second:,.0f} q/s, overall ratio {ratio:.4f}\n"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    params = _params(args, dataset.n)
    index = E2LSHIndex(dataset.data, params, seed=args.seed)
    answers = index.query_batch(dataset.queries, k=args.k)
    stats = [a.stats for a in answers]
    compute_ns = float(np.mean([DEFAULT_MACHINE.compute_ns(a.stats.ops) for a in answers]))
    n_io = average_n_io(stats, 512)
    target_ns = args.target_ms * 1e6
    iops = required_iops(n_io, target_ns)
    rate = required_request_rate(n_io, target_ns, compute_ns)
    out.write(
        f"workload: {n_io:.1f} I/Os per query at B=512, "
        f"compute {format_time(compute_ns)}/query\n"
        f"to reach {args.target_ms} ms/query: storage >= {format_iops(iops)}, "
    )
    out.write(
        "no interface is fast enough (compute exceeds the target)\n"
        if rate == float("inf")
        else f"interface >= {format_iops(rate)} per core\n"
    )
    qualifying = [n for n, p in DEVICE_PROFILES.items() if p.max_iops >= iops]
    out.write(f"qualifying devices: {', '.join(qualifying) or 'none'}\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "build":
        return _cmd_build(args, out)
    if args.command == "query":
        return _cmd_query(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
