"""Tests for repro.core.e2lsh (in-memory E2LSH)."""

import numpy as np
import pytest

from repro.core.e2lsh import E2LSHIndex, GroupedTable
from repro.core.params import E2LSHParams
from repro.baselines.linear_scan import LinearScanIndex


@pytest.fixture(scope="module")
def clustered():
    rng = np.random.default_rng(17)
    n, d = 3000, 24
    centers = rng.normal(scale=4.0, size=(30, d))
    data = (centers[rng.integers(0, 30, n)] + rng.normal(scale=0.4, size=(n, d))).astype(
        np.float32
    )
    queries = (data[rng.integers(0, n, 12)] + rng.normal(scale=0.05, size=(12, d))).astype(
        np.float32
    )
    return data, queries


@pytest.fixture(scope="module")
def index(clustered):
    data, _ = clustered
    params = E2LSHParams(n=data.shape[0], rho=0.35, gamma=0.8, s_factor=8)
    return E2LSHIndex(data, params, seed=2)


def test_finds_near_neighbors(clustered, index):
    data, queries = clustered
    exact = LinearScanIndex(data)
    hits = 0
    for q in queries:
        answer = index.query(q, k=1)
        assert answer.found
        truth = exact.query(q, k=1)
        # c^2-ANNS guarantee territory: returned distance within a small
        # factor of exact; mostly it IS the exact NN on clustered data.
        assert answer.distances[0] <= 4.0 * truth.distances[0] + 1e-6
        hits += int(answer.ids[0] == truth.ids[0])
    assert hits >= 8  # most queries recover the exact NN


def test_distances_sorted_and_consistent(clustered, index):
    data, queries = clustered
    answer = index.query(queries[0], k=5)
    assert np.all(np.diff(answer.distances) >= 0)
    for obj, dist in zip(answer.ids, answer.distances):
        true = np.linalg.norm(data[obj].astype(np.float64) - queries[0].astype(np.float64))
        assert dist == pytest.approx(true, rel=1e-6)


def test_topk_returns_at_most_k(clustered, index):
    _, queries = clustered
    for k in (1, 3, 10):
        answer = index.query(queries[1], k=k)
        assert answer.ids.size <= k
        assert answer.ids.size == np.unique(answer.ids).size


def test_stats_populated(clustered, index):
    _, queries = clustered
    stats = index.query(queries[2], k=1).stats
    assert stats.rungs_searched >= 1
    assert stats.buckets_probed >= index.params.L  # at least one rung's probes
    assert stats.ops.projection_scalar_ops > 0
    assert stats.candidates_checked == len(np.unique(stats.bucket_sizes_examined)) or (
        stats.candidates_checked > 0
    )
    assert stats.nonempty_buckets <= stats.buckets_probed


def test_candidate_budget_respected(clustered):
    data, queries = clustered
    params = E2LSHParams(n=data.shape[0], rho=0.35, gamma=0.8, s_factor=1.0)
    small_s = E2LSHIndex(data, params, seed=2)
    answer = small_s.query(queries[0], k=1)
    # Per-rung examined entries never exceed S.
    assert sum(answer.stats.bucket_sizes_examined) <= params.S * answer.stats.rungs_searched


def test_query_batch_matches_individual(clustered, index):
    _, queries = clustered
    batch = index.query_batch(queries[:3], k=2)
    for row, answer in zip(queries[:3], batch):
        np.testing.assert_array_equal(answer.ids, index.query(row, k=2).ids)


def test_deterministic_across_instances(clustered):
    data, queries = clustered
    params = E2LSHParams(n=data.shape[0], rho=0.3, gamma=1.0)
    a = E2LSHIndex(data, params, seed=5).query(queries[0], k=3)
    b = E2LSHIndex(data, params, seed=5).query(queries[0], k=3)
    np.testing.assert_array_equal(a.ids, b.ids)


def test_index_memory_accounting(index):
    per_table = index.tables[0][0].memory_bytes
    assert per_table > 0
    assert index.index_memory_bytes > index.ladder.rungs * index.params.L


def test_validation(clustered, index):
    data, queries = clustered
    with pytest.raises(ValueError):
        index.query(queries[0], k=0)
    with pytest.raises(ValueError):
        index.query(np.zeros(3, dtype=np.float32))
    with pytest.raises(ValueError):
        E2LSHIndex(data, E2LSHParams(n=17, rho=0.3))


def test_grouped_table_lookup():
    values = np.array([5, 5, 2, 9, 2, 2], dtype=np.uint32)
    table = GroupedTable(values)
    assert table.n_buckets == 3
    assert sorted(table.lookup(2).tolist()) == [2, 4, 5]
    assert sorted(table.lookup(5).tolist()) == [0, 1]
    assert table.lookup(7).size == 0
    np.testing.assert_array_equal(np.sort(table.bucket_sizes()), [1, 2, 3])
