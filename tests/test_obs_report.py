"""Tests for repro.obs.report — trace loading, waterfall, tail table."""

import json

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.obs.report import load_trace, render_report, tail_attribution, waterfall
from repro.obs.trace import SpanTracer
from repro.serving.loadgen import OpenLoopWorkload
from repro.serving.replication import RoutingConfig
from repro.serving.service import QueryService
from repro.serving.sharding import ShardedIndex

K = 3


@pytest.fixture(scope="module")
def traced_trace_path(tmp_path_factory):
    rng = np.random.default_rng(13)
    data = rng.standard_normal((300, 16)).astype(np.float32)
    pool = rng.standard_normal((12, 16)).astype(np.float32)
    sharded = ShardedIndex.build(
        data, E2LSHParams(n=300), n_shards=2, scheme="hash", seed=13, replicas=2
    )
    tracer = SpanTracer()
    service = QueryService(
        sharded, routing=RoutingConfig(policy="hedged"), tracer=tracer
    )
    service.run_open_loop(
        pool, OpenLoopWorkload(qps=50_000.0, n_queries=40, seed=2), k=K
    )
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    tracer.write(path)
    return path


def test_load_trace_round_trips_the_spans_payload(traced_trace_path):
    spans = load_trace(str(traced_trace_path))
    assert spans["schema"] == "repro-trace/1"
    assert len(spans["queries"]) == 40
    for query in spans["queries"]:
        attribution = query["attribution"]
        parts = sum(
            attribution[c]
            for c in ("batch_ns", "queue_ns", "hash_ns", "io_ns", "hedge_ns", "other_ns")
        )
        assert parts == pytest.approx(query["latency_ns"], rel=1e-9)


def test_load_trace_rejects_non_trace_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_trace(str(path))


def test_tail_attribution_lists_slowest_first(traced_trace_path):
    spans = load_trace(str(traced_trace_path))
    text = tail_attribution(spans, pct=50.0, top=3)
    lines = [line for line in text.splitlines() if line.strip() and line.lstrip()[0].isdigit()]
    assert len(lines) == 3
    by_latency = sorted(spans["queries"], key=lambda q: -q["latency_ns"])
    assert lines[0].split()[0] == str(by_latency[0]["query_id"])
    assert "tail time share" in text


def test_tail_attribution_empty_trace():
    assert "no completed queries" in tail_attribution({"queries": []})


def test_waterfall_draws_each_attempt(traced_trace_path):
    spans = load_trace(str(traced_trace_path))
    query = max(spans["queries"], key=lambda q: q["latency_ns"])
    art = waterfall(query, width=40)
    n_attempts = sum(len(sub["attempts"]) for sub in query["subqueries"])
    bars = [line for line in art.splitlines() if "|" in line]
    assert len(bars) == n_attempts
    assert "#" in art  # someone ran on an engine
    assert "legend" in art


def test_render_report_combines_summary_waterfall_and_table(traced_trace_path):
    spans = load_trace(str(traced_trace_path))
    text = render_report(spans, pct=90.0, top=4)
    assert "40 traced queries" in text
    assert "p99" in text
    assert "tail attribution" in text
    assert render_report({"queries": []}) == "trace holds no completed queries"
