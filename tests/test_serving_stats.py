"""Tests for repro.serving.stats."""

import numpy as np
import pytest

from repro.serving.stats import ServiceStats, percentile
from repro.storage.engine import EngineResult
from repro.utils.units import NS_PER_S


def engine_result(io_count=0):
    return EngineResult(
        makespan_ns=0.0,
        results=[],
        finish_times_ns=[],
        io_count=io_count,
        compute_ns=0.0,
        io_cpu_ns=0.0,
        stall_ns=0.0,
    )


def filled_stats(latencies_ms):
    stats = ServiceStats()
    for i, latency in enumerate(latencies_ms):
        stats.record_completion(i, i, arrival_ns=0.0, finish_ns=latency * 1e6)
    return stats


# -- percentile --------------------------------------------------------------


def test_percentile_nearest_rank_definition():
    values = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 95) == 100.0
    assert percentile(values, 99) == 100.0
    assert percentile(values, 10) == 10.0
    assert percentile(values, 100) == 100.0


def test_percentile_single_value():
    assert percentile([42.0], 50) == 42.0
    assert percentile([42.0], 99) == 42.0


def test_percentile_is_order_insensitive():
    rng = np.random.default_rng(11)
    values = list(rng.exponential(1.0, size=101))
    shuffled = list(rng.permutation(values))
    assert percentile(values, 99) == percentile(shuffled, 99)


def test_percentile_deterministic_with_seeded_values():
    values = list(np.random.default_rng(21).exponential(2.0, size=1000))
    assert percentile(values, 99) == pytest.approx(percentile(values, 99))
    assert percentile(values, 50) <= percentile(values, 95) <= percentile(values, 99)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], 0)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([], 50)


# -- ServiceStats / ServiceReport -------------------------------------------


def test_report_percentiles_and_throughput():
    stats = filled_stats([1.0] * 98 + [5.0, 9.0])
    report = stats.report([[engine_result(io_count=300)]])
    assert report.completed == 100
    assert report.p50_ns == pytest.approx(1e6)
    assert report.p99_ns == pytest.approx(5e6)
    assert report.max_latency_ns == pytest.approx(9e6)
    # 100 completions over the 9 ms span between first arrival and last finish.
    assert report.throughput_qps == pytest.approx(100 * NS_PER_S / 9e6)
    assert report.mean_ios_per_query == pytest.approx(3.0)
    assert report.offered == 100


def test_report_counts_rejections():
    stats = filled_stats([1.0, 2.0])
    stats.record_rejection()
    stats.record_rejection()
    report = stats.report([[engine_result()]])
    assert report.rejected == 2
    assert report.offered == 4


def test_report_queue_and_batch_tracking():
    stats = filled_stats([1.0])
    stats.queue_depth_samples.extend([1, 3, 2])
    stats.batch_sizes.extend([4, 8])
    report = stats.report([[engine_result()]])
    assert report.max_queue_depth == 3
    assert report.mean_queue_depth == pytest.approx(2.0)
    assert report.mean_batch_size == pytest.approx(6.0)


def test_report_requires_completions():
    with pytest.raises(ValueError):
        ServiceStats().report([[engine_result()]])


def test_describe_mentions_key_figures():
    text = filled_stats([1.0, 2.0]).report([[engine_result(io_count=10)]]).describe()
    for token in ("p50", "p99", "rejected", "shards"):
        assert token in text


def test_latency_is_finish_minus_arrival():
    stats = ServiceStats()
    stats.record_completion(0, 0, arrival_ns=5e6, finish_ns=7e6)
    assert stats.records[0].latency_ns == pytest.approx(2e6)


# -- per-replica reporting ---------------------------------------------------


def test_report_accepts_per_replica_rows_and_sums_per_shard():
    stats = filled_stats([1.0, 2.0])
    report = stats.report(
        [
            [engine_result(io_count=10), engine_result(io_count=30)],
            [engine_result(io_count=5)],
        ]
    )
    assert report.shard_io_counts == (40, 5)
    assert report.replica_io_counts == ((10, 30), (5,))
    assert report.n_replicas == 2
    assert len(report.replica_iops) == 2
    assert "replicas" in report.describe()


def test_report_rejects_flat_results():
    """The pre-replication flat form finished its deprecation cycle."""
    with pytest.raises(TypeError, match="per-replica"):
        filled_stats([1.0]).report([engine_result(io_count=7)])
    # The one-element-list form carries the same information.
    report = filled_stats([1.0]).report([[engine_result(io_count=7)]])
    assert report.replica_io_counts == ((7,),)
    assert report.n_replicas == 1
    assert "replicas" not in report.describe()


def test_report_structured_form_does_not_warn():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        filled_stats([1.0]).report([[engine_result(io_count=7)]])


def test_hedge_counters_flow_into_report_and_describe():
    stats = filled_stats([1.0, 2.0])
    stats.hedges_armed = 8
    stats.hedges_cancelled = 5
    stats.hedges_issued = 3
    stats.hedge_wins = 2
    stats.hedge_losses = 1
    stats.hedge_losers_cancelled = 1
    report = stats.report([[engine_result()]])
    assert (report.hedges_armed, report.hedges_issued) == (8, 3)
    assert (report.hedge_wins, report.hedge_losses) == (2, 1)
    # 2 completed x 1 shard -> 2 sub-queries, 3 duplicates issued.
    assert report.hedge_fraction == pytest.approx(1.5)
    text = report.describe()
    assert "hedges" in text
    assert "wins 2" in text


def test_hedge_free_run_reports_quiet_ledger():
    report = filled_stats([1.0]).report([[engine_result()]])
    assert report.hedges_armed == 0
    assert report.hedge_fraction == 0.0
    assert "hedges" not in report.describe()


# -- zero-completion and rejection-only runs ---------------------------------


def test_rejection_only_run_reports_instead_of_raising():
    stats = ServiceStats()
    for _ in range(5):
        stats.record_rejection()
    stats.queue_depth_samples.extend([2, 4])
    report = stats.report([[engine_result(io_count=3)], [engine_result()]])
    assert report.completed == 0
    assert report.rejected == 5
    assert report.offered == 5
    assert report.throughput_qps == 0.0
    assert report.p99_ns == 0.0
    assert report.max_queue_depth == 4
    assert report.shard_io_counts == (3, 0)
    assert report.mean_ios_per_query == 0.0
    assert report.hedge_fraction == 0.0
    assert "rejected 5" in report.describe()


def test_rejection_only_run_keeps_hedge_ledger():
    stats = ServiceStats()
    stats.record_rejection()
    stats.hedges_armed = 2
    stats.hedges_suppressed = 2
    report = stats.report([[engine_result()]])
    assert report.hedges_armed == 2
    assert "suppressed 2" in report.describe()


# -- describe() enrichment ----------------------------------------------------


def test_describe_shows_active_fraction_for_single_copy():
    stats = filled_stats([1.0, 2.0])
    report = stats.report([[engine_result(io_count=10)]])
    # No I/O completed in these synthetic results -> active 0%.
    assert "active 0%" in report.describe()
    assert "replicas" not in report.describe()


def test_describe_hedge_line_includes_suppressed_and_rate():
    stats = filled_stats([1.0, 2.0])
    stats.hedges_armed = 4
    stats.hedges_issued = 1
    stats.hedges_suppressed = 3
    text = stats.report([[engine_result()]]).describe()
    assert "suppressed 3" in text
    assert "duplicate rate" in text


def test_describe_handles_reports_without_active_fractions():
    from repro.serving.stats import ServiceReport

    report = ServiceReport(
        completed=1,
        rejected=0,
        duration_ns=1.0,
        throughput_qps=1.0,
        mean_latency_ns=1.0,
        p50_ns=1.0,
        p95_ns=1.0,
        p99_ns=1.0,
        max_latency_ns=1.0,
        mean_queue_depth=0.0,
        max_queue_depth=0,
        mean_batch_size=0.0,
        shard_iops=(1.0,),
        shard_io_counts=(1,),
    )
    # Pre-replica-fields reports (defaulted tuples) must still describe.
    assert "active" not in report.describe()
