"""Fixture-driven tests of the ``repro lint`` rule set.

The fixture convention is self-describing: every line in
``tests/lint_fixtures/`` the checker must flag carries an
``# expect[RULE-ID]`` marker.  The tests assert the lint run over the
fixture tree reports *exactly* the marked ``(path, line, rule)`` set —
so a rule that over-reports fails as loudly as one that under-reports.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.lint import REGISTRY, run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

EXPECT_RE = re.compile(r"expect\[([A-Za-z0-9_]+)\]")

RULE_IDS = sorted(REGISTRY)


def expected_findings() -> set[tuple[str, int, str]]:
    """Collect ``(rel_path, line, rule)`` from the fixture markers."""
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for match in EXPECT_RE.finditer(line):
                expected.add((rel, lineno, match.group(1)))
    return expected


def test_fixture_markers_exist() -> None:
    """Every AST rule has at least one positive fixture case."""
    marked_rules = {rule for _, _, rule in expected_findings()}
    assert set(RULE_IDS) <= marked_rules
    assert "SUP001" in marked_rules  # the engine-level unknown-suppression check


def test_full_run_matches_markers_exactly() -> None:
    result = run_lint(FIXTURES)
    got = {(f.path, f.line, f.rule) for f in result.findings}
    assert got == expected_findings()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_single_rule_selection(rule_id: str) -> None:
    """``--select RULE`` reproduces exactly that rule's marker set."""
    result = run_lint(FIXTURES, rule_ids=[rule_id])
    assert result.rules == [rule_id]
    got = {(f.path, f.line) for f in result.findings if f.rule == rule_id}
    want = {(p, line) for (p, line, rule) in expected_findings() if rule == rule_id}
    assert got == want


def test_findings_carry_file_line_and_rule() -> None:
    result = run_lint(FIXTURES)
    for finding in result.findings:
        assert (FIXTURES / finding.path).is_file()
        assert finding.line >= 1
        assert finding.col >= 0
        assert finding.message
        source_line = (FIXTURES / finding.path).read_text().splitlines()[
            finding.line - 1
        ]
        assert f"expect[{finding.rule}]" in source_line


def test_suppressions_are_honored_and_counted() -> None:
    result = run_lint(FIXTURES)
    suppressed = {(f.path, f.rule) for f in result.suppressed}
    # One suppressed case per AST rule (see fixtures).
    assert suppressed == {
        ("det001_wall.py", "DET001"),
        ("det002_rng.py", "DET002"),
        ("core/det003_iter.py", "DET003"),
        ("api001_all.py", "API001"),
        ("serving/sim001_heap.py", "SIM001"),
    }
    reported = {(f.path, f.line) for f in result.findings}
    for finding in result.suppressed:
        assert (finding.path, finding.line) not in reported


def test_det001_allowlist_covers_wall_only_modules() -> None:
    result = run_lint(FIXTURES, rule_ids=["DET001"])
    assert not any(f.path == "obs/selfprof.py" for f in result.findings)


def test_det003_scope_excludes_order_insensitive_code() -> None:
    result = run_lint(FIXTURES, rule_ids=["DET003"])
    assert not any(f.path == "det003_outside_scope.py" for f in result.findings)


def test_rule_metadata() -> None:
    """Each rule carries an id, a title, and a docstringed rationale."""
    for rule_id, cls in REGISTRY.items():
        assert re.fullmatch(r"[A-Z]{3}\d{3}", rule_id)
        assert cls.id == rule_id
        assert cls.title
        assert cls.__doc__ and len(cls.__doc__.split()) >= 10


def test_expected_rule_set() -> None:
    assert RULE_IDS == ["API001", "DET001", "DET002", "DET003", "DET004", "SIM001"]
