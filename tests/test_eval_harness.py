"""Tests for repro.eval.harness."""

import pytest

from repro.eval.harness import MethodRun, tune_to_ratio


def make_run_fn(table):
    calls = []

    def run_fn(knob):
        calls.append(knob)
        ratio, time_ns = table[knob]
        return MethodRun(knob=knob, overall_ratio=ratio, mean_time_ns=time_ns)

    return run_fn, calls


def test_selects_cheapest_meeting_target():
    table = {1.0: (1.20, 10.0), 2.0: (1.04, 20.0), 3.0: (1.01, 30.0)}
    run_fn, _ = make_run_fn(table)
    tuned = tune_to_ratio("m", run_fn, [1.0, 2.0, 3.0], target_ratio=1.05)
    assert tuned.selected.knob == 2.0
    assert tuned.achieved
    assert len(tuned.runs) == 3


def test_falls_back_to_most_accurate():
    table = {1.0: (1.5, 10.0), 2.0: (1.2, 20.0)}
    run_fn, _ = make_run_fn(table)
    tuned = tune_to_ratio("m", run_fn, [1.0, 2.0], target_ratio=1.05)
    assert tuned.selected.knob == 2.0
    assert not tuned.achieved


def test_stop_early_skips_rest():
    table = {1.0: (1.04, 10.0), 2.0: (1.01, 20.0)}
    run_fn, calls = make_run_fn(table)
    tuned = tune_to_ratio("m", run_fn, [1.0, 2.0], target_ratio=1.05, stop_early=True)
    assert calls == [1.0]
    assert tuned.selected.knob == 1.0


def test_non_monotone_sweep_picks_fastest_qualifier():
    table = {1.0: (1.04, 30.0), 2.0: (1.06, 20.0), 3.0: (1.03, 10.0)}
    run_fn, _ = make_run_fn(table)
    tuned = tune_to_ratio("m", run_fn, [1.0, 2.0, 3.0], target_ratio=1.05)
    assert tuned.selected.knob == 3.0  # fastest among qualifying runs


def test_empty_knobs_rejected():
    with pytest.raises(ValueError):
        tune_to_ratio("m", lambda k: None, [], target_ratio=1.05)


def test_method_run_meets():
    run = MethodRun(knob=1.0, overall_ratio=1.05, mean_time_ns=1.0)
    assert run.meets(1.05)
    assert not run.meets(1.049)
