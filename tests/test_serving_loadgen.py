"""Tests for repro.serving.loadgen."""

import numpy as np
import pytest

from repro.serving.loadgen import (
    ClosedLoopWorkload,
    DriftingSelector,
    OpenLoopWorkload,
    QuerySelector,
    open_loop_arrivals,
    thinned_arrival_times,
)
from repro.utils.units import NS_PER_S


def test_poisson_arrivals_deterministic_and_sorted():
    workload = OpenLoopWorkload(qps=1000, n_queries=200, arrivals="poisson", seed=4)
    a = open_loop_arrivals(workload, pool_size=16)
    b = open_loop_arrivals(workload, pool_size=16)
    assert [x.time_ns for x in a] == [x.time_ns for x in b]
    assert [x.pool_index for x in a] == [x.pool_index for x in b]
    times = [x.time_ns for x in a]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_poisson_mean_rate_matches_qps():
    workload = OpenLoopWorkload(qps=5000, n_queries=4000, arrivals="poisson", seed=1)
    arrivals = open_loop_arrivals(workload, pool_size=8)
    measured = len(arrivals) * NS_PER_S / arrivals[-1].time_ns
    assert measured == pytest.approx(5000, rel=0.1)


def test_uniform_arrivals_equally_spaced():
    workload = OpenLoopWorkload(qps=1000, n_queries=10, arrivals="uniform", seed=1)
    times = [a.time_ns for a in open_loop_arrivals(workload, pool_size=4)]
    gaps = np.diff(times)
    assert np.allclose(gaps, NS_PER_S / 1000)


def test_query_ids_are_sequential():
    workload = OpenLoopWorkload(qps=100, n_queries=5, seed=0)
    assert [a.query_id for a in open_loop_arrivals(workload, 3)] == [0, 1, 2, 3, 4]


def test_selector_round_robin_without_skew():
    selector = QuerySelector(pool_size=4)
    assert [selector.select(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]


def test_selector_zipf_skews_toward_head():
    selector = QuerySelector(pool_size=50, zipf_s=1.2, seed=7)
    picks = np.array([selector.select(i) for i in range(2000)])
    head = (picks < 5).mean()
    tail = (picks >= 45).mean()
    assert head > 0.4
    assert head > 5 * tail
    assert picks.min() >= 0 and picks.max() < 50


def test_selector_zipf_deterministic():
    a = QuerySelector(8, zipf_s=1.0, seed=3)
    b = QuerySelector(8, zipf_s=1.0, seed=3)
    assert [a.select(i) for i in range(50)] == [b.select(i) for i in range(50)]


def test_drifting_selector_rotates_ranks_over_time():
    base = QuerySelector(pool_size=10, zipf_s=1.0, seed=5)
    drifting = DriftingSelector(
        pool_size=10, zipf_s=1.0, drift_period_ns=1_000.0, stride=3, seed=5
    )
    ranks = [base.select(i) for i in range(20)]
    # At t=0 the instantaneous skew is identical to QuerySelector.
    assert [drifting.select(i, time_ns=0.0) for i in range(20)] == ranks
    # After two full periods the mapping has rotated by 2 * stride.
    drifting = DriftingSelector(
        pool_size=10, zipf_s=1.0, drift_period_ns=1_000.0, stride=3, seed=5
    )
    rotated = [drifting.select(i, time_ns=2_500.0) for i in range(20)]
    assert rotated == [(r + 6) % 10 for r in ranks]


def test_drifting_selector_deterministic():
    make = lambda: DriftingSelector(8, zipf_s=1.1, drift_period_ns=500.0, seed=9)
    a, b = make(), make()
    picks = [(i, float(i) * 123.0) for i in range(50)]
    assert [a.select(i, t) for i, t in picks] == [b.select(i, t) for i, t in picks]


def test_drifting_selector_validation():
    with pytest.raises(ValueError, match="zipf_s"):
        DriftingSelector(8, zipf_s=0.0, drift_period_ns=100.0)
    with pytest.raises(ValueError, match="drift_period_ns"):
        DriftingSelector(8, zipf_s=1.0, drift_period_ns=0.0)
    with pytest.raises(ValueError, match="stride"):
        DriftingSelector(8, zipf_s=1.0, drift_period_ns=100.0, stride=0)


def test_thinned_arrivals_deterministic_and_sorted():
    rate = lambda t: 2_000.0
    a = thinned_arrival_times(rate, 2_000.0, 100, seed=3)
    b = thinned_arrival_times(rate, 2_000.0, 100, seed=3)
    assert np.array_equal(a, b)
    assert np.all(np.diff(a) > 0)
    assert len(a) == 100
    assert not np.array_equal(a, thinned_arrival_times(rate, 2_000.0, 100, seed=4))


def test_thinned_arrivals_track_the_rate_function():
    # Twice the rate inside [0, window) than after it: the first half of
    # the arrivals should land in a window noticeably shorter than the
    # second half's span.
    window = 50e6
    rate = lambda t: 4_000.0 if t < window else 1_000.0
    times = thinned_arrival_times(rate, 4_000.0, 400, seed=2)
    inside = (times < window).sum()
    gaps_in = np.diff(times[times < window]).mean()
    gaps_out = np.diff(times[times >= window]).mean()
    assert inside > 0
    assert gaps_out > 2 * gaps_in


def test_thinned_arrivals_reject_rate_above_bound():
    with pytest.raises(ValueError, match="exceeds rate_max_qps"):
        thinned_arrival_times(lambda t: 3_000.0, 2_000.0, 10, seed=1)
    with pytest.raises(ValueError, match="rate_max_qps"):
        thinned_arrival_times(lambda t: 1.0, 0.0, 10)
    with pytest.raises(ValueError, match="n must be"):
        thinned_arrival_times(lambda t: 1.0, 100.0, 0)


def test_workload_validation():
    with pytest.raises(ValueError):
        OpenLoopWorkload(qps=0, n_queries=1)
    with pytest.raises(ValueError):
        OpenLoopWorkload(qps=10, n_queries=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(qps=10, n_queries=1, arrivals="burst")
    with pytest.raises(ValueError):
        ClosedLoopWorkload(concurrency=0, n_queries=1)
    with pytest.raises(ValueError):
        ClosedLoopWorkload(concurrency=1, n_queries=1, think_time_ns=-1.0)
    with pytest.raises(ValueError):
        QuerySelector(pool_size=0)
    with pytest.raises(ValueError):
        QuerySelector(pool_size=4, zipf_s=-0.1)
