"""Tests for repro.serving.loadgen."""

import numpy as np
import pytest

from repro.serving.loadgen import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    QuerySelector,
    open_loop_arrivals,
)
from repro.utils.units import NS_PER_S


def test_poisson_arrivals_deterministic_and_sorted():
    workload = OpenLoopWorkload(qps=1000, n_queries=200, arrivals="poisson", seed=4)
    a = open_loop_arrivals(workload, pool_size=16)
    b = open_loop_arrivals(workload, pool_size=16)
    assert [x.time_ns for x in a] == [x.time_ns for x in b]
    assert [x.pool_index for x in a] == [x.pool_index for x in b]
    times = [x.time_ns for x in a]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_poisson_mean_rate_matches_qps():
    workload = OpenLoopWorkload(qps=5000, n_queries=4000, arrivals="poisson", seed=1)
    arrivals = open_loop_arrivals(workload, pool_size=8)
    measured = len(arrivals) * NS_PER_S / arrivals[-1].time_ns
    assert measured == pytest.approx(5000, rel=0.1)


def test_uniform_arrivals_equally_spaced():
    workload = OpenLoopWorkload(qps=1000, n_queries=10, arrivals="uniform", seed=1)
    times = [a.time_ns for a in open_loop_arrivals(workload, pool_size=4)]
    gaps = np.diff(times)
    assert np.allclose(gaps, NS_PER_S / 1000)


def test_query_ids_are_sequential():
    workload = OpenLoopWorkload(qps=100, n_queries=5, seed=0)
    assert [a.query_id for a in open_loop_arrivals(workload, 3)] == [0, 1, 2, 3, 4]


def test_selector_round_robin_without_skew():
    selector = QuerySelector(pool_size=4)
    assert [selector.select(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]


def test_selector_zipf_skews_toward_head():
    selector = QuerySelector(pool_size=50, zipf_s=1.2, seed=7)
    picks = np.array([selector.select(i) for i in range(2000)])
    head = (picks < 5).mean()
    tail = (picks >= 45).mean()
    assert head > 0.4
    assert head > 5 * tail
    assert picks.min() >= 0 and picks.max() < 50


def test_selector_zipf_deterministic():
    a = QuerySelector(8, zipf_s=1.0, seed=3)
    b = QuerySelector(8, zipf_s=1.0, seed=3)
    assert [a.select(i) for i in range(50)] == [b.select(i) for i in range(50)]


def test_workload_validation():
    with pytest.raises(ValueError):
        OpenLoopWorkload(qps=0, n_queries=1)
    with pytest.raises(ValueError):
        OpenLoopWorkload(qps=10, n_queries=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(qps=10, n_queries=1, arrivals="burst")
    with pytest.raises(ValueError):
        ClosedLoopWorkload(concurrency=0, n_queries=1)
    with pytest.raises(ValueError):
        ClosedLoopWorkload(concurrency=1, n_queries=1, think_time_ns=-1.0)
    with pytest.raises(ValueError):
        QuerySelector(pool_size=0)
    with pytest.raises(ValueError):
        QuerySelector(pool_size=4, zipf_s=-0.1)
