"""Engine-level tests: suppression parsing, JSON schema stability,
CLI wiring, and the zero-finding baseline on the committed tree."""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    collect_suppressions,
    run_lint,
    to_json,
    to_text,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: The repro-lint/1 payload's exact key set; adding/renaming keys is a
#: schema bump and must update this test *and* the schema tag.
JSON_KEYS = {
    "schema",
    "root",
    "rules",
    "files_checked",
    "findings",
    "counts",
    "suppressed_count",
}
FINDING_KEYS = {"rule", "path", "line", "col", "message"}


# -- suppression parsing ------------------------------------------------------


def test_suppression_single_and_multi_rule() -> None:
    source = "x = 1  # repro: allow[DET001]\ny = 2  # repro: allow[DET002, SIM001]\n"
    assert collect_suppressions(source) == {
        1: {"DET001"},
        2: {"DET002", "SIM001"},
    }


def test_suppression_inside_string_literal_is_ignored() -> None:
    source = 's = "# repro: allow[DET001]"\n'
    assert collect_suppressions(source) == {}


def test_suppression_without_rule_id_is_not_a_waiver() -> None:
    assert collect_suppressions("x = 1  # repro: allow\n") == {}
    assert collect_suppressions("x = 1  # repro: allow[]\n") == {}


# -- engine behaviour ---------------------------------------------------------


def test_unknown_rule_selection_raises() -> None:
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint(FIXTURES, rule_ids=["NOPE001"])


def test_missing_root_raises(tmp_path: Path) -> None:
    with pytest.raises(ValueError, match="not a directory"):
        run_lint(tmp_path / "nowhere")


def test_syntax_error_is_reported_not_raised(tmp_path: Path) -> None:
    (tmp_path / "broken.py").write_text("def f(:\n")
    result = run_lint(tmp_path)
    assert [f.rule for f in result.findings] == ["PARSE001"]
    assert result.findings[0].path == "broken.py"


def test_findings_are_sorted_and_deterministic() -> None:
    first = run_lint(FIXTURES)
    second = run_lint(FIXTURES)
    assert [f.as_dict() for f in first.findings] == [
        f.as_dict() for f in second.findings
    ]
    keys = [(f.path, f.line, f.col, f.rule) for f in first.findings]
    assert keys == sorted(keys)


# -- JSON / text output -------------------------------------------------------


def test_json_schema_stability() -> None:
    payload = to_json(run_lint(FIXTURES))
    assert payload["schema"] == "repro-lint/1"
    assert set(payload) == JSON_KEYS
    assert payload["files_checked"] == len(list(FIXTURES.rglob("*.py")))
    assert payload["rules"] == sorted(payload["rules"])
    for finding in payload["findings"]:
        assert set(finding) == FINDING_KEYS
    assert payload["counts"] == {
        rule: sum(1 for f in payload["findings"] if f["rule"] == rule)
        for rule in {f["rule"] for f in payload["findings"]}
    }
    assert payload["suppressed_count"] == 5
    # The payload is pure JSON (round-trips without loss).
    assert json.loads(json.dumps(payload)) == payload


def test_text_output_format() -> None:
    result = run_lint(FIXTURES)
    text = to_text(result)
    lines = text.splitlines()
    assert lines[-1].startswith(f"checked {result.files_checked} file(s):")
    first = result.findings[0]
    assert lines[0] == (
        f"{first.path}:{first.line}:{first.col + 1}: {first.rule} {first.message}"
    )


# -- CLI ----------------------------------------------------------------------


def test_cli_lint_fixtures_json_exit_code() -> None:
    out = io.StringIO()
    code = main(["lint", "--root", str(FIXTURES), "--format", "json"], out=out)
    assert code == 1
    payload = json.loads(out.getvalue())
    assert payload["schema"] == "repro-lint/1"
    assert payload["findings"]


def test_cli_lint_select_single_rule() -> None:
    out = io.StringIO()
    code = main(["lint", "--root", str(FIXTURES), "--select", "DET004"], out=out)
    assert code == 1
    body = out.getvalue()
    assert "DET004" in body
    assert "DET001" not in body


def test_cli_lint_unknown_rule_is_a_usage_error() -> None:
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["lint", "--root", str(FIXTURES), "--select", "NOPE001"], out=io.StringIO())


def test_cli_list_rules() -> None:
    out = io.StringIO()
    assert main(["lint", "--list-rules"], out=out) == 0
    body = out.getvalue()
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "API001", "SIM001"):
        assert rule_id in body
    assert "repro: allow[RULE-ID]" in body


def test_committed_tree_is_clean() -> None:
    """The meta-contract: ``repro lint`` exits 0 on the shipped package."""
    out = io.StringIO()
    code = main(["lint", "--format", "json"], out=out)
    payload = json.loads(out.getvalue())
    assert payload["findings"] == [], payload["findings"]
    assert code == 0
    # The default root is the installed package itself.
    assert payload["root"].endswith("repro")
    assert payload["files_checked"] > 90
