"""Tests for repro.analysis.machine_model."""

import pytest

from repro.analysis.machine_model import DEFAULT_MACHINE, MachineModel
from repro.stats import OpCounts


def test_compute_is_linear_in_counts():
    machine = MachineModel()
    ops = OpCounts(projection_scalar_ops=100, candidate_fetches=2)
    doubled = ops.scaled(2.0)
    assert machine.compute_ns(doubled) == pytest.approx(2 * machine.compute_ns(ops))


def test_all_counters_contribute():
    machine = MachineModel()
    base = machine.compute_ns(OpCounts())
    assert base == 0.0
    for field_name in (
        "projection_scalar_ops",
        "distance_scalar_ops",
        "candidate_fetches",
        "bucket_lookups",
        "tree_node_visits",
        "btree_entry_scans",
        "heap_ops",
        "rounds",
    ):
        ops = OpCounts(**{field_name: 10})
        assert machine.compute_ns(ops) > 0, field_name


def test_inmemory_footprint_stall():
    """Sec. 4.5: in-memory E2LSH runs ~10% slower than the same compute
    with a small footprint, i.e. T_compute = 0.9 * T_E2LSH."""
    machine = MachineModel()
    ops = OpCounts(distance_scalar_ops=1000)
    inmem = machine.inmemory_e2lsh_ns(ops)
    pure = machine.compute_ns(ops)
    assert pure / inmem == pytest.approx(0.9)


def test_default_instance_is_calibrated():
    assert DEFAULT_MACHINE.ns_per_candidate_fetch >= 10
    assert DEFAULT_MACHINE.ns_per_projection_op < 1.0


def test_opcounts_add_and_scale():
    a = OpCounts(rounds=1, heap_ops=5)
    b = OpCounts(rounds=2, heap_ops=7, candidate_fetches=3)
    a.add(b)
    assert a.rounds == 3 and a.heap_ops == 12 and a.candidate_fetches == 3
    half = a.scaled(0.5)
    assert half.heap_ops == 6
