"""Tests for repro.storage.profiles and interface models."""

import pytest

from repro.storage.interface import StorageInterface
from repro.storage.profiles import (
    DEVICE_PROFILES,
    INTERFACE_PROFILES,
    STORAGE_CONFIGS,
    make_engine,
    make_volume,
)
from repro.storage.blockstore import MemoryBlockStore
from repro.utils.units import NS_PER_S


def test_device_catalog_matches_table2_calibration():
    cssd = DEVICE_PROFILES["cssd"]
    assert cssd.qd1_iops == pytest.approx(7_200)
    assert cssd.max_iops == 273_000
    essd = DEVICE_PROFILES["essd"]
    assert essd.qd1_iops == pytest.approx(27_600)
    assert essd.max_iops == 1_400_000
    xlfdd = DEVICE_PROFILES["xlfdd"]
    assert xlfdd.qd1_iops == pytest.approx(132_300)
    assert xlfdd.max_iops == 3_860_000


def test_interface_catalog_matches_table3():
    assert INTERFACE_PROFILES["io_uring"].cpu_overhead_ns == 1_000
    assert INTERFACE_PROFILES["spdk"].cpu_overhead_ns == 350
    assert INTERFACE_PROFILES["xlfdd"].cpu_overhead_ns == 50
    assert INTERFACE_PROFILES["mmap_sync"].synchronous
    assert not INTERFACE_PROFILES["io_uring"].synchronous


def test_max_iops_per_core_is_reciprocal():
    interface = StorageInterface(name="x", cpu_overhead_ns=500.0)
    assert interface.max_iops_per_core == pytest.approx(NS_PER_S / 500.0)


def test_storage_configs_match_table5():
    assert STORAGE_CONFIGS["cssd_x4"].count == 4
    assert STORAGE_CONFIGS["essd_x8"].total_max_iops == pytest.approx(8 * 1_400_000)
    assert STORAGE_CONFIGS["xlfdd_x12"].count == 12


def test_make_volume_and_engine():
    volume = make_volume("essd", 2)
    assert volume.device_count == 2
    engine = make_engine(MemoryBlockStore(), device="cssd", count=1, interface="spdk")
    assert engine.interface.name == "spdk"
    with pytest.raises(KeyError):
        make_volume("floppy", 1)
    with pytest.raises(KeyError):
        make_engine(MemoryBlockStore(), interface="carrier-pigeon")


def test_interface_validation():
    with pytest.raises(ValueError):
        StorageInterface(name="bad", cpu_overhead_ns=0)
