"""Integration tests: the full pipeline across modules.

These exercise the path a user takes: synthesize a dataset, build the
in-memory and on-storage indices, answer queries through the simulated
storage engine, and score accuracy against exact ground truth.
"""

import numpy as np
import pytest

from repro.baselines.qalsh import QALSHIndex
from repro.baselines.srs import SRSIndex
from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.datasets.registry import load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio, recall_at_k
from repro.storage.blockstore import FileBlockStore, MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


@pytest.fixture(scope="module", params=["sift", "glove"])
def bundle(request):
    dataset = load_dataset(request.param, n=3000, n_queries=15, seed=3)
    truth = exact_knn(dataset.data, dataset.queries, k=10)
    params = E2LSHParams(n=dataset.n, rho=0.33, gamma=0.5, s_factor=16)
    ladder = RadiusLadder.for_data(dataset.data, params.c)
    inmem = E2LSHIndex(dataset.data, params, ladder=ladder, seed=7)
    storage = E2LSHoSIndex.build(
        dataset.data, params, store=MemoryBlockStore(), ladder=ladder, seed=7,
        bank=inmem.bank,
    )
    return dataset, truth, inmem, storage


def test_e2lsh_reaches_reasonable_accuracy(bundle):
    dataset, truth, inmem, _ = bundle
    answers = inmem.query_batch(dataset.queries, k=1)
    ratio = overall_ratio([a.distances for a in answers], truth, k=1)
    assert ratio < 1.25
    assert recall_at_k([a.ids for a in answers], truth, k=1) > 0.4


def test_storage_execution_matches_inmemory_accuracy(bundle):
    dataset, truth, inmem, storage = bundle
    engine = AsyncIOEngine(
        make_volume("cssd", 1), INTERFACE_PROFILES["io_uring"], storage.built.store
    )
    result = storage.run(dataset.queries, engine, k=1)
    inmem_answers = inmem.query_batch(dataset.queries, k=1)
    os_ratio = overall_ratio([a.distances for a in result.answers], truth, k=1)
    mem_ratio = overall_ratio([a.distances for a in inmem_answers], truth, k=1)
    assert os_ratio == pytest.approx(mem_ratio, abs=0.02)


def test_topk_pipeline(bundle):
    dataset, truth, inmem, storage = bundle
    engine = AsyncIOEngine(
        make_volume("essd", 1), INTERFACE_PROFILES["spdk"], storage.built.store
    )
    result = storage.run(dataset.queries, engine, k=10)
    ratio = overall_ratio([a.distances for a in result.answers], truth, k=10)
    assert ratio < 2.0  # top-10 on 3k objects with a small budget
    for answer in result.answers:
        assert answer.ids.size <= 10
        assert np.all(np.diff(answer.distances) >= 0)


def test_all_methods_beat_random_guessing(bundle):
    dataset, truth, _, _ = bundle
    rng = np.random.default_rng(0)
    random_ratio = overall_ratio(
        [
            np.sort(np.linalg.norm(dataset.data[rng.integers(0, dataset.n, 1)] - q, axis=1))
            for q in dataset.queries.astype(np.float64)
        ],
        truth,
        k=1,
    )
    srs = SRSIndex(dataset.data, seed=5)
    srs_answers = srs.query_batch(dataset.queries, k=1, t_prime=100)
    srs_ratio = overall_ratio([a.distances for a in srs_answers], truth, k=1)
    qalsh = QALSHIndex(dataset.data, seed=5)
    qalsh_answers = qalsh.query_batch(dataset.queries, k=1)
    qalsh_ratio = overall_ratio([a.distances for a in qalsh_answers], truth, k=1)
    assert srs_ratio < random_ratio
    assert qalsh_ratio < random_ratio


def test_file_backed_store_end_to_end(tmp_path_factory):
    """The index works identically on a real on-disk file."""
    dataset = load_dataset("sift", n=1200, n_queries=6, seed=11)
    params = E2LSHParams(n=dataset.n, rho=0.33, gamma=0.6, s_factor=8)
    path = tmp_path_factory.mktemp("index") / "e2lshos.idx"
    with FileBlockStore(path) as store:
        storage = E2LSHoSIndex.build(dataset.data, params, store=store, seed=2)
        engine = AsyncIOEngine(
            make_volume("cssd", 1), INTERFACE_PROFILES["io_uring"], store
        )
        result = storage.run(dataset.queries, engine, k=1)
        memory_twin = E2LSHoSIndex.build(
            dataset.data, params, store=MemoryBlockStore(), seed=2
        )
        twin_engine = AsyncIOEngine(
            make_volume("cssd", 1), INTERFACE_PROFILES["io_uring"], memory_twin.built.store
        )
        twin = memory_twin.run(dataset.queries, twin_engine, k=1)
        for a, b in zip(result.answers, twin.answers):
            np.testing.assert_array_equal(a.ids, b.ids)
