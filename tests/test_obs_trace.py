"""Tests for repro.obs.trace — span recording and latency attribution."""

import json
import math

import pytest

from repro.obs.trace import NULL_TRACER, SpanTracer, Tracer, attribute
from repro.storage.engine import Completion, TaskProfile


def completion(tag, finish_ns, start_ns, compute_ns=0.0, io_cpu_ns=0.0, io_wait_ns=0.0, io_count=0):
    return Completion(
        index=0,
        tag=tag,
        result=None,
        finish_ns=finish_ns,
        profile=TaskProfile(
            start_ns=start_ns,
            compute_ns=compute_ns,
            io_cpu_ns=io_cpu_ns,
            io_wait_ns=io_wait_ns,
            io_count=io_count,
        ),
    )


def primary_win_tracer():
    """One query, one shard, primary wins: admit 100, finish 1100."""
    tracer = SpanTracer()
    tracer.attempt_enqueued(7, shard=0, replica=0, hedge=False, now_ns=100.0)
    tracer.query_admitted(7, now_ns=100.0)
    tracer.attempt_flushed(7, shard=0, replica=0, now_ns=150.0)
    tracer.attempt_finished(
        7,
        shard=0,
        replica=0,
        completion=completion(
            7, finish_ns=1100.0, start_ns=200.0, compute_ns=300.0,
            io_cpu_ns=100.0, io_wait_ns=500.0, io_count=4,
        ),
        winner=True,
    )
    tracer.query_completed(7, finish_ns=1100.0)
    return tracer


# -- the no-op tracer ---------------------------------------------------------


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, Tracer)
    # Every hook is a harmless stub.
    NULL_TRACER.query_admitted(1, 0.0)
    NULL_TRACER.query_rejected(1, 0.0)
    NULL_TRACER.query_completed(1, 0.0)
    NULL_TRACER.attempt_enqueued(1, 0, 0, False, 0.0)
    NULL_TRACER.attempt_flushed(1, 0, 0, 0.0)
    NULL_TRACER.attempt_cancelled(1, 0, 0, 0.0)
    NULL_TRACER.hedge_armed(1, 0, 0.0)
    NULL_TRACER.hedge_fired(1, 0, 1, 0.0)
    NULL_TRACER.hedge_disarmed(1, 0, 0.0)
    NULL_TRACER.hedge_suppressed(1, 0, 0.0)


# -- span recording -----------------------------------------------------------


def test_span_tree_records_milestones():
    tracer = primary_win_tracer()
    (span,) = tracer.completed_spans()
    assert span.query_id == 7
    assert span.latency_ns == pytest.approx(1000.0)
    sub = span.subqueries[0]
    assert sub.winner == 0
    attempt = sub.attempts[0]
    assert (attempt.enqueue_ns, attempt.flush_ns) == (100.0, 150.0)
    assert (attempt.start_ns, attempt.finish_ns) == (200.0, 1100.0)
    assert attempt.outcome == "win"
    assert attempt.io_count == 4


def test_incomplete_query_is_excluded_from_completed_spans():
    tracer = SpanTracer()
    tracer.attempt_enqueued(1, shard=0, replica=0, hedge=False, now_ns=0.0)
    tracer.query_admitted(1, now_ns=0.0)
    assert tracer.completed_spans() == []


def test_rejections_are_counted_not_spanned():
    tracer = SpanTracer()
    tracer.query_rejected(3, now_ns=50.0)
    assert tracer.rejected == [(3, 50.0)]
    assert 3 not in tracer.spans


# -- attribution --------------------------------------------------------------


def test_attribution_sums_exactly_to_latency():
    (attribution,) = primary_win_tracer().attributions()
    assert attribution.batch_ns == pytest.approx(50.0)   # 100 -> 150
    assert attribution.queue_ns == pytest.approx(50.0)   # 150 -> 200
    assert attribution.hash_ns == pytest.approx(300.0)
    assert attribution.io_ns == pytest.approx(600.0)
    assert attribution.hedge_ns == 0.0
    assert attribution.other_ns == 0.0
    parts = (
        attribution.batch_ns + attribution.queue_ns + attribution.hash_ns
        + attribution.io_ns + attribution.hedge_ns + attribution.other_ns
    )
    assert parts == pytest.approx(attribution.latency_ns)
    assert not attribution.hedge_won
    assert attribution.tail_shard == 0


def test_attribution_charges_hedge_wait_when_duplicate_wins():
    tracer = SpanTracer()
    tracer.attempt_enqueued(2, shard=0, replica=0, hedge=False, now_ns=0.0)
    tracer.query_admitted(2, now_ns=0.0)
    tracer.hedge_armed(2, shard=0, deadline_ns=400.0)
    tracer.attempt_flushed(2, shard=0, replica=0, now_ns=10.0)
    tracer.hedge_fired(2, shard=0, replica=1, now_ns=400.0)
    tracer.attempt_enqueued(2, shard=0, replica=1, hedge=True, now_ns=400.0)
    tracer.attempt_flushed(2, shard=0, replica=1, now_ns=420.0)
    # The duplicate answers first; the slow primary straggles in after.
    tracer.attempt_finished(
        2, shard=0, replica=1,
        completion=completion(2, finish_ns=900.0, start_ns=450.0, compute_ns=100.0,
                              io_cpu_ns=50.0, io_wait_ns=300.0),
        winner=True,
    )
    tracer.query_completed(2, finish_ns=900.0)
    tracer.attempt_finished(
        2, shard=0, replica=0,
        completion=completion(2, finish_ns=2000.0, start_ns=20.0),
        winner=False,
    )
    (attribution,) = tracer.attributions()
    assert attribution.hedge_won
    assert attribution.hedge_ns == pytest.approx(400.0)  # admit -> duplicate enqueue
    assert attribution.batch_ns == pytest.approx(20.0)
    assert attribution.queue_ns == pytest.approx(30.0)
    assert attribution.other_ns == 0.0
    sub = tracer.spans[2].subqueries[0]
    assert sub.attempts[sub.winner].hedge
    assert sub.attempt_for(0).outcome == "loss"


def test_attribution_picks_the_last_finishing_shard():
    tracer = SpanTracer()
    for shard, finish in ((0, 500.0), (1, 1500.0)):
        tracer.attempt_enqueued(4, shard=shard, replica=0, hedge=False, now_ns=0.0)
        tracer.attempt_flushed(4, shard=shard, replica=0, now_ns=5.0)
    tracer.query_admitted(4, now_ns=0.0)
    for shard, finish in ((0, 500.0), (1, 1500.0)):
        tracer.attempt_finished(
            4, shard=shard, replica=0,
            completion=completion(4, finish_ns=finish, start_ns=10.0),
            winner=True,
        )
    tracer.query_completed(4, finish_ns=1500.0)
    (attribution,) = tracer.attributions()
    assert attribution.tail_shard == 1


def test_attribution_requires_a_completed_subquery():
    tracer = SpanTracer()
    tracer.query_admitted(9, now_ns=0.0)
    tracer.query_completed(9, finish_ns=10.0)
    with pytest.raises(ValueError):
        attribute(tracer.spans[9])


def test_attempt_for_unknown_replica_raises():
    tracer = primary_win_tracer()
    with pytest.raises(KeyError):
        tracer.spans[7].subqueries[0].attempt_for(5)


# -- export -------------------------------------------------------------------


def test_spans_payload_is_strict_json_without_nan():
    tracer = SpanTracer()
    tracer.attempt_enqueued(1, shard=0, replica=0, hedge=False, now_ns=0.0)
    tracer.query_admitted(1, now_ns=0.0)
    tracer.attempt_flushed(1, shard=0, replica=0, now_ns=5.0)
    tracer.attempt_finished(
        1, shard=0, replica=0,
        completion=completion(1, finish_ns=100.0, start_ns=10.0), winner=True,
    )
    # A cancelled hedge loser leaves flush/start/finish as NaN.
    tracer.attempt_enqueued(1, shard=0, replica=1, hedge=True, now_ns=50.0)
    tracer.attempt_cancelled(1, shard=0, replica=1, now_ns=60.0)
    tracer.query_completed(1, finish_ns=100.0)
    encoded = json.dumps(tracer.spans_payload(), allow_nan=False)  # must not raise
    loser = json.loads(encoded)["queries"][0]["subqueries"][0]["attempts"][1]
    assert loser["outcome"] == "cancelled"
    assert loser["flush_ns"] is None
    assert loser["cancel_ns"] == 60.0


def test_chrome_trace_events_are_balanced_and_typed():
    tracer = primary_win_tracer()
    trace = tracer.chrome_trace()
    json.dumps(trace, allow_nan=False)  # strict JSON
    events = trace["traceEvents"]
    opens = [e for e in events if e["ph"] == "b"]
    closes = [e for e in events if e["ph"] == "e"]
    slices = [e for e in events if e["ph"] == "X"]
    assert len(opens) == len(closes) == 1
    assert opens[0]["id"] == closes[0]["id"]
    (attempt_slice,) = slices
    # Timestamps are microseconds: start 200 ns -> 0.2 us, dur 900 ns.
    assert attempt_slice["ts"] == pytest.approx(0.2)
    assert attempt_slice["dur"] == pytest.approx(0.9)
    assert attempt_slice["pid"] == 1  # shard 0 renders as process 1
    assert trace["spans"]["queries"][0]["query_id"] == 7


def test_write_is_deterministic(tmp_path):
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    primary_win_tracer().write(path_a)
    primary_win_tracer().write(path_b)
    assert path_a.read_bytes() == path_b.read_bytes()
    assert math.isnan(TaskProfile().start_ns)  # default sentinel intact
