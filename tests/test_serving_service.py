"""End-to-end tests for repro.serving.service."""

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.serving.dispatcher import DispatchConfig
from repro.serving.loadgen import ClosedLoopWorkload, OpenLoopWorkload
from repro.serving.replication import FaultSpec, RoutingConfig
from repro.serving.service import QueryService
from repro.serving.sharding import ShardedIndex

K = 3


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(13)
    data = rng.standard_normal((300, 16)).astype(np.float32)
    pool = rng.standard_normal((12, 16)).astype(np.float32)
    return data, pool


@pytest.fixture(scope="module")
def sharded(dataset):
    data, _ = dataset
    return ShardedIndex.build(
        data, E2LSHParams(n=300), n_shards=2, scheme="hash", seed=13
    )


def open_workload(qps=50_000.0, n_queries=40, **kwargs):
    return OpenLoopWorkload(qps=qps, n_queries=n_queries, seed=2, **kwargs)


def test_open_loop_completes_every_admitted_query(sharded, dataset):
    _, pool = dataset
    service = QueryService(sharded)
    report = service.run_open_loop(pool, open_workload(), k=K)
    assert report.completed == 40
    assert report.rejected == 0
    assert sorted(service.answers) == list(range(40))
    assert all(a.ids.size <= K for a in service.answers.values())


def test_open_loop_latencies_are_sane(sharded, dataset):
    _, pool = dataset
    service = QueryService(sharded)
    report = service.run_open_loop(pool, open_workload(), k=K)
    latencies = service.stats.latencies_ns()
    assert (latencies > 0).all()
    assert report.p50_ns <= report.p95_ns <= report.p99_ns <= report.max_latency_ns
    assert report.throughput_qps > 0
    assert sum(report.shard_io_counts) > 0


def test_service_is_deterministic(sharded, dataset):
    _, pool = dataset
    a = QueryService(sharded).run_open_loop(pool, open_workload(), k=K)
    b = QueryService(sharded).run_open_loop(pool, open_workload(), k=K)
    assert a == b


def test_service_answers_match_batch_scatter_gather(sharded, dataset):
    """Queueing changes *when* queries run, never *what* they answer."""
    _, pool = dataset
    service = QueryService(sharded)
    service.run_open_loop(pool, open_workload(n_queries=12), k=K)
    batch = sharded.run(pool, k=K)
    for record in service.stats.records:
        served = service.answers[record.query_id]
        expected = batch.answers[record.pool_index]
        assert np.allclose(served.distances, expected.distances)
        assert set(served.ids.tolist()) == set(expected.ids.tolist())


def test_open_loop_sheds_load_when_queues_bounded(sharded, dataset):
    _, pool = dataset
    service = QueryService(sharded, dispatch=DispatchConfig(queue_capacity=2))
    report = service.run_open_loop(
        pool, open_workload(qps=500_000.0, n_queries=60), k=K
    )
    assert report.rejected > 0
    assert report.completed + report.rejected == 60
    assert report.completed == len(service.answers)


def test_closed_loop_completes_exact_count(sharded, dataset):
    _, pool = dataset
    service = QueryService(sharded)
    workload = ClosedLoopWorkload(concurrency=8, n_queries=30, seed=3)
    report = service.run_closed_loop(pool, workload, k=K)
    assert report.completed == 30
    assert sorted(service.answers) == list(range(30))


def test_closed_loop_think_time_lowers_throughput(sharded, dataset):
    _, pool = dataset
    fast = QueryService(sharded).run_closed_loop(
        pool, ClosedLoopWorkload(concurrency=4, n_queries=20, seed=3), k=K
    )
    slow = QueryService(sharded).run_closed_loop(
        pool,
        ClosedLoopWorkload(concurrency=4, n_queries=20, think_time_ns=2e6, seed=3),
        k=K,
    )
    assert slow.throughput_qps < fast.throughput_qps


def test_more_concurrency_more_throughput(sharded, dataset):
    _, pool = dataset
    one = QueryService(sharded).run_closed_loop(
        pool, ClosedLoopWorkload(concurrency=1, n_queries=24, seed=3), k=K
    )
    many = QueryService(sharded).run_closed_loop(
        pool, ClosedLoopWorkload(concurrency=16, n_queries=24, seed=3), k=K
    )
    assert many.throughput_qps > 1.5 * one.throughput_qps


def test_micro_batching_batches_bursts(sharded, dataset):
    _, pool = dataset
    service = QueryService(
        sharded, dispatch=DispatchConfig(max_batch=8, max_delay_ns=1e6)
    )
    report = service.run_open_loop(
        pool, open_workload(qps=200_000.0, n_queries=32), k=K
    )
    assert report.mean_batch_size > 1.5


def test_batching_delay_adds_latency_at_light_load(sharded, dataset):
    _, pool = dataset
    light = open_workload(qps=100.0, n_queries=10)
    eager = QueryService(
        sharded, dispatch=DispatchConfig(max_batch=1, max_delay_ns=0.0)
    ).run_open_loop(pool, light, k=K)
    patient = QueryService(
        sharded, dispatch=DispatchConfig(max_batch=64, max_delay_ns=3e6)
    ).run_open_loop(pool, light, k=K)
    # At 100 q/s the size trigger never fires: every query waits out the
    # full 3 ms time trigger before dispatch.
    assert patient.p50_ns >= eager.p50_ns + 2.9e6


def test_zipf_reuse_repeats_pool_queries(sharded, dataset):
    _, pool = dataset
    service = QueryService(sharded)
    service.run_open_loop(
        pool, open_workload(n_queries=40, zipf_s=1.5), k=K
    )
    picks = [record.pool_index for record in service.stats.records]
    assert len(set(picks)) < len(picks)  # reuse happened


# -- replication -------------------------------------------------------------


@pytest.fixture(scope="module")
def replicated(dataset):
    data, _ = dataset
    return ShardedIndex.build(
        data,
        E2LSHParams(n=300),
        n_shards=2,
        scheme="hash",
        seed=13,
        replicas=2,
        faults=(FaultSpec(shard=0, replica=1, latency_multiplier=4.0),),
    )


@pytest.mark.parametrize("policy", ["round_robin", "least_outstanding", "hedged"])
def test_replicated_answers_match_single_copy(sharded, replicated, dataset, policy):
    """Routing and hedging change *when* queries finish, never *what*
    they answer — even with a degraded replica in the group."""
    _, pool = dataset
    workload = open_workload(n_queries=24)
    single = QueryService(sharded)
    single.run_open_loop(pool, workload, k=K)
    replica = QueryService(replicated, routing=RoutingConfig(policy=policy))
    report = replica.run_open_loop(pool, workload, k=K)
    assert report.completed == 24
    assert sorted(replica.answers) == sorted(single.answers)
    for query_id, expected in single.answers.items():
        served = replica.answers[query_id]
        assert np.array_equal(served.ids, expected.ids)
        assert np.array_equal(served.distances, expected.distances)


def test_replicated_service_is_deterministic(replicated, dataset):
    _, pool = dataset
    routing = RoutingConfig(policy="hedged")
    a = QueryService(replicated, routing=routing).run_open_loop(
        pool, open_workload(), k=K
    )
    b = QueryService(replicated, routing=routing).run_open_loop(
        pool, open_workload(), k=K
    )
    assert a == b


def test_replicated_report_carries_per_replica_columns(replicated, dataset):
    _, pool = dataset
    service = QueryService(replicated)
    report = service.run_open_loop(pool, open_workload(), k=K)
    assert report.n_replicas == 2
    assert all(len(row) == 2 for row in report.replica_io_counts)
    assert sum(report.shard_io_counts) == sum(
        count for row in report.replica_io_counts for count in row
    )
    # Round-robin spreads sub-queries over both replicas of every shard.
    assert all(min(row) > 0 for row in report.replica_io_counts)


def test_hedged_service_reports_hedge_ledger(replicated, dataset):
    _, pool = dataset
    service = QueryService(
        replicated, routing=RoutingConfig(policy="hedged", hedge_min_observations=4)
    )
    report = service.run_open_loop(pool, open_workload(n_queries=60), k=K)
    assert report.completed == 60
    assert report.hedges_armed > 0
    # Every armed timer is accounted for: cancelled, issued, or suppressed.
    assert (
        report.hedges_cancelled + report.hedges_issued + report.hedges_suppressed
        == report.hedges_armed
    )
    assert report.hedge_wins + report.hedge_losses == report.hedges_issued


def test_closed_loop_works_with_replicas(replicated, dataset):
    _, pool = dataset
    service = QueryService(replicated, routing=RoutingConfig(policy="least_outstanding"))
    workload = ClosedLoopWorkload(concurrency=8, n_queries=30, seed=3)
    report = service.run_closed_loop(pool, workload, k=K)
    assert report.completed == 30
    assert sorted(service.answers) == list(range(30))
