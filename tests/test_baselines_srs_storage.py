"""Tests for repro.baselines.srs_storage (external-memory SRS sketch)."""

import numpy as np
import pytest

from repro.baselines.srs_storage import StorageSRS, build_storage_srs
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(83)
    n, d = 1500, 24
    centers = rng.normal(scale=5.0, size=(15, d))
    data = (centers[rng.integers(0, 15, n)] + rng.normal(scale=0.5, size=(n, d))).astype(
        np.float32
    )
    queries = (data[rng.integers(0, n, 8)] + rng.normal(scale=0.05, size=(8, d))).astype(
        np.float32
    )
    store = MemoryBlockStore()
    index = build_storage_srs(data, store, seed=3, prefetch=8)
    return data, queries, store, index


def run_tasks(store, tasks, count=1):
    engine = AsyncIOEngine(
        make_volume("cssd", count), INTERFACE_PROFILES["io_uring"], store
    )
    return engine.run(tasks)


def test_answers_close_to_inmemory_srs(setup):
    data, queries, store, index = setup
    result = run_tasks(store, [index.query_task(q, k=1, t_prime=200) for q in queries])
    for q, (ids, dists) in zip(queries, result.results):
        assert ids.size == 1
        reference = index.srs.query(q, k=1, t_prime=200)
        # Prefetch reorders expansion slightly; answers stay near-equal.
        assert dists[0] <= reference.distances[0] * 1.5 + 1e-9


def test_prefetch_beats_serial_reads(setup):
    """The paper's concluding point: async prefetch of adjacent tree
    nodes hides storage latency for tree methods too."""
    data, queries, store, index = setup
    serial = run_tasks(
        store, [index.query_task_sync_order(q, k=1, t_prime=200) for q in queries]
    )
    prefetched = run_tasks(
        store, [index.query_task(q, k=1, t_prime=200) for q in queries]
    )
    assert prefetched.makespan_ns < serial.makespan_ns


def test_node_records_fit_and_roundtrip(setup):
    data, queries, store, index = setup
    raw = store.read(index.root_address, 512)
    record = index._decode(raw, index.root_address)
    assert not record.is_leaf or record.entries.size <= 32
    assert record.entries.size >= 1


def test_validation(setup):
    data, queries, store, index = setup
    with pytest.raises(ValueError):
        StorageSRS(index.srs, MemoryBlockStore(), prefetch=0)
    with pytest.raises(ValueError):
        next(index.query_task(queries[0], k=0, t_prime=10))
    with pytest.raises(ValueError):
        next(index.query_task(queries[0], k=5, t_prime=2))
