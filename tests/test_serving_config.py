"""Tests for repro.serving.config."""

import json

import pytest

from repro.serving.config import (
    ARRIVAL_SHAPES,
    DataConfig,
    FaultTimeline,
    ServingConfig,
    WorkloadSpec,
)
from repro.serving.replication import FaultSpec


# -- round-trips --------------------------------------------------------------


@pytest.mark.parametrize("cls", [DataConfig, ServingConfig, WorkloadSpec])
def test_default_config_round_trips_through_json(cls):
    config = cls()
    payload = json.loads(json.dumps(config.to_dict()))
    assert cls.from_dict(payload) == config


def test_non_default_configs_round_trip():
    data = DataConfig(dataset="gist", n=2_000, pool_queries=8, gamma=0.7, rho=0.4)
    serving = ServingConfig(
        n_shards=4,
        scheme="table",
        replicas=2,
        routing="hedged",
        hedge_delay_us=120.0,
        max_batch=4,
    )
    workload = WorkloadSpec(
        shape="diurnal", period_us=500.0, amplitude=0.5, zipf_s=1.0
    )
    for config in (data, serving, workload):
        assert type(config).from_dict(config.to_dict()) == config


def test_fault_timeline_round_trips_with_windows():
    timeline = FaultTimeline(
        events=(
            FaultSpec(shard=0, replica=1, latency_multiplier=5.0),
            FaultSpec(
                shard=1,
                replica=1,
                latency_multiplier=2.0,
                start_ns=1e6,
                stop_ns=2e6,
            ),
        )
    )
    payload = json.loads(json.dumps(timeline.to_dict()))
    assert FaultTimeline.from_dict(payload) == timeline


# -- unknown keys and invalid values ------------------------------------------


@pytest.mark.parametrize("cls", [DataConfig, ServingConfig, WorkloadSpec])
def test_unknown_keys_are_rejected(cls):
    with pytest.raises(ValueError, match="unknown key"):
        cls.from_dict({"no_such_knob": 1})


def test_fault_timeline_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown key"):
        FaultTimeline.from_dict({"event": []})
    with pytest.raises(ValueError, match="unknown key"):
        FaultTimeline.from_dict({"events": [{"shard": 0, "replica": 0, "oops": 1}]})


def test_from_dict_rejects_non_mapping():
    with pytest.raises(ValueError, match="mapping"):
        DataConfig.from_dict([1, 2])
    with pytest.raises(ValueError, match="list"):
        FaultTimeline.from_dict({"events": "not-a-list"})


def test_data_config_validation():
    with pytest.raises(ValueError, match="dataset"):
        DataConfig(dataset="nope")
    with pytest.raises(ValueError):
        DataConfig(n=0)
    with pytest.raises(ValueError, match="rho"):
        DataConfig(rho=1.5)


def test_serving_config_validation():
    with pytest.raises(ValueError, match="scheme"):
        ServingConfig(scheme="modulo")
    with pytest.raises(ValueError, match="device"):
        ServingConfig(device="floppy")
    with pytest.raises(ValueError, match="synchronous"):
        ServingConfig(interface="mmap_sync")
    with pytest.raises(ValueError, match="interface"):
        ServingConfig(interface="libaio")
    with pytest.raises(ValueError, match="hedged"):
        ServingConfig(hedge_delay_us=50.0)  # needs routing="hedged"
    with pytest.raises(ValueError):
        ServingConfig(queue_capacity=0)


def test_serving_config_builds_runtime_configs():
    config = ServingConfig(routing="hedged", hedge_delay_us=100.0, max_batch=4)
    assert config.routing_config().hedge_delay_ns == pytest.approx(100_000.0)
    dispatch = config.dispatch_config()
    assert dispatch.max_batch == 4
    assert dispatch.max_delay_ns == pytest.approx(50_000.0)


# -- workload shapes ----------------------------------------------------------


def test_workload_shape_knobs_require_their_shape():
    with pytest.raises(ValueError, match="diurnal"):
        WorkloadSpec(period_us=100.0)
    with pytest.raises(ValueError, match="flash"):
        WorkloadSpec(flash_multiplier=2.0)
    with pytest.raises(ValueError, match="ramp"):
        WorkloadSpec(ramp_to_qps=5_000.0)


def test_workload_shape_validation():
    with pytest.raises(ValueError, match="period_us"):
        WorkloadSpec(shape="diurnal", amplitude=0.5)
    with pytest.raises(ValueError, match="amplitude"):
        WorkloadSpec(shape="diurnal", period_us=100.0, amplitude=2.0)
    with pytest.raises(ValueError, match="flash_duration_us"):
        WorkloadSpec(shape="flash_crowd", flash_multiplier=2.0)
    with pytest.raises(ValueError, match="ramp_to_qps"):
        WorkloadSpec(shape="ramp", ramp_duration_us=10.0)
    with pytest.raises(ValueError, match="unknown arrival shape"):
        WorkloadSpec(shape="bursty")
    assert "poisson" in ARRIVAL_SHAPES and "flash_crowd" in ARRIVAL_SHAPES


def test_closed_mode_rejects_arrival_shapes():
    with pytest.raises(ValueError, match="closed-loop"):
        WorkloadSpec(mode="closed", shape="uniform")


def test_hot_drift_validation():
    with pytest.raises(ValueError, match="zipf_s"):
        WorkloadSpec(hot_drift_period_us=10.0, hot_drift_stride=1)
    with pytest.raises(ValueError, match="stride"):
        WorkloadSpec(zipf_s=1.0, hot_drift_period_us=10.0)
    with pytest.raises(ValueError, match="hot_drift_period_us"):
        WorkloadSpec(hot_drift_stride=2)


def test_rate_at_follows_the_shape():
    diurnal = WorkloadSpec(
        qps=1_000.0, shape="diurnal", period_us=1_000.0, amplitude=0.5
    )
    assert diurnal.rate_at(0.0) == pytest.approx(1_000.0)
    # Quarter period: sin peaks.
    assert diurnal.rate_at(250.0 * 1e3) == pytest.approx(1_500.0)
    assert diurnal.peak_qps == pytest.approx(1_500.0)

    flash = WorkloadSpec(
        qps=1_000.0,
        shape="flash_crowd",
        flash_at_us=100.0,
        flash_duration_us=50.0,
        flash_multiplier=3.0,
    )
    assert flash.rate_at(0.0) == pytest.approx(1_000.0)
    assert flash.rate_at(120.0 * 1e3) == pytest.approx(3_000.0)
    assert flash.rate_at(200.0 * 1e3) == pytest.approx(1_000.0)
    assert flash.peak_qps == pytest.approx(3_000.0)

    ramp = WorkloadSpec(
        qps=1_000.0, shape="ramp", ramp_to_qps=4_000.0, ramp_duration_us=100.0
    )
    assert ramp.rate_at(0.0) == pytest.approx(1_000.0)
    assert ramp.rate_at(50.0 * 1e3) == pytest.approx(2_500.0)
    # Past the ramp the rate stays at the target.
    assert ramp.rate_at(1e9) == pytest.approx(4_000.0)
    assert ramp.peak_qps == pytest.approx(4_000.0)


# -- fault timeline constructors ----------------------------------------------


def test_correlated_builds_one_event_per_shard():
    timeline = FaultTimeline.correlated(
        shards=range(3), replica=1, latency_multiplier=4.0, start_ns=10.0, stop_ns=20.0
    )
    assert len(timeline) == 3
    assert [event.shard for event in timeline.events] == [0, 1, 2]
    assert all(event.replica == 1 for event in timeline.events)
    assert all(event.windowed for event in timeline.events)


def test_stall_storm_builds_windowed_stall():
    timeline = FaultTimeline.stall_storm(
        shard=0,
        replica=1,
        stall_period_ns=100.0,
        stall_duration_ns=10.0,
        start_ns=50.0,
        stop_ns=500.0,
    )
    (event,) = timeline.events
    assert event.stall_duration_ns == 10.0
    assert event.windowed


def test_validate_against_names_the_deployment():
    timeline = FaultTimeline(events=(FaultSpec(shard=2, replica=0),))
    with pytest.raises(ValueError, match="deployment"):
        timeline.validate_against(n_shards=2, replicas=1)
    timeline.validate_against(n_shards=3, replicas=1)


def test_timeline_merge_and_event_types():
    a = FaultTimeline(events=(FaultSpec(shard=0, replica=0),))
    b = FaultTimeline(events=(FaultSpec(shard=1, replica=0),))
    assert len(a.merged(b)) == 2
    with pytest.raises(ValueError, match="FaultSpec"):
        FaultTimeline(events=({"shard": 0},))
