"""Tests for repro.core.lsh (compound hash bank)."""

import numpy as np
import pytest

from repro.core.lsh import CompoundHashBank


@pytest.fixture(scope="module")
def bank():
    return CompoundHashBank.create(d=16, m=6, L=4, w=3.0, seed=21)


def test_deterministic_given_seed():
    a = CompoundHashBank.create(d=8, m=3, L=2, w=2.0, seed=1)
    b = CompoundHashBank.create(d=8, m=3, L=2, w=2.0, seed=1)
    np.testing.assert_array_equal(a.a, b.a)
    np.testing.assert_array_equal(a.mixers, b.mixers)
    c = CompoundHashBank.create(d=8, m=3, L=2, w=2.0, seed=2)
    assert not np.allclose(a.a, c.a)


def test_shapes(bank):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(10, 16)).astype(np.float32)
    projections = bank.project(points)
    assert projections.shape == (10, 4 * 6)
    codes = bank.codes_for_radius(projections, radius=1.0)
    assert codes.shape == (10, 4, 6)
    values = bank.mix32(codes)
    assert values.shape == (10, 4)
    assert values.dtype == np.uint32


def test_identical_points_identical_hashes(bank):
    point = np.random.default_rng(3).normal(size=16).astype(np.float32)
    h1 = bank.hash_values(point, radius=2.0)
    h2 = bank.hash_values(point.copy(), radius=2.0)
    np.testing.assert_array_equal(h1, h2)


def test_radius_scales_bucket_width(bank):
    """At a huge radius everything collapses into the same bucket."""
    rng = np.random.default_rng(4)
    points = rng.normal(size=(50, 16)).astype(np.float32)
    tiny = bank.hash_values(points, radius=1e-6)
    huge = bank.hash_values(points, radius=1e9)
    # Tiny radius: essentially all points in distinct buckets.
    assert len(np.unique(tiny[:, 0])) > 40
    # Huge radius: all collide.
    assert len(np.unique(huge[:, 0])) == 1


def test_near_points_collide_more_than_far(bank):
    rng = np.random.default_rng(6)
    base = rng.normal(size=(400, 16)).astype(np.float32) * 5
    near = base + rng.normal(size=base.shape).astype(np.float32) * 0.01
    far = base + rng.normal(size=base.shape).astype(np.float32) * 5.0
    h_base = bank.hash_values(base, radius=1.0)
    near_rate = (bank.hash_values(near, radius=1.0) == h_base).mean()
    far_rate = (bank.hash_values(far, radius=1.0) == h_base).mean()
    assert near_rate > far_rate


def test_with_m_prefix_property(bank):
    """A prefix bank must produce codes equal to the full bank's prefix."""
    small = bank.with_m(3)
    assert small.m == 3 and small.L == bank.L
    rng = np.random.default_rng(8)
    points = rng.normal(size=(20, 16)).astype(np.float32)
    full_codes = bank.codes_for_radius(bank.project(points), 2.0)
    small_codes = small.codes_for_radius(small.project(points), 2.0)
    np.testing.assert_array_equal(small_codes, full_codes[:, :, :3])


def test_select_projection_columns_matches_projection(bank):
    rng = np.random.default_rng(9)
    points = rng.normal(size=(5, 16)).astype(np.float32)
    full = bank.project(points)
    small = bank.with_m(2)
    np.testing.assert_allclose(
        bank.select_projection_columns(full, 2), small.project(points), rtol=1e-6
    )


def test_with_m_identity_and_validation(bank):
    assert bank.with_m(bank.m) is bank
    with pytest.raises(ValueError):
        bank.with_m(0)
    with pytest.raises(ValueError):
        bank.with_m(bank.m + 1)


def test_mix32_spreads_values(bank):
    """The universal mix should not cluster distinct codes."""
    rng = np.random.default_rng(10)
    points = rng.normal(size=(2000, 16)).astype(np.float32) * 10
    values = bank.hash_values(points, radius=0.01)[:, 0]
    # Near-unique inputs should map to near-unique 32-bit values.
    assert len(np.unique(values)) > 1990


def test_dimension_mismatch(bank):
    with pytest.raises(ValueError):
        bank.project(np.zeros((3, 5), dtype=np.float32))
    with pytest.raises(ValueError):
        bank.codes_for_radius(np.zeros((3, 24)), radius=0.0)
    with pytest.raises(ValueError):
        bank.mix32(np.zeros((3, 2, 2), dtype=np.int64))


def test_create_validation():
    with pytest.raises(ValueError):
        CompoundHashBank.create(d=0, m=1, L=1, w=1.0, seed=0)
    with pytest.raises(ValueError):
        CompoundHashBank.create(d=4, m=1, L=1, w=0.0, seed=0)


def test_select_tables_hashes_like_parent(bank):
    rng = np.random.default_rng(3)
    points = rng.normal(size=(20, 16)).astype(np.float32)
    full = bank.hash_values(points, radius=1.0)
    sliced = bank.select_tables([1, 3])
    assert sliced.L == 2 and sliced.m == bank.m
    np.testing.assert_array_equal(sliced.hash_values(points, radius=1.0), full[:, [1, 3]])


def test_select_tables_validation(bank):
    with pytest.raises(ValueError):
        bank.select_tables([])
    with pytest.raises(ValueError):
        bank.select_tables([0, 0])
    with pytest.raises(ValueError):
        bank.select_tables([bank.L])
    with pytest.raises(ValueError):
        bank.select_tables([-1])
