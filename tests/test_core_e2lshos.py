"""Tests for repro.core.e2lshos (external-memory E2LSH)."""

import numpy as np
import pytest

from repro.core.e2lsh import E2LSHIndex
from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.page_cache import PageCache
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(23)
    n, d = 2500, 20
    centers = rng.normal(scale=4.0, size=(25, d))
    data = (centers[rng.integers(0, 25, n)] + rng.normal(scale=0.4, size=(n, d))).astype(
        np.float32
    )
    queries = (data[rng.integers(0, n, 10)] + rng.normal(scale=0.05, size=(10, d))).astype(
        np.float32
    )
    params = E2LSHParams(n=n, rho=0.35, gamma=0.8, s_factor=8)
    ladder = RadiusLadder.for_data(data, params.c)
    inmem = E2LSHIndex(data, params, ladder=ladder, seed=4)
    store = MemoryBlockStore()
    storage = E2LSHoSIndex.build(
        data, params, store=store, ladder=ladder, seed=4, bank=inmem.bank
    )
    return data, queries, inmem, storage


def run(storage, queries, k=1, device="cssd", count=1, interface="io_uring", workers=1):
    engine = AsyncIOEngine(
        make_volume(device, count), INTERFACE_PROFILES[interface], storage.built.store
    )
    return storage.run(queries, engine, k=k, workers=workers)


def test_answers_match_inmemory_with_shared_bank(setup):
    """Same hash functions -> the storage index returns the same answers."""
    data, queries, inmem, storage = setup
    result = run(storage, queries, k=1)
    for q, answer in zip(queries, result.answers):
        expected = inmem.query(q, k=1)
        assert answer.found == expected.found
        if answer.found:
            assert answer.distances[0] == pytest.approx(expected.distances[0], rel=1e-6)


def test_io_count_matches_nio_accounting(setup):
    """N_io = 2 x non-empty probes + chain continuations (Sec. 4.3)."""
    data, queries, inmem, storage = setup
    result = run(storage, queries, k=1)
    for answer in result.answers:
        stats = answer.stats
        # One slot read per non-empty probe plus one read per block.
        assert stats.ios_issued == stats.nonempty_buckets + stats.bucket_blocks_read
        # At least one block per non-empty bucket -> N_io >= 2 x nonempty
        # unless the S budget cut a rung short.
        assert stats.bucket_blocks_read >= 1 or stats.nonempty_buckets == 0


def test_engine_io_count_equals_task_stats(setup):
    data, queries, inmem, storage = setup
    result = run(storage, queries, k=1)
    assert result.engine.io_count == sum(a.stats.ios_issued for a in result.answers)


def test_faster_storage_is_faster(setup):
    data, queries, inmem, storage = setup
    slow = run(storage, queries, device="cssd", count=1, interface="io_uring")
    fast = run(storage, queries, device="xlfdd", count=12, interface="xlfdd")
    assert fast.mean_query_time_ns < slow.mean_query_time_ns


def test_multiworker_not_slower(setup):
    data, queries, inmem, storage = setup
    one = run(storage, np.tile(queries, (4, 1)), workers=1)
    four = run(storage, np.tile(queries, (4, 1)), workers=4)
    assert four.makespan_ns <= one.makespan_ns * 1.05 if hasattr(four, "makespan_ns") else True
    assert four.engine.makespan_ns <= one.engine.makespan_ns * 1.05


def test_mmap_sync_same_answers_slower(setup):
    data, queries, inmem, storage = setup
    async_result = run(storage, queries, device="cssd", count=4)
    cache = PageCache(
        volume=make_volume("cssd", 4),
        store=storage.built.store,
        interface=INTERFACE_PROFILES["mmap_sync"],
        capacity_bytes=storage.dram_bytes,
    )
    sync_result = storage.run(queries, k=1, mode="mmap_sync", cache=cache)
    total_ns = sync_result.engine.makespan_ns
    for sync_answer, async_answer in zip(sync_result.answers, async_result.answers):
        np.testing.assert_array_equal(sync_answer.ids, async_answer.ids)
    assert total_ns / len(queries) > async_result.mean_query_time_ns


def test_run_mmap_sync_shim_warns_and_matches(setup):
    data, queries, inmem, storage = setup
    def mk_cache():
        return PageCache(
            volume=make_volume("cssd", 4),
            store=storage.built.store,
            interface=INTERFACE_PROFILES["mmap_sync"],
            capacity_bytes=storage.dram_bytes,
        )
    batch = storage.run(queries, k=1, mode="mmap_sync", cache=mk_cache())
    with pytest.warns(DeprecationWarning, match="mmap_sync"):
        answers, total_ns = storage.run_mmap_sync(queries, mk_cache(), k=1)
    assert total_ns == batch.engine.makespan_ns
    for legacy, unified in zip(answers, batch.answers):
        np.testing.assert_array_equal(legacy.ids, unified.ids)


def test_run_mode_validation(setup):
    data, queries, inmem, storage = setup
    with pytest.raises(ValueError, match="needs an engine"):
        storage.run(queries, k=1)
    with pytest.raises(ValueError, match="needs a cache"):
        storage.run(queries, k=1, mode="mmap_sync")
    with pytest.raises(ValueError, match="unknown mode"):
        storage.run(queries, k=1, mode="bogus")


def test_alternate_block_size_same_answers(setup):
    data, queries, inmem, storage = setup
    small_block = E2LSHoSIndex.build(
        data, storage.params, store=MemoryBlockStore(),
        ladder=storage.ladder, block_size=128, seed=4, bank=inmem.bank,
    )
    a = run(storage, queries)
    b = run(small_block, queries)
    for x, y in zip(a.answers, b.answers):
        np.testing.assert_array_equal(x.ids, y.ids)
    # Smaller blocks never need fewer I/Os.
    assert b.engine.io_count >= a.engine.io_count


def test_memory_accounting(setup):
    data, queries, inmem, storage = setup
    assert storage.storage_bytes > storage.built.dram_bytes
    assert storage.dram_bytes >= data.nbytes


def test_validation(setup):
    data, queries, inmem, storage = setup
    with pytest.raises(ValueError):
        next(storage.query_task(queries[0], k=0))
    with pytest.raises(ValueError):
        next(storage.query_task(np.zeros(3, dtype=np.float32)))
    with pytest.raises(ValueError):
        E2LSHoSIndex(storage.built, data[:10])
