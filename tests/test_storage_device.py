"""Tests for repro.storage.device."""

import heapq

import pytest

from repro.storage.device import DeviceProfile, StorageDevice
from repro.storage.profiles import DEVICE_PROFILES
from repro.utils.units import NS_PER_S


def closed_loop_iops(device: StorageDevice, queue_depth: int, n: int = 2000) -> float:
    outstanding: list[float] = []
    submitted = 0
    now = 0.0
    last = 0.0
    while submitted < n or outstanding:
        while submitted < n and len(outstanding) < queue_depth:
            heapq.heappush(outstanding, device.submit(now, 512))
            submitted += 1
        now = heapq.heappop(outstanding)
        last = max(last, now)
    return n * NS_PER_S / last


def test_qd1_matches_latency():
    profile = DEVICE_PROFILES["cssd"]
    measured = closed_loop_iops(StorageDevice(profile), queue_depth=1)
    assert measured == pytest.approx(profile.qd1_iops, rel=0.05)


def test_high_qd_saturates_at_max_iops():
    profile = DEVICE_PROFILES["essd"]
    measured = closed_loop_iops(StorageDevice(profile), queue_depth=256, n=5000)
    assert measured == pytest.approx(profile.max_iops, rel=0.05)


def test_throughput_monotone_in_queue_depth():
    profile = DEVICE_PROFILES["cssd"]
    rates = [closed_loop_iops(StorageDevice(profile), qd, n=1000) for qd in (1, 4, 16, 64)]
    assert rates == sorted(rates)


def test_latency_inflates_near_saturation():
    device = StorageDevice(DEVICE_PROFILES["cssd"])
    closed_loop_iops(device, queue_depth=1, n=500)
    low_latency = device.stats.mean_latency_ns
    device.reset()
    closed_loop_iops(device, queue_depth=256, n=500)
    assert device.stats.mean_latency_ns > low_latency


def test_analytic_queue_depth_model():
    profile = DEVICE_PROFILES["xlfdd"]
    assert profile.iops_at_queue_depth(1) == pytest.approx(profile.qd1_iops)
    assert profile.iops_at_queue_depth(10_000) == profile.max_iops


def test_submit_validates_length():
    device = StorageDevice(DEVICE_PROFILES["cssd"])
    with pytest.raises(ValueError):
        device.submit(0.0, 0)


def test_bandwidth_term_slows_large_reads():
    profile = DEVICE_PROFILES["cssd"]
    device = StorageDevice(profile)
    small = device.submit(0.0, 512)
    device.reset()
    large = device.submit(0.0, 1024 * 1024)
    assert large > small


def test_reset_clears_stats():
    device = StorageDevice(DEVICE_PROFILES["cssd"])
    device.submit(0.0, 512)
    device.reset()
    assert device.stats.completed == 0
    assert device.stats.observed_iops() == 0.0


def test_profile_validation():
    with pytest.raises(ValueError):
        DeviceProfile(name="bad", latency_ns=0, max_iops=1000)
    with pytest.raises(ValueError):
        DeviceProfile(name="bad", latency_ns=100, max_iops=-1)
