"""Tests for repro.layout.builder — the on-storage index construction."""

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.layout.bucket import NULL_ADDRESS, read_bucket
from repro.layout.builder import IndexBuilder
from repro.storage.blockstore import MemoryBlockStore


@pytest.fixture(scope="module")
def built():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(800, 16)).astype(np.float32) * 2
    params = E2LSHParams(n=800, rho=0.3)
    ladder = RadiusLadder.for_data(data, params.c)
    builder = IndexBuilder(MemoryBlockStore(), params, ladder, seed=3)
    return builder.build(data), data, builder


def test_structure_dimensions(built):
    index, data, builder = built
    assert len(index.tables) == index.ladder.rungs
    assert all(len(rung) == index.params.L for rung in index.tables)
    assert index.stats.n_tables == index.ladder.rungs * index.params.L


def test_every_object_retrievable_from_every_table(built):
    """Each object must appear in its bucket in every (rung, li) table."""
    index, data, builder = built
    projections = index.bank.project(data)
    for rung_index in (0, len(index.ladder) - 1):
        radius = index.ladder[rung_index]
        hash_values = index.bank.mix32(index.bank.codes_for_radius(projections, radius))
        for li in (0, index.params.L - 1):
            handle = index.tables[rung_index][li]
            slots, fps = index.codec.split_hash(hash_values[:, li])
            for obj in (0, 399, 799):
                slot = int(slots[obj])
                head = handle.table.read_slot(slot)
                assert head != NULL_ADDRESS
                ids, bucket_fps = read_bucket(index.store, index.codec, head)
                matches = ids[bucket_fps == fps[obj]]
                assert obj in matches.tolist()


def test_occupancy_filter_exact(built):
    """contains() answers exactly 'is this hash value in the table'."""
    index, data, builder = built
    handle = index.tables[0][0]
    present = handle.present_values
    assert handle.contains(int(present[0]))
    assert handle.contains(int(present[-1]))
    # A value not in the sorted array must be rejected.
    probe = int(present[0]) + 1
    expected = probe in set(present.tolist())
    assert handle.contains(probe) == expected


def test_stats_account_storage(built):
    index, data, builder = built
    stats = index.stats
    assert stats.index_storage_bytes == stats.table_bytes + stats.bucket_bytes
    # Compact allocation: each block takes between a bare header and a
    # full block_size (plus one guard block per table).
    assert stats.bucket_bytes <= stats.n_blocks * index.block_size + stats.n_tables * index.block_size
    assert stats.bucket_bytes >= stats.n_blocks * 16
    # Every (rung, table) wrote one table of 2^u slots.
    assert stats.table_bytes == stats.n_tables * (1 << builder.table_bits) * 8
    # All n objects land in each table; blocks must cover them.
    assert stats.n_blocks >= stats.n_buckets


def test_dram_accounting_includes_filters(built):
    index, data, builder = built
    filters = sum(h.present_values.nbytes for rung in index.tables for h in rung)
    assert index.dram_bytes >= filters
    assert index.dram_bytes < index.stats.index_storage_bytes


def test_builder_rejects_mismatched_data():
    params = E2LSHParams(n=100, rho=0.3)
    ladder = RadiusLadder.for_extent(1.0, 4, params.c)
    builder = IndexBuilder(MemoryBlockStore(), params, ladder)
    with pytest.raises(ValueError):
        builder.build(np.zeros((50, 4), dtype=np.float32))


def test_builder_rejects_tiny_blocks():
    params = E2LSHParams(n=10, rho=0.3)
    ladder = RadiusLadder.for_extent(1.0, 4, params.c)
    with pytest.raises(ValueError):
        IndexBuilder(MemoryBlockStore(), params, ladder, block_size=16)


def test_bank_mismatch_rejected():
    from repro.core.lsh import CompoundHashBank

    params = E2LSHParams(n=100, rho=0.3)
    ladder = RadiusLadder.for_extent(1.0, 4, params.c)
    builder = IndexBuilder(MemoryBlockStore(), params, ladder)
    wrong_bank = CompoundHashBank.create(d=4, m=params.m + 1, L=params.L, w=params.w, seed=0)
    with pytest.raises(ValueError):
        builder.build(np.zeros((100, 4), dtype=np.float32), bank=wrong_bank)


def test_alternate_block_size_roundtrip():
    rng = np.random.default_rng(9)
    data = rng.normal(size=(300, 8)).astype(np.float32)
    params = E2LSHParams(n=300, rho=0.3)
    ladder = RadiusLadder.for_data(data, params.c)
    builder = IndexBuilder(MemoryBlockStore(), params, ladder, block_size=128, seed=1)
    index = builder.build(data)
    handle = index.tables[-1][0]
    # At the largest radius most objects share few buckets -> chains.
    head = handle.table.read_slot(
        int(index.codec.split_hash(handle.present_values.astype(np.uint64))[0][0])
    )
    assert head != NULL_ADDRESS
    ids, _ = read_bucket(index.store, index.codec, head, block_size=128)
    assert ids.size > 0
