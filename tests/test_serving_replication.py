"""Tests for repro.serving.replication."""

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.serving.replication import (
    FaultSpec,
    ReplicaGroup,
    ReplicaRouter,
    RoutingConfig,
    StallingDevice,
    TimelineDevice,
    build_replica_engines,
)
from repro.serving.sharding import ShardedIndex
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.device import StorageDevice
from repro.storage.profiles import DEVICE_PROFILES


@pytest.fixture(scope="module")
def replicated():
    rng = np.random.default_rng(7)
    data = rng.standard_normal((300, 10)).astype(np.float32)
    return ShardedIndex.build(
        data,
        E2LSHParams(n=300),
        n_shards=2,
        scheme="hash",
        seed=7,
        replicas=3,
        faults=(FaultSpec(shard=1, replica=2, latency_multiplier=5.0),),
    )


# -- FaultSpec ---------------------------------------------------------------


def test_fault_degrades_latency_and_iops():
    profile = DEVICE_PROFILES["cssd"]
    slow = FaultSpec(shard=0, replica=0, latency_multiplier=5.0).degrade(profile)
    assert slow.latency_ns == pytest.approx(5.0 * profile.latency_ns)
    assert slow.max_iops == pytest.approx(profile.max_iops / 5.0)
    assert slow.name != profile.name


def test_fault_identity_multiplier_is_noop():
    profile = DEVICE_PROFILES["cssd"]
    assert FaultSpec(shard=0, replica=0).degrade(profile) is profile


def test_fault_targeting():
    fault = FaultSpec(shard=1, replica=2, latency_multiplier=2.0)
    assert fault.applies_to(1, 2)
    assert not fault.applies_to(1, 1)
    assert not fault.applies_to(0, 2)


def test_fault_validation():
    with pytest.raises(ValueError):
        FaultSpec(shard=-1, replica=0)
    with pytest.raises(ValueError):
        FaultSpec(shard=0, replica=0, latency_multiplier=0.5)
    with pytest.raises(ValueError):
        FaultSpec(shard=0, replica=0, stall_period_ns=100.0, stall_duration_ns=100.0)
    with pytest.raises(ValueError):
        FaultSpec(shard=0, replica=0, stall_duration_ns=-1.0)
    # Half-specified stall windows would silently inject nothing.
    with pytest.raises(ValueError):
        FaultSpec(shard=0, replica=0, stall_period_ns=1000.0)
    with pytest.raises(ValueError):
        FaultSpec(shard=0, replica=0, stall_duration_ns=100.0)


def test_stalling_device_defers_submissions_inside_window():
    device = StallingDevice(DEVICE_PROFILES["cssd"], period_ns=1000.0, duration_ns=200.0)
    in_stall = device.submit(1050.0, 512)  # window [1000, 1200): waits
    device.reset()
    clear = device.submit(1200.0, 512)  # just past the window
    assert in_stall == clear
    device.reset()
    assert device.submit(500.0, 512) < in_stall  # mid-period is unaffected


# -- windowed faults (FaultSpec start/stop + TimelineDevice) ------------------


def test_windowed_fault_fields_and_active_at():
    steady = FaultSpec(shard=0, replica=0, latency_multiplier=2.0)
    assert not steady.windowed
    assert steady.active_at(0.0) and steady.active_at(1e12)
    windowed = FaultSpec(
        shard=0, replica=0, latency_multiplier=2.0, start_ns=100.0, stop_ns=200.0
    )
    assert windowed.windowed
    assert not windowed.active_at(99.0)
    assert windowed.active_at(100.0) and windowed.active_at(199.0)
    assert not windowed.active_at(200.0)
    open_ended = FaultSpec(
        shard=0, replica=0, latency_multiplier=2.0, start_ns=100.0
    )
    assert open_ended.windowed and open_ended.active_at(1e12)


def test_windowed_fault_validation():
    with pytest.raises(ValueError):
        FaultSpec(shard=0, replica=0, latency_multiplier=2.0, start_ns=-1.0)
    with pytest.raises(ValueError):
        FaultSpec(
            shard=0, replica=0, latency_multiplier=2.0, start_ns=100.0, stop_ns=100.0
        )


def test_timeline_device_scales_latency_inside_window_only():
    profile = DEVICE_PROFILES["cssd"]
    window = (1e6, 2e6, 4.0, 0.0, 0.0)
    device = TimelineDevice(profile, events=[window])
    before = device.submit(0.0, 512)
    assert before == pytest.approx(StorageDevice(profile).submit(0.0, 512))
    device.reset()
    inside = device.submit(1.5e6, 512)
    assert inside - 1.5e6 >= 4.0 * profile.latency_ns
    device.reset()
    after = device.submit(2.5e6, 512)
    assert after - 2.5e6 < 2.0 * profile.latency_ns


def test_timeline_device_defers_through_stall_windows():
    profile = DEVICE_PROFILES["cssd"]
    # Stalls of 200ns every 1000ns, only inside [10_000, 12_000).
    device = TimelineDevice(profile, events=[(10_000.0, 12_000.0, 1.0, 1000.0, 200.0)])
    # Phase anchors at window start: [10_000, 10_200) stalls.
    stalled = device.submit(10_050.0, 512)
    device.reset()
    clear = device.submit(10_200.0, 512)
    assert stalled == clear
    device.reset()
    # Outside the window the same phase does not stall.
    assert device.submit(9_050.0, 512) < stalled


def test_timeline_device_validation():
    profile = DEVICE_PROFILES["cssd"]
    with pytest.raises(ValueError, match="at least one"):
        TimelineDevice(profile, events=[])
    with pytest.raises(ValueError, match="start"):
        TimelineDevice(profile, events=[(200.0, 100.0, 2.0, 0.0, 0.0)])
    with pytest.raises(ValueError, match="multiplier"):
        TimelineDevice(profile, events=[(0.0, 100.0, 0.5, 0.0, 0.0)])
    with pytest.raises(ValueError, match="stall"):
        TimelineDevice(profile, events=[(0.0, 100.0, 1.0, 10.0, 10.0)])


def test_build_replica_engines_windowed_fault_uses_timeline_device():
    store = MemoryBlockStore()
    faults = (
        FaultSpec(
            shard=0,
            replica=1,
            latency_multiplier=3.0,
            start_ns=1e6,
            stop_ns=2e6,
        ),
    )
    engines, profiles = build_replica_engines(
        store, shard_id=0, replicas=2, faults=faults
    )
    # The windowed replica keeps its steady-state profile (the fault is
    # transient), but its devices follow the timeline.
    assert profiles[1].latency_ns == profiles[0].latency_ns
    devices = engines[1].volume.devices
    assert all(isinstance(device, TimelineDevice) for device in devices)
    assert all(
        not isinstance(device, TimelineDevice) for device in engines[0].volume.devices
    )


# -- engine building ---------------------------------------------------------


def test_two_stall_faults_on_one_replica_rejected():
    store = MemoryBlockStore()
    faults = (
        FaultSpec(shard=0, replica=0, stall_period_ns=1000.0, stall_duration_ns=100.0),
        FaultSpec(shard=0, replica=0, stall_period_ns=9000.0, stall_duration_ns=500.0),
    )
    with pytest.raises(ValueError, match="stall"):
        build_replica_engines(store, shard_id=0, replicas=1, faults=faults)


def test_replica_engines_share_store_not_volumes():
    store = MemoryBlockStore()
    engines, profiles = build_replica_engines(store, shard_id=0, replicas=3)
    assert len(engines) == len(profiles) == 3
    assert all(engine.store is store for engine in engines)
    assert len({id(engine.volume) for engine in engines}) == 3


def test_faulted_replica_gets_degraded_profile(replicated):
    group = replicated.replica_groups[1]
    healthy, degraded = group.profiles[0], group.profiles[2]
    assert degraded.latency_ns == pytest.approx(5.0 * healthy.latency_ns)
    # The fault targeted shard 1 replica 2 only.
    assert group.profiles[1].latency_ns == healthy.latency_ns
    assert all(
        profile.latency_ns == healthy.latency_ns
        for profile in replicated.replica_groups[0].profiles
    )


def test_build_rejects_out_of_range_fault():
    data = np.random.default_rng(0).standard_normal((100, 8)).astype(np.float32)
    with pytest.raises(ValueError):
        ShardedIndex.build(
            data,
            E2LSHParams(n=100),
            n_shards=2,
            replicas=2,
            faults=(FaultSpec(shard=2, replica=0),),
        )
    with pytest.raises(ValueError):
        ShardedIndex.build(
            data,
            E2LSHParams(n=100),
            n_shards=2,
            replicas=2,
            faults=(FaultSpec(shard=0, replica=2),),
        )


def test_sharded_index_reports_replication_factor(replicated):
    assert replicated.n_replicas == 3
    assert all(group.n_replicas == 3 for group in replicated.replica_groups)
    # Replica 0 is the shard's own engine (single-copy batch path).
    for shard, group in zip(replicated.shards, replicated.replica_groups):
        assert group.engines[0] is shard.engine


def test_replica_group_validation(replicated):
    shard = replicated.shards[0]
    with pytest.raises(ValueError):
        ReplicaGroup(shard=shard, engines=[], profiles=[])
    with pytest.raises(ValueError):
        ReplicaGroup(shard=shard, engines=[shard.engine], profiles=[])


# -- RoutingConfig -----------------------------------------------------------


def test_routing_config_validation():
    with pytest.raises(ValueError):
        RoutingConfig(policy="bogus")
    with pytest.raises(ValueError):
        RoutingConfig(policy="hedged", hedge_delay_ns=-1.0)
    with pytest.raises(ValueError):
        RoutingConfig(hedge_quantile=0.0)
    with pytest.raises(ValueError):
        RoutingConfig(hedge_multiplier=0.0)
    with pytest.raises(ValueError):
        RoutingConfig(hedge_min_observations=0)
    # An explicit hedge delay on a non-hedging policy would silently do
    # nothing; reject the contradiction instead.
    with pytest.raises(ValueError):
        RoutingConfig(policy="round_robin", hedge_delay_ns=100.0)
    assert RoutingConfig(policy="hedged").hedging
    assert not RoutingConfig(policy="round_robin").hedging


# -- ReplicaRouter -----------------------------------------------------------


def pick_and_commit(router, shard, outstanding, capacity=8):
    replica = router.route(shard, outstanding, capacity)
    if replica is not None:
        router.commit(shard, replica)
    return replica


def test_round_robin_cycles_per_shard():
    router = ReplicaRouter(RoutingConfig(policy="round_robin"), n_shards=2)
    picks = [pick_and_commit(router, 0, [0, 0, 0]) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    # Shard cursors are independent.
    assert pick_and_commit(router, 1, [0, 0, 0]) == 0


def test_round_robin_route_is_a_pure_probe():
    """Probing without committing (query shed on another shard) must
    not advance the cursor — otherwise shed/admit alternation pins the
    shard onto a single replica."""
    router = ReplicaRouter(RoutingConfig(policy="round_robin"), n_shards=1)
    assert router.route(0, [0, 0], capacity=8) == 0
    assert router.route(0, [0, 0], capacity=8) == 0  # no drift
    router.commit(0, 0)
    assert router.route(0, [0, 0], capacity=8) == 1


def test_round_robin_skips_full_lanes():
    router = ReplicaRouter(RoutingConfig(policy="round_robin"), n_shards=1)
    assert router.route(0, [8, 0, 8], capacity=8) == 1
    assert router.route(0, [8, 8, 8], capacity=8) is None


def test_least_outstanding_picks_min():
    router = ReplicaRouter(RoutingConfig(policy="least_outstanding"), n_shards=1)
    assert router.route(0, [3, 1, 2], capacity=8) == 1
    assert router.route(0, [8, 8, 8], capacity=8) is None


def test_least_outstanding_tie_breaks_to_lowest_index():
    """Satellite: deterministic tie-breaking (replays are exact)."""
    router = ReplicaRouter(RoutingConfig(policy="least_outstanding"), n_shards=1)
    for _ in range(5):
        assert router.route(0, [2, 2, 2], capacity=8) == 0
    assert router.route(0, [2, 1, 1], capacity=8) == 1


def test_secondary_excludes_primary():
    router = ReplicaRouter(RoutingConfig(policy="hedged"), n_shards=1)
    assert router.secondary(0, primary=0, outstanding=[0, 5, 1], capacity=8) == 2
    assert router.secondary(0, primary=2, outstanding=[4, 5, 0], capacity=8) == 0
    # Ties among secondaries break to the lowest index.
    assert router.secondary(0, primary=1, outstanding=[3, 0, 3], capacity=8) == 0
    assert router.secondary(0, primary=0, outstanding=[0, 8, 8], capacity=8) is None


def test_adaptive_hedge_delay_anchors_at_observed_quantile():
    config = RoutingConfig(policy="hedged", hedge_min_observations=4, hedge_multiplier=2.0)
    router = ReplicaRouter(config, n_shards=1)
    assert router.hedge_delay_ns() is None  # cold
    for latency in (100.0, 200.0, 300.0, 400.0):
        router.observe(latency)
    # Nearest-rank p50 of {100..400} is 200; multiplier doubles it.
    assert router.hedge_delay_ns() == pytest.approx(400.0)
    router.observe(50.0)  # cache invalidates; p50 of 5 values is 200
    assert router.hedge_delay_ns() == pytest.approx(400.0)


def test_explicit_hedge_delay_wins_over_observations():
    config = RoutingConfig(policy="hedged", hedge_delay_ns=123.0)
    router = ReplicaRouter(config, n_shards=1)
    assert router.hedge_delay_ns() == 123.0


def test_non_hedged_policies_never_hedge():
    router = ReplicaRouter(RoutingConfig(policy="least_outstanding"), n_shards=1)
    for latency in range(20):
        router.observe(float(latency))
    assert router.hedge_delay_ns() is None


def test_observation_reservoir_is_bounded():
    from repro.serving.replication import HEDGE_OBSERVATION_CAP

    router = ReplicaRouter(RoutingConfig(policy="hedged"), n_shards=1)
    for latency in range(HEDGE_OBSERVATION_CAP + 100):
        router.observe(float(latency))
    assert router.observations == HEDGE_OBSERVATION_CAP
    # The anchor still reads the (now frozen) quantile.
    assert router.hedge_delay_ns() is not None
