"""Tests for repro.serving.scenario: round-trips and replayability."""

import json
from dataclasses import asdict

import pytest

from repro.serving.config import (
    DataConfig,
    FaultTimeline,
    ServingConfig,
    WorkloadSpec,
)
from repro.serving.loadgen import OpenLoopWorkload, open_loop_arrivals
from repro.serving.replication import FaultSpec
from repro.serving.scenario import (
    ScenarioSpec,
    build_scenario_index,
    run_scenario,
    workload_arrivals,
)


def small_spec(**overrides):
    defaults = dict(
        name="test",
        data=DataConfig(n=900, pool_queries=8),
        workload=WorkloadSpec(requests=16, qps=4_000.0),
        seed=3,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def report_bytes(result):
    return json.dumps(asdict(result.report), sort_keys=True)


# -- spec round-trip and validation -------------------------------------------


def test_spec_round_trips_through_json():
    spec = small_spec(
        serving=ServingConfig(n_shards=2, scheme="table", replicas=2, routing="hedged"),
        faults=FaultTimeline(
            events=(FaultSpec(shard=0, replica=1, latency_multiplier=3.0),)
        ),
        description="round-trip probe",
    )
    payload = json.loads(json.dumps(spec.to_dict()))
    assert payload["schema"] == "repro-scenario/1"
    assert ScenarioSpec.from_dict(payload) == spec


def test_spec_rejects_unknown_keys_and_bad_schema():
    payload = small_spec().to_dict()
    payload["extra"] = 1
    with pytest.raises(ValueError, match="unknown key"):
        ScenarioSpec.from_dict(payload)
    payload = small_spec().to_dict()
    payload["schema"] = "repro-scenario/999"
    with pytest.raises(ValueError, match="schema"):
        ScenarioSpec.from_dict(payload)


def test_spec_validates_faults_against_deployment():
    with pytest.raises(ValueError, match="deployment"):
        small_spec(
            faults=FaultTimeline(events=(FaultSpec(shard=3, replica=0),))
        )


def test_spec_validation():
    with pytest.raises(ValueError, match="name"):
        small_spec(name="")
    with pytest.raises(ValueError, match="k"):
        small_spec(k=0)
    with pytest.raises(ValueError, match="target_p99_ms"):
        small_spec(target_p99_ms=0.0)


# -- arrival generation -------------------------------------------------------


def test_constant_shapes_match_legacy_open_loop_arrivals():
    for shape in ("poisson", "uniform"):
        workload = WorkloadSpec(requests=40, qps=3_000.0, shape=shape, zipf_s=0.7)
        legacy = open_loop_arrivals(
            OpenLoopWorkload(
                qps=3_000.0, n_queries=40, arrivals=shape, zipf_s=0.7, seed=11
            ),
            pool_size=8,
        )
        assert workload_arrivals(workload, pool_size=8, seed=11) == legacy


def test_shaped_arrivals_are_deterministic():
    workload = WorkloadSpec(
        requests=64,
        qps=2_000.0,
        shape="flash_crowd",
        flash_at_us=2_000.0,
        flash_duration_us=4_000.0,
        flash_multiplier=4.0,
    )
    a = workload_arrivals(workload, pool_size=8, seed=5)
    b = workload_arrivals(workload, pool_size=8, seed=5)
    assert a == b
    assert workload_arrivals(workload, pool_size=8, seed=6) != a


def test_workload_arrivals_rejects_closed_mode():
    with pytest.raises(ValueError, match="open-loop"):
        workload_arrivals(WorkloadSpec(mode="closed"), pool_size=8, seed=1)


# -- replayability ------------------------------------------------------------


def test_same_seed_yields_byte_identical_report():
    spec = small_spec()
    assert report_bytes(run_scenario(spec)) == report_bytes(run_scenario(spec))


def test_replay_from_serialized_spec_is_identical():
    spec = small_spec(
        serving=ServingConfig(n_shards=2, scheme="table", replicas=2, routing="hedged")
    )
    reloaded = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert report_bytes(run_scenario(spec)) == report_bytes(run_scenario(reloaded))


def test_different_seed_changes_the_run():
    spec = small_spec(seed=3)
    other = small_spec(seed=4)
    assert report_bytes(run_scenario(spec)) != report_bytes(run_scenario(other))


def test_index_reuse_matches_fresh_build():
    spec = small_spec()
    index = build_scenario_index(spec)
    assert report_bytes(run_scenario(spec, index=index)) == report_bytes(
        run_scenario(spec)
    )


def test_closed_loop_scenario_runs():
    spec = small_spec(
        workload=WorkloadSpec(mode="closed", requests=16, concurrency=4)
    )
    result = run_scenario(spec)
    assert result.report.completed == 16
    assert result.spec is spec
    assert len(result.records) == 16
    assert set(result.answers) == {r.query_id for r in result.records}


# -- windowed faults change behaviour -----------------------------------------


def test_windowed_fault_hurts_only_with_an_active_window():
    healthy = small_spec(
        serving=ServingConfig(n_shards=1, replicas=2, routing="round_robin"),
        workload=WorkloadSpec(requests=32, qps=6_000.0),
    )
    run_ns = 32 / 6_000.0 * 1e9
    stormy = small_spec(
        serving=ServingConfig(n_shards=1, replicas=2, routing="round_robin"),
        workload=WorkloadSpec(requests=32, qps=6_000.0),
        faults=FaultTimeline(
            events=(
                FaultSpec(
                    shard=0,
                    replica=1,
                    latency_multiplier=20.0,
                    start_ns=run_ns * 0.25,
                    stop_ns=run_ns * 0.75,
                ),
            )
        ),
    )
    p99_healthy = run_scenario(healthy).report.p99_ns
    p99_stormy = run_scenario(stormy).report.p99_ns
    assert p99_stormy > p99_healthy


def test_slo_dict_carries_spec_and_verdict():
    result = run_scenario(small_spec(target_p99_ms=1e6))
    payload = json.loads(json.dumps(result.slo_dict()))
    assert payload["schema"] == "repro-scenario-report/1"
    assert payload["slo"]["met"] is True
    # The embedded spec replays the run.
    respawned = ScenarioSpec.from_dict(payload["spec"])
    assert report_bytes(run_scenario(respawned)) == json.dumps(
        payload["report"], sort_keys=True
    )
