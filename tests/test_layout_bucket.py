"""Tests for repro.layout.bucket (512-byte bucket blocks, Figure 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.bucket import (
    BLOCK_HEADER_SIZE,
    DEFAULT_BLOCK_SIZE,
    NULL_ADDRESS,
    decode_block,
    encode_bucket,
    entries_per_block,
    read_bucket,
)
from repro.layout.object_info import ObjectInfoCodec
from repro.storage.blockstore import MemoryBlockStore


@pytest.fixture
def codec():
    return ObjectInfoCodec(n_objects=1 << 20, table_bits=16)


def test_paper_geometry():
    # 512-byte block, 16-byte header, 5-byte entries -> 99 per block.
    assert entries_per_block(512) == 99
    assert entries_per_block(128) == 22
    assert entries_per_block(4096) == 816
    assert BLOCK_HEADER_SIZE == 16


def test_entries_per_block_rejects_tiny():
    with pytest.raises(ValueError):
        entries_per_block(BLOCK_HEADER_SIZE)


def test_empty_bucket_is_null(codec):
    store = MemoryBlockStore()
    head = encode_bucket(store, codec, np.empty(0, np.uint64), np.empty(0, np.uint64))
    assert head == NULL_ADDRESS
    assert store.size_bytes == 0


def test_single_block_roundtrip(codec):
    store = MemoryBlockStore()
    ids = np.arange(50, dtype=np.uint64)
    fps = (ids * 7) % (1 << codec.fingerprint_bits)
    head = encode_bucket(store, codec, ids, fps)
    block = decode_block(codec, store.read(head, DEFAULT_BLOCK_SIZE))
    assert not block.has_next
    assert block.count == 50
    np.testing.assert_array_equal(block.object_ids, ids.astype(np.int64))
    np.testing.assert_array_equal(block.fingerprints, fps)


def test_chained_blocks(codec):
    store = MemoryBlockStore()
    n = 250  # needs ceil(250/99) = 3 blocks
    ids = np.arange(n, dtype=np.uint64)
    fps = np.zeros(n, dtype=np.uint64)
    head = encode_bucket(store, codec, ids, fps)
    assert store.size_bytes == 3 * DEFAULT_BLOCK_SIZE
    out_ids, _ = read_bucket(store, codec, head)
    np.testing.assert_array_equal(out_ids, ids.astype(np.int64))
    first = decode_block(codec, store.read(head, DEFAULT_BLOCK_SIZE))
    assert first.has_next and first.count == 99


def test_read_bucket_max_blocks_limits_chain(codec):
    store = MemoryBlockStore()
    ids = np.arange(250, dtype=np.uint64)
    head = encode_bucket(store, codec, ids, np.zeros(250, np.uint64))
    partial, _ = read_bucket(store, codec, head, max_blocks=1)
    assert partial.size == 99


def test_block_is_exactly_block_size(codec):
    store = MemoryBlockStore()
    encode_bucket(store, codec, np.arange(3, dtype=np.uint64), np.zeros(3, np.uint64))
    assert store.size_bytes == DEFAULT_BLOCK_SIZE


def test_decode_rejects_garbage(codec):
    with pytest.raises(ValueError):
        decode_block(codec, b"short")
    # Header claiming more entries than the block holds.
    bogus = (99999).to_bytes(8, "little") + (400).to_bytes(2, "little") + b"\x00" * 6
    with pytest.raises(ValueError):
        decode_block(codec, bogus + b"\x00" * 100)


@settings(max_examples=60, deadline=None)
@given(
    n_entries=st.integers(min_value=1, max_value=500),
    block_size=st.sampled_from([128, 512, 4096]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_roundtrip_any_size(n_entries, block_size, seed):
    rng = np.random.default_rng(seed)
    codec = ObjectInfoCodec(n_objects=1 << 20, table_bits=16)
    store = MemoryBlockStore()
    ids = rng.integers(0, 1 << 20, size=n_entries, dtype=np.uint64)
    fps = rng.integers(0, 1 << codec.fingerprint_bits, size=n_entries, dtype=np.uint64)
    head = encode_bucket(store, codec, ids, fps, block_size=block_size)
    out_ids, out_fps = read_bucket(store, codec, head, block_size=block_size)
    np.testing.assert_array_equal(out_ids, ids.astype(np.int64))
    np.testing.assert_array_equal(out_fps, fps)
    expected_blocks = -(-n_entries // entries_per_block(block_size))
    assert store.size_bytes == expected_blocks * block_size
