"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_power_of_two,
)


def test_require_passes_and_raises():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_require_positive():
    require_positive(0.5, "x")
    for bad in (0, -1, -0.001):
        with pytest.raises(ValueError):
            require_positive(bad, "x")


def test_require_in_range_inclusive():
    require_in_range(1, 1, 2, "x")
    require_in_range(2, 1, 2, "x")
    with pytest.raises(ValueError):
        require_in_range(2.01, 1, 2, "x")


def test_require_power_of_two():
    for good in (1, 2, 4, 512, 4096):
        require_power_of_two(good, "x")
    for bad in (0, -2, 3, 513):
        with pytest.raises(ValueError):
            require_power_of_two(bad, "x")
