"""Tests for repro.io.persistence (save/load an on-storage index)."""

import numpy as np
import pytest

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.io.persistence import load_index, save_index
from repro.storage.blockstore import FileBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


@pytest.fixture
def built(tmp_path):
    rng = np.random.default_rng(103)
    n, d = 1000, 12
    data = (rng.normal(scale=3.0, size=(n, d))).astype(np.float32)
    queries = data[:6] + rng.normal(scale=0.02, size=(6, d)).astype(np.float32)
    params = E2LSHParams(n=n, rho=0.35, gamma=0.7, s_factor=8)
    store = FileBlockStore(tmp_path / "index.blocks")
    index = E2LSHoSIndex.build(data, params, store=store, seed=12)
    return tmp_path, data, queries, store, index


def answers_of(index, queries):
    engine = AsyncIOEngine(
        make_volume("cssd", 1), INTERFACE_PROFILES["io_uring"], index.built.store
    )
    return index.run(queries, engine, k=3).answers


def test_roundtrip_same_answers(built):
    tmp_path, data, queries, store, index = built
    before = answers_of(index, queries)
    save_index(index, tmp_path / "index.npz")

    # Reopen the block store cold, as a fresh process would.
    store.close()
    with FileBlockStore(tmp_path / "index.blocks") as reopened:
        assert reopened.size_bytes > 0
        loaded = load_index(tmp_path / "index.npz", reopened, data)
        after = answers_of(loaded, queries)
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances, rtol=1e-7)


def test_roundtrip_preserves_metadata(built):
    tmp_path, data, queries, store, index = built
    save_index(index, tmp_path / "index.npz")
    loaded = load_index(tmp_path / "index.npz", store, data)
    assert loaded.params == index.params
    assert loaded.ladder.radii == index.ladder.radii
    assert loaded.storage_bytes == index.storage_bytes
    assert loaded.built.codec.table_bits == index.built.codec.table_bits
    np.testing.assert_array_equal(loaded.built.bank.a, index.built.bank.a)


def test_version_check(built, tmp_path):
    _, data, queries, store, index = built
    save_index(index, tmp_path / "index.npz")
    import json

    import numpy as np_mod

    with np_mod.load(tmp_path / "index.npz") as payload:
        arrays = {key: payload[key] for key in payload.files}
    meta = json.loads(bytes(arrays["meta_json"]).decode("utf-8"))
    meta["version"] = 999
    arrays["meta_json"] = np_mod.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np_mod.uint8
    )
    np_mod.savez_compressed(tmp_path / "bad.npz", **arrays)
    with pytest.raises(ValueError, match="version"):
        load_index(tmp_path / "bad.npz", store, data)
