"""Tests for repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeline,
)

# -- counters and gauges ------------------------------------------------------


def test_counter_accumulates_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(4.0)
    assert counter.value == 5.0
    with pytest.raises(ValueError):
        counter.inc(-1.0)
    assert counter.as_dict() == {"type": "counter", "value": 5.0}


def test_gauge_holds_last_value():
    gauge = Gauge()
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5
    assert gauge.as_dict()["type"] == "gauge"


# -- histograms ---------------------------------------------------------------


def test_histogram_buckets_are_inclusive_upper_bounds():
    hist = Histogram([10.0, 20.0])
    for value in (5.0, 10.0, 10.5, 25.0):
        hist.observe(value)
    # 5.0 and 10.0 land in the first bucket, 10.5 in the second,
    # 25.0 in the overflow.
    assert hist.counts == [2, 1, 1]
    assert hist.total == 4
    assert hist.sum == pytest.approx(50.5)


def test_histogram_quantile_returns_bucket_bound():
    hist = Histogram([10.0, 20.0, 40.0])
    for value in [1.0] * 50 + [15.0] * 40 + [30.0] * 9 + [99.0]:
        hist.observe(value)
    assert hist.quantile(0.5) == 10.0
    assert hist.quantile(0.9) == 20.0
    assert hist.quantile(0.99) == 40.0
    assert hist.quantile(1.0) == float("inf")


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([10.0, 10.0])
    with pytest.raises(ValueError):
        Histogram([20.0, 10.0])
    hist = Histogram([1.0])
    with pytest.raises(ValueError):
        hist.quantile(0.5)  # no samples
    hist.observe(0.5)
    with pytest.raises(ValueError):
        hist.quantile(0.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_default_latency_buckets_are_increasing():
    assert all(a < b for a, b in zip(LATENCY_BUCKETS_NS, LATENCY_BUCKETS_NS[1:]))


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_returns_same_instance():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert "a" in registry
    assert "missing" not in registry


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_is_sorted_and_plain():
    registry = MetricsRegistry()
    registry.gauge("zeta").set(1.0)
    registry.counter("alpha").inc(2.0)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["alpha", "zeta"]
    assert snapshot["alpha"] == {"type": "counter", "value": 2.0}


# -- timeline -----------------------------------------------------------------


def test_timeline_emits_one_row_per_elapsed_interval():
    timeline = Timeline(interval_ns=100.0)
    state = {"n": 0}

    def sample(t_ns):
        state["n"] += 1
        return {"n": state["n"]}

    timeline.advance(50.0, sample)
    assert timeline.samples == []
    timeline.advance(350.0, sample)
    assert [row["t_ns"] for row in timeline.samples] == [100.0, 200.0, 300.0]
    assert [row["n"] for row in timeline.samples] == [1, 2, 3]


def test_timeline_due_times_are_exact_multiples():
    timeline = Timeline(interval_ns=7.5)
    timeline.advance(40.0, lambda t: {})
    assert [row["t_ns"] for row in timeline.samples] == [7.5, 15.0, 22.5, 30.0, 37.5]
    assert timeline.as_dict()["interval_ns"] == 7.5


def test_timeline_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        Timeline(0.0)
    with pytest.raises(ValueError):
        Timeline(-5.0)
