"""Tests for repro.baselines.linear_scan."""

import numpy as np
import pytest

from repro.baselines.linear_scan import LinearScanIndex


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(61)
    return LinearScanIndex(rng.normal(size=(300, 8)).astype(np.float32))


def test_exact_top1(index):
    query = index.data[42] + 0.001
    answer = index.query(query, k=1)
    assert answer.ids[0] == 42


def test_topk_sorted_and_exact(index):
    rng = np.random.default_rng(1)
    query = rng.normal(size=8).astype(np.float32)
    answer = index.query(query, k=7)
    dists = np.linalg.norm(index.data.astype(np.float64) - query, axis=1)
    expected = np.argsort(dists, kind="stable")[:7]
    np.testing.assert_allclose(answer.distances, np.sort(dists)[:7], rtol=1e-6)
    assert set(answer.ids.tolist()) == set(expected.tolist())


def test_stats_reflect_full_scan(index):
    answer = index.query(index.data[0], k=1)
    assert answer.stats.candidates_checked == index.n
    assert answer.stats.ops.distance_scalar_ops == index.n * index.d


def test_batch(index):
    answers = index.query_batch(index.data[:3], k=1)
    assert [a.ids[0] for a in answers] == [0, 1, 2]


def test_validation(index):
    with pytest.raises(ValueError):
        index.query(index.data[0], k=0)
    with pytest.raises(ValueError):
        index.query(index.data[0], k=index.n + 1)
    with pytest.raises(ValueError):
        index.query(np.zeros(3, dtype=np.float32))
    with pytest.raises(ValueError):
        LinearScanIndex(np.empty((0, 3)))
