"""Tests for repro.storage.raid."""

import pytest

from repro.storage.device import StorageDevice
from repro.storage.profiles import DEVICE_PROFILES
from repro.storage.raid import StripedVolume


def make_volume(count=4, stripe=512):
    return StripedVolume.of(DEVICE_PROFILES["cssd"], count, stripe)


def test_round_robin_routing_by_block():
    volume = make_volume(count=4, stripe=512)
    assert volume.device_for(0) is volume.devices[0]
    assert volume.device_for(511) is volume.devices[0]
    assert volume.device_for(512) is volume.devices[1]
    assert volume.device_for(512 * 5) is volume.devices[1]


def test_striping_multiplies_throughput():
    single = make_volume(count=1)
    quad = make_volume(count=4)
    assert quad.max_iops == pytest.approx(4 * single.max_iops)
    # Spread submissions land on different devices, so completions do
    # not serialize behind one device's regulator.
    t_single = max(single.submit(0.0, i * 512, 512) for i in range(64))
    t_quad = max(quad.submit(0.0, i * 512, 512) for i in range(64))
    assert t_quad < t_single


def test_striping_math_exact_device_index():
    """``device = (address // stripe_unit) mod count`` for any unit."""
    volume = StripedVolume.of(DEVICE_PROFILES["cssd"], 3, stripe_unit=4096)
    for address, expected in (
        (0, 0),
        (4095, 0),
        (4096, 1),
        (8191, 1),
        (8192, 2),
        (12288, 0),  # wraps around after count * stripe_unit bytes
        (3 * 4096 * 1000 + 2 * 4096, 2),
    ):
        assert volume.device_for(address) is volume.devices[expected]


def test_striping_cycle_length_is_count_times_unit():
    count, stripe = 4, 512
    volume = make_volume(count=count, stripe=stripe)
    for block in range(3 * count):
        assert (
            volume.device_for(block * stripe)
            is volume.devices[block % count]
        )


def test_long_read_charged_to_first_stripe_owner():
    volume = make_volume(count=4, stripe=512)
    volume.submit(0.0, 512, 4096)  # spans stripes 1..8, owner is device 1
    assert volume.devices[1].stats.completed == 1
    assert all(
        volume.devices[i].stats.completed == 0 for i in (0, 2, 3)
    )


def test_spread_addresses_land_on_all_devices():
    volume = make_volume(count=4, stripe=512)
    for block in range(8):
        volume.submit(0.0, block * 512, 512)
    assert [device.stats.completed for device in volume.devices] == [2, 2, 2, 2]


def test_combined_stats_merges_devices():
    volume = make_volume(count=2)
    for i in range(10):
        volume.submit(0.0, i * 512, 512)
    merged = volume.combined_stats()
    assert merged.completed == 10
    assert merged.completed == sum(d.stats.completed for d in volume.devices)


def test_reset_propagates():
    volume = make_volume(count=2)
    volume.submit(0.0, 0, 512)
    volume.reset()
    assert all(d.stats.completed == 0 for d in volume.devices)


def test_validation():
    with pytest.raises(ValueError):
        StripedVolume([], stripe_unit=512)
    with pytest.raises(ValueError):
        StripedVolume([StorageDevice(DEVICE_PROFILES["cssd"])], stripe_unit=0)
    with pytest.raises(ValueError):
        StripedVolume.of(DEVICE_PROFILES["cssd"], 0)


def test_capacity_aggregates():
    volume = make_volume(count=3)
    assert volume.capacity_bytes == 3 * DEVICE_PROFILES["cssd"].capacity_bytes
