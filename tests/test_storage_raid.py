"""Tests for repro.storage.raid."""

import pytest

from repro.storage.device import StorageDevice
from repro.storage.profiles import DEVICE_PROFILES
from repro.storage.raid import StripedVolume


def make_volume(count=4, stripe=512):
    return StripedVolume.of(DEVICE_PROFILES["cssd"], count, stripe)


def test_round_robin_routing_by_block():
    volume = make_volume(count=4, stripe=512)
    assert volume.device_for(0) is volume.devices[0]
    assert volume.device_for(511) is volume.devices[0]
    assert volume.device_for(512) is volume.devices[1]
    assert volume.device_for(512 * 5) is volume.devices[1]


def test_striping_multiplies_throughput():
    single = make_volume(count=1)
    quad = make_volume(count=4)
    assert quad.max_iops == pytest.approx(4 * single.max_iops)
    # Spread submissions land on different devices, so completions do
    # not serialize behind one device's regulator.
    t_single = max(single.submit(0.0, i * 512, 512) for i in range(64))
    t_quad = max(quad.submit(0.0, i * 512, 512) for i in range(64))
    assert t_quad < t_single


def test_combined_stats_merges_devices():
    volume = make_volume(count=2)
    for i in range(10):
        volume.submit(0.0, i * 512, 512)
    merged = volume.combined_stats()
    assert merged.completed == 10
    assert merged.completed == sum(d.stats.completed for d in volume.devices)


def test_reset_propagates():
    volume = make_volume(count=2)
    volume.submit(0.0, 0, 512)
    volume.reset()
    assert all(d.stats.completed == 0 for d in volume.devices)


def test_validation():
    with pytest.raises(ValueError):
        StripedVolume([], stripe_unit=512)
    with pytest.raises(ValueError):
        StripedVolume([StorageDevice(DEVICE_PROFILES["cssd"])], stripe_unit=0)
    with pytest.raises(ValueError):
        StripedVolume.of(DEVICE_PROFILES["cssd"], 0)


def test_capacity_aggregates():
    volume = make_volume(count=3)
    assert volume.capacity_bytes == 3 * DEVICE_PROFILES["cssd"].capacity_bytes
