"""Tests for repro.baselines.srs."""

import numpy as np
import pytest

from repro.baselines.linear_scan import LinearScanIndex
from repro.baselines.srs import SRSIndex


@pytest.fixture(scope="module")
def data_and_queries():
    rng = np.random.default_rng(41)
    n, d = 2000, 32
    centers = rng.normal(scale=5.0, size=(20, d))
    data = (centers[rng.integers(0, 20, n)] + rng.normal(scale=0.5, size=(n, d))).astype(
        np.float32
    )
    queries = (data[rng.integers(0, n, 10)] + rng.normal(scale=0.05, size=(10, d))).astype(
        np.float32
    )
    return data, queries


@pytest.fixture(scope="module")
def index(data_and_queries):
    return SRSIndex(data_and_queries[0], seed=9)


def test_exhaustive_budget_is_exact(data_and_queries, index):
    """With t_prime = n, SRS enumerates everything -> exact answers."""
    data, queries = data_and_queries
    exact = LinearScanIndex(data)
    for q in queries[:3]:
        answer = index.query(q, k=3, t_prime=data.shape[0])
        truth = exact.query(q, k=3)
        np.testing.assert_allclose(answer.distances, truth.distances, rtol=1e-5)


def test_accuracy_improves_with_budget(data_and_queries, index):
    data, queries = data_and_queries
    exact = LinearScanIndex(data)
    errors = []
    for budget in (5, 50, 500):
        total = 0.0
        for q in queries:
            answer = index.query(q, k=1, t_prime=budget)
            truth = exact.query(q, k=1)
            total += answer.distances[0] / max(truth.distances[0], 1e-9)
        errors.append(total)
    assert errors[0] >= errors[-1]


def test_budget_respected(data_and_queries, index):
    _, queries = data_and_queries
    answer = index.query(queries[0], k=1, t_prime=37)
    assert answer.stats.candidates_checked <= 37


def test_guarantee_mode_stops_early(data_and_queries, index):
    """Without t_prime the chi-squared test stops the scan early."""
    data, queries = data_and_queries
    answer = index.query(queries[0], k=1)
    assert answer.stats.candidates_checked < data.shape[0] / 10
    # The guarantee still holds empirically on easy data: within c=4.
    exact = LinearScanIndex(data).query(queries[0], k=1)
    assert answer.distances[0] <= 4.0 * exact.distances[0] + 1e-9


def test_ops_counters_populated(data_and_queries, index):
    _, queries = data_and_queries
    stats = index.query(queries[0], k=1, t_prime=100).stats
    assert stats.ops.tree_node_visits > 0
    assert stats.ops.heap_ops > 0
    assert stats.ops.distance_scalar_ops == stats.candidates_checked * index.d


def test_index_memory_is_tiny(data_and_queries, index):
    data, _ = data_and_queries
    # The "tiny index" property: far below the raw data in float64 terms.
    assert index.index_memory_bytes < data.nbytes * 2


def test_topk_sorted(data_and_queries, index):
    _, queries = data_and_queries
    answer = index.query(queries[0], k=5, t_prime=500)
    assert np.all(np.diff(answer.distances) >= 0)
    assert answer.ids.size == 5


def test_validation(data_and_queries, index):
    _, queries = data_and_queries
    with pytest.raises(ValueError):
        index.query(queries[0], k=0)
    with pytest.raises(ValueError):
        index.query(np.zeros(5, dtype=np.float32), k=1)
    with pytest.raises(ValueError):
        index.query(queries[0], k=5, t_prime=2)
    with pytest.raises(ValueError):
        SRSIndex(np.empty((0, 4)))
    with pytest.raises(ValueError):
        SRSIndex(np.zeros((10, 4)), m=0)
    with pytest.raises(ValueError):
        SRSIndex(np.zeros((10, 4)), c=1.0)
