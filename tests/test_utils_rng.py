"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import rng_for, spawn_rngs


def test_same_seed_and_label_reproduces_stream():
    a = rng_for(42, "hash").standard_normal(16)
    b = rng_for(42, "hash").standard_normal(16)
    np.testing.assert_array_equal(a, b)


def test_different_labels_decorrelate():
    a = rng_for(42, "hash").standard_normal(16)
    b = rng_for(42, "dataset").standard_normal(16)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = rng_for(1, "x").standard_normal(16)
    b = rng_for(2, "x").standard_normal(16)
    assert not np.allclose(a, b)


def test_spawn_rngs_are_independent_and_reproducible():
    first = [g.standard_normal(4) for g in spawn_rngs(7, "trees", 3)]
    second = [g.standard_normal(4) for g in spawn_rngs(7, "trees", 3)]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)
    assert not np.allclose(first[0], first[1])


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, "x", -1)
