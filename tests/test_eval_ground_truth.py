"""Tests for repro.eval.ground_truth."""

import numpy as np
import pytest

from repro.eval.ground_truth import exact_knn


def naive_knn(data, queries, k):
    ids = []
    dists = []
    for q in queries:
        d = np.linalg.norm(data - q, axis=1)
        order = np.argsort(d, kind="stable")[:k]
        ids.append(order)
        dists.append(d[order])
    return np.array(ids), np.array(dists)


def test_matches_naive():
    rng = np.random.default_rng(3)
    data = rng.normal(size=(500, 12))
    queries = rng.normal(size=(7, 12))
    truth = exact_knn(data, queries, k=5)
    naive_ids, naive_dists = naive_knn(data, queries, 5)
    np.testing.assert_allclose(truth.distances, naive_dists, rtol=1e-9)
    # Distances identify the same neighbor sets even under ties.
    for got, want in zip(truth.ids, naive_ids):
        assert set(got.tolist()) == set(want.tolist())


def test_chunked_equals_unchunked():
    rng = np.random.default_rng(4)
    data = rng.normal(size=(1000, 6))
    queries = rng.normal(size=(5, 6))
    whole = exact_knn(data, queries, k=9, chunk_rows=10_000)
    chunked = exact_knn(data, queries, k=9, chunk_rows=64)
    np.testing.assert_allclose(whole.distances, chunked.distances, rtol=1e-9)


def test_distances_sorted():
    rng = np.random.default_rng(5)
    truth = exact_knn(rng.normal(size=(200, 4)), rng.normal(size=(3, 4)), k=20)
    assert np.all(np.diff(truth.distances, axis=1) >= 0)
    assert truth.k == 20


def test_single_query_vector():
    rng = np.random.default_rng(6)
    data = rng.normal(size=(50, 3))
    truth = exact_knn(data, data[7], k=1)
    assert truth.ids[0, 0] == 7
    assert truth.distances[0, 0] == pytest.approx(0.0, abs=1e-6)


def test_k_bounds():
    data = np.zeros((10, 2))
    with pytest.raises(ValueError):
        exact_knn(data, np.zeros((1, 2)), k=0)
    with pytest.raises(ValueError):
        exact_knn(data, np.zeros((1, 2)), k=11)
