"""Tests for repro.core.collision."""

import numpy as np
import pytest

from repro.core.collision import (
    collision_probability,
    query_aware_collision_probability,
    rho_for_width,
    width_for_rho,
)


def test_limits():
    assert collision_probability(0.0) == 0.0
    assert collision_probability(1e9) == pytest.approx(1.0, abs=1e-6)
    assert query_aware_collision_probability(0.0) == pytest.approx(0.0, abs=1e-12)
    assert query_aware_collision_probability(1e9) == pytest.approx(1.0, abs=1e-9)


def test_monotone_decreasing_in_distance():
    """Farther points (smaller w/s) collide less — the LSH property."""
    t = np.linspace(0.05, 8, 200)  # beyond ~8 the probability saturates at 1
    p = collision_probability(t)
    assert np.all(np.diff(p) > 0)  # increasing in t = decreasing in s
    q = query_aware_collision_probability(t)
    assert np.all(np.diff(q) > 0)


def test_known_value():
    # p(4) ~ 0.8006 (e.g. w=4, s=1): standard E2LSH figure.
    assert collision_probability(4.0) == pytest.approx(0.8006, abs=1e-3)
    assert collision_probability(2.0) == pytest.approx(0.6095, abs=1e-3)


def test_vectorized_matches_scalar():
    t = np.array([0.5, 1.0, 4.0])
    vec = collision_probability(t)
    for i, value in enumerate(t):
        assert vec[i] == pytest.approx(collision_probability(float(value)))


def test_rho_below_one_and_decreasing_in_w():
    r_small = rho_for_width(1.0, 2.0)
    r_large = rho_for_width(16.0, 2.0)
    assert 0 < r_large < r_small < 1
    # As w -> inf, rho -> 1/c.
    assert rho_for_width(64.0, 2.0) == pytest.approx(0.5, abs=0.05)


def test_width_for_rho_inverts():
    target = 0.6
    w = width_for_rho(target, 2.0)
    assert rho_for_width(w, 2.0) == pytest.approx(target, abs=1e-6)


def test_width_for_rho_out_of_range():
    with pytest.raises(ValueError):
        width_for_rho(0.01, 2.0)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        collision_probability(-1.0)
    with pytest.raises(ValueError):
        rho_for_width(0.0, 2.0)
    with pytest.raises(ValueError):
        rho_for_width(1.0, 1.0)


def test_empirical_collision_matches_theory():
    """Monte-Carlo check of p_w(s) with actual floor-hash collisions."""
    rng = np.random.default_rng(11)
    d, n, w = 32, 20_000, 3.0
    direction = rng.standard_normal((d, n))
    offsets = rng.random(n)
    origin = np.zeros(d)
    for s in (0.5, 1.0, 2.0):
        point = np.zeros(d)
        point[0] = s
        h_origin = np.floor((origin @ direction) / w + offsets)
        h_point = np.floor((point @ direction) / w + offsets)
        empirical = float((h_origin == h_point).mean())
        assert empirical == pytest.approx(collision_probability(w / s), abs=0.02)
