"""Tests for repro.storage.blockstore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.blockstore import FileBlockStore, MemoryBlockStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryBlockStore()
    else:
        with FileBlockStore(tmp_path / "store.bin") as file_store:
            yield file_store


def test_allocate_returns_monotonic_addresses(store):
    a = store.allocate(100)
    b = store.allocate(50)
    assert a == 0
    assert b == 100
    assert store.size_bytes == 150


def test_write_read_roundtrip(store):
    address = store.allocate(16)
    store.write(address, b"hello world 1234")
    assert store.read(address, 16) == b"hello world 1234"
    assert store.read(address + 6, 5) == b"world"


def test_fresh_allocation_is_zeroed(store):
    address = store.allocate(32)
    assert store.read(address, 32) == b"\x00" * 32


def test_out_of_bounds_rejected(store):
    store.allocate(8)
    with pytest.raises(ValueError):
        store.read(4, 8)
    with pytest.raises(ValueError):
        store.write(4, b"too long!")
    with pytest.raises(ValueError):
        store.read(-1, 2)


def test_allocate_rejects_nonpositive(store):
    for bad in (0, -5):
        with pytest.raises(ValueError):
            store.allocate(bad)


def test_file_store_persists_to_disk(tmp_path):
    path = tmp_path / "persist.bin"
    with FileBlockStore(path) as store:
        address = store.allocate(4)
        store.write(address, b"abcd")
    assert path.read_bytes() == b"abcd"


def test_file_store_reopens_existing(tmp_path):
    path = tmp_path / "reopen.bin"
    with FileBlockStore(path) as store:
        store.write(store.allocate(8), b"deadbeef")
    with FileBlockStore(path) as reopened:
        assert reopened.size_bytes == 8
        assert reopened.read(0, 8) == b"deadbeef"
        # New allocations append after the existing content.
        assert reopened.allocate(4) == 8


def test_write_accounting(store):
    assert store.bytes_written == 0
    address = store.allocate(64)
    store.write(address, b"x" * 10)
    store.write(address + 10, b"y" * 6)
    assert store.bytes_written == 16
    assert store.write_count == 2


@settings(max_examples=50, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=20),
)
def test_property_many_writes_roundtrip(chunks):
    store = MemoryBlockStore()
    placed = []
    for chunk in chunks:
        address = store.allocate(len(chunk))
        store.write(address, chunk)
        placed.append((address, chunk))
    for address, chunk in placed:
        assert store.read(address, len(chunk)) == chunk
