"""Tests for repro.layout.object_info (5-byte object infos, Sec. 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.object_info import (
    OBJECT_INFO_SIZE,
    ObjectInfoCodec,
    default_table_bits,
)


def test_entry_is_five_bytes():
    codec = ObjectInfoCodec(n_objects=1000, table_bits=10)
    payload = codec.pack(np.array([1, 2, 3]), np.array([4, 5, 6]))
    assert len(payload) == 3 * OBJECT_INFO_SIZE


def test_pack_unpack_roundtrip():
    codec = ObjectInfoCodec(n_objects=100_000, table_bits=15)
    ids = np.array([0, 1, 99_999, 4242], dtype=np.uint64)
    fps = np.array([0, 1, (1 << codec.fingerprint_bits) - 1, 77], dtype=np.uint64)
    out_ids, out_fps = codec.unpack(codec.pack(ids, fps))
    np.testing.assert_array_equal(out_ids, ids.astype(np.int64))
    np.testing.assert_array_equal(out_fps, fps)


def test_split_hash_partitions_bits():
    codec = ObjectInfoCodec(n_objects=1 << 16, table_bits=12)
    values = np.array([0xDEADBEEF, 0, 0xFFFFFFFF], dtype=np.uint64)
    slots, fps = codec.split_hash(values)
    recombined = (fps << np.uint64(12)) | slots
    np.testing.assert_array_equal(recombined, values)
    assert slots.max() < (1 << 12)


def test_rejects_out_of_range():
    codec = ObjectInfoCodec(n_objects=100, table_bits=20)
    # IDs up to 2^id_bits - 1 are allowed (headroom for inserts)...
    codec.pack(np.array([(1 << codec.id_bits) - 1]), np.array([0]))
    # ...but not beyond the id_bits field.
    with pytest.raises(ValueError):
        codec.pack(np.array([1 << codec.id_bits]), np.array([0]))
    with pytest.raises(ValueError):
        codec.pack(np.array([0]), np.array([1 << codec.fingerprint_bits]))
    with pytest.raises(ValueError):
        codec.unpack(b"123")  # not a multiple of 5


def test_rejects_overflowing_layout():
    # 31 ID bits + 31 fingerprint bits > 40 bits.
    with pytest.raises(ValueError):
        ObjectInfoCodec(n_objects=1 << 31, table_bits=1)


def test_default_table_bits_tracks_log2n():
    assert default_table_bits(1_000) == 10
    assert default_table_bits(20_000) == 15
    assert default_table_bits(1) == 8  # clamped low
    assert default_table_bits(1 << 40) == 28  # clamped high
    with pytest.raises(ValueError):
        default_table_bits(0)


@settings(max_examples=100, deadline=None)
@given(
    table_bits=st.integers(min_value=8, max_value=28),
    data=st.data(),
)
def test_property_roundtrip_any_bits(table_bits, data):
    # The 5-byte entry requires id_bits + (32 - u) <= 40, i.e.
    # n <= 2^(8 + u) (Sec. 5.2's layout constraint).
    n_cap = min(1 << 20, 1 << (8 + table_bits))
    n_objects = data.draw(st.integers(min_value=2, max_value=n_cap))
    codec = ObjectInfoCodec(n_objects=n_objects, table_bits=table_bits)
    size = data.draw(st.integers(min_value=1, max_value=50))
    ids = data.draw(
        st.lists(st.integers(0, n_objects - 1), min_size=size, max_size=size)
    )
    fps = data.draw(
        st.lists(
            st.integers(0, (1 << codec.fingerprint_bits) - 1),
            min_size=size,
            max_size=size,
        )
    )
    ids_arr = np.array(ids, dtype=np.uint64)
    fps_arr = np.array(fps, dtype=np.uint64)
    out_ids, out_fps = codec.unpack(codec.pack(ids_arr, fps_arr))
    np.testing.assert_array_equal(out_ids, ids_arr.astype(np.int64))
    np.testing.assert_array_equal(out_fps, fps_arr)
