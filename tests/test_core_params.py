"""Tests for repro.core.params (Eq. 5 + gamma scaling)."""

import math

import pytest

from repro.core.params import E2LSHParams


def test_eq5_values():
    params = E2LSHParams(n=1_000_000, c=2.0, w=4.0, rho=0.3)
    # m = ceil(log_{1/p2} n) with p2 = p(2) ~ 0.6095.
    expected_m = math.ceil(math.log(1_000_000) / math.log(1 / params.p2))
    assert params.m == expected_m
    assert params.L == math.ceil(1_000_000**0.3)
    assert params.S == 2 * params.L


def test_gamma_scales_m_not_L():
    base = E2LSHParams(n=100_000, rho=0.3)
    scaled = base.with_gamma(0.5)
    assert scaled.L == base.L
    assert scaled.m == math.ceil(base.m * 0.5) or scaled.m == max(1, math.ceil(
        0.5 * math.log(100_000) / math.log(1 / base.p2)
    ))
    assert scaled.m < base.m


def test_s_factor():
    params = E2LSHParams(n=10_000, rho=0.3, s_factor=8.0)
    assert params.S == 8 * params.L
    assert params.with_s_factor(2.0).S == 2 * params.L


def test_probabilities_ordered():
    params = E2LSHParams(n=1000)
    assert 0 < params.p2 < params.p1 < 1


def test_success_probability_constant():
    assert E2LSHParams(n=10).success_probability == pytest.approx(0.5 - 1 / math.e)


def test_describe_mentions_core_values():
    text = E2LSHParams(n=1000, rho=0.3).describe()
    assert "n=1000" in text and "m=" in text and "L=" in text


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n": 0},
        {"n": 10, "c": 1.0},
        {"n": 10, "w": 0},
        {"n": 10, "rho": 0.0},
        {"n": 10, "rho": 1.0},
        {"n": 10, "gamma": 0},
        {"n": 10, "s_factor": 0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        E2LSHParams(**kwargs)


def test_explicit_overrides_replace_derived_values():
    base = E2LSHParams(n=4000, rho=0.32)
    overridden = E2LSHParams(
        n=1000, rho=0.32, m_explicit=base.m, L_explicit=base.L, S_explicit=7
    )
    assert overridden.m == base.m
    assert overridden.L == base.L
    assert overridden.S == 7
    # Without overrides a smaller n derives a smaller index.
    assert E2LSHParams(n=1000, rho=0.32).L < base.L


def test_explicit_overrides_validated():
    with pytest.raises(ValueError):
        E2LSHParams(n=10, m_explicit=0)
    with pytest.raises(ValueError):
        E2LSHParams(n=10, L_explicit=0)
    with pytest.raises(ValueError):
        E2LSHParams(n=10, S_explicit=0)
