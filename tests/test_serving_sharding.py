"""Tests for repro.serving.sharding."""

import numpy as np
import pytest

from repro.core.e2lsh import QueryAnswer
from repro.core.params import E2LSHParams
from repro.core.query_stats import QueryStats
from repro.datasets.registry import load_dataset
from repro.eval.ground_truth import exact_knn
from repro.eval.ratio import overall_ratio
from repro.serving.sharding import ShardedIndex, merge_answers, plan_shards


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("sift", n=1200, n_queries=8, seed=3)


@pytest.fixture(scope="module")
def params(dataset):
    return E2LSHParams(n=dataset.n, rho=0.32, gamma=0.6, s_factor=32.0)


def answer(ids, distances):
    return QueryAnswer(
        ids=np.asarray(ids, dtype=np.int64),
        distances=np.asarray(distances, dtype=np.float64),
        stats=QueryStats(),
    )


# -- plan_shards -------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["hash", "range", "table"])
def test_plan_covers_all_units_disjointly(scheme):
    plan = plan_shards(100, 4, scheme=scheme, seed=5)
    members = [plan.members(s) for s in range(4)]
    combined = np.sort(np.concatenate(members))
    assert np.array_equal(combined, np.arange(100))
    assert plan.shard_sizes().sum() == 100


@pytest.mark.parametrize("scheme", ["hash", "range", "table"])
def test_plan_is_balanced(scheme):
    sizes = plan_shards(103, 4, scheme=scheme, seed=5).shard_sizes()
    assert sizes.max() - sizes.min() <= 1
    assert sizes.min() >= 1


def test_plan_is_deterministic():
    a = plan_shards(64, 4, scheme="hash", seed=9)
    b = plan_shards(64, 4, scheme="hash", seed=9)
    c = plan_shards(64, 4, scheme="hash", seed=10)
    assert np.array_equal(a.assignment, b.assignment)
    assert not np.array_equal(a.assignment, c.assignment)


def test_range_plan_is_contiguous():
    plan = plan_shards(100, 4, scheme="range")
    for s in range(4):
        members = plan.members(s)
        assert np.array_equal(members, np.arange(members[0], members[-1] + 1))


def test_plan_unit_semantics():
    assert plan_shards(10, 2, scheme="hash").unit == "object"
    assert plan_shards(10, 2, scheme="table").unit == "table"


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_shards(3, 4)
    with pytest.raises(ValueError):
        plan_shards(10, 0)
    with pytest.raises(ValueError):
        plan_shards(10, 2, scheme="bogus")


# -- merge_answers -----------------------------------------------------------


def test_merge_selects_k_smallest_across_shards():
    merged = merge_answers(
        [answer([1, 2], [0.5, 3.0]), answer([3, 4], [0.1, 1.0])], k=3
    )
    assert merged.ids.tolist() == [3, 1, 4]
    assert merged.distances.tolist() == [0.1, 0.5, 1.0]


def test_merge_deduplicates_table_partitioned_answers():
    merged = merge_answers(
        [answer([7, 1], [0.2, 0.9]), answer([7, 2], [0.2, 0.4])], k=3
    )
    assert merged.ids.tolist() == [7, 2, 1]
    assert merged.distances.tolist() == [0.2, 0.4, 0.9]


def test_merge_accumulates_stats():
    a, b = answer([1], [1.0]), answer([2], [2.0])
    a.stats.ios_issued = 3
    b.stats.ios_issued = 4
    assert merge_answers([a, b], k=1).stats.ios_issued == 7


def test_merge_handles_empty_parts():
    merged = merge_answers([answer([], []), answer([5], [0.3])], k=2)
    assert merged.ids.tolist() == [5]


def test_merge_requires_parts():
    with pytest.raises(ValueError):
        merge_answers([], k=1)


# -- ShardedIndex ------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["hash", "range", "table"])
def test_sharded_accuracy_matches_single_node(dataset, params, scheme):
    truth = exact_knn(dataset.data, dataset.queries, k=5)
    sharded = ShardedIndex.build(dataset.data, params, n_shards=3, scheme=scheme, seed=3)
    result = sharded.run(dataset.queries, k=5)
    ratio = overall_ratio([a.distances for a in result.answers], truth, k=5)
    assert ratio < 1.5
    assert all(a.ids.size == 5 for a in result.answers)


def test_sharded_answers_carry_global_ids(dataset, params):
    sharded = ShardedIndex.build(dataset.data, params, n_shards=3, scheme="hash", seed=3)
    result = sharded.run(dataset.queries, k=5)
    for query, a in zip(dataset.queries, result.answers):
        assert a.ids.min() >= 0 and a.ids.max() < dataset.n
        # Reported distances must be the true distances of the global IDs.
        diffs = dataset.data[a.ids].astype(np.float64) - query.astype(np.float64)
        expected = np.sqrt((diffs**2).sum(axis=1))
        assert np.allclose(a.distances, expected)


def test_object_shards_partition_storage(dataset, params):
    sharded = ShardedIndex.build(dataset.data, params, n_shards=3, scheme="hash", seed=3)
    sizes = [shard.index.built.params.n for shard in sharded.shards]
    assert sum(sizes) == dataset.n
    # Shared structure: every shard keeps the full dataset's L and m.
    assert all(shard.index.params.L == params.L for shard in sharded.shards)
    assert all(shard.index.params.m == params.m for shard in sharded.shards)


def test_table_shards_split_tables_and_keep_all_objects(dataset, params):
    sharded = ShardedIndex.build(dataset.data, params, n_shards=3, scheme="table", seed=3)
    assert sum(shard.index.params.L for shard in sharded.shards) == params.L
    assert all(shard.index.built.params.n == dataset.n for shard in sharded.shards)
    assert all(shard.global_ids is None for shard in sharded.shards)


def test_stop_k_quota():
    sharded = ShardedIndex.build(
        np.random.default_rng(0).standard_normal((200, 8)).astype(np.float32),
        E2LSHParams(n=200),
        n_shards=4,
        scheme="hash",
    )
    shard = sharded.shards[0]
    assert shard.stop_k(10) == 4  # ceil(10/4) + 1
    assert shard.stop_k(1) == 1  # never above k


def test_makespan_is_max_over_shards(dataset, params):
    sharded = ShardedIndex.build(dataset.data, params, n_shards=2, scheme="hash", seed=3)
    result = sharded.run(dataset.queries, k=3)
    assert result.makespan_ns == max(r.makespan_ns for r in result.shard_results)


def test_build_rejects_mismatched_params(dataset, params):
    with pytest.raises(ValueError):
        ShardedIndex.build(dataset.data, E2LSHParams(n=dataset.n + 1), n_shards=2)


def test_empty_shard_list_rejected():
    with pytest.raises(ValueError):
        ShardedIndex([], plan_shards(4, 2))
