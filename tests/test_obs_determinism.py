"""Regression tests: tracing is deterministic and observation-free.

Two contracts the observability layer must keep forever:

1. same seed -> byte-identical exported trace (the trace carries only
   simulated-clock data; wall-clock self-profiling lives in the metrics
   export);
2. tracing on vs off -> identical :class:`ServiceReport` numbers (the
   tracer observes the simulation, never perturbs it).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.obs.trace import SpanTracer
from repro.serving.loadgen import OpenLoopWorkload
from repro.serving.replication import FaultSpec, RoutingConfig
from repro.serving.service import QueryService
from repro.serving.sharding import ShardedIndex

K = 3


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(13)
    data = rng.standard_normal((300, 16)).astype(np.float32)
    pool = rng.standard_normal((12, 16)).astype(np.float32)
    return data, pool


@pytest.fixture(scope="module")
def sharded(dataset):
    data, _ = dataset
    return ShardedIndex.build(
        data,
        E2LSHParams(n=300),
        n_shards=2,
        scheme="hash",
        seed=13,
        replicas=2,
        faults=(FaultSpec(shard=0, replica=1, latency_multiplier=4.0),),
    )


def workload():
    return OpenLoopWorkload(qps=50_000.0, n_queries=40, seed=2)


def run(sharded, pool, tracer=None, metrics_interval_ns=None):
    service = QueryService(
        sharded,
        routing=RoutingConfig(policy="hedged"),
        tracer=tracer,
        metrics_interval_ns=metrics_interval_ns,
    )
    report = service.run_open_loop(pool, workload(), k=K)
    return service, report


def test_same_seed_yields_byte_identical_traces(sharded, dataset, tmp_path):
    _, pool = dataset
    paths = []
    for name in ("first.json", "second.json"):
        tracer = SpanTracer()
        run(sharded, pool, tracer=tracer)
        path = tmp_path / name
        tracer.write(path)
        paths.append(path)
    first, second = (path.read_bytes() for path in paths)
    assert first == second
    assert len(first) > 1000  # a real trace, not an empty shell


def test_tracing_does_not_change_the_service_report(sharded, dataset):
    _, pool = dataset
    _, untraced = run(sharded, pool)
    traced_service, traced = run(
        sharded, pool, tracer=SpanTracer(), metrics_interval_ns=100_000.0
    )
    assert dataclasses.asdict(untraced) == dataclasses.asdict(traced)
    # The traced run really did record and sample.
    assert len(traced_service.tracer.spans) == traced.completed
    assert traced_service.timeline is not None
    assert traced_service.timeline.samples


def test_timeline_and_event_counts_are_seed_deterministic(sharded, dataset):
    _, pool = dataset
    service_a, _ = run(sharded, pool, metrics_interval_ns=50_000.0)
    service_b, _ = run(sharded, pool, metrics_interval_ns=50_000.0)
    assert service_a.timeline.samples == service_b.timeline.samples
    assert service_a.loop_profile.event_counts() == service_b.loop_profile.event_counts()


def test_traced_spans_cover_every_completed_query(sharded, dataset):
    _, pool = dataset
    tracer = SpanTracer()
    service, report = run(sharded, pool, tracer=tracer)
    spans = tracer.completed_spans()
    assert [span.query_id for span in spans] == sorted(service.answers)
    for span in spans:
        record = next(
            r for r in service.stats.records if r.query_id == span.query_id
        )
        assert span.admit_ns == record.arrival_ns
        assert span.finish_ns == record.finish_ns
