"""Wave execution A/B: ``vectorize=True`` must be invisible end to end.

The dispatcher's vectorized flush path plans whole lane batches through
``Shard.query_tasks`` and submits them as engine waves; with
``vectorize=False`` it falls back to per-query ``query_task`` +
``submit``.  Both must produce byte-identical service reports *and*
byte-identical traces for every catalog scenario — the wave path only
changes how fast the simulator's own loop runs.
"""

import json
from dataclasses import asdict

import pytest

from repro.obs.trace import SpanTracer
from repro.serving.catalog import CATALOG_NAMES, build_scenario
from repro.serving.scenario import run_scenario


def run_ab(name):
    spec = build_scenario(name, quick=True)
    results = []
    for vectorize in (True, False):
        tracer = SpanTracer()
        result = run_scenario(spec, tracer=tracer, vectorize=vectorize)
        results.append((result, tracer))
    return results


def trace_dump(tracer):
    spans = [asdict(span) for _, span in sorted(tracer.spans.items())]
    return json.dumps({"spans": spans, "rejected": tracer.rejected}, sort_keys=True)


@pytest.mark.parametrize("name", CATALOG_NAMES)
def test_catalog_reports_and_traces_identical(name):
    (wave, wave_tracer), (scalar, scalar_tracer) = run_ab(name)
    wave_report = json.dumps(asdict(wave.report), sort_keys=True)
    scalar_report = json.dumps(asdict(scalar.report), sort_keys=True)
    assert wave_report == scalar_report
    assert trace_dump(wave_tracer) == trace_dump(scalar_tracer)


def test_vectorized_answers_match_scalar():
    spec = build_scenario("steady-state", quick=True)
    wave = run_scenario(spec, vectorize=True)
    scalar = run_scenario(spec, vectorize=False)
    assert wave.answers.keys() == scalar.answers.keys()
    for qid, answer in wave.answers.items():
        other = scalar.answers[qid]
        assert list(answer.ids) == list(other.ids)
        assert list(answer.distances) == list(other.distances)


def test_profile_timeline_is_wall_only():
    """The sampler hook never leaks wall figures into the simulated report."""
    spec = build_scenario("steady-state", quick=True)
    plain = run_scenario(spec)
    profiled = run_scenario(spec, profile_interval_ns=200_000.0)
    assert json.dumps(asdict(plain.report), sort_keys=True) == json.dumps(
        asdict(profiled.report), sort_keys=True
    )
    timeline = profiled.service.profile_timeline
    assert timeline is not None
    assert timeline.samples, "profile sampler produced no samples"
    assert all("events_per_sec" in row for row in timeline.samples)
