"""Tests for repro.core.radii (the (R, c)-NN ladder)."""

import math

import numpy as np
import pytest

from repro.core.radii import RadiusLadder


def test_geometric_ladder():
    ladder = RadiusLadder.for_extent(x_max=10.0, d=100, c=2.0)
    r_max = 2 * 10.0 * math.sqrt(100)  # = 200
    assert ladder.rungs == math.ceil(math.log(r_max, 2.0))
    assert ladder[0] == 1.0
    for a, b in zip(ladder, list(ladder)[1:]):
        assert b == pytest.approx(2.0 * a)


def test_for_data_uses_coordinate_extent():
    data = np.zeros((10, 4), dtype=np.float32)
    data[3, 2] = -7.0  # extent from the absolute maximum
    ladder = RadiusLadder.for_data(data, 2.0)
    assert ladder == RadiusLadder.for_extent(7.0, 4, 2.0)


def test_tiny_extent_single_rung():
    ladder = RadiusLadder.for_extent(x_max=0.01, d=2, c=2.0)
    assert ladder.rungs == 1
    assert ladder.radii == (1.0,)


def test_rungs_independent_of_database_size():
    """r depends on the extent, not n (Sec. 2.3)."""
    small = np.random.default_rng(0).uniform(-5, 5, (100, 8)).astype(np.float32)
    # Same extent, 10x the points.
    large = np.vstack([small] * 10)
    assert RadiusLadder.for_data(small, 2.0).rungs == RadiusLadder.for_data(large, 2.0).rungs


def test_sequence_protocol():
    ladder = RadiusLadder.for_extent(4.0, 16, 2.0)
    assert len(ladder) == ladder.rungs
    assert list(ladder)[-1] == ladder.r_max


def test_validation():
    with pytest.raises(ValueError):
        RadiusLadder(c=1.0, radii=(1.0,))
    with pytest.raises(ValueError):
        RadiusLadder(c=2.0, radii=())
    with pytest.raises(ValueError):
        RadiusLadder.for_extent(1.0, 0, 2.0)
    with pytest.raises(ValueError):
        RadiusLadder.for_data(np.zeros(3), 2.0)
