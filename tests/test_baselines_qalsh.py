"""Tests for repro.baselines.qalsh."""

import numpy as np
import pytest

from repro.baselines.linear_scan import LinearScanIndex
from repro.baselines.qalsh import QALSHIndex, qalsh_parameters


@pytest.fixture(scope="module")
def data_and_queries():
    rng = np.random.default_rng(53)
    n, d = 1500, 24
    centers = rng.normal(scale=5.0, size=(15, d))
    data = (centers[rng.integers(0, 15, n)] + rng.normal(scale=0.5, size=(n, d))).astype(
        np.float32
    )
    queries = (data[rng.integers(0, n, 8)] + rng.normal(scale=0.05, size=(8, d))).astype(
        np.float32
    )
    return data, queries


@pytest.fixture(scope="module")
def index(data_and_queries):
    return QALSHIndex(data_and_queries[0], seed=13)


def test_parameter_formulas():
    m, alpha, threshold = qalsh_parameters(n=10_000, c=2.0, w=2.719)
    assert m >= 10
    assert 0 < alpha < 1
    assert 1 <= threshold <= m
    # Larger c separates p1/p2 more -> fewer hash functions needed.
    m_large_c, _, _ = qalsh_parameters(n=10_000, c=3.0, w=2.719)
    assert m_large_c < m


def test_parameter_validation():
    with pytest.raises(ValueError):
        qalsh_parameters(n=0, c=2.0, w=1.0)
    with pytest.raises(ValueError):
        qalsh_parameters(n=10, c=1.0, w=1.0)
    with pytest.raises(ValueError):
        qalsh_parameters(n=10, c=2.0, w=-1.0)


def test_finds_near_neighbors(data_and_queries, index):
    data, queries = data_and_queries
    exact = LinearScanIndex(data)
    for q in queries:
        answer = index.query(q, k=1)
        assert answer.found
        truth = exact.query(q, k=1)
        # c-ANNS quality: well within c^2 of exact on easy data.
        assert answer.distances[0] <= 4.0 * truth.distances[0] + 1e-6


def test_accuracy_knob_c(data_and_queries, index):
    """Smaller c -> stricter T1 termination -> at least as accurate."""
    data, queries = data_and_queries
    exact = LinearScanIndex(data)
    def total_ratio(c):
        total = 0.0
        for q in queries:
            answer = index.query(q, k=1, c=c)
            truth = exact.query(q, k=1)
            total += answer.distances[0] / max(truth.distances[0], 1e-9)
        return total

    assert total_ratio(1.3) <= total_ratio(3.0) + 1e-6


def test_budget_t2_respected(data_and_queries, index):
    _, queries = data_and_queries
    answer = index.query(queries[0], k=1)
    assert answer.stats.candidates_checked <= index.beta_count + 1 - 1 + 1


def test_ops_counters(data_and_queries, index):
    _, queries = data_and_queries
    stats = index.query(queries[0], k=1).stats
    assert stats.ops.btree_entry_scans > 0
    assert stats.rungs_searched >= 1
    assert stats.ops.rounds == stats.rungs_searched


def test_topk(data_and_queries, index):
    _, queries = data_and_queries
    answer = index.query(queries[0], k=4)
    assert answer.ids.size <= 4
    assert np.all(np.diff(answer.distances) >= 0)


def test_determinism(data_and_queries):
    data, queries = data_and_queries
    a = QALSHIndex(data, seed=3).query(queries[0], k=2)
    b = QALSHIndex(data, seed=3).query(queries[0], k=2)
    np.testing.assert_array_equal(a.ids, b.ids)


def test_validation(data_and_queries, index):
    _, queries = data_and_queries
    with pytest.raises(ValueError):
        index.query(queries[0], k=0)
    with pytest.raises(ValueError):
        index.query(queries[0], k=1, c=1.0)
    with pytest.raises(ValueError):
        index.query(np.zeros(2, dtype=np.float32))
    with pytest.raises(ValueError):
        QALSHIndex(np.empty((0, 3)))
