"""Tests for repro.datasets (generators, metrics, registry)."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.metrics import (
    local_intrinsic_dimensionality,
    pairwise_distances,
    relative_contrast,
)
from repro.datasets.registry import DATASET_NAMES, DATASET_SPECS, load_dataset


def test_registry_has_all_eight():
    assert set(DATASET_NAMES) == {
        "msong", "sift", "gist", "rand", "glove", "gauss", "mnist", "bigann",
    }


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_generators_produce_well_formed_data(name):
    dataset = load_dataset(name, n=500, n_queries=10, seed=1)
    assert dataset.n == 500
    assert dataset.n_queries == 10
    assert dataset.data.dtype == np.float32
    assert dataset.queries.shape[1] == dataset.d
    assert np.isfinite(dataset.data).all()
    spec = DATASET_SPECS[name]
    expected_type = "byte" if spec.paper_type == "Image" and name != "gist" else dataset.value_type
    assert dataset.value_type in ("float", "byte")


@pytest.mark.parametrize("name", ["sift", "mnist", "bigann"])
def test_byte_datasets_are_integral_in_range(name):
    dataset = load_dataset(name, n=300, n_queries=5)
    assert dataset.value_type == "byte"
    assert dataset.data.min() >= 0
    assert dataset.data.max() <= 255
    np.testing.assert_array_equal(dataset.data, np.round(dataset.data))


def test_generators_deterministic():
    a = load_dataset("glove", n=200, n_queries=5, seed=9)
    b = load_dataset("glove", n=200, n_queries=5, seed=9)
    np.testing.assert_array_equal(a.data, b.data)
    c = load_dataset("glove", n=200, n_queries=5, seed=10)
    assert not np.array_equal(a.data, c.data)


def test_subset_keeps_queries():
    dataset = load_dataset("sift", n=400, n_queries=6)
    sub = dataset.subset(100)
    assert sub.n == 100
    np.testing.assert_array_equal(sub.queries, dataset.queries)
    np.testing.assert_array_equal(sub.data, dataset.data[:100])
    with pytest.raises(ValueError):
        dataset.subset(0)
    with pytest.raises(ValueError):
        dataset.subset(401)


def test_dataset_validation():
    with pytest.raises(ValueError):
        Dataset(name="x", data=np.zeros((3, 2), np.float32), queries=np.zeros((1, 3), np.float32))
    with pytest.raises(ValueError):
        Dataset(
            name="x",
            data=np.zeros((3, 2), np.float32),
            queries=np.zeros((1, 2), np.float32),
            value_type="complex",
        )


def test_pairwise_distances():
    a = np.array([[0.0, 0.0], [1.0, 0.0]])
    b = np.array([[0.0, 0.0], [0.0, 2.0]])
    d = pairwise_distances(a, b)
    assert d[0, 0] == pytest.approx(0.0)
    assert d[0, 1] == pytest.approx(2.0)
    assert d[1, 1] == pytest.approx(np.sqrt(5.0))


def test_relative_contrast_orders_hardness():
    easy = load_dataset("sift", n=1500, n_queries=10)
    hard = load_dataset("rand", n=1500, n_queries=10)
    rc_easy = relative_contrast(easy.data, easy.queries)
    rc_hard = relative_contrast(hard.data, hard.queries)
    assert rc_easy > rc_hard > 1.0


def test_lid_orders_hardness():
    low = load_dataset("mnist", n=1500, n_queries=10)
    high = load_dataset("gauss", n=1500, n_queries=10)
    assert local_intrinsic_dimensionality(
        high.data, high.queries
    ) > local_intrinsic_dimensionality(low.data, low.queries)


def test_lid_of_uniform_cube_near_d():
    rng = np.random.default_rng(0)
    d = 12
    data = rng.random((4000, d))
    queries = rng.random((20, d))
    lid = local_intrinsic_dimensionality(data, queries, k=20)
    assert 0.4 * d < lid < 2.0 * d


def test_metric_validation():
    with pytest.raises(ValueError):
        local_intrinsic_dimensionality(np.zeros((5, 2)), np.zeros((1, 2)), k=1)
