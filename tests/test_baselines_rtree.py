"""Tests for repro.baselines.rtree (SRS's R-tree substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rtree import NNCounters, RTree


@pytest.fixture(scope="module")
def tree_and_points():
    rng = np.random.default_rng(31)
    points = rng.normal(size=(500, 6))
    return RTree(points, leaf_capacity=16, fanout=4), points


def test_incremental_nn_yields_nondecreasing_distances(tree_and_points):
    tree, points = tree_and_points
    query = np.zeros(6)
    distances = [d for d, _ in zip_take(tree.incremental_nn(query), 100)]
    assert distances == sorted(distances)


def zip_take(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) == n:
            break
    return out


def test_knn_matches_brute_force(tree_and_points):
    tree, points = tree_and_points
    rng = np.random.default_rng(7)
    for _ in range(5):
        query = rng.normal(size=6)
        result = tree.knn(query, k=10)
        ids = [obj for _, obj in result]
        exact = np.argsort(np.linalg.norm(points - query, axis=1))[:10]
        assert ids == exact.tolist()


def test_full_enumeration_visits_everything(tree_and_points):
    tree, points = tree_and_points
    counters = NNCounters()
    seen = [obj for _, obj in tree.incremental_nn(np.zeros(6), counters)]
    assert sorted(seen) == list(range(points.shape[0]))
    assert counters.node_visits == tree.n_nodes
    assert counters.points_returned == points.shape[0]


def test_counters_scale_with_depth(tree_and_points):
    tree, points = tree_and_points
    few = NNCounters()
    zip_take(tree.incremental_nn(np.zeros(6), few), 5)
    many = NNCounters()
    zip_take(tree.incremental_nn(np.zeros(6), many), 200)
    assert many.node_visits >= few.node_visits
    assert many.heap_ops > few.heap_ops


def test_single_point_tree():
    tree = RTree(np.array([[1.0, 2.0]]))
    assert tree.knn(np.zeros(2), k=1) == [(pytest.approx(np.sqrt(5.0)), 0)]


def test_validation():
    with pytest.raises(ValueError):
        RTree(np.empty((0, 3)))
    with pytest.raises(ValueError):
        RTree(np.zeros((5, 3)), leaf_capacity=0)
    tree = RTree(np.zeros((5, 3)))
    with pytest.raises(ValueError):
        tree.knn(np.zeros(2), k=1)
    with pytest.raises(ValueError):
        tree.knn(np.zeros(3), k=0)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n=st.integers(2, 120),
    m=st.integers(1, 8),
    k=st.integers(1, 10),
)
def test_property_incremental_nn_matches_brute_force(seed, n, m, k):
    rng = np.random.default_rng(seed)
    points = rng.uniform(-10, 10, size=(n, m))
    query = rng.uniform(-10, 10, size=m)
    tree = RTree(points, leaf_capacity=8, fanout=4)
    k = min(k, n)
    got = [obj for _, obj in tree.knn(query, k)]
    exact_order = np.argsort(np.linalg.norm(points - query, axis=1), kind="stable")[:k]
    exact_dists = np.linalg.norm(points[exact_order] - query, axis=1)
    got_dists = np.linalg.norm(points[got] - query, axis=1)
    np.testing.assert_allclose(got_dists, exact_dists, rtol=1e-9, atol=1e-9)
