"""Tests for repro.cli."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_info_lists_catalogs():
    code, text = run_cli("info")
    assert code == 0
    for token in ("sift", "bigann", "cssd", "xlfdd", "io_uring", "spdk"):
        assert token in text


def test_build_query_roundtrip(tmp_path):
    prefix = str(tmp_path / "idx")
    code, text = run_cli(
        "build", "--dataset", "sift", "--n", "1500", "--queries", "6",
        "--gamma", "0.6", "--out", prefix,
    )
    assert code == 0
    assert "built" in text
    assert (tmp_path / "idx.blocks").exists()
    assert (tmp_path / "idx.npz").exists()

    code, text = run_cli(
        "query", "--dataset", "sift", "--n", "1500", "--queries", "6",
        "--gamma", "0.6", "--index", prefix, "-k", "3",
        "--device", "cssd", "--count", "1", "--interface", "io_uring",
    )
    assert code == 0
    assert "overall ratio" in text
    ratio = float(text.rsplit("overall ratio", 1)[1].strip())
    assert ratio < 2.0


def test_query_missing_index(tmp_path):
    code, text = run_cli(
        "query", "--dataset", "sift", "--n", "500", "--index", str(tmp_path / "nope")
    )
    assert code == 1
    assert "error" in text


def test_analyze_reports_requirements():
    code, text = run_cli(
        "analyze", "--dataset", "rand", "--n", "1500", "--queries", "6",
        "--target-ms", "0.5",
    )
    assert code == 0
    assert "I/Os per query" in text
    assert "qualifying devices" in text


def test_loadtest_open_loop_reports_slo_figures():
    code, text = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--shards", "2", "--qps", "2000", "--arrivals", "poisson",
        "--requests", "24",
    )
    assert code == 0
    for token in ("p50", "p95", "p99", "q/s", "capacity plan", "shard"):
        assert token in text


def test_loadtest_closed_loop_table_scheme():
    code, text = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--shards", "2", "--scheme", "table", "--mode", "closed",
        "--concurrency", "4", "--requests", "16",
    )
    assert code == 0
    assert "closed loop" in text
    assert "rejected 0" in text


def test_loadtest_replicated_hedged_with_fault():
    code, text = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--shards", "2", "--replicas", "2", "--routing", "hedged",
        "--fault", "0:1:5", "--qps", "4000", "--requests", "48",
    )
    assert code == 0
    assert "2 replica(s)" in text
    assert "hedged" in text
    assert "1 fault(s)" in text
    assert "replicas" in text  # per-replica IOPS lines
    assert "hedges" in text  # hedge ledger
    assert "replica(s)" in text.rsplit("capacity plan", 1)[1]


def test_loadtest_fault_with_stall_window_parses():
    code, text = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--shards", "2", "--replicas", "2", "--routing", "least_outstanding",
        "--fault", "0:0:2:1000:50", "--qps", "2000", "--requests", "16",
    )
    assert code == 0
    assert "least_outstanding" in text


def test_loadtest_rejects_malformed_fault():
    with pytest.raises(SystemExit):
        run_cli(
            "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
            "--fault", "nonsense",
        )
    with pytest.raises(SystemExit):
        run_cli(
            "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
            "--fault", "0:zero:5",
        )


def test_loadtest_rejects_hedge_delay_without_hedged_routing():
    with pytest.raises(SystemExit, match="hedged"):
        run_cli(
            "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
            "--replicas", "2", "--hedge-delay-us", "200",
        )


def test_loadtest_rejects_fault_outside_deployment():
    with pytest.raises(SystemExit, match="deployment"):
        run_cli(
            "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
            "--shards", "2", "--replicas", "2", "--fault", "0:5:2",
        )


def test_loadtest_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["loadtest", "--scheme", "bogus"])


def test_loadtest_rejects_unknown_routing():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["loadtest", "--routing", "bogus"])


def test_parser_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["build", "--dataset", "imaginary", "--out", "x"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_loadtest_trace_and_metrics_exports(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    code, text = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--shards", "2", "--replicas", "2", "--routing", "hedged",
        "--requests", "24", "--qps", "5000",
        "--trace", str(trace_path),
        "--metrics-out", str(metrics_path), "--metrics-interval-us", "200",
    )
    assert code == 0
    assert "simulator:" in text
    assert "query spans" in text

    import json

    trace = json.loads(trace_path.read_text())
    assert trace["spans"]["schema"] == "repro-trace/1"
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
    metrics = json.loads(metrics_path.read_text())
    assert metrics["schema"] == "repro-metrics/1"
    assert metrics["metrics"]["queries_completed"]["value"] == 24.0
    assert metrics["timeline"]["samples"]
    assert metrics["wall"]["events_total"] > 0


def test_scenarios_list_names_the_catalog():
    from repro.serving.catalog import CATALOG_NAMES

    code, text = run_cli("scenarios", "--list")
    assert code == 0
    for name in CATALOG_NAMES:
        assert name in text


def test_scenarios_quick_run_writes_slo_report(tmp_path):
    code, text = run_cli(
        "scenarios", "--quick", "--name", "steady-state", "--out", str(tmp_path)
    )
    assert code == 0
    assert "=== steady-state ===" in text
    assert "SLO: p99" in text

    import json

    payload = json.loads((tmp_path / "steady-state.json").read_text())
    assert payload["schema"] == "repro-scenario-report/1"
    assert payload["scenario"] == "steady-state"
    assert payload["spec"]["name"] == "steady-state"
    assert "met" in payload["slo"]


def test_scenarios_rejects_unknown_name():
    with pytest.raises(SystemExit, match="unknown scenario"):
        run_cli("scenarios", "--quick", "--name", "steady-stat")


def test_scenarios_runs_a_spec_file(tmp_path):
    import json

    from repro.serving.catalog import build_scenario

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(
        json.dumps(build_scenario("steady-state", quick=True).to_dict())
    )
    code, text = run_cli("scenarios", "--spec", str(spec_path))
    assert code == 0
    assert "=== steady-state ===" in text


def test_scenarios_rejects_bad_spec_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "repro-scenario/1", "no_such_knob": 1}')
    with pytest.raises(SystemExit, match="bad scenario spec"):
        run_cli("scenarios", "--spec", str(bad))
    with pytest.raises(SystemExit, match="bad scenario spec"):
        run_cli("scenarios", "--spec", str(tmp_path / "missing.json"))


def test_loadtest_flags_equal_scenario_spec():
    # The loadtest command is a thin adapter over ScenarioSpec: the same
    # deployment expressed as flags and as a spec must report identically.
    from repro.serving import (
        DataConfig,
        ScenarioSpec,
        ServingConfig,
        WorkloadSpec,
        run_scenario,
    )

    code, text = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--shards", "2", "--scheme", "table", "--qps", "2500",
        "--requests", "24", "--zipf", "0.8", "--seed", "5",
    )
    assert code == 0
    spec = ScenarioSpec(
        name="loadtest",
        data=DataConfig(dataset="sift", n=1200, pool_queries=8),
        serving=ServingConfig(n_shards=2, scheme="table"),
        workload=WorkloadSpec(requests=24, qps=2500.0, zipf_s=0.8),
        seed=5,
    )
    assert run_scenario(spec).report.describe() in text


def test_report_renders_waterfall_and_tail_table(tmp_path):
    trace_path = tmp_path / "trace.json"
    code, _ = run_cli(
        "loadtest", "--dataset", "sift", "--n", "1200", "--queries", "8",
        "--requests", "16", "--qps", "5000", "--trace", str(trace_path),
    )
    assert code == 0
    code, text = run_cli("report", str(trace_path), "--pct", "50", "--top", "3")
    assert code == 0
    assert "traced queries" in text
    assert "tail attribution" in text
    assert "legend" in text


def test_report_rejects_non_trace_file(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"not": "a trace"}')
    code, text = run_cli("report", str(bogus))
    assert code == 1
    assert "error" in text
    code, text = run_cli("report", str(tmp_path / "missing.json"))
    assert code == 1
