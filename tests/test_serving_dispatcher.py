"""Tests for repro.serving.dispatcher (replica lanes, batching, hedging)."""

import math

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.serving.dispatcher import DispatchConfig, Dispatcher
from repro.serving.replication import FaultSpec, RoutingConfig
from repro.serving.sharding import ShardedIndex
from repro.serving.stats import ServiceStats


@pytest.fixture(scope="module")
def sharded():
    rng = np.random.default_rng(5)
    data = rng.standard_normal((240, 12)).astype(np.float32)
    return ShardedIndex.build(data, E2LSHParams(n=240), n_shards=2, scheme="hash", seed=5)


@pytest.fixture(scope="module")
def replicated():
    rng = np.random.default_rng(5)
    data = rng.standard_normal((240, 12)).astype(np.float32)
    return ShardedIndex.build(
        data,
        E2LSHParams(n=240),
        n_shards=2,
        scheme="hash",
        seed=5,
        replicas=2,
        faults=(FaultSpec(shard=0, replica=1, latency_multiplier=4.0),),
    )


@pytest.fixture()
def query():
    return np.zeros(12, dtype=np.float32)


def make_dispatcher(sharded, routing=None, **kwargs):
    stats = ServiceStats()
    sessions = [group.sessions() for group in sharded.replica_groups]
    dispatcher = Dispatcher(
        sharded, sessions, DispatchConfig(**kwargs), stats, routing=routing
    )
    return dispatcher, sessions, stats


def drain_completions(dispatcher, sessions):
    """Flush everything, run every session dry, feed completions back."""
    dispatcher.flush_due(math.inf)
    answers = []
    for shard_id, row in enumerate(sessions):
        for replica, session in enumerate(row):
            for completion in session.drain():
                answers.append(dispatcher.subquery_done(shard_id, replica, completion))
    return answers


# -- micro-batch triggers ----------------------------------------------------


def test_size_trigger_flushes_full_batch(sharded, query):
    dispatcher, sessions, stats = make_dispatcher(sharded, max_batch=3)
    for i in range(3):
        assert dispatcher.admit(100.0, i, query, k=2)
    assert not dispatcher.has_pending  # batch released on the 3rd admit
    assert all(s.has_work for row in sessions for s in row)
    assert stats.batch_sizes == [3, 3]  # one flush per shard lane


def test_time_trigger_deadline(sharded, query):
    dispatcher, sessions, stats = make_dispatcher(sharded, max_batch=100, max_delay_ns=500.0)
    dispatcher.admit(1000.0, 0, query, k=2)
    assert dispatcher.has_pending
    assert dispatcher.next_flush_ns == pytest.approx(1500.0)
    dispatcher.flush_due(1400.0)  # before the deadline: nothing happens
    assert dispatcher.has_pending
    dispatcher.flush_due(1500.0)
    assert not dispatcher.has_pending
    assert all(s.has_work for row in sessions for s in row)


def test_deadline_set_by_oldest_entry(sharded, query):
    dispatcher, _, _ = make_dispatcher(sharded, max_batch=100, max_delay_ns=500.0)
    dispatcher.admit(1000.0, 0, query, k=2)
    dispatcher.admit(1300.0, 1, query, k=2)
    assert dispatcher.next_flush_ns == pytest.approx(1500.0)


def test_no_pending_means_no_deadline(sharded):
    dispatcher, _, _ = make_dispatcher(sharded)
    assert math.isinf(dispatcher.next_flush_ns)
    assert math.isinf(dispatcher.next_hedge_ns)


# -- bounded admission -------------------------------------------------------


def test_bounded_admission_rejects_and_recovers(sharded, query):
    dispatcher, sessions, stats = make_dispatcher(sharded, max_batch=100, queue_capacity=2)
    assert dispatcher.admit(0.0, 0, query, k=2)
    assert dispatcher.admit(0.0, 1, query, k=2)
    assert not dispatcher.admit(0.0, 2, query, k=2)  # both lanes full
    assert stats.rejected == 1
    drain_completions(dispatcher, sessions)
    assert dispatcher.admit(0.0, 3, query, k=2)


def test_bounded_queue_rejects_burst_arrivals(sharded, query):
    """A same-instant burst sheds exactly the overflow, keeps the rest."""
    dispatcher, _, stats = make_dispatcher(sharded, max_batch=100, queue_capacity=8)
    admitted = sum(dispatcher.admit(0.0, i, query, k=2) for i in range(20))
    assert admitted == 8
    assert stats.rejected == 12
    # Every lane is exactly full, none above capacity.
    for row in dispatcher._lanes:
        for lane in row:
            assert lane.outstanding == 8


def test_burst_rejection_spreads_over_replicas(replicated, query):
    """With R=2 a burst fits 2x the sub-queries before shedding."""
    dispatcher, _, stats = make_dispatcher(replicated, max_batch=100, queue_capacity=8)
    admitted = sum(dispatcher.admit(0.0, i, query, k=2) for i in range(20))
    assert admitted == 16  # R=2 doubles the admission headroom
    assert stats.rejected == 4


def test_outstanding_counts_in_flight_not_just_queued(sharded, query):
    dispatcher, _, _ = make_dispatcher(sharded, max_batch=2, queue_capacity=3)
    # Two admits flush immediately (max_batch=2), but stay outstanding.
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.admit(0.0, 1, query, k=2)
    assert not dispatcher.has_pending
    assert dispatcher.admit(0.0, 2, query, k=2)  # 3rd slot
    assert not dispatcher.admit(0.0, 3, query, k=2)  # capacity 3 reached


def test_queue_depth_sampled_per_admit(sharded, query):
    dispatcher, _, stats = make_dispatcher(sharded, max_batch=100)
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.admit(0.0, 1, query, k=2)
    assert stats.queue_depth_samples == [1, 1, 2, 2]  # two lanes, two admits


# -- completions -------------------------------------------------------------


def test_every_completion_returns_an_answer_without_hedging(sharded, query):
    dispatcher, sessions, _ = make_dispatcher(sharded, max_batch=100)
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.admit(0.0, 1, query, k=2)
    answers = drain_completions(dispatcher, sessions)
    assert len(answers) == 4  # 2 queries x 2 shards
    assert all(answer is not None for answer in answers)


def test_subquery_done_underflow_raises(sharded):
    dispatcher, sessions, _ = make_dispatcher(sharded)

    class FakeCompletion:
        tag = 0
        result = None
        finish_ns = 0.0

    with pytest.raises(RuntimeError):
        dispatcher.subquery_done(0, 0, FakeCompletion())


def test_session_shape_must_match_replicas(sharded, replicated):
    with pytest.raises(ValueError):
        Dispatcher(
            sharded,
            [sharded.shards[0].engine.session()],
            DispatchConfig(),
            ServiceStats(),
        )
    with pytest.raises(ValueError):
        # Replicated index, single-copy session rows.
        Dispatcher(
            replicated,
            [group.engines[0].session() for group in replicated.replica_groups],
            DispatchConfig(),
            ServiceStats(),
        )


def test_flat_session_list_accepted_for_single_copy(sharded, query):
    stats = ServiceStats()
    sessions = [shard.engine.session() for shard in sharded.shards]
    dispatcher = Dispatcher(sharded, sessions, DispatchConfig(max_batch=1), stats)
    assert dispatcher.admit(0.0, 0, query, k=2)
    assert all(session.has_work for session in sessions)


# -- hedging -----------------------------------------------------------------


def hedged_dispatcher(replicated, delay_ns=1000.0, **kwargs):
    routing = RoutingConfig(policy="hedged", hedge_delay_ns=delay_ns)
    return make_dispatcher(replicated, routing=routing, **kwargs)


def test_hedge_timer_armed_at_admission(replicated, query):
    dispatcher, _, stats = hedged_dispatcher(replicated, max_batch=100)
    dispatcher.admit(100.0, 0, query, k=2)
    assert stats.hedges_armed == 2  # one per shard
    assert dispatcher.next_hedge_ns == pytest.approx(1100.0)


def test_hedge_timer_cancelled_when_primary_completes_first(replicated, query):
    """Satellite: primary answers before the deadline -> timer disarmed."""
    dispatcher, sessions, stats = hedged_dispatcher(replicated, delay_ns=1e12, max_batch=1)
    dispatcher.admit(0.0, 0, query, k=2)
    for shard_id, row in enumerate(sessions):
        for replica, session in enumerate(row):
            for completion in session.drain():
                assert dispatcher.subquery_done(shard_id, replica, completion) is not None
    assert stats.hedges_cancelled == 2
    assert stats.hedges_issued == 0
    # The heap is pruned: no stale timers left to fire.
    assert math.isinf(dispatcher.next_hedge_ns)
    dispatcher.fire_hedges(2e12)
    assert stats.hedges_issued == 0


def test_hedge_fires_and_duplicate_goes_to_other_replica(replicated, query):
    dispatcher, _, stats = hedged_dispatcher(replicated, delay_ns=500.0, max_batch=100)
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.fire_hedges(500.0)
    assert stats.hedges_issued == 2
    # Each shard now has the original plus the duplicate queued, on
    # different replica lanes.
    for row in dispatcher._lanes:
        occupied = [lane.outstanding for lane in row]
        assert sorted(occupied) == [1, 1]


def test_loser_cancellation_preserves_younger_entries_deadline(replicated, query):
    """Cancelling the oldest queued entry must not shorten the batching
    window of the entries behind it."""
    dispatcher, _, stats = hedged_dispatcher(
        replicated, delay_ns=100.0, max_batch=100, max_delay_ns=500.0
    )
    dispatcher.admit(0.0, 0, query, k=2)  # primaries queue at t=0
    dispatcher.fire_hedges(100.0)  # duplicates join *other* lanes at t=100
    assert stats.hedges_issued == 2
    # Each duplicate heads its lane; cancel it by hand and make sure the
    # lane deadline is gone with it, not frozen at the duplicate's time.
    for shard_id, row in enumerate(dispatcher._lanes):
        for replica, lane in enumerate(row):
            if lane.pending and lane.pending[0][3] == 100.0:
                assert dispatcher._cancel_queued(shard_id, replica, 0)
                assert lane.deadline_ns == math.inf  # no stale deadline
    # Primaries still flush on their own t=0 + 500 deadline.
    assert dispatcher.next_flush_ns == pytest.approx(500.0)


def test_hedge_loser_cancelled_while_still_queued(replicated, query):
    """Primary completes while the duplicate waits in its lane: the
    duplicate is dropped before costing any device I/O."""
    dispatcher, sessions, stats = hedged_dispatcher(replicated, delay_ns=500.0, max_batch=100)
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.flush_due(math.inf)  # primaries reach their engines...
    dispatcher.fire_hedges(500.0)  # ...duplicates stay queued (size 1 < 100)
    assert stats.hedges_issued == 2
    answers = 0
    for shard_id, row in enumerate(sessions):
        for replica, session in enumerate(row):
            for completion in session.drain():
                if dispatcher.subquery_done(shard_id, replica, completion) is not None:
                    answers += 1
    assert answers == 2
    assert stats.hedge_losses == 2
    assert stats.hedge_losers_cancelled == 2
    assert not dispatcher.has_pending  # cancelled copies left no residue


def test_shed_admissions_do_not_skew_round_robin(replicated, query):
    """A query shed because one shard is full must leave every cursor
    in place: the next admitted query still alternates replicas."""
    dispatcher, _, stats = make_dispatcher(
        replicated, routing=RoutingConfig(policy="round_robin"),
        max_batch=100, queue_capacity=2,
    )
    # Fill shard 1's lanes completely (shard 0 keeps headroom: its
    # lanes also fill — capacity 2 x 2 replicas = 4 admits fit).
    for i in range(4):
        assert dispatcher.admit(0.0, i, query, k=2)
    assert not dispatcher.admit(0.0, 4, query, k=2)  # shed: all full
    assert stats.rejected == 1
    # Admitted sub-queries alternated replicas on every shard despite
    # the shed probe in between.
    for row in dispatcher._lanes:
        assert [lane.outstanding for lane in row] == [2, 2]


def test_hedged_single_copy_never_arms_timers(sharded, query):
    """R=1 has nowhere to hedge to: the ledger must stay silent rather
    than fill up with suppressed timers."""
    dispatcher, _, stats = make_dispatcher(
        sharded, routing=RoutingConfig(policy="hedged", hedge_delay_ns=100.0),
        max_batch=100,
    )
    dispatcher.admit(0.0, 0, query, k=2)
    assert stats.hedges_armed == 0
    assert math.isinf(dispatcher.next_hedge_ns)


def test_adaptive_hedging_stays_quiet_until_warm(replicated, query):
    routing = RoutingConfig(policy="hedged", hedge_min_observations=4)
    dispatcher, _, stats = make_dispatcher(replicated, routing=routing, max_batch=100)
    dispatcher.admit(0.0, 0, query, k=2)
    assert stats.hedges_armed == 0  # no observations yet -> no delay anchor
    assert math.isinf(dispatcher.next_hedge_ns)


def test_config_validation():
    with pytest.raises(ValueError):
        DispatchConfig(max_batch=0)
    with pytest.raises(ValueError):
        DispatchConfig(max_delay_ns=-1.0)
    with pytest.raises(ValueError):
        DispatchConfig(queue_capacity=0)
