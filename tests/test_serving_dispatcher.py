"""Tests for repro.serving.dispatcher."""

import math

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.serving.dispatcher import DispatchConfig, Dispatcher
from repro.serving.sharding import ShardedIndex
from repro.serving.stats import ServiceStats


@pytest.fixture(scope="module")
def sharded():
    rng = np.random.default_rng(5)
    data = rng.standard_normal((240, 12)).astype(np.float32)
    return ShardedIndex.build(data, E2LSHParams(n=240), n_shards=2, scheme="hash", seed=5)


@pytest.fixture()
def query():
    return np.zeros(12, dtype=np.float32)


def make_dispatcher(sharded, **kwargs):
    stats = ServiceStats()
    sessions = [shard.engine.session() for shard in sharded.shards]
    dispatcher = Dispatcher(sharded, sessions, DispatchConfig(**kwargs), stats)
    return dispatcher, sessions, stats


def test_size_trigger_flushes_full_batch(sharded, query):
    dispatcher, sessions, stats = make_dispatcher(sharded, max_batch=3)
    for i in range(3):
        assert dispatcher.admit(100.0, i, query, k=2)
    assert not dispatcher.has_pending  # batch released on the 3rd admit
    assert all(s.has_work for s in sessions)
    assert stats.batch_sizes == [3, 3]  # one flush per shard lane


def test_time_trigger_deadline(sharded, query):
    dispatcher, sessions, stats = make_dispatcher(sharded, max_batch=100, max_delay_ns=500.0)
    dispatcher.admit(1000.0, 0, query, k=2)
    assert dispatcher.has_pending
    assert dispatcher.next_flush_ns == pytest.approx(1500.0)
    dispatcher.flush_due(1400.0)  # before the deadline: nothing happens
    assert dispatcher.has_pending
    dispatcher.flush_due(1500.0)
    assert not dispatcher.has_pending
    assert all(s.has_work for s in sessions)


def test_deadline_set_by_oldest_entry(sharded, query):
    dispatcher, _, _ = make_dispatcher(sharded, max_batch=100, max_delay_ns=500.0)
    dispatcher.admit(1000.0, 0, query, k=2)
    dispatcher.admit(1300.0, 1, query, k=2)
    assert dispatcher.next_flush_ns == pytest.approx(1500.0)


def test_no_pending_means_no_deadline(sharded):
    dispatcher, _, _ = make_dispatcher(sharded)
    assert math.isinf(dispatcher.next_flush_ns)


def test_bounded_admission_rejects_and_recovers(sharded, query):
    dispatcher, _, stats = make_dispatcher(sharded, max_batch=100, queue_capacity=2)
    assert dispatcher.admit(0.0, 0, query, k=2)
    assert dispatcher.admit(0.0, 1, query, k=2)
    assert not dispatcher.admit(0.0, 2, query, k=2)  # both lanes full
    assert stats.rejected == 1
    dispatcher.subquery_done(0)
    dispatcher.subquery_done(1)
    assert dispatcher.admit(0.0, 3, query, k=2)


def test_outstanding_counts_in_flight_not_just_queued(sharded, query):
    dispatcher, _, _ = make_dispatcher(sharded, max_batch=2, queue_capacity=3)
    # Two admits flush immediately (max_batch=2), but stay outstanding.
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.admit(0.0, 1, query, k=2)
    assert not dispatcher.has_pending
    assert dispatcher.admit(0.0, 2, query, k=2)  # 3rd slot
    assert not dispatcher.admit(0.0, 3, query, k=2)  # capacity 3 reached


def test_queue_depth_sampled_per_admit(sharded, query):
    dispatcher, _, stats = make_dispatcher(sharded, max_batch=100)
    dispatcher.admit(0.0, 0, query, k=2)
    dispatcher.admit(0.0, 1, query, k=2)
    assert stats.queue_depth_samples == [1, 1, 2, 2]  # two lanes, two admits


def test_subquery_done_underflow_raises(sharded):
    dispatcher, _, _ = make_dispatcher(sharded)
    with pytest.raises(RuntimeError):
        dispatcher.subquery_done(0)


def test_session_count_must_match_shards(sharded):
    with pytest.raises(ValueError):
        Dispatcher(
            sharded,
            [sharded.shards[0].engine.session()],
            DispatchConfig(),
            ServiceStats(),
        )


def test_config_validation():
    with pytest.raises(ValueError):
        DispatchConfig(max_batch=0)
    with pytest.raises(ValueError):
        DispatchConfig(max_delay_ns=-1.0)
    with pytest.raises(ValueError):
        DispatchConfig(queue_capacity=0)
