"""Tests for repro.analysis.requirements."""

import math

import pytest

from repro.analysis.requirements import (
    INMEMORY_COMPUTE_FRACTION,
    average_n_io,
    inmemory_cpu_requirement_scale,
    requirement_curve,
)
from repro.stats import QueryStats


def make_stats(nonempty, examined):
    stats = QueryStats()
    stats.nonempty_buckets = nonempty
    stats.bucket_sizes_examined = list(examined)
    return stats


def test_infinite_block_is_two_per_bucket():
    stats = [make_stats(3, [10, 20, 400])]
    assert average_n_io(stats, block_size=None) == pytest.approx(6.0)


def test_finite_block_counts_chain_blocks():
    # 512-byte blocks hold 99 entries: 10 -> 1 block, 400 -> 5 blocks.
    stats = [make_stats(3, [10, 20, 400])]
    expected = 3 + (1 + 1 + math.ceil(400 / 99))
    assert average_n_io(stats, block_size=512) == pytest.approx(expected)


def test_smaller_blocks_more_ios():
    stats = [make_stats(2, [150, 60])]
    assert (
        average_n_io(stats, 128)
        > average_n_io(stats, 512)
        > average_n_io(stats, None) - 1e-9
    )


def test_average_over_queries():
    stats = [make_stats(1, [1]), make_stats(3, [1, 1, 1])]
    assert average_n_io(stats, None) == pytest.approx((2 + 6) / 2)


def test_average_requires_stats():
    with pytest.raises(ValueError):
        average_n_io([], None)


def test_requirement_curve_assembly():
    curve = requirement_curve(
        "test",
        ratios=[1.10, 1.05],
        n_ios=[100, 200],
        target_ns=[1e6, 2e6],
        compute_ns=[1e5, 1e5],
    )
    assert len(curve.points) == 2
    assert curve.points[0].read_iops == pytest.approx(100 * 1e9 / 1e6)
    assert curve.max_read_iops() >= curve.points[1].read_iops
    assert curve.max_request_rate() > 0


def test_requirement_curve_validates_lengths():
    with pytest.raises(ValueError):
        requirement_curve("x", [1.0], [1], [1.0, 2.0], [0.0])


def test_eq16_scale_is_ten():
    assert inmemory_cpu_requirement_scale() == pytest.approx(10.0)
    assert INMEMORY_COMPUTE_FRACTION == pytest.approx(0.9)
