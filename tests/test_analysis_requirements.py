"""Tests for repro.analysis.requirements."""

import math

import pytest

from repro.analysis.requirements import (
    INMEMORY_COMPUTE_FRACTION,
    average_n_io,
    inmemory_cpu_requirement_scale,
    plan_capacity,
    plan_capacity_for_scenario,
    requirement_curve,
)
from repro.stats import QueryStats


def make_stats(nonempty, examined):
    stats = QueryStats()
    stats.nonempty_buckets = nonempty
    stats.bucket_sizes_examined = list(examined)
    return stats


def test_infinite_block_is_two_per_bucket():
    stats = [make_stats(3, [10, 20, 400])]
    assert average_n_io(stats, block_size=None) == pytest.approx(6.0)


def test_finite_block_counts_chain_blocks():
    # 512-byte blocks hold 99 entries: 10 -> 1 block, 400 -> 5 blocks.
    stats = [make_stats(3, [10, 20, 400])]
    expected = 3 + (1 + 1 + math.ceil(400 / 99))
    assert average_n_io(stats, block_size=512) == pytest.approx(expected)


def test_smaller_blocks_more_ios():
    stats = [make_stats(2, [150, 60])]
    assert (
        average_n_io(stats, 128)
        > average_n_io(stats, 512)
        > average_n_io(stats, None) - 1e-9
    )


def test_average_over_queries():
    stats = [make_stats(1, [1]), make_stats(3, [1, 1, 1])]
    assert average_n_io(stats, None) == pytest.approx((2 + 6) / 2)


def test_average_requires_stats():
    with pytest.raises(ValueError):
        average_n_io([], None)


def test_requirement_curve_assembly():
    curve = requirement_curve(
        "test",
        ratios=[1.10, 1.05],
        n_ios=[100, 200],
        target_ns=[1e6, 2e6],
        compute_ns=[1e5, 1e5],
    )
    assert len(curve.points) == 2
    assert curve.points[0].read_iops == pytest.approx(100 * 1e9 / 1e6)
    assert curve.max_read_iops() >= curve.points[1].read_iops
    assert curve.max_request_rate() > 0


def test_requirement_curve_validates_lengths():
    with pytest.raises(ValueError):
        requirement_curve("x", [1.0], [1], [1.0, 2.0], [0.0])


def test_eq16_scale_is_ten():
    assert inmemory_cpu_requirement_scale() == pytest.approx(10.0)
    assert INMEMORY_COMPUTE_FRACTION == pytest.approx(0.9)


# -- plan_capacity -----------------------------------------------------------


def test_plan_capacity_iops_balance():
    # 10k q/s x 30 IO/query = 300 kIOPS; 273k-IOPS devices at 70% give
    # 191.1k per shard -> 2 shards.
    plan = plan_capacity(
        n_io_per_query=30.0,
        target_qps=10_000.0,
        target_p99_ns=2e6,
        device_max_iops=273_000.0,
    )
    assert plan.required_fleet_iops == pytest.approx(300_000.0)
    assert plan.required_shards == 2
    assert plan.total_devices == 2
    assert plan.expected_utilization == pytest.approx(300_000 / (2 * 273_000))
    assert plan.feasible


def test_plan_capacity_scales_with_devices_per_shard():
    single = plan_capacity(50.0, 50_000.0, 2e6, 273_000.0, devices_per_shard=1)
    quad = plan_capacity(50.0, 50_000.0, 2e6, 273_000.0, devices_per_shard=4)
    assert quad.required_shards == math.ceil(single.required_shards / 4)
    assert single.required_shards == math.ceil(
        50 * 50_000 / (273_000 * 0.7)
    )


def test_plan_capacity_never_below_one_shard():
    plan = plan_capacity(1.0, 10.0, 1e6, 1e9)
    assert plan.required_shards == 1


def test_plan_capacity_latency_floor_infeasible():
    plan = plan_capacity(
        10.0, 1_000.0, target_p99_ns=1e5, device_max_iops=1e6, latency_floor_ns=5e5
    )
    assert not plan.feasible
    assert "INFEASIBLE" in plan.describe()


def test_plan_capacity_describe_mentions_shards():
    text = plan_capacity(30.0, 10_000.0, 2e6, 273_000.0).describe()
    assert "shard" in text
    assert "utilization" in text


def test_plan_capacity_replicas_cut_shards_and_grow_device_bill():
    single = plan_capacity(50.0, 50_000.0, 2e6, 273_000.0)
    double = plan_capacity(50.0, 50_000.0, 2e6, 273_000.0, replicas=2)
    # R replicas multiply per-shard IOPS like R devices would...
    assert double.required_shards == math.ceil(single.required_shards / 2)
    assert double.per_shard_planned_iops == pytest.approx(
        2 * single.per_shard_planned_iops
    )
    # ...and every planned shard is billed R device groups.
    assert double.total_devices == double.required_shards * 2


def test_plan_capacity_hedge_fraction_inflates_demand():
    clean = plan_capacity(50.0, 50_000.0, 2e6, 273_000.0)
    hedged = plan_capacity(50.0, 50_000.0, 2e6, 273_000.0, hedge_fraction=0.25)
    assert hedged.required_fleet_iops == pytest.approx(1.25 * clean.required_fleet_iops)
    assert hedged.required_shards >= clean.required_shards
    assert "hedge" in hedged.describe()
    assert "hedge" not in clean.describe()


def test_plan_capacity_replicated_defaults_match_single_copy():
    base = plan_capacity(30.0, 10_000.0, 2e6, 273_000.0)
    assert base.replicas == 1
    assert base.hedge_fraction == 0.0
    assert "replica" in base.describe()


# -- plan_capacity_for_scenario ----------------------------------------------


def make_report(qps=8_000.0, ios=20.0, hedge_fraction=0.0):
    from types import SimpleNamespace

    return SimpleNamespace(
        throughput_qps=qps, mean_ios_per_query=ios, hedge_fraction=hedge_fraction
    )


def test_scenario_plan_open_loop_uses_peak_rate():
    from repro.serving import ScenarioSpec, WorkloadSpec
    from repro.storage.profiles import DEVICE_PROFILES

    spec = ScenarioSpec(
        name="flash",
        workload=WorkloadSpec(
            qps=1_000.0,
            shape="flash_crowd",
            flash_at_us=100.0,
            flash_duration_us=50.0,
            flash_multiplier=3.0,
        ),
    )
    plan = plan_capacity_for_scenario(spec, make_report())
    # The crest, not the baseline rate, sets the demand side.
    assert plan.target_qps == pytest.approx(3_000.0)
    assert plan.target_p99_ns == pytest.approx(spec.target_p99_ms * 1e6)
    assert plan.device_max_iops == DEVICE_PROFILES[spec.serving.device].max_iops
    assert plan.replicas == spec.serving.replicas


def test_scenario_plan_closed_loop_uses_measured_throughput():
    from repro.serving import ScenarioSpec, WorkloadSpec

    spec = ScenarioSpec(
        name="closed", workload=WorkloadSpec(mode="closed", concurrency=8)
    )
    plan = plan_capacity_for_scenario(spec, make_report(qps=12_345.0))
    assert plan.target_qps == pytest.approx(12_345.0)


def test_scenario_plan_deflates_hedged_ios_before_readding_them():
    from repro.serving import ScenarioSpec, ServingConfig

    spec = ScenarioSpec(
        name="hedged",
        serving=ServingConfig(replicas=2, routing="hedged"),
    )
    report = make_report(ios=25.0, hedge_fraction=0.25)
    plan = plan_capacity_for_scenario(spec, report)
    # Measured IO/query already contains the duplicates; the plan's hedge
    # term re-adds them, so the fleet demand matches the measurement.
    assert plan.n_io_per_query == pytest.approx(20.0)
    assert plan.hedge_fraction == pytest.approx(0.25)
    assert plan.required_fleet_iops == pytest.approx(plan.target_qps * 25.0)
    assert plan.replicas == 2


def test_plan_capacity_validation():
    with pytest.raises(ValueError):
        plan_capacity(-1.0, 10.0, 1e6, 1e5)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 0.0, 1e6, 1e5)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 0.0, 1e5)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 1e6, 0.0)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 1e6, 1e5, devices_per_shard=0)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 1e6, 1e5, utilization_cap=1.5)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 1e6, 1e5, latency_floor_ns=-1.0)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 1e6, 1e5, replicas=0)
    with pytest.raises(ValueError):
        plan_capacity(1.0, 10.0, 1e6, 1e5, hedge_fraction=-0.1)
