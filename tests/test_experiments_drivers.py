"""Smoke tests for the experiment drivers at the small scale.

The benchmarks exercise the drivers fully at the default scale; these
tests pin the drivers' *interfaces* (row shapes, formatting, caching)
quickly so refactors are caught by ``pytest tests/`` alone.
"""

import pytest

from repro.experiments import common
from repro.experiments.config import SMALL_SCALE
from repro.experiments.tables import render_table


def test_render_table_alignment():
    text = render_table(["a", "bb"], [(1, 2.5), ("xyz", 0.001)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("a")
    assert len(lines) == 5


def test_dataset_and_truth_caching():
    first = common.dataset_for("sift", SMALL_SCALE)
    second = common.dataset_for("sift", SMALL_SCALE)
    assert first is second  # lru-cached
    truth = common.ground_truth_for("sift", SMALL_SCALE)
    assert truth.ids.shape == (SMALL_SCALE.n_queries, 100)


def test_params_for_ties_s_factor_to_gamma():
    loose = common.params_for("sift", 1000, gamma=1.2)
    tight = common.params_for("sift", 1000, gamma=0.4)
    assert tight.s_factor > loose.s_factor
    assert tight.m < loose.m
    assert tight.L == loose.L  # gamma never changes the index size


def test_tuned_e2lsh_structure():
    sweep = common.tuned_e2lsh("sift", SMALL_SCALE, k=1)
    assert len(sweep.tuned.runs) == len(SMALL_SCALE.gammas)
    assert sweep.tuned.selected in sweep.tuned.runs
    assert set(sweep.indices) == set(SMALL_SCALE.gammas)
    # The selected run carries per-query stats for the analysis layer.
    assert len(sweep.tuned.selected.stats) == SMALL_SCALE.n_queries


def test_time_at_ratio_interpolates_monotonically():
    sweep = common.tuned_e2lsh("sift", SMALL_SCALE, k=1)
    ratios = sorted(run.overall_ratio for run in sweep.tuned.runs)
    lo = common.time_at_ratio(sweep.tuned, ratios[0])
    hi = common.time_at_ratio(sweep.tuned, ratios[-1])
    mid = common.time_at_ratio(sweep.tuned, (ratios[0] + ratios[-1]) / 2)
    assert min(lo, hi) <= mid <= max(lo, hi)


def test_mean_stats_averages():
    sweep = common.tuned_e2lsh("sift", SMALL_SCALE, k=1)
    avg = common.mean_stats(sweep.tuned.selected.stats)
    assert avg.rungs_searched >= 1.0
    assert avg.n_io_infinite_block == pytest.approx(2 * avg.nonempty_buckets)
    with pytest.raises(ValueError):
        common.mean_stats([])


def test_built_e2lshos_shares_bank_with_sweep():
    sweep = common.tuned_e2lsh("sift", SMALL_SCALE, k=1)
    gamma = sweep.tuned.selected.knob
    index = common.built_e2lshos("sift", SMALL_SCALE, gamma)
    expected_m = common.params_for("sift", index.params.n, gamma).m
    assert index.built.bank.m == expected_m
    # Bank reuse: the on-storage index hashes exactly like the tuned
    # in-memory index (prefix of the same projections).
    import numpy as np

    np.testing.assert_array_equal(
        index.built.bank.a, sweep.bank_full.with_m(expected_m).a
    )


def test_run_e2lshos_repeat_tiles_queries():
    sweep = common.tuned_e2lsh("sift", SMALL_SCALE, k=1)
    gamma = sweep.tuned.selected.knob
    single = common.run_e2lshos("sift", SMALL_SCALE, gamma, "cssd", 1, "io_uring")
    doubled = common.run_e2lshos(
        "sift", SMALL_SCALE, gamma, "cssd", 1, "io_uring", repeat=2
    )
    assert len(doubled.answers) == 2 * len(single.answers)
