"""The curated public surfaces of ``repro.core`` and ``repro.serving``.

Every name in ``__all__`` must resolve (including the PEP 562 lazy
loads), and the batch-first query API introduced with the vectorized
hot path must be reachable from the package roots.
"""

import importlib

import pytest


@pytest.mark.parametrize("package", ["repro.core", "repro.serving"])
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert sorted(set(module.__all__)) == sorted(module.__all__)
    for name in module.__all__:
        assert getattr(module, name) is not None


def test_unknown_attribute_raises():
    core = importlib.import_module("repro.core")
    with pytest.raises(AttributeError, match="no attribute"):
        core.not_a_thing


def test_batch_api_is_public():
    core = importlib.import_module("repro.core")
    assert "BatchResult" in core.__all__
    index_cls = core.E2LSHoSIndex
    assert callable(index_cls.query_tasks)
    assert callable(index_cls.run)
    serving = importlib.import_module("repro.serving")
    assert callable(serving.Shard.query_tasks)
